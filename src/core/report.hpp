#pragma once

#include <iosfwd>
#include <string>

#include "core/behavioral_benchmark.hpp"
#include "core/trace_benchmark.hpp"
#include "core/webserver_benchmark.hpp"

namespace clio::core {

/// Rendering helpers shared by the bench binaries: each prints the same
/// rows/series as the corresponding paper table or figure, through the
/// uniform TextTable format.

void render_figure2(std::ostream& os, const QcrdFigures& figures);
void render_figure3(std::ostream& os, const QcrdFigures& figures);
void render_speedup_series(std::ostream& os, const std::string& x_label,
                           const std::vector<sim::SpeedupPoint>& points);

/// Tables 1/2: per-op-class mean times for an application replay.
void render_app_summary(std::ostream& os, const std::string& app_name,
                        std::uint64_t data_bytes,
                        const TraceBenchResult& result, bool include_seek,
                        bool include_write);

/// Table 3 shape: per-request seek rows.
void render_seek_rows(std::ostream& os, const trace::ReplayResult& replay,
                      std::size_t max_rows);

/// Table 4 shape: per-request seek+read rows.
void render_seek_read_rows(std::ostream& os,
                           const trace::ReplayResult& replay,
                           std::size_t max_rows);

void render_table5(std::ostream& os, const std::vector<Table5Row>& rows);
void render_table6(std::ostream& os, const std::vector<Table6Row>& rows);

/// Serving-throughput rows from WebServerBench::run_throughput().
void render_throughput(std::ostream& os,
                       const std::vector<ThroughputRow>& rows);

}  // namespace clio::core
