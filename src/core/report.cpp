#include "core/report.hpp"

#include <ostream>

#include "util/table.hpp"

namespace clio::core {

using util::format_fixed;
using util::format_ms;
using util::TextTable;

void render_figure2(std::ostream& os, const QcrdFigures& figures) {
  os << "Figure 2 — execution time of computation and disk I/O (seconds)\n";
  TextTable measured({"bar", "CPU (s)", "IO (s)"});
  for (const auto& bar : figures.measured) {
    measured.add_row({bar.label, format_fixed(bar.cpu_sec, 3),
                      format_fixed(bar.io_sec, 3)});
  }
  os << "measured (scaled run, calibrated at "
     << format_fixed(figures.measured_disk_mb_s, 1) << " MB/s):\n";
  measured.render(os);
  TextTable model({"bar", "CPU (s)", "IO (s)"});
  for (const auto& bar : figures.model_predicted) {
    model.add_row({bar.label, format_fixed(bar.cpu_sec, 1),
                   format_fixed(bar.io_sec, 1)});
  }
  os << "model-predicted at paper scale (T = 180 s):\n";
  model.render(os);
}

void render_figure3(std::ostream& os, const QcrdFigures& figures) {
  os << "Figure 3 — percentage of execution time (CPU vs disk I/O)\n";
  TextTable table({"bar", "CPU (%)", "IO (%)"});
  for (const auto& bar : figures.measured) {
    table.add_row({bar.label, format_fixed(bar.cpu_pct(), 1),
                   format_fixed(bar.io_pct(), 1)});
  }
  os << "measured:\n";
  table.render(os);
  TextTable model({"bar", "CPU (%)", "IO (%)"});
  for (const auto& bar : figures.model_predicted) {
    model.add_row({bar.label, format_fixed(bar.cpu_pct(), 1),
                   format_fixed(bar.io_pct(), 1)});
  }
  os << "model-predicted:\n";
  model.render(os);
}

void render_speedup_series(std::ostream& os, const std::string& x_label,
                           const std::vector<sim::SpeedupPoint>& points) {
  TextTable table({x_label, "Makespan (ms)", "Speedup"});
  for (const auto& p : points) {
    table.add_row({std::to_string(p.value), format_fixed(p.makespan_ms, 1),
                   format_fixed(p.speedup, 3)});
  }
  table.render(os);
}

void render_app_summary(std::ostream& os, const std::string& app_name,
                        std::uint64_t data_bytes,
                        const TraceBenchResult& result, bool include_seek,
                        bool include_write) {
  std::vector<std::string> headers{"Appl. name", "Data size (Bytes)",
                                   "Read time (ms)", "Open time (ms)",
                                   "Close time (ms)"};
  if (include_seek) headers.push_back("Seek time (ms)");
  if (include_write) headers.push_back("Write time (ms)");
  TextTable table(headers);
  std::vector<std::string> row{app_name, std::to_string(data_bytes),
                               format_ms(result.read_ms),
                               format_ms(result.open_ms),
                               format_ms(result.close_ms)};
  if (include_seek) row.push_back(format_ms(result.seek_ms));
  if (include_write) row.push_back(format_ms(result.write_ms));
  table.add_row(row);
  table.render(os);
}

void render_seek_rows(std::ostream& os, const trace::ReplayResult& replay,
                      std::size_t max_rows) {
  TextTable table({"Request number", "Data size (Bytes)", "Seek Time (ms)"});
  std::size_t n = 0;
  for (const auto& row : replay.rows) {
    if (row.op != trace::TraceOp::kSeek) continue;
    ++n;
    table.add_row({std::to_string(n), std::to_string(row.offset),
                   format_ms(row.ms)});
    if (n >= max_rows) break;
  }
  table.render(os);
}

void render_seek_read_rows(std::ostream& os,
                           const trace::ReplayResult& replay,
                           std::size_t max_rows) {
  TextTable table({"Request number", "Data size (Bytes)", "Seek time (ms)",
                   "Read Time (ms)"});
  // Pair each seek with the read that follows it, as Table 4 lays out.
  std::size_t n = 0;
  for (std::size_t i = 0; i + 1 < replay.rows.size() && n < max_rows; ++i) {
    if (replay.rows[i].op != trace::TraceOp::kSeek ||
        replay.rows[i + 1].op != trace::TraceOp::kRead) {
      continue;
    }
    ++n;
    table.add_row({std::to_string(n),
                   std::to_string(replay.rows[i + 1].length),
                   format_ms(replay.rows[i].ms),
                   format_ms(replay.rows[i + 1].ms)});
  }
  table.render(os);
}

void render_table5(std::ostream& os, const std::vector<Table5Row>& rows) {
  TextTable table({"Request number", "Data size (Bytes)", "Read Time (ms)",
                   "Write Time (ms)"});
  std::size_t n = 0;
  for (const auto& row : rows) {
    table.add_row({std::to_string(++n), std::to_string(row.bytes),
                   format_ms(row.read_ms), format_ms(row.write_ms)});
  }
  table.render(os);
}

void render_table6(std::ostream& os, const std::vector<Table6Row>& rows) {
  TextTable table({"Trial number", "Data size (Bytes)", "Read Time (ms)"});
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.trial), std::to_string(row.bytes),
                   format_ms(row.read_ms)});
  }
  table.render(os);
}

void render_throughput(std::ostream& os,
                       const std::vector<ThroughputRow>& rows) {
  TextTable table({"Connections", "Keep-alive", "Requests OK", "Errors",
                   "503", "Req/s", "Mean (ms)", "p99 (ms)"});
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.connections),
                   row.keep_alive ? "on" : "off",
                   std::to_string(row.requests_ok),
                   std::to_string(row.errors),
                   std::to_string(row.rejected_503),
                   std::to_string(static_cast<std::uint64_t>(
                       row.requests_per_sec)),
                   format_ms(row.mean_ms), format_ms(row.p99_ms)});
  }
  table.render(os);
}

}  // namespace clio::core
