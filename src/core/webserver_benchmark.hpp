#pragma once

#include <filesystem>

#include "net/client.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"

namespace clio::core {

/// Benchmark 3 (paper §4): the multi-threaded web server micro benchmark.
struct WebBenchConfig {
  std::filesystem::path workdir;
  bool vm_dispatch = true;  ///< managed handlers (JIT on first request)
  std::int64_t jit_ns_per_byte = 25000;
  std::size_t worker_threads = 4;  ///< server worker pool size
  /// Optional seeded net-layer fault plan (not owned); wired into the
  /// server so throughput scenarios can run in degraded mode.
  net::NetFaultInjector* fault_injector = nullptr;
};

/// Table 5 row: one file size, GET (read) and POST (write) response times.
struct Table5Row {
  std::uint64_t bytes = 0;
  double read_ms = 0.0;
  double write_ms = 0.0;
};

/// Table 6 / Figure 6 row: repeated reads of the same file.
struct Table6Row {
  std::size_t trial = 0;
  std::uint64_t bytes = 0;
  double read_ms = 0.0;
};

/// One serving-throughput scenario: connection count x keep-alive.
struct ThroughputScenario {
  std::size_t connections = 1;
  bool keep_alive = false;
};

/// Result row of run_throughput(): what the paper's tables cannot show —
/// aggregate requests/s and latency tail under concurrency.
struct ThroughputRow {
  std::size_t connections = 1;
  bool keep_alive = false;
  std::uint64_t requests_ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected_503 = 0;
  double requests_per_sec = 0.0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  /// Full request-latency distribution of the scenario's run, so bench
  /// emitters can serialize quantiles + buckets (BENCH_*.json), not just
  /// the two columns the human table prints.
  util::LatencyHistogram::Snapshot latency;
};

/// Owns a server over a managed docroot populated with the paper's three
/// image-sized files (7501, 50607 and 14063 bytes).
class WebServerBench {
 public:
  explicit WebServerBench(WebBenchConfig config);
  ~WebServerBench();

  /// Table 5 protocol: for each file size (server cold at the start), one
  /// GET and one POST of that size, reporting the server-side file times.
  [[nodiscard]] std::vector<Table5Row> run_table5();

  /// Table 6 protocol: fully cold server, then `trials` consecutive GETs of
  /// the same ~14 KB file.  The first read pays JIT + cold buffers.
  [[nodiscard]] std::vector<Table6Row> run_table6(std::size_t trials = 6);

  /// Serving-throughput protocol (the worker-pool scenario): for each
  /// (connections, keep_alive) scenario, drive a seeded GET/POST mix with
  /// the LoadGenerator over the three paper files and report requests/s
  /// plus the latency histogram's mean and p99.  The default scenario list
  /// brackets the acceptance comparison: 1 connection without keep-alive
  /// (the paper's model) vs 8 with it.
  [[nodiscard]] std::vector<ThroughputRow> run_throughput(
      std::vector<ThroughputScenario> scenarios = {{1, false},
                                                   {1, true},
                                                   {8, false},
                                                   {8, true}},
      std::size_t requests_per_connection = 200,
      double post_fraction = 0.1);

  [[nodiscard]] net::MiniWebServer& server() { return *server_; }
  [[nodiscard]] io::ManagedFileSystem& fs() { return *fs_; }

  /// Publishes an extra docroot file (deterministic content) — load
  /// scenarios beyond the paper's three image sizes, e.g. the tiny object
  /// the connection-overhead acceptance comparison serves.
  void add_file(const std::string& name, std::uint64_t bytes) {
    make_file(name, bytes);
  }

  /// The paper's file sizes, in its Table 5 row order.
  static constexpr std::uint64_t kSmall = 7501;
  static constexpr std::uint64_t kLarge = 50607;
  static constexpr std::uint64_t kMid = 14063;

 private:
  void make_file(const std::string& name, std::uint64_t bytes);

  WebBenchConfig config_;
  std::unique_ptr<io::ManagedFileSystem> fs_;
  std::unique_ptr<net::MiniWebServer> server_;
};

}  // namespace clio::core
