#pragma once

#include <filesystem>

#include "net/client.hpp"
#include "net/server.hpp"

namespace clio::core {

/// Benchmark 3 (paper §4): the multi-threaded web server micro benchmark.
struct WebBenchConfig {
  std::filesystem::path workdir;
  bool vm_dispatch = true;  ///< managed handlers (JIT on first request)
  std::int64_t jit_ns_per_byte = 25000;
};

/// Table 5 row: one file size, GET (read) and POST (write) response times.
struct Table5Row {
  std::uint64_t bytes = 0;
  double read_ms = 0.0;
  double write_ms = 0.0;
};

/// Table 6 / Figure 6 row: repeated reads of the same file.
struct Table6Row {
  std::size_t trial = 0;
  std::uint64_t bytes = 0;
  double read_ms = 0.0;
};

/// Owns a server over a managed docroot populated with the paper's three
/// image-sized files (7501, 50607 and 14063 bytes).
class WebServerBench {
 public:
  explicit WebServerBench(WebBenchConfig config);
  ~WebServerBench();

  /// Table 5 protocol: for each file size (server cold at the start), one
  /// GET and one POST of that size, reporting the server-side file times.
  [[nodiscard]] std::vector<Table5Row> run_table5();

  /// Table 6 protocol: fully cold server, then `trials` consecutive GETs of
  /// the same ~14 KB file.  The first read pays JIT + cold buffers.
  [[nodiscard]] std::vector<Table6Row> run_table6(std::size_t trials = 6);

  [[nodiscard]] net::MiniWebServer& server() { return *server_; }
  [[nodiscard]] io::ManagedFileSystem& fs() { return *fs_; }

  /// The paper's file sizes, in its Table 5 row order.
  static constexpr std::uint64_t kSmall = 7501;
  static constexpr std::uint64_t kLarge = 50607;
  static constexpr std::uint64_t kMid = 14063;

 private:
  void make_file(const std::string& name, std::uint64_t bytes);

  WebBenchConfig config_;
  std::unique_ptr<io::ManagedFileSystem> fs_;
  std::unique_ptr<net::MiniWebServer> server_;
};

}  // namespace clio::core
