#include "core/webserver_benchmark.hpp"

#include "io/file_store.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace clio::core {
namespace {

/// Waits until the server has recorded `n` samples (workers record just
/// before transmitting, so a tiny window can remain after the client
/// returns).
void wait_for_samples(const net::MiniWebServer& server, std::size_t n) {
  for (int i = 0; i < 2000 && server.samples().size() < n; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  util::check<util::ClioError>(server.samples().size() >= n,
                               "web bench: server lost samples");
}

}  // namespace

WebServerBench::WebServerBench(WebBenchConfig config)
    : config_(std::move(config)) {
  util::check<util::ConfigError>(!config_.workdir.empty(),
                                 "WebServerBench: workdir required");
  std::filesystem::create_directories(config_.workdir);
  fs_ = std::make_unique<io::ManagedFileSystem>(
      std::make_unique<io::RealFileStore>(config_.workdir),
      io::ManagedFsOptions{});
  make_file("small.jpg", kSmall);
  make_file("large.jpg", kLarge);
  make_file("mid.jpg", kMid);

  net::ServerOptions options;
  options.vm_dispatch = config_.vm_dispatch;
  options.vm_options.jit.compile_ns_per_byte = config_.jit_ns_per_byte;
  server_ = std::make_unique<net::MiniWebServer>(*fs_, options);
  server_->start();
}

WebServerBench::~WebServerBench() {
  if (server_ != nullptr) server_->stop();
}

void WebServerBench::make_file(const std::string& name, std::uint64_t bytes) {
  auto file = fs_->open(name, io::OpenMode::kTruncate);
  std::vector<std::byte> content(static_cast<std::size_t>(bytes));
  util::expected_sample_bytes(0, content);
  file.write(content);
  file.close();
}

std::vector<Table5Row> WebServerBench::run_table5() {
  // Paper order: 7501, 50607, 14063 bytes.
  const std::vector<std::pair<std::string, std::uint64_t>> files = {
      {"small.jpg", kSmall}, {"large.jpg", kLarge}, {"mid.jpg", kMid}};
  server_->clear_samples();
  server_->make_cold();
  net::HttpClient client(server_->port());
  std::size_t expected = 0;
  for (const auto& [name, bytes] : files) {
    const auto get = client.get("/" + name);
    util::check<util::ClioError>(get.status == 200, "web bench: GET failed");
    const auto post = client.post("/" + name, get.body);
    util::check<util::ClioError>(post.status == 201, "web bench: POST failed");
    expected += 2;
  }
  wait_for_samples(*server_, expected);
  const auto samples = server_->samples();
  std::vector<Table5Row> rows;
  for (std::size_t i = 0; i < files.size(); ++i) {
    Table5Row row;
    row.bytes = files[i].second;
    row.read_ms = samples[2 * i].file_ms;
    row.write_ms = samples[2 * i + 1].file_ms;
    rows.push_back(row);
  }
  return rows;
}

std::vector<Table6Row> WebServerBench::run_table6(std::size_t trials) {
  server_->clear_samples();
  server_->make_cold();
  net::HttpClient client(server_->port());
  for (std::size_t t = 0; t < trials; ++t) {
    const auto response = client.get("/mid.jpg");
    util::check<util::ClioError>(response.status == 200,
                                 "web bench: GET failed");
  }
  wait_for_samples(*server_, trials);
  const auto samples = server_->samples();
  std::vector<Table6Row> rows;
  for (std::size_t t = 0; t < trials; ++t) {
    rows.push_back(Table6Row{t + 1, samples[t].bytes, samples[t].file_ms});
  }
  return rows;
}

}  // namespace clio::core
