#include "core/webserver_benchmark.hpp"

#include "io/file_store.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace clio::core {
namespace {

/// Waits until the server has recorded `n` samples (workers record just
/// before transmitting, so a tiny window can remain after the client
/// returns).
void wait_for_samples(const net::MiniWebServer& server, std::size_t n) {
  for (int i = 0; i < 2000 && server.samples().size() < n; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  util::check<util::ClioError>(server.samples().size() >= n,
                               "web bench: server lost samples");
}

}  // namespace

WebServerBench::WebServerBench(WebBenchConfig config)
    : config_(std::move(config)) {
  util::check<util::ConfigError>(!config_.workdir.empty(),
                                 "WebServerBench: workdir required");
  std::filesystem::create_directories(config_.workdir);
  fs_ = std::make_unique<io::ManagedFileSystem>(
      std::make_unique<io::RealFileStore>(config_.workdir,
                                          /*idle_fd_cache=*/128),
      io::ManagedFsOptions{});
  make_file("small.jpg", kSmall);
  make_file("large.jpg", kLarge);
  make_file("mid.jpg", kMid);

  net::ServerOptions options;
  options.vm_dispatch = config_.vm_dispatch;
  options.vm_options.jit.compile_ns_per_byte = config_.jit_ns_per_byte;
  options.worker_threads = config_.worker_threads;
  options.fault_injector = config_.fault_injector;
  server_ = std::make_unique<net::MiniWebServer>(*fs_, options);
  server_->start();
}

WebServerBench::~WebServerBench() {
  if (server_ != nullptr) server_->stop();
}

void WebServerBench::make_file(const std::string& name, std::uint64_t bytes) {
  auto file = fs_->open(name, io::OpenMode::kTruncate);
  std::vector<std::byte> content(static_cast<std::size_t>(bytes));
  util::expected_sample_bytes(0, content);
  file.write(content);
  file.close();
}

std::vector<Table5Row> WebServerBench::run_table5() {
  // Paper order: 7501, 50607, 14063 bytes.
  const std::vector<std::pair<std::string, std::uint64_t>> files = {
      {"small.jpg", kSmall}, {"large.jpg", kLarge}, {"mid.jpg", kMid}};
  server_->clear_samples();
  server_->make_cold();
  net::HttpClient client(server_->port());
  std::size_t expected = 0;
  for (const auto& [name, bytes] : files) {
    const auto get = client.get("/" + name);
    util::check<util::ClioError>(get.status == 200, "web bench: GET failed");
    const auto post = client.post("/" + name, get.body);
    util::check<util::ClioError>(post.status == 201, "web bench: POST failed");
    expected += 2;
  }
  wait_for_samples(*server_, expected);
  const auto samples = server_->samples();
  std::vector<Table5Row> rows;
  for (std::size_t i = 0; i < files.size(); ++i) {
    Table5Row row;
    row.bytes = files[i].second;
    row.read_ms = samples[2 * i].file_ms;
    row.write_ms = samples[2 * i + 1].file_ms;
    rows.push_back(row);
  }
  return rows;
}

std::vector<ThroughputRow> WebServerBench::run_throughput(
    std::vector<ThroughputScenario> scenarios,
    std::size_t requests_per_connection, double post_fraction) {
  std::vector<ThroughputRow> rows;
  rows.reserve(scenarios.size());
  // Throughput scenarios read aggregate counters, not the per-request
  // sample log; recording it would put a lock + push on every request.
  // Re-enabled on every exit path — a later run_table5/6 on this bench
  // must not silently collect nothing.
  struct RecordSamplesGuard {
    net::MiniWebServer& server;
    ~RecordSamplesGuard() { server.set_record_samples(true); }
  } record_guard{*server_};
  server_->set_record_samples(false);
  std::uint64_t seed = 42;
  for (const ThroughputScenario& scenario : scenarios) {
    net::LoadGenOptions options;
    options.connections = scenario.connections;
    options.requests_per_connection = requests_per_connection;
    options.keep_alive = scenario.keep_alive;
    options.post_fraction = post_fraction;
    options.post_bytes = 2048;
    options.seed = seed++;
    options.files = {"small.jpg", "large.jpg", "mid.jpg"};
    const net::LoadReport report =
        net::LoadGenerator(options).run(server_->port());
    ThroughputRow row;
    row.connections = scenario.connections;
    row.keep_alive = scenario.keep_alive;
    row.requests_ok = report.ok;
    row.errors = report.errors;
    row.rejected_503 = report.rejected_503;
    row.requests_per_sec = report.requests_per_sec();
    row.mean_ms = report.mean_ms();
    row.p99_ms = report.quantile_ms(0.99);
    row.latency = report.latency.snapshot();
    rows.push_back(row);
  }
  return rows;
}

std::vector<Table6Row> WebServerBench::run_table6(std::size_t trials) {
  server_->clear_samples();
  server_->make_cold();
  net::HttpClient client(server_->port());
  for (std::size_t t = 0; t < trials; ++t) {
    const auto response = client.get("/mid.jpg");
    util::check<util::ClioError>(response.status == 200,
                                 "web bench: GET failed");
  }
  wait_for_samples(*server_, trials);
  const auto samples = server_->samples();
  std::vector<Table6Row> rows;
  for (std::size_t t = 0; t < trials; ++t) {
    rows.push_back(Table6Row{t + 1, samples[t].bytes, samples[t].file_ms});
  }
  return rows;
}

}  // namespace clio::core
