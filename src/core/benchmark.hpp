#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace clio::core {

/// A named experiment that can render its result as the paper's table or
/// figure series.  The bench/ binaries are thin wrappers over these.
class Benchmark {
 public:
  virtual ~Benchmark() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Runs the workload and prints the paper-style rows to `os`.
  virtual void run(std::ostream& os) = 0;
};

/// Global registry keyed by experiment id ("fig2", "table1", ...).
class BenchmarkRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Benchmark>()>;

  static BenchmarkRegistry& instance();

  void add(const std::string& id, Factory factory);
  [[nodiscard]] std::unique_ptr<Benchmark> create(const std::string& id) const;
  [[nodiscard]] std::vector<std::string> ids() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace clio::core
