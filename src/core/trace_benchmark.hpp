#pragma once

#include <filesystem>
#include <functional>

#include "apps/trace_capture.hpp"
#include "trace/replayer.hpp"

namespace clio::core {

/// Benchmark 2 (paper §3): trace-driven replay against a large sample file.
struct TraceBenchConfig {
  std::filesystem::path workdir;
  /// Size of the sample file the I/O is issued against.  The paper uses
  /// 1 GB; benches default smaller so full runs stay laptop-friendly
  /// (override with CLIO_SAMPLE_BYTES).
  std::uint64_t sample_bytes = 256ULL << 20;
  std::size_t pool_pages = 4096;      ///< 16 MiB buffer pool
  std::size_t page_size = 4096;
  bool cold_cache = true;             ///< drop caches before replay
};

/// Result of replaying one application's trace.
struct TraceBenchResult {
  trace::ReplayResult replay;
  double open_ms = 0.0;   ///< mean per op class, the Table 1/2 cells
  double close_ms = 0.0;
  double read_ms = 0.0;
  double write_ms = 0.0;
  double seek_ms = 0.0;
};

/// Environment for capture-then-replay benchmarks: owns the managed fs and
/// the sample file, mirrors the paper's setup ("our simulator reads each
/// trace file and performs the I/O operations on a local disk").
class TraceBenchEnv {
 public:
  explicit TraceBenchEnv(TraceBenchConfig config);

  /// Runs `produce_trace` (typically: execute one of the five applications
  /// under capture) and replays the captured trace against the sample file.
  TraceBenchResult capture_and_replay(
      const std::function<trace::TraceFile(apps::TraceCapturingFs&)>&
          produce_trace);

  /// Replays an externally supplied trace.
  TraceBenchResult replay(const trace::TraceFile& trace);

  [[nodiscard]] io::ManagedFileSystem& fs() { return *fs_; }
  [[nodiscard]] const TraceBenchConfig& config() const { return config_; }
  static constexpr const char* kSampleName = "sample.bin";

 private:
  TraceBenchConfig config_;
  std::unique_ptr<io::ManagedFileSystem> fs_;
};

/// Reads CLIO_SAMPLE_BYTES / CLIO_WORKDIR overrides from the environment.
[[nodiscard]] TraceBenchConfig default_trace_config(
    const std::filesystem::path& workdir);

}  // namespace clio::core
