#include "core/benchmark.hpp"

#include "util/error.hpp"

namespace clio::core {

BenchmarkRegistry& BenchmarkRegistry::instance() {
  static BenchmarkRegistry registry;
  return registry;
}

void BenchmarkRegistry::add(const std::string& id, Factory factory) {
  util::check<util::ConfigError>(!factories_.contains(id),
                                 "BenchmarkRegistry: duplicate id " + id);
  factories_.emplace(id, std::move(factory));
}

std::unique_ptr<Benchmark> BenchmarkRegistry::create(
    const std::string& id) const {
  const auto it = factories_.find(id);
  util::check<util::ConfigError>(it != factories_.end(),
                                 "BenchmarkRegistry: unknown id " + id);
  return it->second();
}

std::vector<std::string> BenchmarkRegistry::ids() const {
  std::vector<std::string> result;
  result.reserve(factories_.size());
  for (const auto& [id, _] : factories_) result.push_back(id);
  return result;
}

}  // namespace clio::core
