#pragma once

#include <filesystem>

#include "model/qcrd.hpp"
#include "sim/real_driver.hpp"
#include "sim/speedup.hpp"

namespace clio::core {

/// Benchmark 1 (paper §2): the behavioral-model-driven QCRD emulation.
struct QcrdRunConfig {
  /// Application timebase in seconds.  The paper's Figure 2 uses the full
  /// 180-second run; the benches default to a scaled-down run and report
  /// both measured values and model-predicted values at paper scale.
  double timebase_sec = 1.0;
  double paper_timebase_sec = 180.0;
  std::filesystem::path workdir;
};

/// One bar group of Figures 2/3.
struct QcrdBar {
  std::string label;     ///< "Application", "Program1", "Program2"
  double cpu_sec = 0.0;
  double io_sec = 0.0;

  [[nodiscard]] double cpu_pct() const {
    const double total = cpu_sec + io_sec;
    return total > 0 ? 100.0 * cpu_sec / total : 0.0;
  }
  [[nodiscard]] double io_pct() const { return 100.0 - cpu_pct(); }
};

struct QcrdFigures {
  std::vector<QcrdBar> measured;         ///< real execution at timebase_sec
  std::vector<QcrdBar> model_predicted;  ///< closed-form at paper scale
  double measured_disk_mb_s = 0.0;
  double wall_ms = 0.0;
};

/// Executes QCRD for real through the managed stack (Figures 2 and 3) and
/// evaluates the closed-form requirements (eqs. 3-5) at paper scale.
[[nodiscard]] QcrdFigures run_qcrd_figures(const QcrdRunConfig& config);

/// Figure 4 series: speedup vs number of disks, via the DES.
[[nodiscard]] std::vector<sim::SpeedupPoint> run_qcrd_disk_sweep(
    const std::vector<std::size_t>& disks = {2, 4, 8, 16, 32},
    double timebase_sec = 1.0);

/// Figure 5 series: speedup vs number of CPUs, via the DES.
[[nodiscard]] std::vector<sim::SpeedupPoint> run_qcrd_cpu_sweep(
    const std::vector<std::size_t>& cpus = {2, 4, 8, 16, 32},
    double timebase_sec = 1.0);

}  // namespace clio::core
