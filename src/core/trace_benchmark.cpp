#include "core/trace_benchmark.hpp"

#include <cstdlib>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace clio::core {

TraceBenchEnv::TraceBenchEnv(TraceBenchConfig config)
    : config_(std::move(config)) {
  util::check<util::ConfigError>(!config_.workdir.empty(),
                                 "TraceBenchEnv: workdir required");
  std::filesystem::create_directories(config_.workdir);
  io::ManagedFsOptions options;
  options.page_size = config_.page_size;
  options.pool_pages = config_.pool_pages;
  fs_ = std::make_unique<io::ManagedFileSystem>(
      std::make_unique<io::RealFileStore>(config_.workdir), options);
  // The large sample file all replayed I/O is issued against.
  if (!fs_->exists(kSampleName) ||
      util::file_size(config_.workdir / kSampleName) != config_.sample_bytes) {
    util::create_sample_file(config_.workdir / kSampleName,
                             config_.sample_bytes);
  }
}

TraceBenchResult TraceBenchEnv::capture_and_replay(
    const std::function<trace::TraceFile(apps::TraceCapturingFs&)>&
        produce_trace) {
  apps::TraceCapturingFs capture(*fs_, kSampleName);
  const auto trace = produce_trace(capture);
  return replay(trace);
}

TraceBenchResult TraceBenchEnv::replay(const trace::TraceFile& trace) {
  if (config_.cold_cache) fs_->drop_caches();
  trace::TraceReplayer replayer(*fs_);
  TraceBenchResult result;
  result.replay = replayer.replay(trace);
  result.open_ms = result.replay.op(trace::TraceOp::kOpen).mean();
  result.close_ms = result.replay.op(trace::TraceOp::kClose).mean();
  result.read_ms = result.replay.op(trace::TraceOp::kRead).mean();
  result.write_ms = result.replay.op(trace::TraceOp::kWrite).mean();
  result.seek_ms = result.replay.op(trace::TraceOp::kSeek).mean();
  return result;
}

TraceBenchConfig default_trace_config(const std::filesystem::path& workdir) {
  TraceBenchConfig config;
  config.workdir = workdir;
  if (const char* env = std::getenv("CLIO_SAMPLE_BYTES"); env != nullptr) {
    config.sample_bytes = util::parse_bytes(env);
  }
  return config;
}

}  // namespace clio::core
