#include "core/behavioral_benchmark.hpp"

#include "util/error.hpp"

namespace clio::core {

QcrdFigures run_qcrd_figures(const QcrdRunConfig& config) {
  util::check<util::ConfigError>(!config.workdir.empty(),
                                 "run_qcrd_figures: workdir required");
  const auto app = model::make_qcrd();

  QcrdFigures figures;

  // Model-predicted bars at paper scale (closed-form eqs. 3-5).
  const auto reqs = app.per_program_requirements(config.paper_timebase_sec);
  QcrdBar model_app{"Application", 0.0, 0.0};
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    QcrdBar bar;
    bar.label = app.programs()[i].name();
    bar.cpu_sec = reqs[i].cpu;
    bar.io_sec = reqs[i].disk;
    model_app.cpu_sec += reqs[i].cpu;
    model_app.io_sec += reqs[i].disk;
    figures.model_predicted.push_back(bar);
  }
  figures.model_predicted.insert(figures.model_predicted.begin(), model_app);

  // Measured bars: execute the model for real.
  sim::RealDriverOptions driver_options;
  driver_options.workdir = config.workdir;
  sim::RealExecutionDriver driver(driver_options);
  const auto run = driver.run(app, config.timebase_sec);

  QcrdBar measured_app{"Application", 0.0, 0.0};
  for (const auto& program : run.programs) {
    QcrdBar bar;
    bar.label = program.name;
    bar.cpu_sec = program.cpu_ms / 1e3;
    bar.io_sec = program.io_ms / 1e3;
    measured_app.cpu_sec += bar.cpu_sec;
    measured_app.io_sec += bar.io_sec;
    figures.measured.push_back(bar);
  }
  figures.measured.insert(figures.measured.begin(), measured_app);
  figures.measured_disk_mb_s = run.disk_mb_s;
  figures.wall_ms = run.wall_ms;
  return figures;
}

std::vector<sim::SpeedupPoint> run_qcrd_disk_sweep(
    const std::vector<std::size_t>& disks, double timebase_sec) {
  sim::MachineConfig machine;
  machine.cpus = 2;  // one per program; isolates the disk dimension
  return sim::sweep_disks(model::make_qcrd(), machine, disks, timebase_sec);
}

std::vector<sim::SpeedupPoint> run_qcrd_cpu_sweep(
    const std::vector<std::size_t>& cpus, double timebase_sec) {
  sim::MachineConfig machine;
  machine.disks = 1;
  return sim::sweep_cpus(model::make_qcrd(), machine, cpus, timebase_sec);
}

}  // namespace clio::core
