#pragma once

#include <cstddef>
#include <span>

namespace clio::net {

/// Abstract bidirectional byte channel — the seam the serving layer is
/// written against.  `Socket` is the real TCP implementation; `FaultChannel`
/// decorates any Channel with seeded fault injection (the net-layer mirror
/// of io::FaultStore), so every worker-pool code path can be aimed at
/// deterministically without a flaky peer.
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  virtual ~Channel() = default;

  /// Sends the whole buffer (throws util::IoError on failure).
  virtual void send_all(const void* data, std::size_t n) = 0;

  /// Receives up to n bytes; returns 0 at orderly shutdown.
  [[nodiscard]] virtual std::size_t recv_some(void* out, std::size_t n) = 0;

  virtual void close() = 0;
  [[nodiscard]] virtual bool valid() const = 0;

  /// Breaks the connection without releasing the underlying resource:
  /// further sends fail, receives report orderly shutdown, but the
  /// descriptor (and therefore its number) stays owned until close().
  /// Decorators that sever a connection mid-use must call this, not
  /// close() — the owner may still have the descriptor registered
  /// elsewhere (e.g. the server's active-connection set), and closing
  /// would let the OS reuse the number out from under that bookkeeping.
  virtual void shutdown() { close(); }

  /// Sends head then body.  The default forwards to send_all twice (so a
  /// decorator's per-send fault decisions apply to each part); Socket
  /// gathers both into one writev, sparing the serving hot path a
  /// header+body concatenation copy per response.
  virtual void send_parts(std::span<const std::byte> head,
                          std::span<const std::byte> body) {
    send_all(head.data(), head.size());
    if (!body.empty()) send_all(body.data(), body.size());
  }

  /// Receives exactly n bytes; returns false if the peer closed early.
  [[nodiscard]] bool recv_exact(void* out, std::size_t n) {
    auto* p = static_cast<char*>(out);
    std::size_t got = 0;
    while (got < n) {
      const std::size_t r = recv_some(p + got, n - got);
      if (r == 0) return false;
      got += r;
    }
    return true;
  }

 protected:
  // Sockets are movable; the base carries no state, so moves are trivial.
  Channel(Channel&&) = default;
  Channel& operator=(Channel&&) = default;
};

}  // namespace clio::net
