#pragma once

#include <cstddef>
#include <span>

namespace clio::net {

/// Abstract bidirectional byte channel — the seam the serving layer is
/// written against.  `Socket` is the real TCP implementation; `FaultChannel`
/// decorates any Channel with seeded fault injection (the net-layer mirror
/// of io::FaultStore), so every worker-pool code path can be aimed at
/// deterministically without a flaky peer.
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  virtual ~Channel() = default;

  /// Sends the whole buffer (throws util::IoError on failure).
  virtual void send_all(const void* data, std::size_t n) = 0;

  /// Receives up to n bytes; returns 0 at orderly shutdown.
  [[nodiscard]] virtual std::size_t recv_some(void* out, std::size_t n) = 0;

  virtual void close() = 0;
  [[nodiscard]] virtual bool valid() const = 0;

  /// Breaks the connection without releasing the underlying resource:
  /// further sends fail, receives report orderly shutdown, but the
  /// descriptor (and therefore its number) stays owned until close().
  /// Decorators that sever a connection mid-use must call this, not
  /// close() — the owner may still have the descriptor registered
  /// elsewhere (e.g. the server's active-connection set), and closing
  /// would let the OS reuse the number out from under that bookkeeping.
  virtual void shutdown() { close(); }

  /// Sends head then body.  The default forwards to send_all twice (so a
  /// decorator's per-send fault decisions apply to each part); Socket
  /// gathers both into one writev, sparing the serving hot path a
  /// header+body concatenation copy per response.
  virtual void send_parts(std::span<const std::byte> head,
                          std::span<const std::byte> body) {
    send_all(head.data(), head.size());
    if (!body.empty()) send_all(body.data(), body.size());
  }

  /// Non-blocking receive: > 0 bytes read, 0 orderly shutdown, -1 no data
  /// available right now.  The event loop's read path — it must never park
  /// its thread in recv.  The default forwards to recv_some (correct for
  /// channels whose recv never blocks); Socket issues one MSG_DONTWAIT
  /// recv.
  [[nodiscard]] virtual std::ptrdiff_t recv_nonblock(void* out,
                                                     std::size_t n) {
    return static_cast<std::ptrdiff_t>(recv_some(out, n));
  }

  /// Sends head then each part of the body in order — the zero-copy
  /// response path hands the buffer pool's pages straight to the socket as
  /// one gather, no intermediate body copy.  The default loops send_all;
  /// Socket packs everything into sendmsg iovec batches.  FaultChannel
  /// overrides this with ONE fault decision over the total payload, so a
  /// response torn into N pages keeps per-response (not per-page) injection
  /// rates.
  virtual void send_gather(std::span<const std::byte> head,
                           std::span<const std::span<const std::byte>> parts) {
    if (!head.empty()) send_all(head.data(), head.size());
    for (const auto part : parts) {
      if (!part.empty()) send_all(part.data(), part.size());
    }
  }

  /// Receives exactly n bytes; returns false if the peer closed early.
  [[nodiscard]] bool recv_exact(void* out, std::size_t n) {
    auto* p = static_cast<char*>(out);
    std::size_t got = 0;
    while (got < n) {
      const std::size_t r = recv_some(p + got, n - got);
      if (r == 0) return false;
      got += r;
    }
    return true;
  }

 protected:
  // Sockets are movable; the base carries no state, so moves are trivial.
  Channel(Channel&&) = default;
  Channel& operator=(Channel&&) = default;
};

}  // namespace clio::net
