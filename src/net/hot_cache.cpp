#include "net/hot_cache.hpp"

namespace clio::net {

std::shared_ptr<const std::string> HotObjectCache::lookup(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.lookups++;
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  stats_.hits++;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.body;
}

void HotObjectCache::insert(const std::string& name,
                            std::shared_ptr<const std::string> body) {
  if (max_entries_ == 0 || body == nullptr ||
      body->size() > max_object_bytes_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    it->second.body = std::move(body);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(name);
  entries_.emplace(name, Entry{std::move(body), lru_.begin()});
  stats_.insertions++;
  while (entries_.size() > max_entries_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    stats_.evictions++;
  }
}

void HotObjectCache::invalidate_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.invalidations++;
  entries_.clear();
  lru_.clear();
}

HotCacheStats HotObjectCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace clio::net
