#include "net/socket.hpp"

#include <arpa/inet.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/sendfile.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace clio::net {

using util::check;
using util::IoError;

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::send_all(const void* data, std::size_t n) {
  check<IoError>(valid(), "Socket: send on closed socket");
  const auto* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0 && errno == EINTR) continue;
    check<IoError>(r > 0, std::string("Socket: send failed: ") +
                              std::strerror(errno));
    sent += static_cast<std::size_t>(r);
  }
}

void Socket::send_parts(std::span<const std::byte> head,
                        std::span<const std::byte> body) {
  check<IoError>(valid(), "Socket: send on closed socket");
  std::size_t sent = 0;
  const std::size_t total = head.size() + body.size();
  while (sent < total) {
    iovec iov[2];
    int iovcnt = 0;
    if (sent < head.size()) {
      iov[iovcnt++] = {const_cast<std::byte*>(head.data()) + sent,
                       head.size() - sent};
      if (!body.empty()) {
        iov[iovcnt++] = {const_cast<std::byte*>(body.data()), body.size()};
      }
    } else {
      const std::size_t into_body = sent - head.size();
      iov[iovcnt++] = {const_cast<std::byte*>(body.data()) + into_body,
                       body.size() - into_body};
    }
    // MSG_NOSIGNAL (as in send_all): a dead peer surfaces as EPIPE,
    // not a process-killing SIGPIPE.
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t r = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (r < 0 && errno == EINTR) continue;
    check<IoError>(r > 0, std::string("Socket: sendmsg failed: ") +
                              std::strerror(errno));
    sent += static_cast<std::size_t>(r);
  }
}

void Socket::send_gather(std::span<const std::byte> head,
                         std::span<const std::span<const std::byte>> parts) {
  check<IoError>(valid(), "Socket: send on closed socket");
  std::vector<iovec> iov;
  iov.reserve(parts.size() + 1);
  if (!head.empty()) {
    iov.push_back({const_cast<std::byte*>(head.data()), head.size()});
  }
  for (const auto part : parts) {
    if (!part.empty()) {
      iov.push_back({const_cast<std::byte*>(part.data()), part.size()});
    }
  }
  // Kernels cap one sendmsg at IOV_MAX iovecs; batch and advance across
  // partial sends by trimming the front of the array.
  std::size_t at = 0;
  while (at < iov.size()) {
    const std::size_t batch =
        std::min<std::size_t>(iov.size() - at, IOV_MAX);
    msghdr msg{};
    msg.msg_iov = iov.data() + at;
    msg.msg_iovlen = batch;
    const ssize_t r = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (r < 0 && errno == EINTR) continue;
    check<IoError>(r > 0, std::string("Socket: sendmsg failed: ") +
                              std::strerror(errno));
    std::size_t left = static_cast<std::size_t>(r);
    while (left > 0 && at < iov.size()) {
      if (left >= iov[at].iov_len) {
        left -= iov[at].iov_len;
        ++at;
      } else {
        iov[at].iov_base = static_cast<char*>(iov[at].iov_base) + left;
        iov[at].iov_len -= left;
        left = 0;
      }
    }
  }
}

std::ptrdiff_t Socket::recv_nonblock(void* out, std::size_t n) {
  check<IoError>(valid(), "Socket: recv on closed socket");
  while (true) {
    const ssize_t r = ::recv(fd_, out, n, MSG_DONTWAIT);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return -1;
    check<IoError>(r >= 0, std::string("Socket: recv failed: ") +
                               std::strerror(errno));
    return static_cast<std::ptrdiff_t>(r);
  }
}

std::size_t Socket::recv_some(void* out, std::size_t n) {
  check<IoError>(valid(), "Socket: recv on closed socket");
  while (true) {
    const ssize_t r = ::recv(fd_, out, n, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired: the peer is stalling, not gone.  Typed so the
      // server can answer 408 (mid-request) or close cleanly (idle).
      throw util::TimeoutError("Socket: recv timed out");
    }
    check<IoError>(r >= 0, std::string("Socket: recv failed: ") +
                               std::strerror(errno));
    return static_cast<std::size_t>(r);
  }
}

void shutdown_receives(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

void shutdown_connection(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void set_recv_timeout(int fd, int timeout_ms) {
  if (fd < 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool try_send_nonblock(int fd, std::string_view data) {
  if (fd < 0) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t r = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;  // would block or dead peer: give up
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

bool sendfile_all(int socket_fd, int file_fd, std::uint64_t offset,
                  std::size_t count) {
  off_t off = static_cast<off_t>(offset);
  std::size_t left = count;
  while (left > 0) {
    const ssize_t r = ::sendfile(socket_fd, file_fd, &off, left);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EINVAL || errno == ENOSYS) && left == count) {
      return false;  // this pairing can't sendfile; nothing sent, fall back
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_SNDTIMEO expired on the blocking socket: the peer stopped
      // reading mid-response — same IoError a timed-out send_all throws.
      throw IoError("Socket: sendfile timed out");
    }
    check<IoError>(r > 0, std::string("Socket: sendfile failed: ") +
                              std::strerror(errno));
    left -= static_cast<std::size_t>(r);
  }
  return true;
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  check<IoError>(fd >= 0, "TcpListener: socket() failed");
  socket_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  check<IoError>(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 std::string("TcpListener: bind failed: ") +
                     std::strerror(errno));
  // A deep backlog: the 10k mostly-idle soak opens thousands of
  // connections back-to-back, faster than the 20 ms accept poll can be
  // unlucky — the kernel clamps this to net.core.somaxconn anyway.
  check<IoError>(::listen(fd, 1024) == 0, "TcpListener: listen failed");

  socklen_t len = sizeof(addr);
  check<IoError>(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                               &len) == 0,
                 "TcpListener: getsockname failed");
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::accept(int timeout_ms) {
  check<IoError>(socket_.valid(), "TcpListener: accept on closed listener");
  pollfd pfd{socket_.fd(), POLLIN, 0};
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r == 0) return Socket{};
  check<IoError>(r > 0, "TcpListener: poll failed");
  const int client = ::accept(socket_.fd(), nullptr, nullptr);
  if (client < 0 && (errno == EAGAIN || errno == ECONNABORTED)) {
    return Socket{};
  }
  check<IoError>(client >= 0, std::string("TcpListener: accept failed: ") +
                                  std::strerror(errno));
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Bound blocked sends: a peer that stops reading (malicious or gone)
  // must not park a server worker in send() forever — after the timeout
  // the send fails with EAGAIN, surfaces as IoError, and the connection
  // is torn down.  This is also what keeps stop() joinable against
  // non-reading clients (its SHUT_RD sweep cannot interrupt a send).
  timeval send_timeout{/*tv_sec=*/5, /*tv_usec=*/0};
  ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  // Mirror it on the receive side: a peer that opens a connection and then
  // stalls mid-request must not park a worker in recv() forever.  The
  // timeout surfaces as util::TimeoutError from recv_some; the server
  // answers 408 or, between requests, treats it as an idle disconnect.
  timeval recv_timeout{/*tv_sec=*/5, /*tv_usec=*/0};
  ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &recv_timeout,
               sizeof(recv_timeout));
  return Socket(client);
}

void TcpListener::close() { socket_.close(); }

Socket connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  check<IoError>(fd >= 0, "connect_loopback: socket() failed");
  Socket socket(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  check<util::ConnectError>(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                                      sizeof(addr)) == 0,
                            std::string("connect_loopback: connect failed: ") +
                                std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

}  // namespace clio::net
