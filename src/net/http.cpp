#include "net/http.hpp"

#include <charconv>

#include "util/error.hpp"
#include "util/log.hpp"

namespace clio::net {
namespace {

using util::cat;
using util::check;
using util::ParseError;

/// Reads until "\r\n\r\n"; returns header block + any body prefix already
/// consumed.  Empty optional on a clean immediate close.
std::optional<std::pair<std::string, std::string>> read_head(
    const Socket& socket) {
  std::string data;
  char buf[4096];
  while (true) {
    const auto pos = data.find("\r\n\r\n");
    if (pos != std::string::npos) {
      return std::make_pair(data.substr(0, pos), data.substr(pos + 4));
    }
    check<ParseError>(data.size() < (1u << 20), "http: headers too large");
    const std::size_t n = socket.recv_some(buf, sizeof(buf));
    if (n == 0) {
      if (data.empty()) return std::nullopt;
      throw ParseError("http: connection closed mid-headers");
    }
    data.append(buf, n);
  }
}

std::size_t content_length_of(const std::string& head) {
  // Case-insensitive scan for the Content-Length header.
  std::size_t at = 0;
  while (at < head.size()) {
    auto eol = head.find("\r\n", at);
    if (eol == std::string::npos) eol = head.size();
    const std::string_view line(head.data() + at, eol - at);
    constexpr std::string_view kName = "content-length:";
    if (line.size() > kName.size()) {
      bool match = true;
      for (std::size_t i = 0; i < kName.size(); ++i) {
        const char c = line[i];
        const char lower =
            (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
        if (lower != kName[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        std::size_t value = 0;
        std::size_t start = kName.size();
        while (start < line.size() && line[start] == ' ') ++start;
        const auto [ptr, ec] = std::from_chars(
            line.data() + start, line.data() + line.size(), value);
        check<ParseError>(ec == std::errc{} && ptr != line.data() + start,
                          "http: bad Content-Length");
        return value;
      }
    }
    at = eol + 2;
  }
  return 0;
}

}  // namespace

std::string HttpRequest::file_name() const {
  if (!path.empty() && path.front() == '/') return path.substr(1);
  return path;
}

std::optional<HttpRequest> read_request(const Socket& socket) {
  auto head = read_head(socket);
  if (!head.has_value()) return std::nullopt;
  auto& [header_block, body_prefix] = *head;

  // Start line: METHOD SP PATH SP VERSION.
  const auto line_end = header_block.find("\r\n");
  const std::string start_line = header_block.substr(
      0, line_end == std::string::npos ? header_block.size() : line_end);
  const auto sp1 = start_line.find(' ');
  check<ParseError>(sp1 != std::string::npos, "http: bad start line");
  const auto sp2 = start_line.find(' ', sp1 + 1);
  check<ParseError>(sp2 != std::string::npos, "http: bad start line");

  HttpRequest request;
  request.method = start_line.substr(0, sp1);
  request.path = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  check<ParseError>(!request.path.empty() && request.path.front() == '/',
                    "http: path must start with '/'");

  const std::size_t length = content_length_of(header_block);
  check<ParseError>(body_prefix.size() <= length,
                    "http: body exceeds Content-Length");
  request.body = std::move(body_prefix);
  const std::size_t have = request.body.size();
  request.body.resize(length);
  if (length > have) {
    check<ParseError>(
        socket.recv_exact(request.body.data() + have, length - have),
        "http: connection closed mid-body");
  }
  return request;
}

void send_request(const Socket& socket, const HttpRequest& request) {
  std::string wire = cat(request.method, " ", request.path, " HTTP/1.0\r\n",
                         "Content-Length: ", request.body.size(),
                         "\r\nConnection: close\r\n\r\n", request.body);
  socket.send_all(wire.data(), wire.size());
}

HttpResponse read_response(const Socket& socket) {
  auto head = read_head(socket);
  check<ParseError>(head.has_value(), "http: empty response");
  auto& [header_block, body_prefix] = *head;
  // Status line: HTTP/1.0 NNN Reason.
  const auto sp1 = header_block.find(' ');
  check<ParseError>(sp1 != std::string::npos, "http: bad status line");
  HttpResponse response;
  response.status = std::stoi(header_block.substr(sp1 + 1, 3));

  const std::size_t length = content_length_of(header_block);
  check<ParseError>(body_prefix.size() <= length,
                    "http: body exceeds Content-Length");
  response.body = std::move(body_prefix);
  const std::size_t have = response.body.size();
  response.body.resize(length);
  if (length > have) {
    check<ParseError>(
        socket.recv_exact(response.body.data() + have, length - have),
        "http: connection closed mid-body");
  }
  return response;
}

void send_response(const Socket& socket, int status, std::string_view body) {
  std::string wire =
      cat("HTTP/1.0 ", status, " ", reason_phrase(status),
          "\r\nContent-Length: ", body.size(),
          "\r\nContent-Type: application/octet-stream\r\nConnection: "
          "close\r\n\r\n",
          body);
  socket.send_all(wire.data(), wire.size());
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

}  // namespace clio::net
