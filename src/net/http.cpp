#include "net/http.hpp"

#include <charconv>

#include "util/error.hpp"
#include "util/log.hpp"

namespace clio::net {
namespace {

using util::cat;
using util::check;
using util::ParseError;

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

/// The two headers the serving layer cares about, pulled out in one pass
/// over the header block (this parse runs once per request on both sides
/// of every exchange).
struct ParsedHeaders {
  std::size_t content_length = 0;
  /// Connection persistence: the version token set the default (HTTP/1.1
  /// is persistent, anything else is not), an explicit header overrode it.
  bool keep_alive = false;
};

ParsedHeaders parse_headers(std::string_view head, std::string_view version) {
  ParsedHeaders parsed;
  parsed.keep_alive = version == "HTTP/1.1";
  std::size_t at = 0;
  while (at < head.size()) {
    auto eol = head.find("\r\n", at);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(at, eol - at);
    at = eol + 2;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    while (!value.empty() && value.back() == ' ') value.remove_suffix(1);
    if (iequals(name, "content-length")) {
      const auto [ptr, ec] = std::from_chars(
          value.data(), value.data() + value.size(), parsed.content_length);
      check<ParseError>(ec == std::errc{} && ptr == value.data() + value.size(),
                        "http: bad Content-Length");
      check<ParseError>(parsed.content_length <= kMaxBodyBytes,
                        "http: body too large");
    } else if (iequals(name, "connection")) {
      if (iequals(value, "close")) parsed.keep_alive = false;
      if (iequals(value, "keep-alive")) parsed.keep_alive = true;
    }
  }
  return parsed;
}

/// Parses METHOD SP PATH SP VERSION plus the header block out of `head`
/// (the bytes before "\r\n\r\n").  Shared by the blocking read_request and
/// the event loop's poll_request, so both sides reject identical inputs.
/// Returns the request sans body; `content_length` reports how many body
/// bytes must follow.
HttpRequest parse_request_head(std::string_view head,
                               std::size_t* content_length) {
  const auto line_end = head.find("\r\n");
  const std::string_view start_line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  const auto sp1 = start_line.find(' ');
  check<ParseError>(sp1 != std::string_view::npos, "http: bad start line");
  const auto sp2 = start_line.find(' ', sp1 + 1);
  check<ParseError>(sp2 != std::string_view::npos, "http: bad start line");

  HttpRequest request;
  request.method = std::string(start_line.substr(0, sp1));
  request.path = std::string(start_line.substr(sp1 + 1, sp2 - sp1 - 1));
  check<ParseError>(!request.path.empty() && request.path.front() == '/',
                    "http: path must start with '/'");
  const std::string_view version = start_line.substr(sp2 + 1);
  check<ParseError>(version.substr(0, 5) == "HTTP/",
                    "http: bad protocol version");
  const ParsedHeaders headers = parse_headers(head, version);
  request.keep_alive = headers.keep_alive;
  *content_length = headers.content_length;
  return request;
}

}  // namespace

std::string HttpRequest::file_name() const {
  if (!path.empty() && path.front() == '/') return path.substr(1);
  return path;
}

std::optional<std::string> HttpReader::read_head() {
  char buf[4096];
  while (true) {
    const auto pos = buffer_.find("\r\n\r\n");
    if (pos != std::string::npos) {
      std::string head = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 4);
      return head;
    }
    check<ParseError>(buffer_.size() < kMaxHeaderBytes,
                      "http: headers too large");
    const std::size_t n = channel_->recv_some(buf, sizeof(buf));
    if (n == 0) {
      if (buffer_.empty()) return std::nullopt;
      throw util::PeerClosedError("http: connection closed mid-headers");
    }
    buffer_.append(buf, n);
  }
}

std::string HttpReader::take_body(std::size_t length) {
  std::string body;
  const std::size_t from_buffer = std::min(length, buffer_.size());
  body = buffer_.substr(0, from_buffer);
  buffer_.erase(0, from_buffer);
  body.resize(length);
  if (length > from_buffer) {
    check<util::PeerClosedError>(
        channel_->recv_exact(body.data() + from_buffer, length - from_buffer),
        "http: connection closed mid-body");
  }
  return body;
}

std::optional<HttpRequest> HttpReader::read_request() {
  std::optional<std::string> head;
  try {
    head = read_head();
  } catch (const util::TimeoutError&) {
    // A receive timeout at a message boundary is an idle keep-alive
    // connection aging out: a non-event, reported exactly like a clean
    // close.  Mid-message (bytes already buffered) it is the peer stalling
    // and propagates so the server can answer 408.
    if (buffer_.empty()) return std::nullopt;
    throw;
  }
  if (!head.has_value()) return std::nullopt;

  std::size_t content_length = 0;
  HttpRequest request = parse_request_head(*head, &content_length);
  request.body = take_body(content_length);
  return request;
}

std::optional<HttpRequest> HttpReader::poll_request() {
  const auto pos = buffer_.find("\r\n\r\n");
  if (pos == std::string::npos) {
    check<ParseError>(buffer_.size() < kMaxHeaderBytes,
                      "http: headers too large");
    return std::nullopt;
  }
  std::size_t content_length = 0;
  HttpRequest request = parse_request_head(
      std::string_view(buffer_.data(), pos), &content_length);
  const std::size_t body_at = pos + 4;
  if (buffer_.size() - body_at < content_length) {
    return std::nullopt;  // head complete, body still arriving
  }
  request.body = buffer_.substr(body_at, content_length);
  buffer_.erase(0, body_at + content_length);
  return request;
}

HttpResponse HttpReader::read_response() {
  auto head = read_head();
  check<ParseError>(head.has_value(), "http: empty response");

  // Status line: HTTP/1.x NNN Reason.
  const auto line_end = head->find("\r\n");
  const std::string_view status_line =
      std::string_view(*head).substr(
          0, line_end == std::string::npos ? head->size() : line_end);
  const auto sp1 = status_line.find(' ');
  check<ParseError>(sp1 != std::string_view::npos, "http: bad status line");
  const std::string_view code = status_line.substr(sp1 + 1, 3);
  HttpResponse response;
  const auto [ptr, ec] =
      std::from_chars(code.data(), code.data() + code.size(), response.status);
  check<ParseError>(ec == std::errc{} && ptr == code.data() + code.size(),
                    "http: bad status code");
  const ParsedHeaders headers =
      parse_headers(*head, status_line.substr(0, sp1));
  response.keep_alive = headers.keep_alive;
  response.body = take_body(headers.content_length);
  return response;
}

std::optional<HttpRequest> read_request(Channel& channel) {
  HttpReader reader(channel);
  return reader.read_request();
}

HttpResponse read_response(Channel& channel) {
  HttpReader reader(channel);
  return reader.read_response();
}

void send_request(Channel& channel, const HttpRequest& request) {
  std::string wire =
      cat(request.method, " ", request.path,
          request.keep_alive ? " HTTP/1.1\r\n" : " HTTP/1.0\r\n",
          "Content-Length: ", request.body.size(), "\r\nConnection: ",
          request.keep_alive ? "keep-alive" : "close", "\r\n\r\n",
          request.body);
  channel.send_all(wire.data(), wire.size());
}

void send_response(Channel& channel, int status, std::string_view body,
                   bool keep_alive, std::string_view extra_headers) {
  // Headers and body go out as one gathered send: no concatenation copy
  // of the payload on the serving hot path.
  std::string head =
      cat("HTTP/1.1 ", status, " ", reason_phrase(status),
          "\r\nContent-Length: ", body.size(),
          "\r\nContent-Type: application/octet-stream\r\nConnection: ",
          keep_alive ? "keep-alive" : "close", "\r\n", extra_headers, "\r\n");
  channel.send_parts(
      std::as_bytes(std::span<const char>(head.data(), head.size())),
      std::as_bytes(std::span<const char>(body.data(), body.size())));
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

}  // namespace clio::net
