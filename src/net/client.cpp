#include "net/client.hpp"

#include <mutex>
#include <thread>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace clio::net {

void HttpClient::disconnect() {
  reader_.reset();
  socket_.close();
}

ClientResult HttpClient::round_trip(HttpRequest request) {
  util::Stopwatch watch;
  request.keep_alive = keep_alive_;
  ClientResult result;
  if (!keep_alive_) {
    Socket socket = connect_loopback(port_);
    send_request(socket, request);
    const HttpResponse response = read_response(socket);
    result.status = response.status;
    result.body = response.body;
  } else {
    if (!socket_.valid()) {
      socket_ = connect_loopback(port_);
      reader_.emplace(socket_);
    }
    HttpResponse response;
    try {
      send_request(socket_, request);
      response = reader_->read_response();
    } catch (const std::exception&) {
      // The server may have closed the idle connection; surface the error
      // after dropping state so the next call reconnects cleanly.
      disconnect();
      throw;
    }
    if (!response.keep_alive) disconnect();
    result.status = response.status;
    result.body = std::move(response.body);
  }
  result.latency_ms = watch.elapsed_ms();
  return result;
}

ClientResult HttpClient::get(const std::string& path) {
  HttpRequest request;
  request.method = "GET";
  request.path = path;
  return round_trip(std::move(request));
}

ClientResult HttpClient::post(const std::string& path, std::string body) {
  HttpRequest request;
  request.method = "POST";
  request.path = path;
  request.body = std::move(body);
  return round_trip(std::move(request));
}

LoadResult run_get_load(std::uint16_t port,
                        const std::vector<std::string>& files,
                        std::size_t clients,
                        std::size_t requests_per_client, std::uint64_t seed) {
  util::check<util::ConfigError>(!files.empty(),
                                 "run_get_load: need at least one file");
  util::check<util::ConfigError>(clients >= 1,
                                 "run_get_load: need at least one client");
  LoadResult result;
  std::mutex mutex;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      util::Rng rng(seed + c * 977);
      util::ZipfDistribution zipf(files.size(), 1.0);
      HttpClient client(port);
      std::vector<double> local_latencies;
      std::uint64_t local_bytes = 0;
      std::size_t local_errors = 0;
      for (std::size_t r = 0; r < requests_per_client; ++r) {
        const auto& file = files[zipf(rng)];
        try {
          const auto response = client.get("/" + file);
          if (response.status == 200) {
            local_latencies.push_back(response.latency_ms);
            local_bytes += response.body.size();
          } else {
            ++local_errors;
          }
        } catch (const std::exception&) {
          ++local_errors;
        }
      }
      std::lock_guard<std::mutex> lock(mutex);
      result.latencies_ms.insert(result.latencies_ms.end(),
                                 local_latencies.begin(),
                                 local_latencies.end());
      result.bytes_received += local_bytes;
      result.errors += local_errors;
    });
  }
  for (auto& t : threads) t.join();
  return result;
}

}  // namespace clio::net
