#include "net/load_gen.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>

#include "net/http.hpp"
#include "net/socket.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace clio::net {

LoadGenerator::LoadGenerator(LoadGenOptions options)
    : options_(std::move(options)) {
  util::check<util::ConfigError>(options_.connections >= 1,
                                 "LoadGenerator: need >= 1 connection");
  util::check<util::ConfigError>(
      !options_.files.empty() || options_.post_fraction >= 1.0,
      "LoadGenerator: need GET targets unless the mix is all-POST");
  util::check<util::ConfigError>(
      options_.post_fraction >= 0.0 && options_.post_fraction <= 1.0,
      "LoadGenerator: post_fraction must be in [0, 1]");
  util::check<util::ConfigError>(options_.offered_rps >= 0.0,
                                 "LoadGenerator: offered_rps must be >= 0");
}

LoadReport LoadGenerator::run(std::uint16_t port) const {
  LoadReport report;
  std::mutex merge_mutex;

  // Start barrier so the measured window covers concurrent load, not
  // thread spawn skew (the micro_bufferpool idiom).
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};

  // GET request lines never vary within a run: serialize them once and
  // send raw bytes per request instead of re-assembling the wire.
  std::vector<std::string> get_wires;
  get_wires.reserve(options_.files.size());
  for (const std::string& file : options_.files) {
    get_wires.push_back(
        "GET /" + file +
        (options_.keep_alive
             ? " HTTP/1.1\r\nContent-Length: 0\r\nConnection: keep-alive"
             : " HTTP/1.0\r\nContent-Length: 0\r\nConnection: close") +
        "\r\n\r\n");
  }

  // Open-loop schedule: the run's offered rate split evenly across the
  // connections, each sending at fixed absolute instants with a per-thread
  // stagger so arrivals interleave instead of bunching.
  const bool open_loop = options_.offered_rps > 0.0;
  const auto interval =
      open_loop ? std::chrono::nanoseconds(static_cast<std::int64_t>(
                      1e9 * static_cast<double>(options_.connections) /
                      options_.offered_rps))
                : std::chrono::nanoseconds(0);

  auto connection_worker = [&](std::size_t c) {
    util::Rng rng(util::SplitMix64(options_.seed * 0x9e37u + c).next());
    std::optional<util::ZipfDistribution> zipf;
    if (!options_.files.empty()) {
      zipf.emplace(options_.files.size(), options_.zipf_exponent);
    }
    LoadReport local;
    Socket socket;
    std::optional<HttpReader> reader;
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {
    }
    const auto epoch =
        std::chrono::steady_clock::now() +
        std::chrono::nanoseconds(
            open_loop ? interval.count() * static_cast<std::int64_t>(c) /
                            static_cast<std::int64_t>(options_.connections)
                      : 0);
    for (std::size_t r = 0; r < options_.requests_per_connection; ++r) {
      auto scheduled = std::chrono::steady_clock::now();
      if (open_loop) {
        // Absolute schedule, never reset: a response slower than the
        // interval makes the next sleep_until return immediately and the
        // measured latency (from `scheduled`) absorbs the lateness.
        scheduled = epoch + interval * r;
        std::this_thread::sleep_until(scheduled);
      }
      const bool is_post = rng.bernoulli(options_.post_fraction);
      HttpRequest request;
      if (is_post) {
        request.keep_alive = options_.keep_alive;
        request.method = "POST";
        request.path = "/upload";
        // Uniform per-request marker byte: a torn store of this body is
        // detectable by any later byte-exact check.
        request.body.assign(options_.post_bytes,
                            static_cast<char>('a' + (c * 7 + r) % 26));
      }
      const std::string* get_wire =
          is_post ? nullptr : &get_wires[(*zipf)(rng)];
      ++local.requests_sent;
      util::Stopwatch watch;
      // Round-trip time as the report defines it: from the scheduled send
      // instant in open-loop mode (generator-side queueing counts), from
      // the actual send in closed-loop mode.
      const auto round_trip_ns = [&]() -> std::uint64_t {
        if (!open_loop) return static_cast<std::uint64_t>(watch.elapsed_ns());
        const auto waited =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - scheduled)
                .count();
        return waited > 0 ? static_cast<std::uint64_t>(waited) : 0;
      };
      try {
        if (!socket.valid()) {
          socket = connect_loopback(port);
          if (options_.recv_timeout_ms > 0) {
            set_recv_timeout(socket.fd(), options_.recv_timeout_ms);
          }
          reader.emplace(socket);
          if (r != 0) ++local.reconnects;
        }
        if (is_post) {
          send_request(socket, request);
        } else {
          socket.send_all(get_wire->data(), get_wire->size());
        }
        const HttpResponse response = reader->read_response();
        if (response.status == 200 || response.status == 201) {
          ++local.ok;
          local.latency.push(round_trip_ns());
          if (is_post) {
            local.bytes_posted += request.body.size();
          } else {
            local.bytes_received += response.body.size();
          }
        } else if (response.status == 503) {
          ++local.rejected_503;
        } else {
          ++local.errors;
          ++local.failures.http_errors;
        }
        if (!options_.keep_alive || !response.keep_alive) {
          reader.reset();
          socket.close();
        }
      } catch (const std::exception& e) {
        // Transport failure (injected or real): classify it, drop the
        // connection and carry on — the next request reconnects.
        ++local.errors;
        if (dynamic_cast<const util::TimeoutError*>(&e) != nullptr) {
          ++local.failures.timeouts;
          // Survivorship-bias fix: a timed-out request enters the latency
          // distribution as a censored sample at (at least) its timeout
          // bound, instead of silently improving the tail by vanishing.
          if (options_.recv_timeout_ms > 0) {
            ++local.censored;
            local.latency.push(round_trip_ns());
          }
        } else if (dynamic_cast<const util::ConnectError*>(&e) != nullptr) {
          ++local.failures.connect_refused;
        } else if (dynamic_cast<const util::PeerClosedError*>(&e) != nullptr) {
          ++local.failures.disconnects;
        } else if (dynamic_cast<const util::IoError*>(&e) != nullptr) {
          ++local.failures.disconnects;  // send/recv failed: peer vanished
        } else if (dynamic_cast<const util::ParseError*>(&e) != nullptr) {
          ++local.failures.malformed;
        } else {
          ++local.failures.other;
        }
        reader.reset();
        socket.close();
      }
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    report.requests_sent += local.requests_sent;
    report.ok += local.ok;
    report.errors += local.errors;
    report.rejected_503 += local.rejected_503;
    report.reconnects += local.reconnects;
    report.bytes_received += local.bytes_received;
    report.bytes_posted += local.bytes_posted;
    report.censored += local.censored;
    report.failures.merge(local.failures);
    report.latency.merge(local.latency);
  };

  std::vector<std::thread> threads;
  threads.reserve(options_.connections);
  for (std::size_t c = 0; c < options_.connections; ++c) {
    threads.emplace_back(connection_worker, c);
  }
  while (ready.load() < options_.connections) {
    std::this_thread::yield();
  }
  util::Stopwatch wall;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  report.elapsed_s = wall.elapsed_ms() / 1e3;
  return report;
}

void LoadReport::render(std::ostream& os) const {
  os << "load: sent=" << requests_sent << " ok=" << ok
     << " errors=" << errors << " 503=" << rejected_503
     << " censored=" << censored << " reconnects=" << reconnects
     << " rps=" << requests_per_sec() << " mean_ms=" << mean_ms()
     << " p99_ms=" << quantile_ms(0.99) << "\n";
  if (errors != 0) {
    os << "failures: timeouts=" << failures.timeouts
       << " connect_refused=" << failures.connect_refused
       << " disconnects=" << failures.disconnects
       << " malformed=" << failures.malformed
       << " http_errors=" << failures.http_errors
       << " other=" << failures.other << "\n";
  }
}

void LoadReport::append_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.kv("requests_sent", requests_sent);
  w.kv("ok", ok);
  w.kv("errors", errors);
  w.kv("rejected_503", rejected_503);
  w.kv("reconnects", reconnects);
  w.kv("bytes_received", bytes_received);
  w.kv("bytes_posted", bytes_posted);
  w.kv("censored", censored);
  w.kv("elapsed_s", elapsed_s);
  w.kv("requests_per_sec", requests_per_sec());
  w.key("failures");
  w.begin_object();
  w.kv("timeouts", failures.timeouts);
  w.kv("connect_refused", failures.connect_refused);
  w.kv("disconnects", failures.disconnects);
  w.kv("malformed", failures.malformed);
  w.kv("http_errors", failures.http_errors);
  w.kv("other", failures.other);
  w.end_object();
  w.key("latency_ns");
  obs::write_histogram_json(w, latency.snapshot());
  w.end_object();
}

}  // namespace clio::net
