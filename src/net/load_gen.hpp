#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/histogram.hpp"

namespace clio::obs {
class JsonWriter;
}  // namespace clio::obs

namespace clio::net {

/// Configuration of one seeded load-generation run: N concurrent
/// connections, each issuing a GET/POST request mix, with or without
/// HTTP/1.1 keep-alive.  Deterministic given `seed` (request ordering
/// across connections still depends on scheduling, but each connection's
/// request sequence replays exactly).
struct LoadGenOptions {
  std::size_t connections = 8;            ///< concurrent connections (threads)
  std::size_t requests_per_connection = 100;
  bool keep_alive = true;     ///< one connection, many requests
  double post_fraction = 0.0; ///< request mix: probability a request POSTs
  std::size_t post_bytes = 1024;          ///< POST payload size
  double zipf_exponent = 1.0;             ///< GET file popularity skew
  std::uint64_t seed = 7;
  std::vector<std::string> files;         ///< GET targets (no leading slash)
  /// SO_RCVTIMEO armed on every client socket (0 = none): a wedged or
  /// drained server surfaces as a counted timeout instead of hanging the
  /// run.  The resilience soak's liveness assertions depend on this.
  int recv_timeout_ms = 0;
  /// Open-loop arrival rate in requests/s across the whole run (0 = closed
  /// loop, the legacy send-when-done behaviour).  Each connection sends on
  /// a fixed absolute schedule (its share of the rate, thread-staggered)
  /// that is never reset by slow responses — a late reply does not slow
  /// down the offered load, it queues behind it, which is what exposes a
  /// server past saturation.  Latency is measured from the *scheduled*
  /// send time, so queueing delay inside the generator counts against the
  /// server (no coordinated omission).
  double offered_rps = 0.0;
};

/// Why failed requests failed, one counter per class — "the run had 14
/// errors" is not actionable, "12 disconnects + 2 timeouts" is.
struct FailureBreakdown {
  std::uint64_t timeouts = 0;        ///< receive timed out mid-exchange
  std::uint64_t connect_refused = 0; ///< could not reach the server at all
  std::uint64_t disconnects = 0;     ///< connection lost mid-exchange
  std::uint64_t malformed = 0;       ///< response bytes failed to parse
  std::uint64_t http_errors = 0;     ///< well-formed non-2xx, non-503 status
  std::uint64_t other = 0;           ///< anything else (should stay 0)

  [[nodiscard]] std::uint64_t total() const {
    return timeouts + connect_refused + disconnects + malformed +
           http_errors + other;
  }

  void merge(const FailureBreakdown& rhs) {
    timeouts += rhs.timeouts;
    connect_refused += rhs.connect_refused;
    disconnects += rhs.disconnects;
    malformed += rhs.malformed;
    http_errors += rhs.http_errors;
    other += rhs.other;
  }
};

/// Aggregate result of a run.  The latency histogram holds one sample per
/// successful request (full round trip, including the connect when
/// keep-alive is off — connection setup is part of what keep-alive saves).
struct LoadReport {
  std::uint64_t requests_sent = 0;
  std::uint64_t ok = 0;            ///< 200/201 responses, fully received
  std::uint64_t errors = 0;        ///< transport failures + 4xx/5xx
  std::uint64_t rejected_503 = 0;  ///< server backpressure (not an error)
  std::uint64_t reconnects = 0;    ///< keep-alive connections re-opened
  std::uint64_t bytes_received = 0;  ///< 200 GET body bytes (served-byte oracle)
  std::uint64_t bytes_posted = 0;    ///< bytes carried by successful POSTs
  /// Requests that timed out, recorded into `latency` as censored samples
  /// at (at least) the timeout bound.  Dropping them — the old behaviour —
  /// was survivorship bias: the tail quantiles of an overloaded run looked
  /// *better* the more requests timed out.  They still count in errors and
  /// failures.timeouts; `ok` excludes them.
  std::uint64_t censored = 0;
  FailureBreakdown failures;         ///< errors, classified (sums to errors)
  util::LatencyHistogram latency;    ///< ns per round trip: successes plus
                                     ///< censored timeout samples
  double elapsed_s = 0.0;

  [[nodiscard]] double requests_per_sec() const {
    return elapsed_s > 0.0 ? static_cast<double>(ok) / elapsed_s : 0.0;
  }
  [[nodiscard]] double mean_ms() const { return latency.mean_ns() / 1e6; }
  [[nodiscard]] double quantile_ms(double q) const {
    return static_cast<double>(latency.quantile_ns(q)) / 1e6;
  }

  /// One-paragraph run summary: totals, throughput, latency quantiles and
  /// the per-class failure breakdown (omitted when the run was clean).
  void render(std::ostream& os) const;

  /// Appends the run as one JSON object (counts, throughput, failure
  /// classes and the full latency distribution) at the writer's current
  /// position — the machine-readable twin of render(), used by the benches'
  /// BENCH_*.json emission.
  void append_json(obs::JsonWriter& w) const;
};

/// Seeded multi-threaded load generator for the worker-pool server: drives
/// a configurable GET/POST mix over N concurrent connections and reports
/// throughput plus a latency histogram.  Tolerates server-side faults (a
/// failed request counts and the connection is re-opened), so it doubles
/// as the client side of the net-layer stress soak.
class LoadGenerator {
 public:
  explicit LoadGenerator(LoadGenOptions options);

  /// Runs the configured load against 127.0.0.1:port and blocks until
  /// every connection finished its request budget.
  [[nodiscard]] LoadReport run(std::uint16_t port) const;

 private:
  LoadGenOptions options_;
};

}  // namespace clio::net
