#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/http.hpp"

namespace clio::net {

/// Result of one client-side request.
struct ClientResult {
  int status = 0;
  std::string body;
  double latency_ms = 0.0;  ///< connect + request + full response
};

/// Blocking loopback HTTP client (one connection per request, matching the
/// server's connection-per-request model).
class HttpClient {
 public:
  explicit HttpClient(std::uint16_t port) : port_(port) {}

  [[nodiscard]] ClientResult get(const std::string& path) const;
  [[nodiscard]] ClientResult post(const std::string& path,
                                  std::string body) const;

 private:
  [[nodiscard]] ClientResult round_trip(const HttpRequest& request) const;

  std::uint16_t port_;
};

/// Multi-threaded load generator: `clients` threads each issue `requests`
/// GETs over the given file set with Zipf(1.0) popularity (scientists and
/// web users alike revisit hot objects).  Returns every latency sample.
struct LoadResult {
  std::vector<double> latencies_ms;
  std::uint64_t bytes_received = 0;
  std::size_t errors = 0;
};

[[nodiscard]] LoadResult run_get_load(std::uint16_t port,
                                      const std::vector<std::string>& files,
                                      std::size_t clients,
                                      std::size_t requests_per_client,
                                      std::uint64_t seed = 7);

}  // namespace clio::net
