#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/http.hpp"

namespace clio::net {

/// Result of one client-side request.
struct ClientResult {
  int status = 0;
  std::string body;
  double latency_ms = 0.0;  ///< connect (if any) + request + full response
};

/// Blocking loopback HTTP client.  By default it opens one connection per
/// request (the paper's model); with keep_alive it holds one persistent
/// connection.  When that connection dies mid-call the failing call
/// throws (after dropping the stale state) and the NEXT call reconnects —
/// callers that must survive server restarts catch and retry.
class HttpClient {
 public:
  explicit HttpClient(std::uint16_t port, bool keep_alive = false)
      : port_(port), keep_alive_(keep_alive) {}

  [[nodiscard]] ClientResult get(const std::string& path);
  [[nodiscard]] ClientResult post(const std::string& path, std::string body);

  /// Drops the persistent connection (no-op without keep_alive).
  void disconnect();

 private:
  [[nodiscard]] ClientResult round_trip(HttpRequest request);

  std::uint16_t port_;
  bool keep_alive_;
  Socket socket_;
  std::optional<HttpReader> reader_;
};

/// Multi-threaded load generator: `clients` threads each issue `requests`
/// GETs over the given file set with Zipf(1.0) popularity (scientists and
/// web users alike revisit hot objects).  Returns every latency sample.
/// Kept for the paper-table benches; the serving-layer benchmark uses the
/// richer net::LoadGenerator (load_gen.hpp).
struct LoadResult {
  std::vector<double> latencies_ms;
  std::uint64_t bytes_received = 0;
  std::size_t errors = 0;
};

[[nodiscard]] LoadResult run_get_load(std::uint16_t port,
                                      const std::vector<std::string>& files,
                                      std::size_t clients,
                                      std::size_t requests_per_client,
                                      std::uint64_t seed = 7);

}  // namespace clio::net
