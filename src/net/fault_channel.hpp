#pragma once

#include <cstdint>
#include <mutex>

#include "net/channel.hpp"
#include "util/rng.hpp"

namespace clio::net {

/// Declarative description of the network faults a NetFaultInjector
/// injects — the serving-layer mirror of io::FaultPlan.  All randomness is
/// drawn from one SplitMix64 stream seeded with `seed`, so a seeded soak
/// run replays the same plan: every harness failure message prints the
/// seed, and re-running with it reproduces the storm.
struct NetFaultPlan {
  std::uint64_t seed = 0x5eed;

  /// Probability that an accepted connection is dropped before it is ever
  /// handed to a worker — the client sees an immediate close.
  double accept_drop_prob = 0.0;

  /// Probability that a recv throws a clean util::IoError (EIO) before
  /// reading anything.
  double recv_fail_prob = 0.0;

  /// Probability that a recv closes the connection and reports orderly
  /// shutdown instead — a client vanishing mid-request.
  double recv_disconnect_prob = 0.0;

  /// Probability that a send throws a clean util::IoError before any byte
  /// leaves.
  double send_fail_prob = 0.0;

  /// Probability that a send transmits only a random prefix, then closes
  /// the connection and throws — a mid-response disconnect.  The peer
  /// receives a truncated message.
  double short_send_prob = 0.0;

  /// Probability of sleeping `latency_us` before an op proceeds — a slow
  /// client stalling a worker, widening race windows in the pool.
  double latency_prob = 0.0;
  std::uint32_t latency_us = 200;
};

/// Counters of what the injector actually did, for asserting injection
/// rates and for bench output.
struct NetFaultStats {
  std::uint64_t accepts = 0;     ///< accept decisions taken
  std::uint64_t recv_calls = 0;  ///< recvs that reached the decision point
  std::uint64_t send_calls = 0;  ///< sends that reached the decision point
  std::uint64_t accept_drops = 0;
  std::uint64_t recv_failures = 0;
  std::uint64_t recv_disconnects = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t short_sends = 0;
  std::uint64_t latency_injections = 0;

  [[nodiscard]] std::uint64_t total_faults() const {
    return accept_drops + recv_failures + recv_disconnects + send_failures +
           short_sends;
  }
};

/// Thread-safe seeded fault decision maker shared by every FaultChannel of
/// one server: decisions (RNG draws, counters) are taken under one mutex,
/// but sleeps and the inner channel I/O run outside it, so injected faults
/// land inside real worker interleavings — the io::FaultStore idiom at the
/// socket layer.
class NetFaultInjector {
 public:
  explicit NetFaultInjector(NetFaultPlan plan = {});

  /// Master switch.  Disarmed, every op forwards verbatim (and is not
  /// counted) — harnesses disarm before their clean drain + oracle check.
  void arm(bool on);
  [[nodiscard]] bool armed() const;

  /// Replaces the plan and reseeds the RNG from it (counters are kept).
  void set_plan(NetFaultPlan plan);
  [[nodiscard]] NetFaultPlan plan() const;

  [[nodiscard]] NetFaultStats stats() const;

  /// Clears counters and reseeds the RNG from the plan.
  void reset();

  /// Accept-path decision: true = drop this freshly accepted connection.
  [[nodiscard]] bool should_drop_accept();

  /// What one channel op should do; acted on outside the mutex.
  struct Decision {
    std::uint32_t sleep_us = 0;  ///< injected latency (0 = none)
    bool fail = false;           ///< throw a clean IoError, no side effect
    bool disconnect = false;     ///< close the inner channel first
    bool tear = false;           ///< send only `keep_bytes`, close, throw
    std::size_t keep_bytes = 0;
  };

  [[nodiscard]] Decision decide_recv();
  [[nodiscard]] Decision decide_send(std::size_t payload_bytes);

 private:
  double roll();  ///< uniform [0,1) from the seeded stream; mutex held

  mutable std::mutex mutex_;
  NetFaultPlan plan_;
  util::SplitMix64 rng_;
  NetFaultStats stats_;
  bool armed_ = true;
};

/// Channel decorator that injects the shared injector's decisions into one
/// connection.  Faults surface as util::IoError (or as orderly shutdown for
/// recv disconnects) — exactly what real socket failures look like, so
/// server code cannot and must not tell them apart.
class FaultChannel final : public Channel {
 public:
  FaultChannel(Channel& inner, NetFaultInjector& injector)
      : inner_(inner), injector_(injector) {}

  void send_all(const void* data, std::size_t n) override;
  [[nodiscard]] std::size_t recv_some(void* out, std::size_t n) override;
  /// Same decision table as recv_some, minus the blocking-timeout case
  /// (would-block passes through untouched — the event loop interprets it).
  [[nodiscard]] std::ptrdiff_t recv_nonblock(void* out,
                                             std::size_t n) override;
  /// ONE decision over the whole gathered payload, not one per part: the
  /// default per-part fallback would multiply injection rates by the page
  /// count of a response, making every large zero-copy response a
  /// near-certain tear under plans tuned for per-response probabilities.
  void send_gather(std::span<const std::byte> head,
                   std::span<const std::span<const std::byte>> parts) override;
  void close() override { inner_.close(); }
  void shutdown() override { inner_.shutdown(); }
  [[nodiscard]] bool valid() const override { return inner_.valid(); }

 private:
  Channel& inner_;
  NetFaultInjector& injector_;
};

}  // namespace clio::net
