#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace clio::net {

/// Counters for /statz and the cache-coherence tests.
struct HotCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t invalidations = 0;  ///< invalidate_all() calls
  std::uint64_t evictions = 0;      ///< LRU capacity evictions
};

/// Tiny LRU of fully rendered GET bodies, keyed by file name — the Zipf
/// head of the paper's request mix concentrates most traffic on a handful
/// of objects, and serving those straight from memory skips the open /
/// pin / close round through the storage stack entirely.
///
/// Coherence contract (docs/SERVING.md): the server invalidates the whole
/// cache on every POST and on make_cold().  POSTs only ever create fresh
/// uniquely-named files, so a blanket invalidation is cheap insurance, not
/// a hot-path cost.  Files mutated behind the server's back (direct
/// ManagedFileSystem writes) are NOT detected — callers doing that must
/// make_cold() first, same as the buffer-pool contract.
///
/// Bodies are shared_ptr<const string>: a hit pins the bytes for the send
/// without copying them, and an invalidation mid-send cannot free memory a
/// worker is still transmitting.
class HotObjectCache {
 public:
  HotObjectCache(std::size_t max_entries, std::size_t max_object_bytes)
      : max_entries_(max_entries), max_object_bytes_(max_object_bytes) {}

  /// The body for `name`, or nullptr on a miss.  Refreshes LRU position.
  [[nodiscard]] std::shared_ptr<const std::string> lookup(
      const std::string& name);

  /// Caches `body` under `name` (no-op when the body exceeds
  /// max_object_bytes or max_entries is 0); evicts the LRU tail past
  /// capacity.
  void insert(const std::string& name,
              std::shared_ptr<const std::string> body);

  /// Drops every entry (POST write-path / make_cold coherence hook).
  void invalidate_all();

  [[nodiscard]] HotCacheStats stats() const;
  [[nodiscard]] std::size_t max_object_bytes() const {
    return max_object_bytes_;
  }

 private:
  struct Entry {
    std::shared_ptr<const std::string> body;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::size_t max_object_bytes_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  HotCacheStats stats_;
};

}  // namespace clio::net
