#include "net/server.hpp"

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "vm/assembler.hpp"

namespace clio::net {
namespace {

/// Managed request handlers, assembled when vm_dispatch is on.  do_get
/// opens the requested file through the syscall bridge, reads it fully into
/// a managed array and returns the array; do_post writes the posted bytes
/// to the named file.  Running these under the interpreter + JIT supplies
/// the managed-execution overhead and the first-request compile delay the
/// paper attributes to the CLI.
constexpr const char* kHandlerSource = R"(
.method do_get 1 3
  ldarg 0
  ldc 0
  syscall file_open
  stloc 0
  ldloc 0
  syscall file_size
  stloc 1
  ldloc 1
  newarr
  stloc 2
  ldloc 0
  ldloc 2
  ldloc 1
  syscall file_read
  pop
  ldloc 0
  syscall file_close
  pop
  ldloc 2
  ret
.end
.method do_post 2 1
  ldarg 0
  ldc 2
  syscall file_open
  stloc 0
  ldloc 0
  ldarg 1
  ldarg 1
  arrlen
  syscall file_write
  pop
  ldloc 0
  syscall file_close
  pop
  ldarg 1
  arrlen
  ret
.end
)";

}  // namespace

MiniWebServer::MiniWebServer(io::ManagedFileSystem& fs, ServerOptions options)
    : fs_(fs), options_(options) {
  listener_ = std::make_unique<TcpListener>(options_.port);
  if (options_.vm_dispatch) {
    engine_ = std::make_unique<vm::ExecutionEngine>(
        vm::assemble(kHandlerSource), options_.vm_options, &fs_);
  }
}

MiniWebServer::~MiniWebServer() { stop(); }

std::uint16_t MiniWebServer::port() const { return listener_->port(); }

void MiniWebServer::start() {
  if (running_.exchange(true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void MiniWebServer::stop() {
  if (!running_.exchange(false)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void MiniWebServer::accept_loop() {
  while (running_.load()) {
    Socket client = listener_->accept(/*timeout_ms=*/20);
    if (!client.valid()) continue;
    std::lock_guard<std::mutex> lock(workers_mutex_);
    // The paper's design: "a separate thread to handle each client
    // connection.  The main thread continues accepting new connections."
    workers_.emplace_back(
        [this, socket = std::move(client)]() mutable {
          handle_connection(std::move(socket));
        });
  }
}

void MiniWebServer::handle_connection(Socket socket) {
  try {
    const auto request = read_request(socket);
    if (!request.has_value()) return;
    if (request->method == "GET") {
      do_get(socket, *request);
    } else if (request->method == "POST") {
      do_post(socket, *request);
    } else {
      send_response(socket, 405, "method not allowed");
    }
  } catch (const std::exception& e) {
    util::log_warn("web server: request failed: ", e.what());
    try {
      send_response(socket, 500, "internal error");
    } catch (...) {
    }
  }
}

std::string MiniWebServer::read_file_vm(const std::string& name) {
  const auto result = engine_->call(
      "do_get", {vm::Value::from_obj(std::make_shared<vm::Obj>(name))});
  const auto& arr = result.as_obj()->arr();
  std::string content(arr.size(), '\0');
  for (std::size_t i = 0; i < arr.size(); ++i) {
    content[i] = static_cast<char>(arr[i].as_int() & 0xff);
  }
  return content;
}

void MiniWebServer::do_get(const Socket& socket, const HttpRequest& request) {
  RequestSample sample;
  sample.is_get = true;
  util::Stopwatch total;
  const std::string name = request.file_name();
  if (name.empty() || !fs_.exists(name)) {
    send_response(socket, 404, "no such file");
    return;
  }
  // Timed portion, as in the paper: open the stream, read the data,
  // close the stream.
  std::string content;
  {
    util::Stopwatch file_watch;
    if (options_.vm_dispatch) {
      content = read_file_vm(name);
    } else {
      auto file = fs_.open(name, io::OpenMode::kRead);
      content.resize(static_cast<std::size_t>(file.size()));
      file.read_exact(std::as_writable_bytes(
          std::span<char>(content.data(), content.size())));
      file.close();
    }
    sample.file_ms = file_watch.elapsed_ms();
  }
  sample.bytes = content.size();
  sample.total_ms = total.elapsed_ms();
  // Record before transmitting so samples appear in request order even if
  // this worker is preempted mid-send.
  record(sample);
  send_response(socket, 200, content);
}

void MiniWebServer::do_post(const Socket& socket, const HttpRequest& request) {
  RequestSample sample;
  sample.is_get = false;
  util::Stopwatch total;
  // "The data is written to a new file created by using a random number
  // generator" — a unique counter-derived name keeps writers disjoint.
  const std::uint64_t id =
      post_counter_.fetch_add(1, std::memory_order_relaxed) * 2654435761u;
  const std::string name = "post_" + std::to_string(id % 100000000) + ".dat";
  {
    util::Stopwatch file_watch;
    if (options_.vm_dispatch) {
      std::vector<vm::Value> bytes(request.body.size());
      for (std::size_t i = 0; i < request.body.size(); ++i) {
        bytes[i] = vm::Value::from_int(
            static_cast<unsigned char>(request.body[i]));
      }
      engine_->call("do_post",
                    {vm::Value::from_obj(std::make_shared<vm::Obj>(name)),
                     vm::Value::from_obj(
                         std::make_shared<vm::Obj>(std::move(bytes)))});
    } else {
      auto file = fs_.open(name, io::OpenMode::kTruncate);
      file.write(std::as_bytes(
          std::span<const char>(request.body.data(), request.body.size())));
      file.close();
    }
    sample.file_ms = file_watch.elapsed_ms();
  }
  sample.bytes = request.body.size();
  sample.total_ms = total.elapsed_ms();
  record(sample);
  send_response(socket, 201, name);
}

void MiniWebServer::record(RequestSample sample) {
  std::lock_guard<std::mutex> lock(samples_mutex_);
  samples_.push_back(sample);
}

std::vector<RequestSample> MiniWebServer::samples() const {
  std::lock_guard<std::mutex> lock(samples_mutex_);
  return samples_;
}

void MiniWebServer::clear_samples() {
  std::lock_guard<std::mutex> lock(samples_mutex_);
  samples_.clear();
}

void MiniWebServer::make_cold() {
  if (engine_ != nullptr) engine_->flush_jit_cache();
  fs_.drop_caches();
}

}  // namespace clio::net
