#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <memory>
#include <optional>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "vm/assembler.hpp"

namespace clio::net {
namespace {

/// Managed request handlers, assembled when vm_dispatch is on.  do_get
/// opens the requested file through the syscall bridge, reads it fully into
/// a managed array and returns the array; do_post writes the posted bytes
/// to the named file.  Running these under the interpreter + JIT supplies
/// the managed-execution overhead and the first-request compile delay the
/// paper attributes to the CLI.
constexpr const char* kHandlerSource = R"(
.method do_get 1 3
  ldarg 0
  ldc 0
  syscall file_open
  stloc 0
  ldloc 0
  syscall file_size
  stloc 1
  ldloc 1
  newarr
  stloc 2
  ldloc 0
  ldloc 2
  ldloc 1
  syscall file_read
  pop
  ldloc 0
  syscall file_close
  pop
  ldloc 2
  ret
.end
.method do_post 2 1
  ldarg 0
  ldc 2
  syscall file_open
  stloc 0
  ldloc 0
  ldarg 1
  ldarg 1
  arrlen
  syscall file_write
  pop
  ldloc 0
  syscall file_close
  pop
  ldarg 1
  arrlen
  ret
.end
)";

/// Progress budget for a connection mid-request when no idle_timeout_ms is
/// configured: the event loop re-arms this deadline on every byte of
/// progress, replicating the per-recv SO_RCVTIMEO the blocking design had.
constexpr int kInRequestRecvTimeoutMs = 5000;

/// How long one epoll_wait sleeps with nothing to do.  This bounds the
/// lateness of deadline expiries and of the drain escalation; events and
/// eventfd wakeups cut it short.
constexpr int kLoopTickMs = 20;

/// A fully rendered control response (the loop's 503/400/408 answers),
/// suitable for try_send_nonblock.
std::string control_response(int status, std::string_view body,
                             std::string_view extra_headers = {}) {
  return util::cat("HTTP/1.1 ", status, " ", reason_phrase(status),
                   "\r\nContent-Length: ", body.size(),
                   "\r\nContent-Type: application/octet-stream"
                   "\r\nConnection: close\r\n",
                   extra_headers, "\r\n", body);
}

/// Response head for the zero-copy paths, matching send_response's wire
/// format byte for byte (clients must not be able to tell the paths apart).
std::string response_head(int status, std::uint64_t content_length,
                          bool keep_alive) {
  return util::cat("HTTP/1.1 ", status, " ", reason_phrase(status),
                   "\r\nContent-Length: ", content_length,
                   "\r\nContent-Type: application/octet-stream"
                   "\r\nConnection: ",
                   keep_alive ? "keep-alive" : "close", "\r\n\r\n");
}

std::span<const std::byte> str_bytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

}  // namespace

/// Event-loop connection state.  The loop owns the map entry; while `busy`
/// the connection is checked out to exactly one worker, and the loop will
/// not touch anything but the fd number until the worker returns it.
/// Heap-allocated (unique_ptr in the map) so faulted/reader's references
/// into `socket` survive rehashes.
struct MiniWebServer::Conn {
  Socket socket;
  std::optional<FaultChannel> faulted;  ///< wraps socket when faults are on
  std::optional<HttpReader> reader;     ///< buffered parser over channel()
  std::size_t served = 0;               ///< requests dispatched on this conn
  bool busy = false;                    ///< checked out to a worker
  std::uint64_t deadline_gen = 0;       ///< matches the live heap entry

  Channel& channel() {
    return faulted.has_value() ? static_cast<Channel&>(*faulted) : socket;
  }
};

MiniWebServer::MiniWebServer(io::ManagedFileSystem& fs, ServerOptions options)
    : fs_(fs), options_(options) {
  util::check<util::ConfigError>(options_.worker_threads >= 1,
                                 "MiniWebServer: need at least one worker");
  util::check<util::ConfigError>(options_.max_pending >= 1,
                                 "MiniWebServer: need a nonempty queue");
  listener_ = std::make_unique<TcpListener>(options_.port);
  options_.port = listener_->port();  // keep the ephemeral pick across stop()
  if (options_.vm_dispatch) {
    engine_ = std::make_unique<vm::ExecutionEngine>(
        vm::assemble(kHandlerSource), options_.vm_options, &fs_);
  }
  // The sendfile seam: only a RealFileStore directly behind fs_ exposes the
  // POSIX descriptors the kernel needs.  Decorated stores (retry/fault
  // wrappers) leave this null and every response rides the pool.
  real_store_ = dynamic_cast<io::RealFileStore*>(&fs_.store());
  if (options_.hot_cache_entries > 0) {
    hot_cache_ = std::make_unique<HotObjectCache>(
        options_.hot_cache_entries, options_.hot_cache_max_object_bytes);
  }
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  tracer_ = std::make_unique<obs::RequestTracer>(*metrics_,
                                                 options_.trace_seed);
  register_metrics();
}

MiniWebServer::~MiniWebServer() { stop(); }

std::uint16_t MiniWebServer::port() const { return listener_->port(); }

void MiniWebServer::start() {
  if (running_.exchange(true)) return;
  // A (re)started server reports this run only: stop() snapshotted the
  // previous run into last_run_stats_, so zeroing here loses nothing and
  // fixes the stale-counter carry-over across stop()/start() cycles.
  reset_stats();
  // stop() closes the listener so late connectors are refused instead of
  // parked in a backlog nobody drains; a restart re-binds the same port.
  if (!listener_->listening()) {
    listener_ = std::make_unique<TcpListener>(options_.port);
  }
  draining_.store(false, std::memory_order_release);
  loop_stop_.store(false, std::memory_order_release);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  util::check<util::IoError>(wake_fd_ >= 0, "MiniWebServer: eventfd failed");
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  util::check<util::IoError>(epoll_fd_ >= 0,
                             "MiniWebServer: epoll_create1 failed");
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
  loop_thread_ = std::thread([this] { event_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void MiniWebServer::stop() {
  if (!running_.exchange(false)) return;
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Refuse late connectors: closing the listener resets any connection
  // still parked in the backlog, so their clients error out instead of
  // blocking in recv against a server that will never accept them.
  listener_->close();
  // Requests queued but never picked up are exclusively ours now (workers
  // stop popping once running_ is false, and a queued request's connection
  // is busy-marked so the loop will not touch it either): answer each with
  // a clean 503 instead of silently dropping it.  The blocking sends are
  // bounded by SO_SNDTIMEO.
  {
    std::deque<PendingRequest> backlog;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      backlog.swap(pending_);
    }
    std::vector<ConnReturn> rets;
    rets.reserve(backlog.size());
    for (auto& queued : backlog) {
      counters_.drained_503.fetch_add(1, std::memory_order_relaxed);
      try {
        send_response(queued.conn->channel(), 503, "server shutting down",
                      /*keep_alive=*/false, "Retry-After: 1\r\n");
      } catch (const std::exception&) {
      }
      rets.push_back(ConnReturn{queued.conn->socket.fd(), /*rearm=*/false});
    }
    if (!rets.empty()) {
      std::lock_guard<std::mutex> lock(loop_mutex_);
      returns_.insert(returns_.end(), rets.begin(), rets.end());
    }
  }
  // Graceful drain: the loop sweeps every parked connection immediately,
  // gives in-flight requests drain_deadline_ms to finish transmitting, then
  // escalates to a full shutdown of the stragglers so the worker joins
  // below cannot hang on a peer that stopped reading.
  draining_.store(true, std::memory_order_release);
  wake_loop();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  loop_stop_.store(true, std::memory_order_release);
  wake_loop();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  // The run is over and the counters are quiesced: snapshot them so the
  // run's totals survive the reset a future start() performs.
  {
    std::lock_guard<std::mutex> lock(last_run_mutex_);
    last_run_stats_ = stats();
  }
}

void MiniWebServer::accept_loop() {
  while (running_.load()) {
    Socket client = listener_->accept(/*timeout_ms=*/20);
    if (!client.valid()) continue;
    util::Stopwatch accept_watch;  // accept return -> handed to the loop
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->should_drop_accept()) {
      counters_.dropped_accepts.fetch_add(1, std::memory_order_relaxed);
      continue;  // client sees an immediate close
    }
    {
      std::lock_guard<std::mutex> lock(loop_mutex_);
      inbound_.push_back(std::move(client));
    }
    wake_loop();
    tracer_->record_stage(obs::Stage::kAccept,
                          static_cast<std::uint64_t>(
                              accept_watch.elapsed_ns()));
  }
}

void MiniWebServer::wake_loop() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // Best effort: the eventfd counter saturating still leaves it readable.
  [[maybe_unused]] const auto r = ::write(wake_fd_, &one, sizeof(one));
}

void MiniWebServer::event_loop() {
  // Everything below is loop-thread-local: connection ownership never
  // leaves this function except through the busy-marked worker hand-off.
  std::unordered_map<int, std::unique_ptr<Conn>> conns;

  // Progress deadlines, min-heap with lazy deletion: entries are never
  // removed, they expire against the connection's current generation.  The
  // generation counter is loop-global so an entry for a retired fd can
  // never match a new connection that reused the number.
  struct DeadlineEntry {
    std::chrono::steady_clock::time_point at;
    int fd = -1;
    std::uint64_t gen = 0;
  };
  struct DeadlineLater {
    bool operator()(const DeadlineEntry& a, const DeadlineEntry& b) const {
      return a.at > b.at;
    }
  };
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      DeadlineLater>
      deadlines;
  std::uint64_t gen_counter = 0;
  const auto progress_budget = std::chrono::milliseconds(
      options_.idle_timeout_ms > 0 ? options_.idle_timeout_ms
                                   : kInRequestRecvTimeoutMs);

  const std::string busy_503 = control_response(503, "server busy");
  const std::string bad_400 = control_response(400, "bad request");
  const std::string timeout_408 = control_response(408, "request timeout");

  auto retire = [&](int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    conns.erase(it);  // Socket closes here
    counters_.connections.fetch_add(1, std::memory_order_relaxed);
  };

  auto rearm = [&](int fd) {
    epoll_event ev{};
    // Level-triggered oneshot: if the kernel buffer already holds bytes the
    // worker left unread, MOD re-delivers immediately — nothing is lost.
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  };

  auto arm_deadline = [&](Conn& c) {
    c.deadline_gen = ++gen_counter;
    deadlines.push(DeadlineEntry{
        std::chrono::steady_clock::now() + progress_budget, c.socket.fd(),
        c.deadline_gen});
  };

  auto dispatch_request = [&](Conn& c, HttpRequest req,
                              std::uint64_t parse_ns) {
    const int fd = c.socket.fd();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      if (pending_.size() >= options_.max_pending) {
        lock.unlock();
        // Backpressure: answer 503 without blocking the loop.  A peer that
        // stopped reading must cost nothing — the bytes go out only as far
        // as the socket buffer allows (which, for a connection idle enough
        // to be rejected, is always the whole small response).
        counters_.rejected_503.fetch_add(1, std::memory_order_relaxed);
        try_send_nonblock(fd, busy_503);
        retire(fd);
        return;
      }
      c.busy = true;
      c.served++;
      counters_.requests.fetch_add(1, std::memory_order_relaxed);
      pending_.push_back(PendingRequest{&c, std::move(req),
                                        util::Stopwatch::now_ns(), parse_ns});
    }
    queue_cv_.notify_one();
  };

  auto handle_readable = [&](int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;  // stale event for a retired fd
    Conn& c = *it->second;
    if (c.busy) return;  // stale event; the worker owns this connection
    util::Stopwatch parse_watch;
    bool closed = false;
    std::optional<HttpRequest> request;
    try {
      while (true) {
        request = c.reader->poll_request();
        if (request.has_value()) break;
        char buf[16384];
        const std::ptrdiff_t r = c.channel().recv_nonblock(buf, sizeof(buf));
        if (r < 0) break;  // drained the kernel buffer, no full request yet
        if (r == 0) {
          closed = true;
          break;
        }
        c.reader->feed(buf, static_cast<std::size_t>(r));
      }
    } catch (const util::ParseError&) {
      counters_.parse_errors.fetch_add(1, std::memory_order_relaxed);
      try_send_nonblock(fd, bad_400);
      retire(fd);
      return;
    } catch (const std::exception&) {
      // Connection-level failure (real or injected EIO): tear it down.
      counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
      retire(fd);
      return;
    }
    if (request.has_value()) {
      dispatch_request(c, std::move(*request),
                       static_cast<std::uint64_t>(parse_watch.elapsed_ns()));
      return;
    }
    if (closed) {
      if (c.reader->has_partial()) {
        // Peer closed mid-message: the bytes can never parse.
        counters_.parse_errors.fetch_add(1, std::memory_order_relaxed);
      }
      retire(fd);
      return;
    }
    // Would-block with bytes of progress (or none): re-arm for more and
    // refresh the progress deadline — every readable event that did not
    // complete a request restarts the budget, exactly like the per-recv
    // SO_RCVTIMEO the blocking design armed.
    rearm(fd);
    arm_deadline(c);
  };

  bool drain_swept = false;
  bool escalated = false;
  std::chrono::steady_clock::time_point escalate_at{};

  while (true) {
    epoll_event events[256];
    const int n = ::epoll_wait(epoll_fd_, events, 256, kLoopTickMs);
    if (n < 0 && errno != EINTR) break;  // epoll set died; stop() cleans up

    // 1. Drain the wakeup counter so the eventfd goes quiet again.
    for (int i = 0; i < (n > 0 ? n : 0); ++i) {
      if (events[i].data.fd == wake_fd_) {
        std::uint64_t count = 0;
        [[maybe_unused]] const auto r =
            ::read(wake_fd_, &count, sizeof(count));
      }
    }

    // 2. Returns from workers: park (re-arm) or retire each connection.
    {
      std::vector<ConnReturn> rets;
      {
        std::lock_guard<std::mutex> lock(loop_mutex_);
        rets.swap(returns_);
      }
      for (const ConnReturn ret : rets) {
        const auto it = conns.find(ret.fd);
        if (it == conns.end()) continue;
        Conn& c = *it->second;
        c.busy = false;
        if (!ret.rearm || draining_.load(std::memory_order_acquire)) {
          retire(ret.fd);
          continue;
        }
        rearm(ret.fd);
        arm_deadline(c);
      }
    }

    // 3. Readiness events (after returns so a conn returned and instantly
    // readable is served this very iteration; before inbound so a stale
    // event can never hit a fresh connection that reused the fd).
    for (int i = 0; i < (n > 0 ? n : 0); ++i) {
      if (events[i].data.fd == wake_fd_) continue;
      // EPOLLHUP/EPOLLRDHUP/EPOLLERR all resolve through a read attempt:
      // recv reports the close or the error precisely.
      handle_readable(events[i].data.fd);
    }

    // 4. Admit freshly accepted connections.
    {
      std::vector<Socket> fresh;
      {
        std::lock_guard<std::mutex> lock(loop_mutex_);
        fresh.swap(inbound_);
      }
      for (Socket& s : fresh) {
        if (draining_.load(std::memory_order_acquire)) continue;  // closes
        if (options_.max_connections != 0 &&
            conns.size() >= options_.max_connections) {
          // fd backpressure, the accept-path sibling of the queue's 503.
          counters_.rejected_503.fetch_add(1, std::memory_order_relaxed);
          try_send_nonblock(s.fd(), busy_503);
          continue;  // Socket closes on scope exit
        }
        const int fd = s.fd();
        auto conn = std::make_unique<Conn>();
        conn->socket = std::move(s);
        if (options_.fault_injector != nullptr) {
          conn->faulted.emplace(conn->socket, *options_.fault_injector);
        }
        conn->reader.emplace(conn->channel());
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
        ev.data.fd = fd;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
          counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
          continue;  // drop it; Socket closes on scope exit
        }
        Conn& ref = *conn;
        conns.emplace(fd, std::move(conn));
        arm_deadline(ref);
      }
    }

    // 5. Expire progress deadlines (lazy deletion: only an entry whose
    // generation still matches its parked connection is live).
    {
      const auto now = std::chrono::steady_clock::now();
      while (!deadlines.empty() && deadlines.top().at <= now) {
        const DeadlineEntry entry = deadlines.top();
        deadlines.pop();
        const auto it = conns.find(entry.fd);
        if (it == conns.end()) continue;
        Conn& c = *it->second;
        if (c.busy || c.deadline_gen != entry.gen) continue;
        if (c.reader->has_partial()) {
          // The peer stalled mid-request: answer 408 and close.
          counters_.timeouts_408.fetch_add(1, std::memory_order_relaxed);
          try_send_nonblock(entry.fd, timeout_408);
        }
        // Idle keep-alive connection aging out: a non-event, closed cleanly.
        retire(entry.fd);
      }
    }

    // 6. Drain choreography for stop(): one immediate sweep of every parked
    // connection, then an escalation deadline for the in-flight stragglers.
    if (draining_.load(std::memory_order_acquire)) {
      const auto now = std::chrono::steady_clock::now();
      if (!drain_swept) {
        drain_swept = true;
        escalate_at =
            now + std::chrono::milliseconds(options_.drain_deadline_ms);
        std::vector<int> parked;
        parked.reserve(conns.size());
        for (const auto& [fd, c] : conns) {
          if (!c->busy) parked.push_back(fd);
        }
        for (const int fd : parked) retire(fd);
      } else if (!escalated && now >= escalate_at) {
        escalated = true;
        // Workers blocked sending to a dead-reading peer fail fast now.
        for (const auto& [fd, c] : conns) shutdown_connection(fd);
      }
    }

    if (loop_stop_.load(std::memory_order_acquire)) break;
  }

  // Workers are joined by the time loop_stop_ is set: every connection
  // still here is ours to close.
  for (const auto& [fd, c] : conns) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    counters_.connections.fetch_add(1, std::memory_order_relaxed);
  }
  conns.clear();
}

void MiniWebServer::worker_loop() {
  while (true) {
    PendingRequest pr;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !running_.load() || !pending_.empty();
      });
      if (!running_.load()) return;  // stop() 503s whatever is queued
      pr = std::move(pending_.front());
      pending_.pop_front();
    }
    const std::int64_t waited = util::Stopwatch::now_ns() - pr.enqueued_ns;
    tracer_->record_stage(obs::Stage::kQueueWait,
                          waited > 0 ? static_cast<std::uint64_t>(waited)
                                     : 0);
    Conn& conn = *pr.conn;
    bool retire = false;
    process_request(conn, std::move(pr.request), pr.parse_ns, retire);
    {
      std::lock_guard<std::mutex> lock(loop_mutex_);
      returns_.push_back(ConnReturn{conn.socket.fd(), !retire});
    }
    wake_loop();
  }
}

void MiniWebServer::process_request(Conn& conn, HttpRequest request,
                                    std::uint64_t parse_ns, bool& retire) {
  Channel& channel = conn.channel();
  std::optional<HttpRequest> current = std::move(request);
  while (current.has_value()) {
    bool keep =
        options_.keep_alive && current->keep_alive && running_.load();
    if (options_.max_requests_per_connection != 0 &&
        conn.served >= options_.max_requests_per_connection) {
      keep = false;
    }
    try {
      // The request exists: open its trace.  Parse happened before the
      // trace could (the bytes define the request), so its duration is
      // recorded directly; on the first request of a loop hand-off it is
      // the loop's non-blocking parse, on inline-drained pipelined
      // requests it is the poll below.
      obs::TraceScope trace(*tracer_);
      tracer_->record_stage(obs::Stage::kParse, parse_ns);
      obs::SpanScope handler_span(obs::Stage::kHandler);
      dispatch(channel, *current, keep, &conn);
    } catch (const std::exception&) {
      // Connection-level failure (real or injected EIO): tear the
      // connection down; the request mix soak counts these against the
      // injector stats.
      counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
      retire = true;
      return;
    }
    if (!keep) {
      retire = true;
      return;
    }
    // Inline-drain: a pipelined request already complete in the reader's
    // buffer needs no socket I/O, so serve it here instead of bouncing the
    // connection through the loop (whose idle deadline must never apply to
    // bytes that have already arrived — the old design's 408 bug).
    util::Stopwatch parse_watch;
    std::optional<HttpRequest> next;
    try {
      next = conn.reader->poll_request();
    } catch (const util::ParseError&) {
      counters_.parse_errors.fetch_add(1, std::memory_order_relaxed);
      try {
        send_response(channel, 400, "bad request", /*keep_alive=*/false);
      } catch (const std::exception&) {
      }
      retire = true;
      return;
    }
    if (!next.has_value()) return;  // loop re-arms and waits for bytes
    counters_.requests.fetch_add(1, std::memory_order_relaxed);
    conn.served++;
    parse_ns = static_cast<std::uint64_t>(parse_watch.elapsed_ns());
    current = std::move(next);
  }
}

void MiniWebServer::dispatch(Channel& channel, const HttpRequest& request,
                             bool keep, Conn* conn) {
  // Arm the per-request budget as this thread's ambient deadline: every
  // storage call below it — pool miss loads, RetryingStore backoff sleeps —
  // honors it without signature plumbing.
  std::optional<util::DeadlineScope> budget;
  if (options_.request_deadline_ms > 0) {
    budget.emplace(util::Deadline::after_ms(options_.request_deadline_ms));
  }
  try {
    // Introspection endpoints route before the degraded-mode short-circuit:
    // an operator diagnosing an open breaker needs /metrics and /statz to
    // answer precisely while file traffic is being 503'd.
    if (request.method == "GET" && request.path == "/healthz") {
      do_healthz(channel, keep);
      return;
    }
    if (request.method == "GET" && request.path == "/metrics") {
      do_metrics(channel, keep);
      return;
    }
    if (request.method == "GET" && request.path == "/statz") {
      do_statz(channel, keep);
      return;
    }
    // Degraded mode: while the storage breaker is open, answer file
    // requests immediately with 503 + Retry-After instead of queueing
    // work against a store known to be sick.
    if (options_.breaker != nullptr &&
        options_.breaker->state() == util::CircuitBreaker::State::kOpen) {
      counters_.degraded_503.fetch_add(1, std::memory_order_relaxed);
      send_response(channel, 503, "storage degraded", keep,
                    retry_after_header());
      return;
    }
    if (request.method == "GET") {
      do_get(channel, request, keep, conn);
    } else if (request.method == "POST") {
      do_post(channel, request, keep);
    } else {
      send_response(channel, 405, "method not allowed", keep);
    }
  } catch (const util::IoError&) {
    throw;  // socket-level: the connection is gone, abort it
  } catch (const std::exception&) {
    counters_.request_errors.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 500, "internal error", keep);
  }
}

void MiniWebServer::do_healthz(Channel& channel, bool keep) {
  using State = util::CircuitBreaker::State;
  const State state = options_.breaker != nullptr ? options_.breaker->state()
                                                  : State::kClosed;
  const bool ready = state != State::kOpen;
  const std::string body =
      util::cat("status=", ready ? "ok" : "degraded",
                " breaker=", util::circuit_state_name(state), "\n");
  if (ready) {
    send_response(channel, 200, body, keep);
    counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.degraded_503.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 503, body, keep, retry_after_header());
  }
}

void MiniWebServer::do_metrics(Channel& channel, bool keep) {
  std::ostringstream body;
  metrics_->render_prometheus(body);
  send_response(channel, 200, body.str(), keep);
  // Introspection responses are 2xx but never count into
  // get_body_bytes_sent: that counter is the served-byte oracle for file
  // bodies, and scrapes must not perturb it.
  counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
}

void MiniWebServer::do_statz(Channel& channel, bool keep) {
  send_response(channel, 200, render_statz(), keep);
  counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
}

namespace {

void write_server_stats_json(obs::JsonWriter& w, const ServerStats& s) {
  w.begin_object();
  w.kv("accepted", s.accepted);
  w.kv("dropped_accepts", s.dropped_accepts);
  w.kv("rejected_503", s.rejected_503);
  w.kv("connections", s.connections);
  w.kv("requests", s.requests);
  w.kv("responses_ok", s.responses_ok);
  w.kv("get_body_bytes_sent", s.get_body_bytes_sent);
  w.kv("post_body_bytes", s.post_body_bytes);
  w.kv("parse_errors", s.parse_errors);
  w.kv("request_errors", s.request_errors);
  w.kv("io_errors", s.io_errors);
  w.kv("timeouts_408", s.timeouts_408);
  w.kv("degraded_503", s.degraded_503);
  w.kv("drained_503", s.drained_503);
  w.kv("gather_responses", s.gather_responses);
  w.kv("sendfile_responses", s.sendfile_responses);
  w.kv("cache_responses", s.cache_responses);
  w.end_object();
}

}  // namespace

std::string MiniWebServer::render_statz() const {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("running", running_.load());
  w.kv("port", static_cast<std::uint64_t>(options_.port));

  w.key("server");
  write_server_stats_json(w, stats());
  w.key("last_run");
  write_server_stats_json(w, last_run_stats());

  {
    const io::BufferPool& pool = fs_.pool();
    const io::PoolStats ps = pool.stats();
    const auto resident = static_cast<std::uint64_t>(pool.resident_pages());
    const auto capacity = static_cast<std::uint64_t>(pool.capacity_pages());
    w.key("pool");
    w.begin_object();
    w.kv("resident_pages", resident);
    w.kv("capacity_pages", capacity);
    w.kv("occupancy",
         capacity > 0 ? static_cast<double>(resident) /
                            static_cast<double>(capacity)
                      : 0.0);
    w.kv("hits", ps.hits);
    w.kv("misses", ps.misses);
    w.kv("evictions", ps.evictions);
    w.kv("writebacks", ps.writebacks);
    w.kv("prefetches", ps.prefetches);
    w.kv("flush_write_calls", ps.flush_write_calls);
    w.kv("flush_write_pages", ps.flush_write_pages);
    w.kv("gather_read_calls", ps.gather_read_calls);
    w.kv("gather_read_pages", ps.gather_read_pages);
    w.end_object();
  }

  w.key("hot_cache");
  if (hot_cache_ != nullptr) {
    const HotCacheStats hs = hot_cache_->stats();
    w.begin_object();
    w.kv("lookups", hs.lookups);
    w.kv("hits", hs.hits);
    w.kv("insertions", hs.insertions);
    w.kv("invalidations", hs.invalidations);
    w.kv("evictions", hs.evictions);
    w.end_object();
  } else {
    w.null();
  }

  w.key("breaker");
  if (options_.breaker != nullptr) {
    const auto state = options_.breaker->state();
    const auto bs = options_.breaker->stats();
    w.begin_object();
    w.kv("state", util::circuit_state_name(state));
    w.kv("successes", bs.successes);
    w.kv("failures", bs.failures);
    w.kv("trips", bs.trips);
    w.kv("fast_fails", bs.fast_fails);
    w.kv("probes", bs.probes);
    w.kv("retry_after_ms", options_.breaker->retry_after_ms());
    w.end_object();
  } else {
    w.null();
  }

  {
    const io::IoStats& io_stats = fs_.stats();
    w.key("io");
    w.begin_object();
    w.key("ops");
    w.begin_object();
    for (std::size_t i = 0; i < io::kIoOpCount; ++i) {
      const auto op = static_cast<io::IoOp>(i);
      const io::OpSnapshot snap = io_stats.op_snapshot(op);
      if (snap.count == 0 && snap.bytes == 0) continue;
      w.key(io::io_op_name(op));
      w.begin_object();
      w.kv("count", snap.count);
      w.kv("mean_ms", snap.mean_ms);
      w.kv("min_ms", snap.min_ms);
      w.kv("max_ms", snap.max_ms);
      w.kv("bytes", snap.bytes);
      w.end_object();
    }
    w.end_object();
    const io::ResilienceCounters rc = io_stats.resilience();
    w.key("resilience");
    w.begin_object();
    w.kv("retries", rc.retries);
    w.kv("absorbed_faults", rc.absorbed_faults);
    w.kv("breaker_trips", rc.breaker_trips);
    w.kv("breaker_fast_fails", rc.breaker_fast_fails);
    w.kv("deadline_expiries", rc.deadline_expiries);
    w.end_object();
    const io::AsyncCounters ac = io_stats.async_counters();
    w.key("async");
    w.begin_object();
    w.kv("submissions", ac.submissions);
    w.kv("submitted_ops", ac.submitted_ops);
    w.kv("completions", ac.completions);
    w.kv("completion_errors", ac.completion_errors);
    w.kv("submit_syscalls", ac.submit_syscalls);
    w.kv("resubmissions", ac.resubmissions);
    w.kv("bytes_completed", ac.bytes_completed);
    w.kv("syscalls_per_page",
         ac.syscalls_per_page(fs_.pool().page_size()));
    w.end_object();
    w.end_object();
  }

  {
    // Per-stage latency quantiles straight from the tracer's timers.
    w.key("stages");
    w.begin_object();
    for (std::size_t i = 0; i < obs::kStageCount; ++i) {
      const auto stage = static_cast<obs::Stage>(i);
      const std::string timer_name =
          "clio_request_stage_" + std::string(obs::stage_name(stage)) +
          "_ns";
      w.key(obs::stage_name(stage));
      obs::write_histogram_json(w, metrics_->timer(timer_name).snapshot());
    }
    w.end_object();
  }

  w.key("traces");
  w.begin_object();
  w.kv("started", tracer_->traces_started());
  w.kv("spans_opened", tracer_->spans_opened());
  w.kv("spans_closed", tracer_->spans_closed());
  w.end_object();

  w.end_object();
  return out.str();
}

void MiniWebServer::register_metrics() {
  auto reg = [this](const char* name, obs::MetricKind kind,
                    std::function<double()> fn) {
    gauge_regs_.push_back(
        metrics_->register_callback(name, kind, std::move(fn)));
  };
  auto counter = [&](const char* name,
                     const std::atomic<std::uint64_t>& slot) {
    reg(name, obs::MetricKind::kCounter, [&slot] {
      return static_cast<double>(slot.load(std::memory_order_relaxed));
    });
  };

  counter("clio_server_accepted_total", counters_.accepted);
  counter("clio_server_dropped_accepts_total", counters_.dropped_accepts);
  counter("clio_server_rejected_503_total", counters_.rejected_503);
  counter("clio_server_connections_total", counters_.connections);
  counter("clio_server_requests_total", counters_.requests);
  counter("clio_server_responses_ok_total", counters_.responses_ok);
  counter("clio_server_get_body_bytes_sent_total",
          counters_.get_body_bytes_sent);
  counter("clio_server_post_body_bytes_total", counters_.post_body_bytes);
  counter("clio_server_parse_errors_total", counters_.parse_errors);
  counter("clio_server_request_errors_total", counters_.request_errors);
  counter("clio_server_io_errors_total", counters_.io_errors);
  counter("clio_server_timeouts_408_total", counters_.timeouts_408);
  counter("clio_server_degraded_503_total", counters_.degraded_503);
  counter("clio_server_drained_503_total", counters_.drained_503);
  counter("clio_server_gather_responses_total", counters_.gather_responses);
  counter("clio_server_sendfile_responses_total",
          counters_.sendfile_responses);
  counter("clio_server_cache_responses_total", counters_.cache_responses);

  if (hot_cache_ != nullptr) {
    HotObjectCache* cache = hot_cache_.get();
    reg("clio_server_hot_cache_lookups_total", obs::MetricKind::kCounter,
        [cache] { return static_cast<double>(cache->stats().lookups); });
    reg("clio_server_hot_cache_hits_total", obs::MetricKind::kCounter,
        [cache] { return static_cast<double>(cache->stats().hits); });
    reg("clio_server_hot_cache_invalidations_total",
        obs::MetricKind::kCounter, [cache] {
          return static_cast<double>(cache->stats().invalidations);
        });
  }

  io::BufferPool& pool = fs_.pool();
  reg("clio_pool_resident_pages", obs::MetricKind::kGauge,
      [&pool] { return static_cast<double>(pool.resident_pages()); });
  reg("clio_pool_capacity_pages", obs::MetricKind::kGauge,
      [&pool] { return static_cast<double>(pool.capacity_pages()); });
  reg("clio_pool_occupancy_ratio", obs::MetricKind::kGauge, [&pool] {
    const auto capacity = pool.capacity_pages();
    if (capacity == 0) return 0.0;
    return static_cast<double>(pool.resident_pages()) /
           static_cast<double>(capacity);
  });
  reg("clio_pool_hits_total", obs::MetricKind::kCounter,
      [&pool] { return static_cast<double>(pool.stats().hits); });
  reg("clio_pool_misses_total", obs::MetricKind::kCounter,
      [&pool] { return static_cast<double>(pool.stats().misses); });
  reg("clio_pool_evictions_total", obs::MetricKind::kCounter,
      [&pool] { return static_cast<double>(pool.stats().evictions); });
  reg("clio_pool_writebacks_total", obs::MetricKind::kCounter,
      [&pool] { return static_cast<double>(pool.stats().writebacks); });
  reg("clio_pool_prefetches_total", obs::MetricKind::kCounter,
      [&pool] { return static_cast<double>(pool.stats().prefetches); });

  const io::IoStats& io_stats = fs_.stats();
  reg("clio_io_read_ops_total", obs::MetricKind::kCounter, [&io_stats] {
    return static_cast<double>(io_stats.op_snapshot(io::IoOp::kRead).count);
  });
  reg("clio_io_read_bytes_total", obs::MetricKind::kCounter, [&io_stats] {
    return static_cast<double>(io_stats.op_snapshot(io::IoOp::kRead).bytes);
  });
  reg("clio_io_write_ops_total", obs::MetricKind::kCounter, [&io_stats] {
    return static_cast<double>(io_stats.op_snapshot(io::IoOp::kWrite).count);
  });
  reg("clio_io_write_bytes_total", obs::MetricKind::kCounter, [&io_stats] {
    return static_cast<double>(io_stats.op_snapshot(io::IoOp::kWrite).bytes);
  });
  reg("clio_io_retries_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.resilience().retries);
      });
  reg("clio_io_absorbed_faults_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.resilience().absorbed_faults);
      });
  reg("clio_io_deadline_expiries_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.resilience().deadline_expiries);
      });
  // Submission/completion accounting of the async backing path.  The
  // syscalls-per-page gauge is the paper-facing batching ratio: ~1/N on a
  // uring-backed pool that coalesces N pages per submit, ~1/pages-per-op on
  // the thread-pool fallback (one kernel round-trip per op).
  reg("clio_io_async_submissions_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.async_counters().submissions);
      });
  reg("clio_io_async_submitted_ops_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.async_counters().submitted_ops);
      });
  reg("clio_io_async_completions_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.async_counters().completions);
      });
  reg("clio_io_async_completion_errors_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(
            io_stats.async_counters().completion_errors);
      });
  reg("clio_io_async_submit_syscalls_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.async_counters().submit_syscalls);
      });
  reg("clio_io_async_resubmissions_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.async_counters().resubmissions);
      });
  reg("clio_io_async_syscalls_per_page", obs::MetricKind::kGauge,
      [this, &io_stats] {
        return io_stats.async_counters().syscalls_per_page(
            fs_.pool().page_size());
      });

  if (options_.breaker != nullptr) {
    util::CircuitBreaker* breaker = options_.breaker;
    reg("clio_breaker_state", obs::MetricKind::kGauge, [breaker] {
      return static_cast<double>(breaker->state());
    });
    reg("clio_breaker_trips_total", obs::MetricKind::kCounter,
        [breaker] { return static_cast<double>(breaker->stats().trips); });
    reg("clio_breaker_fast_fails_total", obs::MetricKind::kCounter,
        [breaker] {
          return static_cast<double>(breaker->stats().fast_fails);
        });
  }
}

std::string MiniWebServer::retry_after_header() const {
  if (options_.breaker == nullptr) return {};
  // Whole seconds, rounded up: Retry-After's wire granularity — a breaker
  // half a cooldown from probing still tells clients "at least 1 s".
  const double ms = options_.breaker->retry_after_ms();
  const auto secs = static_cast<std::uint64_t>((ms + 999.0) / 1000.0);
  return util::cat("Retry-After: ", secs > 0 ? secs : 1, "\r\n");
}

std::string MiniWebServer::read_file_vm(const std::string& name) {
  const auto result = engine_->call(
      "do_get", {vm::Value::from_obj(std::make_shared<vm::Obj>(name))});
  const auto& arr = result.as_obj()->arr();
  std::string content(arr.size(), '\0');
  for (std::size_t i = 0; i < arr.size(); ++i) {
    content[i] = static_cast<char>(arr[i].as_int() & 0xff);
  }
  return content;
}

void MiniWebServer::do_get(Channel& channel, const HttpRequest& request,
                           bool keep, Conn* conn) {
  RequestSample sample;
  sample.is_get = true;
  util::Stopwatch total;
  const std::string name = request.file_name();
  if (name.empty() || !fs_.exists(name)) {
    send_response(channel, 404, "no such file", keep);
    return;
  }

  // Fast path: the Zipf head straight from memory, no storage round at
  // all.  vm_dispatch bypasses the cache — its point is to *pay* the
  // managed-execution cost.
  if (!options_.vm_dispatch && hot_cache_ != nullptr) {
    if (const auto body = hot_cache_->lookup(name)) {
      sample.bytes = body->size();
      sample.total_ms = total.elapsed_ms();
      record(sample);
      {
        obs::SpanScope send_span(obs::Stage::kSend);
        send_response(channel, 200, *body, keep);
      }
      counters_.cache_responses.fetch_add(1, std::memory_order_relaxed);
      counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
      counters_.get_body_bytes_sent.fetch_add(body->size(),
                                              std::memory_order_relaxed);
      return;
    }
  }

  // Timed portion, as in the paper: open the stream, get at the data,
  // close the stream.  Storage failures convert to responses here — the
  // connection is healthy, the store is not — so only socket-level errors
  // escape to the connection teardown path.  Which bytes actually ride the
  // response is decided here too, in preference order: sendfile (kernel
  // zero-copy, big files on a raw socket over a RealFileStore), pool-page
  // gather (pins sent straight via sendmsg), legacy read-into-string
  // (vm_dispatch, oversized gathers, cache fills).
  enum class SendPath { kBuffered, kGather, kSendfile };
  SendPath path = SendPath::kBuffered;
  std::shared_ptr<const std::string> body;  // buffered path (+ cache fill)
  bool cache_fill = false;
  std::vector<io::BufferPool::PageGuard> guards;     // gather path pins
  std::vector<std::span<const std::byte>> parts;     // gather path views
  io::ManagedFile file;  // stays open across a sendfile send
  int file_fd = -1;
  std::uint64_t body_bytes = 0;
  try {
    obs::SpanScope storage_span(obs::Stage::kStorageOp);
    util::Stopwatch file_watch;
    if (options_.vm_dispatch) {
      body = std::make_shared<const std::string>(read_file_vm(name));
      body_bytes = body->size();
    } else {
      file = fs_.open(name, io::OpenMode::kRead);
      const std::uint64_t size = file.size();
      body_bytes = size;
      io::BufferPool& pool = fs_.pool();
      // sendfile bypasses a FaultChannel entirely, so a faulted connection
      // never qualifies: the injector must see every byte.
      const int raw_fd =
          (conn != nullptr && !conn->faulted.has_value()) ? conn->socket.fd()
                                                          : -1;
      const bool cacheable =
          hot_cache_ != nullptr && size <= hot_cache_->max_object_bytes();
      // Page-gather sizing: never let one response pin more than its fair
      // share of the pool, or concurrent workers could deadlock it.
      const std::size_t page_size = pool.page_size();
      const std::size_t page_count =
          static_cast<std::size_t>((size + page_size - 1) / page_size);
      const std::size_t gather_cap = std::min<std::size_t>(
          64, std::max<std::size_t>(
                  1, pool.capacity_pages() / (2 * options_.worker_threads)));
      if (!cacheable && raw_fd >= 0 && real_store_ != nullptr &&
          sendfile_ok_.load(std::memory_order_relaxed) &&
          options_.sendfile_min_bytes > 0 &&
          size >= options_.sendfile_min_bytes) {
        // The kernel reads the backing file directly: dirty pool pages
        // must land first or the response would be stale.
        pool.flush_file(file.id());
        file_fd = real_store_->native_handle(file.id());
        path = SendPath::kSendfile;
      } else if (!cacheable && options_.zero_copy && size > 0 &&
                 page_count <= gather_cap) {
        // One coalesced readv warms the window, then every pin hits.
        const io::FileId id = file.id();
        pool.prefetch_range(id, 0, page_count);
        guards.reserve(page_count);
        parts.reserve(page_count);
        std::uint64_t remaining = size;
        for (std::size_t p = 0; p < page_count; ++p) {
          guards.push_back(pool.pin(id, p));
          const auto take = static_cast<std::size_t>(
              std::min<std::uint64_t>(remaining, page_size));
          parts.push_back(std::span<const std::byte>(guards.back().data())
                              .subspan(0, take));
          remaining -= take;
        }
        file.close();
        path = SendPath::kGather;
      } else {
        std::string content(static_cast<std::size_t>(size), '\0');
        file.read_exact(std::as_writable_bytes(
            std::span<char>(content.data(), content.size())));
        file.close();
        body = std::make_shared<const std::string>(std::move(content));
        cache_fill = cacheable;
      }
    }
    sample.file_ms = file_watch.elapsed_ms();
  } catch (const util::TransientIoError&) {
    // Retries exhausted, breaker fast-fail or deadline blown: degrade.
    counters_.degraded_503.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 503, "storage unavailable", keep,
                  retry_after_header());
    return;
  } catch (const util::IoError&) {
    counters_.request_errors.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 500, "storage error", keep);
    return;
  }
  sample.bytes = body_bytes;
  sample.total_ms = total.elapsed_ms();
  // Record before transmitting so samples appear in request order even if
  // this worker is preempted mid-send.
  record(sample);
  {
    obs::SpanScope send_span(obs::Stage::kSend);
    switch (path) {
      case SendPath::kBuffered:
        send_response(channel, 200, *body, keep);
        break;
      case SendPath::kGather: {
        const std::string head = response_head(200, body_bytes, keep);
        channel.send_gather(str_bytes(head), parts);
        counters_.gather_responses.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case SendPath::kSendfile: {
        const std::string head = response_head(200, body_bytes, keep);
        channel.send_all(head.data(), head.size());
        if (sendfile_all(conn->socket.fd(), file_fd, 0,
                         static_cast<std::size_t>(body_bytes))) {
          counters_.sendfile_responses.fetch_add(1,
                                                 std::memory_order_relaxed);
        } else {
          // This kernel/fs pairing refuses sendfile outright (no byte
          // moved): remember that, and stream the body the buffered way —
          // the head is already on the wire.  A storage failure now tears
          // the connection (the response cannot be untorn), hence IoError.
          sendfile_ok_.store(false, std::memory_order_relaxed);
          std::string content(static_cast<std::size_t>(body_bytes), '\0');
          try {
            file.read_exact(std::as_writable_bytes(
                std::span<char>(content.data(), content.size())));
          } catch (const std::exception&) {
            throw util::IoError("MiniWebServer: sendfile fallback read failed");
          }
          channel.send_all(content.data(), content.size());
        }
        break;
      }
    }
  }
  guards.clear();  // release the pins before any cache bookkeeping
  if (cache_fill) hot_cache_->insert(name, body);
  // Served-byte accounting happens only after the whole response left:
  // a torn send must not count.
  counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
  counters_.get_body_bytes_sent.fetch_add(body_bytes,
                                          std::memory_order_relaxed);
}

void MiniWebServer::do_post(Channel& channel, const HttpRequest& request,
                            bool keep) {
  RequestSample sample;
  sample.is_get = false;
  util::Stopwatch total;
  // Write-path cache coherence: POSTs only ever create fresh files, but a
  // blanket invalidation is cheap insurance that the response cache can
  // never serve bytes the store has since superseded (docs/SERVING.md).
  if (hot_cache_ != nullptr) hot_cache_->invalidate_all();
  // "The data is written to a new file created by using a random number
  // generator" — a unique counter-derived name keeps writers disjoint.
  const std::uint64_t id =
      post_counter_.fetch_add(1, std::memory_order_relaxed) * 2654435761u;
  const std::string name = "post_" + std::to_string(id % 100000000) + ".dat";
  try {
    obs::SpanScope storage_span(obs::Stage::kStorageOp);
    util::Stopwatch file_watch;
    if (options_.vm_dispatch) {
      std::vector<vm::Value> bytes(request.body.size());
      for (std::size_t i = 0; i < request.body.size(); ++i) {
        bytes[i] = vm::Value::from_int(
            static_cast<unsigned char>(request.body[i]));
      }
      engine_->call("do_post",
                    {vm::Value::from_obj(std::make_shared<vm::Obj>(name)),
                     vm::Value::from_obj(
                         std::make_shared<vm::Obj>(std::move(bytes)))});
    } else {
      auto file = fs_.open(name, io::OpenMode::kTruncate);
      file.write(std::as_bytes(
          std::span<const char>(request.body.data(), request.body.size())));
      file.close();
    }
    sample.file_ms = file_watch.elapsed_ms();
  } catch (const util::TransientIoError&) {
    counters_.degraded_503.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 503, "storage unavailable", keep,
                  retry_after_header());
    return;
  } catch (const util::IoError&) {
    // Torn write / disk full: the store answered definitively, the
    // client's payload did not land — a 500, not a teardown.
    counters_.request_errors.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 500, "storage error", keep);
    return;
  }
  sample.bytes = request.body.size();
  sample.total_ms = total.elapsed_ms();
  record(sample);
  {
    obs::SpanScope send_span(obs::Stage::kSend);
    send_response(channel, 201, name, keep);
  }
  counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
  counters_.post_body_bytes.fetch_add(request.body.size(),
                                      std::memory_order_relaxed);
}

void MiniWebServer::record(RequestSample sample) {
  if (!record_samples_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(samples_mutex_);
  samples_.push_back(sample);
}

std::vector<RequestSample> MiniWebServer::samples() const {
  std::lock_guard<std::mutex> lock(samples_mutex_);
  return samples_;
}

void MiniWebServer::clear_samples() {
  std::lock_guard<std::mutex> lock(samples_mutex_);
  samples_.clear();
}

ServerStats MiniWebServer::stats() const {
  ServerStats s;
  s.accepted = counters_.accepted.load();
  s.dropped_accepts = counters_.dropped_accepts.load();
  s.rejected_503 = counters_.rejected_503.load();
  s.connections = counters_.connections.load();
  s.requests = counters_.requests.load();
  s.responses_ok = counters_.responses_ok.load();
  s.get_body_bytes_sent = counters_.get_body_bytes_sent.load();
  s.post_body_bytes = counters_.post_body_bytes.load();
  s.parse_errors = counters_.parse_errors.load();
  s.request_errors = counters_.request_errors.load();
  s.io_errors = counters_.io_errors.load();
  s.timeouts_408 = counters_.timeouts_408.load();
  s.degraded_503 = counters_.degraded_503.load();
  s.drained_503 = counters_.drained_503.load();
  s.gather_responses = counters_.gather_responses.load();
  s.sendfile_responses = counters_.sendfile_responses.load();
  s.cache_responses = counters_.cache_responses.load();
  return s;
}

void MiniWebServer::reset_stats() {
  counters_.accepted.store(0, std::memory_order_relaxed);
  counters_.dropped_accepts.store(0, std::memory_order_relaxed);
  counters_.rejected_503.store(0, std::memory_order_relaxed);
  counters_.connections.store(0, std::memory_order_relaxed);
  counters_.requests.store(0, std::memory_order_relaxed);
  counters_.responses_ok.store(0, std::memory_order_relaxed);
  counters_.get_body_bytes_sent.store(0, std::memory_order_relaxed);
  counters_.post_body_bytes.store(0, std::memory_order_relaxed);
  counters_.parse_errors.store(0, std::memory_order_relaxed);
  counters_.request_errors.store(0, std::memory_order_relaxed);
  counters_.io_errors.store(0, std::memory_order_relaxed);
  counters_.timeouts_408.store(0, std::memory_order_relaxed);
  counters_.degraded_503.store(0, std::memory_order_relaxed);
  counters_.drained_503.store(0, std::memory_order_relaxed);
  counters_.gather_responses.store(0, std::memory_order_relaxed);
  counters_.sendfile_responses.store(0, std::memory_order_relaxed);
  counters_.cache_responses.store(0, std::memory_order_relaxed);
  clear_samples();
}

ServerStats MiniWebServer::last_run_stats() const {
  std::lock_guard<std::mutex> lock(last_run_mutex_);
  return last_run_stats_;
}

void MiniWebServer::make_cold() {
  if (engine_ != nullptr) engine_->flush_jit_cache();
  // The response cache fronts the pool: a cold pool with a warm response
  // cache would defeat the whole point of the reset.
  if (hot_cache_ != nullptr) hot_cache_->invalidate_all();
  fs_.drop_caches();
}

}  // namespace clio::net
