#include "net/server.hpp"

#include <optional>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "vm/assembler.hpp"

namespace clio::net {
namespace {

/// Managed request handlers, assembled when vm_dispatch is on.  do_get
/// opens the requested file through the syscall bridge, reads it fully into
/// a managed array and returns the array; do_post writes the posted bytes
/// to the named file.  Running these under the interpreter + JIT supplies
/// the managed-execution overhead and the first-request compile delay the
/// paper attributes to the CLI.
constexpr const char* kHandlerSource = R"(
.method do_get 1 3
  ldarg 0
  ldc 0
  syscall file_open
  stloc 0
  ldloc 0
  syscall file_size
  stloc 1
  ldloc 1
  newarr
  stloc 2
  ldloc 0
  ldloc 2
  ldloc 1
  syscall file_read
  pop
  ldloc 0
  syscall file_close
  pop
  ldloc 2
  ret
.end
.method do_post 2 1
  ldarg 0
  ldc 2
  syscall file_open
  stloc 0
  ldloc 0
  ldarg 1
  ldarg 1
  arrlen
  syscall file_write
  pop
  ldloc 0
  syscall file_close
  pop
  ldarg 1
  arrlen
  ret
.end
)";

/// The in-request receive budget TcpListener::accept arms (SO_RCVTIMEO);
/// handle_connection restores it after an idle wait used a tighter one.
constexpr int kInRequestRecvTimeoutMs = 5000;

}  // namespace

MiniWebServer::MiniWebServer(io::ManagedFileSystem& fs, ServerOptions options)
    : fs_(fs), options_(options) {
  util::check<util::ConfigError>(options_.worker_threads >= 1,
                                 "MiniWebServer: need at least one worker");
  util::check<util::ConfigError>(options_.max_pending >= 1,
                                 "MiniWebServer: need a nonempty queue");
  listener_ = std::make_unique<TcpListener>(options_.port);
  options_.port = listener_->port();  // keep the ephemeral pick across stop()
  if (options_.vm_dispatch) {
    engine_ = std::make_unique<vm::ExecutionEngine>(
        vm::assemble(kHandlerSource), options_.vm_options, &fs_);
  }
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  tracer_ = std::make_unique<obs::RequestTracer>(*metrics_,
                                                 options_.trace_seed);
  register_metrics();
}

MiniWebServer::~MiniWebServer() { stop(); }

std::uint16_t MiniWebServer::port() const { return listener_->port(); }

void MiniWebServer::start() {
  if (running_.exchange(true)) return;
  // A (re)started server reports this run only: stop() snapshotted the
  // previous run into last_run_stats_, so zeroing here loses nothing and
  // fixes the stale-counter carry-over across stop()/start() cycles.
  reset_stats();
  // stop() closes the listener so late connectors are refused instead of
  // parked in a backlog nobody drains; a restart re-binds the same port.
  if (!listener_->listening()) {
    listener_ = std::make_unique<TcpListener>(options_.port);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void MiniWebServer::stop() {
  if (!running_.exchange(false)) return;
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Refuse late connectors: closing the listener resets any connection
  // still parked in the backlog, so their clients error out instead of
  // blocking in recv against a server that will never accept them.
  listener_->close();
  // Connections accepted but never picked up are exclusively ours now
  // (workers stop popping once running_ is false): answer each with a
  // clean 503 instead of silently dropping it, so their clients see a
  // well-formed "retry elsewhere" rather than a reset mid-wait.
  {
    std::deque<PendingConn> backlog;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      backlog.swap(pending_);
    }
    for (auto& queued : backlog) {
      counters_.drained_503.fetch_add(1, std::memory_order_relaxed);
      try {
        send_response(queued.socket, 503, "server shutting down",
                      /*keep_alive=*/false, "Retry-After: 1\r\n");
      } catch (const std::exception&) {
      }
    }
  }
  {
    // Unblock workers parked in recv on idle keep-alive connections: their
    // read side reports orderly shutdown, in-flight responses still send.
    std::lock_guard<std::mutex> lock(active_mutex_);
    for (const int fd : active_fds_) shutdown_receives(fd);
  }
  // Graceful drain: give in-flight requests drain_deadline_ms to finish
  // transmitting, then escalate to a full shutdown of the stragglers so
  // the joins below cannot hang on a peer that stopped reading.
  {
    std::unique_lock<std::mutex> lock(active_mutex_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.drain_deadline_ms);
    if (!active_cv_.wait_until(lock, deadline,
                               [this] { return active_fds_.empty(); })) {
      for (const int fd : active_fds_) shutdown_connection(fd);
    }
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // The run is over and the counters are quiesced: snapshot them so the
  // run's totals survive the reset a future start() performs.
  {
    std::lock_guard<std::mutex> lock(last_run_mutex_);
    last_run_stats_ = stats();
  }
}

void MiniWebServer::accept_loop() {
  while (running_.load()) {
    Socket client = listener_->accept(/*timeout_ms=*/20);
    if (!client.valid()) continue;
    util::Stopwatch accept_watch;  // accept return -> enqueued
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->should_drop_accept()) {
      counters_.dropped_accepts.fetch_add(1, std::memory_order_relaxed);
      continue;  // client sees an immediate close
    }
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (pending_.size() >= options_.max_pending) {
      lock.unlock();
      // Backpressure: answer 503 from the accept thread rather than hang
      // the accept loop or queue unboundedly.  Best effort — the reply is
      // small enough to fit the socket buffer of a fresh connection.
      counters_.rejected_503.fetch_add(1, std::memory_order_relaxed);
      try {
        send_response(client, 503, "server busy", /*keep_alive=*/false);
      } catch (const std::exception&) {
      }
      continue;
    }
    pending_.push_back(PendingConn{std::move(client),
                                   util::Stopwatch::now_ns()});
    lock.unlock();
    queue_cv_.notify_one();
    tracer_->record_stage(obs::Stage::kAccept,
                          static_cast<std::uint64_t>(
                              accept_watch.elapsed_ns()));
  }
}

void MiniWebServer::worker_loop() {
  while (true) {
    Socket socket;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !running_.load() || !pending_.empty();
      });
      if (!running_.load()) return;  // stop() closes whatever is queued
      PendingConn conn = std::move(pending_.front());
      pending_.pop_front();
      lock.unlock();
      const std::int64_t waited =
          util::Stopwatch::now_ns() - conn.enqueued_ns;
      tracer_->record_stage(obs::Stage::kQueueWait,
                            waited > 0 ? static_cast<std::uint64_t>(waited)
                                       : 0);
      socket = std::move(conn.socket);
    }
    handle_connection(std::move(socket));
  }
}

void MiniWebServer::handle_connection(Socket socket) {
  const int fd = socket.fd();
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    active_fds_.insert(fd);
  }
  // Close the stop() race: if stop() swept the active set before this fd
  // was registered, its receives must still be shut down — either stop()
  // sees the fd under the lock above, or we see running_ == false here.
  if (!running_.load()) shutdown_receives(fd);
  Channel* channel = &socket;
  std::optional<FaultChannel> faulted;
  if (options_.fault_injector != nullptr) {
    faulted.emplace(socket, *options_.fault_injector);
    channel = &*faulted;
  }
  HttpReader reader(*channel);
  std::size_t served = 0;
  try {
    bool keep = true;
    while (keep) {
      // A connection waiting for its next message is idle: give it the
      // (typically tighter) idle budget, and restore the in-request one
      // once a request actually arrived.
      if (options_.idle_timeout_ms > 0) {
        set_recv_timeout(fd, options_.idle_timeout_ms);
      }
      util::Stopwatch parse_watch;
      auto request = reader.read_request();
      if (!request.has_value()) break;  // clean close / idle timeout
      if (options_.idle_timeout_ms > 0) {
        set_recv_timeout(fd, kInRequestRecvTimeoutMs);
      }
      counters_.requests.fetch_add(1, std::memory_order_relaxed);
      ++served;
      keep = options_.keep_alive && request->keep_alive && running_.load();
      if (options_.max_requests_per_connection != 0 &&
          served >= options_.max_requests_per_connection) {
        keep = false;
      }
      // The request exists: open its trace.  Parse happened before the
      // trace could (the bytes define the request), so its duration is
      // recorded directly; note it includes waiting for the first byte —
      // on a keep-alive connection that is the peer's think time.
      obs::TraceScope trace(*tracer_);
      tracer_->record_stage(obs::Stage::kParse,
                            static_cast<std::uint64_t>(
                                parse_watch.elapsed_ns()));
      obs::SpanScope handler_span(obs::Stage::kHandler);
      dispatch(*channel, *request, keep);
    }
  } catch (const util::TimeoutError&) {
    // The peer stalled mid-request (SO_RCVTIMEO expired with bytes of a
    // message already read): answer 408 and close — the worker is free
    // again, not wedged behind a dribbling client.
    counters_.timeouts_408.fetch_add(1, std::memory_order_relaxed);
    try {
      send_response(*channel, 408, "request timeout", /*keep_alive=*/false);
    } catch (const std::exception&) {
    }
  } catch (const util::ParseError&) {
    counters_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    try {
      send_response(*channel, 400, "bad request", /*keep_alive=*/false);
    } catch (const std::exception&) {
    }
  } catch (const std::exception&) {
    // Connection-level failure (real or injected EIO): tear the connection
    // down; the request mix soak counts these against the injector stats.
    counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.connections.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    active_fds_.erase(fd);
  }
  active_cv_.notify_all();  // stop()'s drain waits on the active set
  // `socket` closes on scope exit, after the fd left the active set.
}

void MiniWebServer::dispatch(Channel& channel, const HttpRequest& request,
                             bool keep) {
  // Arm the per-request budget as this thread's ambient deadline: every
  // storage call below it — pool miss loads, RetryingStore backoff sleeps —
  // honors it without signature plumbing.
  std::optional<util::DeadlineScope> budget;
  if (options_.request_deadline_ms > 0) {
    budget.emplace(util::Deadline::after_ms(options_.request_deadline_ms));
  }
  try {
    // Introspection endpoints route before the degraded-mode short-circuit:
    // an operator diagnosing an open breaker needs /metrics and /statz to
    // answer precisely while file traffic is being 503'd.
    if (request.method == "GET" && request.path == "/healthz") {
      do_healthz(channel, keep);
      return;
    }
    if (request.method == "GET" && request.path == "/metrics") {
      do_metrics(channel, keep);
      return;
    }
    if (request.method == "GET" && request.path == "/statz") {
      do_statz(channel, keep);
      return;
    }
    // Degraded mode: while the storage breaker is open, answer file
    // requests immediately with 503 + Retry-After instead of queueing
    // work against a store known to be sick.
    if (options_.breaker != nullptr &&
        options_.breaker->state() == util::CircuitBreaker::State::kOpen) {
      counters_.degraded_503.fetch_add(1, std::memory_order_relaxed);
      send_response(channel, 503, "storage degraded", keep,
                    retry_after_header());
      return;
    }
    if (request.method == "GET") {
      do_get(channel, request, keep);
    } else if (request.method == "POST") {
      do_post(channel, request, keep);
    } else {
      send_response(channel, 405, "method not allowed", keep);
    }
  } catch (const util::IoError&) {
    throw;  // socket-level: the connection is gone, abort it
  } catch (const std::exception&) {
    counters_.request_errors.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 500, "internal error", keep);
  }
}

void MiniWebServer::do_healthz(Channel& channel, bool keep) {
  using State = util::CircuitBreaker::State;
  const State state = options_.breaker != nullptr ? options_.breaker->state()
                                                  : State::kClosed;
  const bool ready = state != State::kOpen;
  const std::string body =
      util::cat("status=", ready ? "ok" : "degraded",
                " breaker=", util::circuit_state_name(state), "\n");
  if (ready) {
    send_response(channel, 200, body, keep);
    counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.degraded_503.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 503, body, keep, retry_after_header());
  }
}

void MiniWebServer::do_metrics(Channel& channel, bool keep) {
  std::ostringstream body;
  metrics_->render_prometheus(body);
  send_response(channel, 200, body.str(), keep);
  // Introspection responses are 2xx but never count into
  // get_body_bytes_sent: that counter is the served-byte oracle for file
  // bodies, and scrapes must not perturb it.
  counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
}

void MiniWebServer::do_statz(Channel& channel, bool keep) {
  send_response(channel, 200, render_statz(), keep);
  counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
}

namespace {

void write_server_stats_json(obs::JsonWriter& w, const ServerStats& s) {
  w.begin_object();
  w.kv("accepted", s.accepted);
  w.kv("dropped_accepts", s.dropped_accepts);
  w.kv("rejected_503", s.rejected_503);
  w.kv("connections", s.connections);
  w.kv("requests", s.requests);
  w.kv("responses_ok", s.responses_ok);
  w.kv("get_body_bytes_sent", s.get_body_bytes_sent);
  w.kv("post_body_bytes", s.post_body_bytes);
  w.kv("parse_errors", s.parse_errors);
  w.kv("request_errors", s.request_errors);
  w.kv("io_errors", s.io_errors);
  w.kv("timeouts_408", s.timeouts_408);
  w.kv("degraded_503", s.degraded_503);
  w.kv("drained_503", s.drained_503);
  w.end_object();
}

}  // namespace

std::string MiniWebServer::render_statz() const {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("running", running_.load());
  w.kv("port", static_cast<std::uint64_t>(options_.port));

  w.key("server");
  write_server_stats_json(w, stats());
  w.key("last_run");
  write_server_stats_json(w, last_run_stats());

  {
    const io::BufferPool& pool = fs_.pool();
    const io::PoolStats ps = pool.stats();
    const auto resident = static_cast<std::uint64_t>(pool.resident_pages());
    const auto capacity = static_cast<std::uint64_t>(pool.capacity_pages());
    w.key("pool");
    w.begin_object();
    w.kv("resident_pages", resident);
    w.kv("capacity_pages", capacity);
    w.kv("occupancy",
         capacity > 0 ? static_cast<double>(resident) /
                            static_cast<double>(capacity)
                      : 0.0);
    w.kv("hits", ps.hits);
    w.kv("misses", ps.misses);
    w.kv("evictions", ps.evictions);
    w.kv("writebacks", ps.writebacks);
    w.kv("prefetches", ps.prefetches);
    w.kv("flush_write_calls", ps.flush_write_calls);
    w.kv("flush_write_pages", ps.flush_write_pages);
    w.kv("gather_read_calls", ps.gather_read_calls);
    w.kv("gather_read_pages", ps.gather_read_pages);
    w.end_object();
  }

  w.key("breaker");
  if (options_.breaker != nullptr) {
    const auto state = options_.breaker->state();
    const auto bs = options_.breaker->stats();
    w.begin_object();
    w.kv("state", util::circuit_state_name(state));
    w.kv("successes", bs.successes);
    w.kv("failures", bs.failures);
    w.kv("trips", bs.trips);
    w.kv("fast_fails", bs.fast_fails);
    w.kv("probes", bs.probes);
    w.kv("retry_after_ms", options_.breaker->retry_after_ms());
    w.end_object();
  } else {
    w.null();
  }

  {
    const io::IoStats& io_stats = fs_.stats();
    w.key("io");
    w.begin_object();
    w.key("ops");
    w.begin_object();
    for (std::size_t i = 0; i < io::kIoOpCount; ++i) {
      const auto op = static_cast<io::IoOp>(i);
      const io::OpSnapshot snap = io_stats.op_snapshot(op);
      if (snap.count == 0 && snap.bytes == 0) continue;
      w.key(io::io_op_name(op));
      w.begin_object();
      w.kv("count", snap.count);
      w.kv("mean_ms", snap.mean_ms);
      w.kv("min_ms", snap.min_ms);
      w.kv("max_ms", snap.max_ms);
      w.kv("bytes", snap.bytes);
      w.end_object();
    }
    w.end_object();
    const io::ResilienceCounters rc = io_stats.resilience();
    w.key("resilience");
    w.begin_object();
    w.kv("retries", rc.retries);
    w.kv("absorbed_faults", rc.absorbed_faults);
    w.kv("breaker_trips", rc.breaker_trips);
    w.kv("breaker_fast_fails", rc.breaker_fast_fails);
    w.kv("deadline_expiries", rc.deadline_expiries);
    w.end_object();
    const io::AsyncCounters ac = io_stats.async_counters();
    w.key("async");
    w.begin_object();
    w.kv("submissions", ac.submissions);
    w.kv("submitted_ops", ac.submitted_ops);
    w.kv("completions", ac.completions);
    w.kv("completion_errors", ac.completion_errors);
    w.kv("submit_syscalls", ac.submit_syscalls);
    w.kv("resubmissions", ac.resubmissions);
    w.kv("bytes_completed", ac.bytes_completed);
    w.kv("syscalls_per_page",
         ac.syscalls_per_page(fs_.pool().page_size()));
    w.end_object();
    w.end_object();
  }

  {
    // Per-stage latency quantiles straight from the tracer's timers.
    w.key("stages");
    w.begin_object();
    for (std::size_t i = 0; i < obs::kStageCount; ++i) {
      const auto stage = static_cast<obs::Stage>(i);
      const std::string timer_name =
          "clio_request_stage_" + std::string(obs::stage_name(stage)) +
          "_ns";
      w.key(obs::stage_name(stage));
      obs::write_histogram_json(w, metrics_->timer(timer_name).snapshot());
    }
    w.end_object();
  }

  w.key("traces");
  w.begin_object();
  w.kv("started", tracer_->traces_started());
  w.kv("spans_opened", tracer_->spans_opened());
  w.kv("spans_closed", tracer_->spans_closed());
  w.end_object();

  w.end_object();
  return out.str();
}

void MiniWebServer::register_metrics() {
  auto reg = [this](const char* name, obs::MetricKind kind,
                    std::function<double()> fn) {
    gauge_regs_.push_back(
        metrics_->register_callback(name, kind, std::move(fn)));
  };
  auto counter = [&](const char* name,
                     const std::atomic<std::uint64_t>& slot) {
    reg(name, obs::MetricKind::kCounter, [&slot] {
      return static_cast<double>(slot.load(std::memory_order_relaxed));
    });
  };

  counter("clio_server_accepted_total", counters_.accepted);
  counter("clio_server_dropped_accepts_total", counters_.dropped_accepts);
  counter("clio_server_rejected_503_total", counters_.rejected_503);
  counter("clio_server_connections_total", counters_.connections);
  counter("clio_server_requests_total", counters_.requests);
  counter("clio_server_responses_ok_total", counters_.responses_ok);
  counter("clio_server_get_body_bytes_sent_total",
          counters_.get_body_bytes_sent);
  counter("clio_server_post_body_bytes_total", counters_.post_body_bytes);
  counter("clio_server_parse_errors_total", counters_.parse_errors);
  counter("clio_server_request_errors_total", counters_.request_errors);
  counter("clio_server_io_errors_total", counters_.io_errors);
  counter("clio_server_timeouts_408_total", counters_.timeouts_408);
  counter("clio_server_degraded_503_total", counters_.degraded_503);
  counter("clio_server_drained_503_total", counters_.drained_503);

  io::BufferPool& pool = fs_.pool();
  reg("clio_pool_resident_pages", obs::MetricKind::kGauge,
      [&pool] { return static_cast<double>(pool.resident_pages()); });
  reg("clio_pool_capacity_pages", obs::MetricKind::kGauge,
      [&pool] { return static_cast<double>(pool.capacity_pages()); });
  reg("clio_pool_occupancy_ratio", obs::MetricKind::kGauge, [&pool] {
    const auto capacity = pool.capacity_pages();
    if (capacity == 0) return 0.0;
    return static_cast<double>(pool.resident_pages()) /
           static_cast<double>(capacity);
  });
  reg("clio_pool_hits_total", obs::MetricKind::kCounter,
      [&pool] { return static_cast<double>(pool.stats().hits); });
  reg("clio_pool_misses_total", obs::MetricKind::kCounter,
      [&pool] { return static_cast<double>(pool.stats().misses); });
  reg("clio_pool_evictions_total", obs::MetricKind::kCounter,
      [&pool] { return static_cast<double>(pool.stats().evictions); });
  reg("clio_pool_writebacks_total", obs::MetricKind::kCounter,
      [&pool] { return static_cast<double>(pool.stats().writebacks); });
  reg("clio_pool_prefetches_total", obs::MetricKind::kCounter,
      [&pool] { return static_cast<double>(pool.stats().prefetches); });

  const io::IoStats& io_stats = fs_.stats();
  reg("clio_io_read_ops_total", obs::MetricKind::kCounter, [&io_stats] {
    return static_cast<double>(io_stats.op_snapshot(io::IoOp::kRead).count);
  });
  reg("clio_io_read_bytes_total", obs::MetricKind::kCounter, [&io_stats] {
    return static_cast<double>(io_stats.op_snapshot(io::IoOp::kRead).bytes);
  });
  reg("clio_io_write_ops_total", obs::MetricKind::kCounter, [&io_stats] {
    return static_cast<double>(io_stats.op_snapshot(io::IoOp::kWrite).count);
  });
  reg("clio_io_write_bytes_total", obs::MetricKind::kCounter, [&io_stats] {
    return static_cast<double>(io_stats.op_snapshot(io::IoOp::kWrite).bytes);
  });
  reg("clio_io_retries_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.resilience().retries);
      });
  reg("clio_io_absorbed_faults_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.resilience().absorbed_faults);
      });
  reg("clio_io_deadline_expiries_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.resilience().deadline_expiries);
      });
  // Submission/completion accounting of the async backing path.  The
  // syscalls-per-page gauge is the paper-facing batching ratio: ~1/N on a
  // uring-backed pool that coalesces N pages per submit, ~1/pages-per-op on
  // the thread-pool fallback (one kernel round-trip per op).
  reg("clio_io_async_submissions_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.async_counters().submissions);
      });
  reg("clio_io_async_submitted_ops_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.async_counters().submitted_ops);
      });
  reg("clio_io_async_completions_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.async_counters().completions);
      });
  reg("clio_io_async_completion_errors_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(
            io_stats.async_counters().completion_errors);
      });
  reg("clio_io_async_submit_syscalls_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.async_counters().submit_syscalls);
      });
  reg("clio_io_async_resubmissions_total", obs::MetricKind::kCounter,
      [&io_stats] {
        return static_cast<double>(io_stats.async_counters().resubmissions);
      });
  reg("clio_io_async_syscalls_per_page", obs::MetricKind::kGauge,
      [this, &io_stats] {
        return io_stats.async_counters().syscalls_per_page(
            fs_.pool().page_size());
      });

  if (options_.breaker != nullptr) {
    util::CircuitBreaker* breaker = options_.breaker;
    reg("clio_breaker_state", obs::MetricKind::kGauge, [breaker] {
      return static_cast<double>(breaker->state());
    });
    reg("clio_breaker_trips_total", obs::MetricKind::kCounter,
        [breaker] { return static_cast<double>(breaker->stats().trips); });
    reg("clio_breaker_fast_fails_total", obs::MetricKind::kCounter,
        [breaker] {
          return static_cast<double>(breaker->stats().fast_fails);
        });
  }
}

std::string MiniWebServer::retry_after_header() const {
  if (options_.breaker == nullptr) return {};
  // Whole seconds, rounded up: Retry-After's wire granularity — a breaker
  // half a cooldown from probing still tells clients "at least 1 s".
  const double ms = options_.breaker->retry_after_ms();
  const auto secs = static_cast<std::uint64_t>((ms + 999.0) / 1000.0);
  return util::cat("Retry-After: ", secs > 0 ? secs : 1, "\r\n");
}

std::string MiniWebServer::read_file_vm(const std::string& name) {
  const auto result = engine_->call(
      "do_get", {vm::Value::from_obj(std::make_shared<vm::Obj>(name))});
  const auto& arr = result.as_obj()->arr();
  std::string content(arr.size(), '\0');
  for (std::size_t i = 0; i < arr.size(); ++i) {
    content[i] = static_cast<char>(arr[i].as_int() & 0xff);
  }
  return content;
}

void MiniWebServer::do_get(Channel& channel, const HttpRequest& request,
                           bool keep) {
  RequestSample sample;
  sample.is_get = true;
  util::Stopwatch total;
  const std::string name = request.file_name();
  if (name.empty() || !fs_.exists(name)) {
    send_response(channel, 404, "no such file", keep);
    return;
  }
  // Timed portion, as in the paper: open the stream, read the data,
  // close the stream.  Storage failures convert to responses here — the
  // connection is healthy, the store is not — so only socket-level errors
  // escape to the connection teardown path.
  std::string content;
  try {
    obs::SpanScope storage_span(obs::Stage::kStorageOp);
    util::Stopwatch file_watch;
    if (options_.vm_dispatch) {
      content = read_file_vm(name);
    } else {
      auto file = fs_.open(name, io::OpenMode::kRead);
      content.resize(static_cast<std::size_t>(file.size()));
      file.read_exact(std::as_writable_bytes(
          std::span<char>(content.data(), content.size())));
      file.close();
    }
    sample.file_ms = file_watch.elapsed_ms();
  } catch (const util::TransientIoError&) {
    // Retries exhausted, breaker fast-fail or deadline blown: degrade.
    counters_.degraded_503.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 503, "storage unavailable", keep,
                  retry_after_header());
    return;
  } catch (const util::IoError&) {
    counters_.request_errors.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 500, "storage error", keep);
    return;
  }
  sample.bytes = content.size();
  sample.total_ms = total.elapsed_ms();
  // Record before transmitting so samples appear in request order even if
  // this worker is preempted mid-send.
  record(sample);
  {
    obs::SpanScope send_span(obs::Stage::kSend);
    send_response(channel, 200, content, keep);
  }
  // Served-byte accounting happens only after the whole response left:
  // a torn send must not count.
  counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
  counters_.get_body_bytes_sent.fetch_add(content.size(),
                                          std::memory_order_relaxed);
}

void MiniWebServer::do_post(Channel& channel, const HttpRequest& request,
                            bool keep) {
  RequestSample sample;
  sample.is_get = false;
  util::Stopwatch total;
  // "The data is written to a new file created by using a random number
  // generator" — a unique counter-derived name keeps writers disjoint.
  const std::uint64_t id =
      post_counter_.fetch_add(1, std::memory_order_relaxed) * 2654435761u;
  const std::string name = "post_" + std::to_string(id % 100000000) + ".dat";
  try {
    obs::SpanScope storage_span(obs::Stage::kStorageOp);
    util::Stopwatch file_watch;
    if (options_.vm_dispatch) {
      std::vector<vm::Value> bytes(request.body.size());
      for (std::size_t i = 0; i < request.body.size(); ++i) {
        bytes[i] = vm::Value::from_int(
            static_cast<unsigned char>(request.body[i]));
      }
      engine_->call("do_post",
                    {vm::Value::from_obj(std::make_shared<vm::Obj>(name)),
                     vm::Value::from_obj(
                         std::make_shared<vm::Obj>(std::move(bytes)))});
    } else {
      auto file = fs_.open(name, io::OpenMode::kTruncate);
      file.write(std::as_bytes(
          std::span<const char>(request.body.data(), request.body.size())));
      file.close();
    }
    sample.file_ms = file_watch.elapsed_ms();
  } catch (const util::TransientIoError&) {
    counters_.degraded_503.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 503, "storage unavailable", keep,
                  retry_after_header());
    return;
  } catch (const util::IoError&) {
    // Torn write / disk full: the store answered definitively, the
    // client's payload did not land — a 500, not a teardown.
    counters_.request_errors.fetch_add(1, std::memory_order_relaxed);
    send_response(channel, 500, "storage error", keep);
    return;
  }
  sample.bytes = request.body.size();
  sample.total_ms = total.elapsed_ms();
  record(sample);
  {
    obs::SpanScope send_span(obs::Stage::kSend);
    send_response(channel, 201, name, keep);
  }
  counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
  counters_.post_body_bytes.fetch_add(request.body.size(),
                                      std::memory_order_relaxed);
}

void MiniWebServer::record(RequestSample sample) {
  if (!record_samples_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(samples_mutex_);
  samples_.push_back(sample);
}

std::vector<RequestSample> MiniWebServer::samples() const {
  std::lock_guard<std::mutex> lock(samples_mutex_);
  return samples_;
}

void MiniWebServer::clear_samples() {
  std::lock_guard<std::mutex> lock(samples_mutex_);
  samples_.clear();
}

ServerStats MiniWebServer::stats() const {
  ServerStats s;
  s.accepted = counters_.accepted.load();
  s.dropped_accepts = counters_.dropped_accepts.load();
  s.rejected_503 = counters_.rejected_503.load();
  s.connections = counters_.connections.load();
  s.requests = counters_.requests.load();
  s.responses_ok = counters_.responses_ok.load();
  s.get_body_bytes_sent = counters_.get_body_bytes_sent.load();
  s.post_body_bytes = counters_.post_body_bytes.load();
  s.parse_errors = counters_.parse_errors.load();
  s.request_errors = counters_.request_errors.load();
  s.io_errors = counters_.io_errors.load();
  s.timeouts_408 = counters_.timeouts_408.load();
  s.degraded_503 = counters_.degraded_503.load();
  s.drained_503 = counters_.drained_503.load();
  return s;
}

void MiniWebServer::reset_stats() {
  counters_.accepted.store(0, std::memory_order_relaxed);
  counters_.dropped_accepts.store(0, std::memory_order_relaxed);
  counters_.rejected_503.store(0, std::memory_order_relaxed);
  counters_.connections.store(0, std::memory_order_relaxed);
  counters_.requests.store(0, std::memory_order_relaxed);
  counters_.responses_ok.store(0, std::memory_order_relaxed);
  counters_.get_body_bytes_sent.store(0, std::memory_order_relaxed);
  counters_.post_body_bytes.store(0, std::memory_order_relaxed);
  counters_.parse_errors.store(0, std::memory_order_relaxed);
  counters_.request_errors.store(0, std::memory_order_relaxed);
  counters_.io_errors.store(0, std::memory_order_relaxed);
  counters_.timeouts_408.store(0, std::memory_order_relaxed);
  counters_.degraded_503.store(0, std::memory_order_relaxed);
  counters_.drained_503.store(0, std::memory_order_relaxed);
  clear_samples();
}

ServerStats MiniWebServer::last_run_stats() const {
  std::lock_guard<std::mutex> lock(last_run_mutex_);
  return last_run_stats_;
}

void MiniWebServer::make_cold() {
  if (engine_ != nullptr) engine_->flush_jit_cache();
  fs_.drop_caches();
}

}  // namespace clio::net
