#include "net/fault_channel.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace clio::net {

using util::IoError;

NetFaultInjector::NetFaultInjector(NetFaultPlan plan)
    : plan_(plan), rng_(plan.seed) {}

void NetFaultInjector::arm(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = on;
}

bool NetFaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

void NetFaultInjector::set_plan(NetFaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
  rng_ = util::SplitMix64(plan.seed);
}

NetFaultPlan NetFaultInjector::plan() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_;
}

NetFaultStats NetFaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void NetFaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = NetFaultStats{};
  rng_ = util::SplitMix64(plan_.seed);
}

double NetFaultInjector::roll() {
  // 53-bit mantissa from the top of the stream, as util::Rng does.
  return static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
}

bool NetFaultInjector::should_drop_accept() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_) return false;
  stats_.accepts++;
  if (plan_.accept_drop_prob > 0.0 && roll() < plan_.accept_drop_prob) {
    stats_.accept_drops++;
    return true;
  }
  return false;
}

NetFaultInjector::Decision NetFaultInjector::decide_recv() {
  std::lock_guard<std::mutex> lock(mutex_);
  Decision d;
  if (!armed_) return d;
  stats_.recv_calls++;
  if (plan_.latency_prob > 0.0 && roll() < plan_.latency_prob) {
    d.sleep_us = plan_.latency_us;
    stats_.latency_injections++;
  }
  if (plan_.recv_fail_prob > 0.0 && roll() < plan_.recv_fail_prob) {
    d.fail = true;
    stats_.recv_failures++;
    return d;
  }
  if (plan_.recv_disconnect_prob > 0.0 &&
      roll() < plan_.recv_disconnect_prob) {
    d.disconnect = true;
    stats_.recv_disconnects++;
  }
  return d;
}

NetFaultInjector::Decision NetFaultInjector::decide_send(
    std::size_t payload_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  Decision d;
  if (!armed_) return d;
  stats_.send_calls++;
  if (plan_.latency_prob > 0.0 && roll() < plan_.latency_prob) {
    d.sleep_us = plan_.latency_us;
    stats_.latency_injections++;
  }
  if (plan_.send_fail_prob > 0.0 && roll() < plan_.send_fail_prob) {
    d.fail = true;
    stats_.send_failures++;
    return d;
  }
  if (payload_bytes > 0 && plan_.short_send_prob > 0.0 &&
      roll() < plan_.short_send_prob) {
    d.tear = true;
    d.keep_bytes = static_cast<std::size_t>(
        rng_.next() % static_cast<std::uint64_t>(payload_bytes));
    stats_.short_sends++;
  }
  return d;
}

void FaultChannel::send_all(const void* data, std::size_t n) {
  const auto d = injector_.decide_send(n);
  if (d.sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.sleep_us));
  }
  if (d.fail) throw IoError("FaultChannel: injected send failure");
  if (d.tear) {
    // Mid-response disconnect: a prefix reaches the peer, then the
    // connection breaks under the sender.  shutdown, not close — the
    // owner may still have this descriptor registered (see Channel docs).
    inner_.send_all(data, d.keep_bytes);
    inner_.shutdown();
    throw IoError("FaultChannel: injected mid-send disconnect");
  }
  inner_.send_all(data, n);
}

std::size_t FaultChannel::recv_some(void* out, std::size_t n) {
  const auto d = injector_.decide_recv();
  if (d.sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.sleep_us));
  }
  if (d.fail) throw IoError("FaultChannel: injected recv failure");
  if (d.disconnect) {
    // The client vanished: report orderly shutdown, like a FIN mid-request
    // (shutdown, not close — the descriptor number must stay reserved).
    inner_.shutdown();
    return 0;
  }
  return inner_.recv_some(out, n);
}

std::ptrdiff_t FaultChannel::recv_nonblock(void* out, std::size_t n) {
  const auto d = injector_.decide_recv();
  if (d.sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.sleep_us));
  }
  if (d.fail) throw IoError("FaultChannel: injected recv failure");
  if (d.disconnect) {
    inner_.shutdown();
    return 0;
  }
  return inner_.recv_nonblock(out, n);
}

void FaultChannel::send_gather(
    std::span<const std::byte> head,
    std::span<const std::span<const std::byte>> parts) {
  std::size_t total = head.size();
  for (const auto part : parts) total += part.size();
  const auto d = injector_.decide_send(total);
  if (d.sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.sleep_us));
  }
  if (d.fail) throw IoError("FaultChannel: injected send failure");
  if (d.tear) {
    // Send a keep_bytes-long prefix of the gathered stream, then break the
    // connection — identical wire effect to send_all's tear, spread across
    // whichever parts the prefix covers.
    std::size_t left = d.keep_bytes;
    auto send_prefix = [&](std::span<const std::byte> piece) {
      const std::size_t take = std::min(left, piece.size());
      if (take > 0) inner_.send_all(piece.data(), take);
      left -= take;
    };
    send_prefix(head);
    for (const auto part : parts) {
      if (left == 0) break;
      send_prefix(part);
    }
    inner_.shutdown();
    throw IoError("FaultChannel: injected mid-send disconnect");
  }
  inner_.send_gather(head, parts);
}

}  // namespace clio::net
