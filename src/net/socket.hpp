#pragma once

#include <cstdint>
#include <string>

namespace clio::net {

/// RAII POSIX socket descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Sends the whole buffer (throws IoError on failure).
  void send_all(const void* data, std::size_t n) const;
  /// Receives up to n bytes; returns 0 at orderly shutdown.
  [[nodiscard]] std::size_t recv_some(void* out, std::size_t n) const;
  /// Receives exactly n bytes; returns false if the peer closed early.
  [[nodiscard]] bool recv_exact(void* out, std::size_t n) const;

 private:
  int fd_ = -1;
};

/// Loopback TCP listener.  Binding port 0 picks an ephemeral port,
/// retrievable via port() — tests and benches never collide.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks up to timeout_ms for a connection; returns an invalid Socket on
  /// timeout.  Throws IoError if the listener broke.
  [[nodiscard]] Socket accept(int timeout_ms);

  void close();

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port.
[[nodiscard]] Socket connect_loopback(std::uint16_t port);

}  // namespace clio::net
