#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/channel.hpp"

namespace clio::net {

/// RAII POSIX socket descriptor; the real-TCP Channel implementation.
class Socket final : public Channel {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() override { close(); }

  [[nodiscard]] bool valid() const override { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close() override;
  /// shutdown(2) both directions; the fd stays open (and reserved).
  void shutdown() override;

  /// Sends the whole buffer (throws IoError on failure).
  void send_all(const void* data, std::size_t n) override;
  /// Receives up to n bytes; returns 0 at orderly shutdown.
  [[nodiscard]] std::size_t recv_some(void* out, std::size_t n) override;
  /// One recv(MSG_DONTWAIT): > 0 bytes, 0 orderly shutdown, -1 would
  /// block.  Works on a blocking descriptor — the event loop never arms
  /// O_NONBLOCK, so in-flight blocking sends keep their SO_SNDTIMEO bound.
  [[nodiscard]] std::ptrdiff_t recv_nonblock(void* out,
                                             std::size_t n) override;
  /// Gathers head + body into one writev(2) instead of copying them into
  /// a contiguous buffer first.
  void send_parts(std::span<const std::byte> head,
                  std::span<const std::byte> body) override;
  /// Gathers head + N body parts (e.g. pinned buffer-pool pages) into
  /// sendmsg(2) iovec batches — the zero-copy response path.
  void send_gather(std::span<const std::byte> head,
                   std::span<const std::span<const std::byte>> parts) override;

 private:
  int fd_ = -1;
};

/// Disables further receives on a descriptor owned elsewhere: a blocked
/// recv returns 0 as if the peer had closed.  Used by the server to unblock
/// workers parked on idle keep-alive connections during stop().
void shutdown_receives(int fd);

/// Full SHUT_RDWR on a descriptor owned elsewhere: both directions stop,
/// in-flight sends are abandoned.  stop()'s escalation path for
/// connections that blew through the drain deadline.
void shutdown_connection(int fd);

/// (Re)arms SO_RCVTIMEO on a descriptor owned elsewhere: a recv blocked
/// longer than timeout_ms fails with EAGAIN, which Socket::recv_some
/// surfaces as util::TimeoutError.  timeout_ms = 0 disables the timeout.
/// The server uses this to give idle keep-alive connections a tighter
/// budget than the in-request read timeout.
void set_recv_timeout(int fd, int timeout_ms);

/// Best-effort bounded send on a descriptor owned elsewhere: every byte
/// goes out MSG_DONTWAIT, and the first would-block or error abandons the
/// attempt (returns false).  The event loop's control responses (the
/// queue-full 503, 400, 408) use this — a peer that stopped reading must
/// cost the loop nothing, and a fresh or idle connection's socket buffer
/// always has room for a small response.
bool try_send_nonblock(int fd, std::string_view data);

/// Transmits `count` bytes of file_fd starting at `offset` to socket_fd via
/// sendfile(2) — the kernel-side zero-copy response path.  Returns false if
/// sendfile is unusable for this pairing (EINVAL/ENOSYS before any byte
/// moved), so the caller can fall back; throws util::IoError on a
/// connection error or on failure after partial progress (the response is
/// torn either way).
bool sendfile_all(int socket_fd, int file_fd, std::uint64_t offset,
                  std::size_t count);

/// Loopback TCP listener.  Binding port 0 picks an ephemeral port,
/// retrievable via port() — tests and benches never collide.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool listening() const { return socket_.valid(); }

  /// Blocks up to timeout_ms for a connection; returns an invalid Socket on
  /// timeout.  Throws IoError if the listener broke.
  [[nodiscard]] Socket accept(int timeout_ms);

  void close();

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port.
[[nodiscard]] Socket connect_loopback(std::uint16_t port);

}  // namespace clio::net
