#pragma once

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "io/managed_file.hpp"
#include "net/http.hpp"
#include "vm/runtime.hpp"

namespace clio::net {

/// Per-request latency sample, split into the parts the paper's Tables 5-6
/// time: the file I/O portion ("creating an instance of the filestream
/// class, reading the data from the file, and closing the filestream") and
/// the full request turnaround.
struct RequestSample {
  bool is_get = true;
  std::uint64_t bytes = 0;
  double file_ms = 0.0;   ///< time in the managed file operation
  double total_ms = 0.0;  ///< parse + file op (response transmit excluded
                          ///< so samples stay in request order)
};

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = pick an ephemeral port
  /// Route file operations through a mini-CLI method instead of calling
  /// the managed I/O stack directly from native code.  This reproduces the
  /// JIT-compilation component of the first-request latency (Table 6).
  bool vm_dispatch = false;
  vm::EngineOptions vm_options{};
};

/// The paper's micro benchmark (§4): a multi-threaded web server where the
/// main thread accepts connections and spawns one worker thread per
/// connection ("a separate thread to handle each client connection").
/// GET reads the requested file from the managed file system and returns
/// it; POST writes the body to a new file named by a random number
/// generator ("hence, no synchronization is required for write
/// operations").  One request per connection, HTTP/1.0-style.
class MiniWebServer {
 public:
  MiniWebServer(io::ManagedFileSystem& fs, ServerOptions options = {});
  ~MiniWebServer();

  MiniWebServer(const MiniWebServer&) = delete;
  MiniWebServer& operator=(const MiniWebServer&) = delete;

  /// Starts the accept loop.  Idempotent.
  void start();

  /// Stops accepting, joins every worker.  Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Snapshot of per-request samples since start (in completion order).
  [[nodiscard]] std::vector<RequestSample> samples() const;
  void clear_samples();

  /// Simulates an engine restart: flushes the VM's JIT cache and the
  /// buffer pool, so the next request is fully cold (Table 6 setup).
  void make_cold();

  [[nodiscard]] const vm::ExecutionEngine* engine() const {
    return engine_.get();
  }

 private:
  void accept_loop();
  void handle_connection(Socket socket);
  void do_get(const Socket& socket, const HttpRequest& request);
  void do_post(const Socket& socket, const HttpRequest& request);
  std::string read_file_vm(const std::string& name);
  void record(RequestSample sample);

  io::ManagedFileSystem& fs_;
  ServerOptions options_;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<vm::ExecutionEngine> engine_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex workers_mutex_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> post_counter_{0};
  std::vector<RequestSample> samples_;
  mutable std::mutex samples_mutex_;
};

}  // namespace clio::net
