#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "io/file_store.hpp"
#include "io/managed_file.hpp"
#include "net/fault_channel.hpp"
#include "net/hot_cache.hpp"
#include "net/http.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/resilience.hpp"
#include "vm/runtime.hpp"

namespace clio::net {

/// Per-request latency sample, split into the parts the paper's Tables 5-6
/// time: the file I/O portion ("creating an instance of the filestream
/// class, reading the data from the file, and closing the filestream") and
/// the full request turnaround.
struct RequestSample {
  bool is_get = true;
  std::uint64_t bytes = 0;
  double file_ms = 0.0;   ///< time in the managed file operation
  double total_ms = 0.0;  ///< parse + file op (response transmit excluded
                          ///< so samples stay in request order)
};

/// Aggregate serving counters (snapshot; the live counters are atomics).
/// These are the server side of the stress harness's served-byte oracle:
/// get_body_bytes_sent counts only 200 bodies whose send completed, so it
/// must equal the bytes the clients actually received in full responses.
struct ServerStats {
  std::uint64_t accepted = 0;         ///< connections the accept loop took
  std::uint64_t dropped_accepts = 0;  ///< injected accept drops
  std::uint64_t rejected_503 = 0;     ///< backpressure: queue was full
  std::uint64_t connections = 0;      ///< connections fully handled
  std::uint64_t requests = 0;         ///< requests parsed off a connection
  std::uint64_t responses_ok = 0;     ///< 2xx responses fully transmitted
  std::uint64_t get_body_bytes_sent = 0;   ///< 200 GET body bytes, post-send
  std::uint64_t post_body_bytes = 0;  ///< bytes stored by successful POSTs
  std::uint64_t parse_errors = 0;     ///< malformed requests (answered 400)
  std::uint64_t request_errors = 0;   ///< handler failures (answered 500)
  std::uint64_t io_errors = 0;        ///< connections torn down mid-exchange
  std::uint64_t timeouts_408 = 0;     ///< peers stalling mid-request (408)
  std::uint64_t degraded_503 = 0;     ///< storage-unavailable 503 responses
  std::uint64_t drained_503 = 0;      ///< queued backlog 503'd during stop()
  std::uint64_t gather_responses = 0;    ///< 200s sent page-gather zero-copy
  std::uint64_t sendfile_responses = 0;  ///< 200s sent via sendfile(2)
  std::uint64_t cache_responses = 0;     ///< 200s served from the hot cache
};

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = pick an ephemeral port
  /// Route file operations through a mini-CLI method instead of calling
  /// the managed I/O stack directly from native code.  This reproduces the
  /// JIT-compilation component of the first-request latency (Table 6).
  bool vm_dispatch = false;
  vm::EngineOptions vm_options{};
  /// Fixed worker pool size: the accept loop only accepts, workers serve.
  /// (The paper's spawn-per-connection design is worker_threads = N with an
  /// unbounded queue; a fixed pool is what "heavy traffic" deployments run.)
  std::size_t worker_threads = 4;
  /// Bounded hand-off queue between the accept loop and the workers.  When
  /// it is full the accept loop answers 503 and closes instead of queueing
  /// unboundedly — backpressure, not collapse.
  std::size_t max_pending = 64;
  /// Honor HTTP/1.1 keep-alive: one connection carries many requests.  Off,
  /// every response closes (the paper's one-request-per-connection model).
  bool keep_alive = true;
  /// Per-connection request cap when keep-alive is on (0 = unlimited).
  std::size_t max_requests_per_connection = 0;
  /// When set (not owned), every accepted connection is wrapped in a
  /// FaultChannel and the accept path consults should_drop_accept() — the
  /// seeded net-layer fault plan, mirroring FaultStore under the pool.
  NetFaultInjector* fault_injector = nullptr;
  /// Per-request wall-clock budget (0 = none).  Armed as the worker
  /// thread's ambient util::DeadlineScope around each dispatch, so every
  /// storage call the handler makes — including RetryingStore backoff
  /// sleeps — honors it without any signature plumbing.
  std::uint32_t request_deadline_ms = 0;
  /// Receive budget for a keep-alive connection parked *between* requests
  /// (0 = keep the 5 s in-request SO_RCVTIMEO).  An idle connection aging
  /// out is closed cleanly; a peer stalling mid-request still gets 408.
  int idle_timeout_ms = 0;
  /// The storage circuit breaker (not owned; typically shared with the
  /// RetryingStore under fs).  Read for /healthz and for degraded mode:
  /// while it is open, file requests answer 503 + Retry-After without
  /// touching storage.
  util::CircuitBreaker* breaker = nullptr;
  /// How long stop() waits for in-flight requests to finish before
  /// escalating to a full shutdown of the stragglers' connections.
  std::uint32_t drain_deadline_ms = 1000;
  /// Metrics registry the server publishes into (not owned).  nullptr (the
  /// default) gives the server a private registry — the safe choice when
  /// tests run several servers in one process, since metric names are
  /// unique per registry.  Point it at obs::MetricsRegistry::global() (or a
  /// shared instance) to aggregate across components; the server
  /// deregisters its callback metrics on destruction.
  obs::MetricsRegistry* metrics = nullptr;
  /// Seed for deterministic trace IDs (obs::RequestTracer): a fixed seed
  /// yields a fixed ID sequence, so traces are reproducible run-to-run.
  std::uint64_t trace_seed = 0x7ace5eedULL;
  /// Zero-copy GET responses: pin the file's buffer-pool pages and gather
  /// them straight into the socket (sendmsg iovecs) instead of copying the
  /// body into a per-request string first.  Off, every GET takes the
  /// legacy read-into-string path (the paper's model).
  bool zero_copy = true;
  /// Files at least this large whose backing store is a RealFileStore are
  /// sent with sendfile(2) — kernel-side zero-copy, no page pins held for
  /// the duration of the send.  0 disables sendfile (page gathers still
  /// apply).  Responses on a fault-injected channel never sendfile: the
  /// injector must see every byte.
  std::size_t sendfile_min_bytes = 256 * 1024;
  /// Hot-object response cache entries (0 = off).  The Zipf head of the
  /// request mix is served from memory without touching storage; every
  /// POST invalidates the whole cache (see docs/SERVING.md).
  std::size_t hot_cache_entries = 0;
  /// Largest body the hot cache will retain.
  std::size_t hot_cache_max_object_bytes = 128 * 1024;
  /// Cap on connections the event loop will own at once (0 = unlimited).
  /// At the cap, fresh connections get a best-effort 503 and close — fd
  /// backpressure, mirroring the request queue's.
  std::size_t max_connections = 0;
};

/// The paper's §4 web-server micro benchmark, grown into a readiness-
/// driven server: an epoll event loop owns every connection fd, parses
/// requests off ready sockets without blocking, and hands each *request*
/// (not each connection) to a fixed worker pool through a bounded queue —
/// so an idle keep-alive connection costs one fd, never a thread, and
/// concurrency is bounded by fds instead of worker_threads (the C10K
/// step; see docs/SERVING.md for the loop's state machine).  GET reads
/// the requested file from the managed file system and returns it —
/// zero-copy where possible (pool-page gathers, sendfile, hot-object
/// cache); POST writes the body to a new file named by a counter-derived
/// random number ("hence, no synchronization is required for write
/// operations").
class MiniWebServer {
 public:
  MiniWebServer(io::ManagedFileSystem& fs, ServerOptions options = {});
  ~MiniWebServer();

  MiniWebServer(const MiniWebServer&) = delete;
  MiniWebServer& operator=(const MiniWebServer&) = delete;

  /// Starts the accept thread, the epoll event loop and the worker pool.
  /// Idempotent.
  void start();

  /// Graceful drain, then stop.  Stops accepting, answers the queued
  /// request backlog with a clean 503 (instead of silently dropping it),
  /// closes parked idle keep-alive connections, waits up to
  /// drain_deadline_ms for in-flight requests to finish — escalating to a
  /// full connection shutdown on stragglers — and joins everything.
  /// Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Snapshot of per-request samples since start (in completion order).
  [[nodiscard]] std::vector<RequestSample> samples() const;
  void clear_samples();

  /// Toggles per-request sample recording (on by default).  Throughput
  /// runs switch it off: they read aggregate stats() only, and the sample
  /// log is a lock + push on every request.
  void set_record_samples(bool on) { record_samples_.store(on); }

  [[nodiscard]] ServerStats stats() const;

  /// Zeroes the live serving counters and the sample log.  start() calls
  /// this, so a restarted server's stats() describe the current run only —
  /// stale counters no longer leak across stop()/start() cycles.  The
  /// metrics registry is NOT reset: its counters are cumulative across the
  /// server's whole lifetime, which is what a Prometheus scraper expects.
  void reset_stats();

  /// The stats snapshot stop() captured when the previous run ended (all
  /// zeros before the first stop).  This is how callers account a finished
  /// run after a restart wiped the live counters.
  [[nodiscard]] ServerStats last_run_stats() const;

  /// The registry this server publishes into (its private one unless
  /// ServerOptions::metrics pointed elsewhere).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }
  [[nodiscard]] const obs::RequestTracer& tracer() const { return *tracer_; }

  /// Simulates an engine restart: flushes the VM's JIT cache and the
  /// buffer pool, so the next request is fully cold (Table 6 setup).
  /// Safe to call while requests are in flight — pages a worker still
  /// holds pinned simply stay resident.
  void make_cold();

  [[nodiscard]] const vm::ExecutionEngine* engine() const {
    return engine_.get();
  }

  /// Hot-object cache counters (all zero when the cache is off).
  [[nodiscard]] HotCacheStats hot_cache_stats() const {
    return hot_cache_ != nullptr ? hot_cache_->stats() : HotCacheStats{};
  }

 private:
  /// Event-loop connection state (defined in server.cpp): socket, optional
  /// fault decorator, buffered reader, served-request count.  Owned by the
  /// loop; lent to exactly one worker at a time while `busy`.
  struct Conn;

  void accept_loop();
  void event_loop();
  void worker_loop();
  /// Serves `request` on a checked-out connection, then inline-drains any
  /// complete pipelined requests already buffered in its reader (they need
  /// no socket I/O, so bouncing them through the loop would only add
  /// latency — and the old design's arm/disarm bug 408'd them).  Sets
  /// `retire` when the connection must close instead of re-arming.
  void process_request(Conn& conn, HttpRequest request,
                       std::uint64_t parse_ns, bool& retire);
  /// Wakes the event loop (eventfd write); safe from any thread while the
  /// loop is alive.
  void wake_loop();
  void dispatch(Channel& channel, const HttpRequest& request, bool keep,
                Conn* conn);
  void do_healthz(Channel& channel, bool keep);
  void do_metrics(Channel& channel, bool keep);
  void do_statz(Channel& channel, bool keep);
  /// Registers the callback gauges that mirror ServerStats, PoolStats,
  /// breaker and IoStats into the metrics registry (constructor helper).
  void register_metrics();
  [[nodiscard]] std::string render_statz() const;
  /// "Retry-After: N\r\n" derived from the breaker's remaining cooldown
  /// (empty when no breaker is armed).
  [[nodiscard]] std::string retry_after_header() const;
  void do_get(Channel& channel, const HttpRequest& request, bool keep,
              Conn* conn);
  void do_post(Channel& channel, const HttpRequest& request, bool keep);
  std::string read_file_vm(const std::string& name);
  void record(RequestSample sample);

  io::ManagedFileSystem& fs_;
  ServerOptions options_;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<vm::ExecutionEngine> engine_;
  std::thread accept_thread_;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> record_samples_{true};
  std::atomic<std::uint64_t> post_counter_{0};

  // Loop-to-worker hand-off: one entry per parsed request.  Each carries
  // its enqueue timestamp so the worker that pops it can record the
  // queue-wait stage span, and the parse duration the loop measured.
  struct PendingRequest {
    Conn* conn = nullptr;
    HttpRequest request;
    std::int64_t enqueued_ns = 0;
    std::uint64_t parse_ns = 0;
  };
  std::deque<PendingRequest> pending_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;

  // Cross-thread mailboxes into the event loop, guarded by loop_mutex_ and
  // signalled through wake_fd_: freshly accepted sockets in, finished
  // connections back (rearm = park for the next request, else retire).
  struct ConnReturn {
    int fd = -1;
    bool rearm = false;
  };
  std::mutex loop_mutex_;
  std::vector<Socket> inbound_;
  std::vector<ConnReturn> returns_;
  int wake_fd_ = -1;   ///< eventfd; owned, lives from start() to stop()
  int epoll_fd_ = -1;  ///< epoll set; owned, lives from start() to stop()
  std::atomic<bool> draining_{false};   ///< stop(): close parked conns
  std::atomic<bool> loop_stop_{false};  ///< stop(): exit the loop

  // The zero-copy seams, resolved once at construction: the raw store
  // behind fs_ when it is a RealFileStore (sendfile source), and whether
  // sendfile works on this kernel/fs pairing (flips off after the first
  // EINVAL/ENOSYS and stays off).
  io::RealFileStore* real_store_ = nullptr;
  std::atomic<bool> sendfile_ok_{true};
  std::unique_ptr<HotObjectCache> hot_cache_;

  std::vector<RequestSample> samples_;
  mutable std::mutex samples_mutex_;

  struct Counters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> dropped_accepts{0};
    std::atomic<std::uint64_t> rejected_503{0};
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> responses_ok{0};
    std::atomic<std::uint64_t> get_body_bytes_sent{0};
    std::atomic<std::uint64_t> post_body_bytes{0};
    std::atomic<std::uint64_t> parse_errors{0};
    std::atomic<std::uint64_t> request_errors{0};
    std::atomic<std::uint64_t> io_errors{0};
    std::atomic<std::uint64_t> timeouts_408{0};
    std::atomic<std::uint64_t> degraded_503{0};
    std::atomic<std::uint64_t> drained_503{0};
    std::atomic<std::uint64_t> gather_responses{0};
    std::atomic<std::uint64_t> sendfile_responses{0};
    std::atomic<std::uint64_t> cache_responses{0};
  };
  Counters counters_;

  // Observability.  owned_metrics_ must be declared before the members
  // that reference it (tracer_, gauge_regs_) so destruction unregisters
  // callbacks before the registry dies.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::RequestTracer> tracer_;
  std::vector<obs::MetricsRegistry::Registration> gauge_regs_;

  ServerStats last_run_stats_{};
  mutable std::mutex last_run_mutex_;
};

}  // namespace clio::net
