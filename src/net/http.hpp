#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/socket.hpp"

namespace clio::net {

/// Minimal HTTP/1.0-style request, enough for the paper's web server:
/// "the incoming data is read into a buffer and parsed for request type and
/// file name".
struct HttpRequest {
  std::string method;  ///< "GET" or "POST"
  std::string path;    ///< "/file.jpg"
  std::string body;    ///< POST payload

  /// File name: the path without its leading slash.
  [[nodiscard]] std::string file_name() const;
};

struct HttpResponse {
  int status = 0;
  std::string body;
};

/// Reads one request off the socket (start line + headers +
/// Content-Length body).  Returns nullopt on a clean close before any
/// bytes.  Throws ParseError on malformed input.
[[nodiscard]] std::optional<HttpRequest> read_request(const Socket& socket);

/// Serializes and sends a request.
void send_request(const Socket& socket, const HttpRequest& request);

/// Reads one response (status line + headers + Content-Length body).
[[nodiscard]] HttpResponse read_response(const Socket& socket);

/// Serializes and sends a response.
void send_response(const Socket& socket, int status, std::string_view body);

/// Standard reason phrase for the handful of statuses the server emits.
[[nodiscard]] std::string_view reason_phrase(int status);

}  // namespace clio::net
