#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/channel.hpp"
#include "net/socket.hpp"

namespace clio::net {

/// Parser hard limits.  A peer that exceeds either gets a ParseError (the
/// server answers 400 and closes) instead of unbounded buffering.
inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxBodyBytes = 64u * 1024 * 1024;

/// Minimal HTTP request, enough for the paper's web server plus HTTP/1.1
/// keep-alive: "the incoming data is read into a buffer and parsed for
/// request type and file name".
struct HttpRequest {
  std::string method;  ///< "GET" or "POST"
  std::string path;    ///< "/file.jpg"
  std::string body;    ///< POST payload
  /// Negotiated connection persistence: HTTP/1.1 defaults to keep-alive,
  /// HTTP/1.0 to close; a Connection header overrides either way.
  bool keep_alive = false;

  /// File name: the path without its leading slash.
  [[nodiscard]] std::string file_name() const;
};

struct HttpResponse {
  int status = 0;
  std::string body;
  bool keep_alive = false;  ///< what the server's Connection header granted
};

/// Buffered HTTP message reader over a Channel.  Owns the spill buffer, so
/// bytes received past the current message (the next pipelined request, the
/// next keep-alive response) are retained instead of dropped — one reader
/// per connection is the contract for persistent connections.
class HttpReader {
 public:
  explicit HttpReader(Channel& channel) : channel_(&channel) {}

  /// Reads one request (start line + headers + Content-Length body).
  /// Returns nullopt on a clean close — or a receive timeout — before any
  /// bytes of a new message (an idle keep-alive connection aging out is a
  /// non-event, not an error).  Throws ParseError on malformed input,
  /// PeerClosedError on a close mid-message, and TimeoutError on a peer
  /// stalling mid-message (the server answers 408 for those).
  [[nodiscard]] std::optional<HttpRequest> read_request();

  /// Reads one response (status line + headers + Content-Length body).
  [[nodiscard]] HttpResponse read_response();

  /// True if bytes of a further message are already buffered (a pipelined
  /// request arrived together with the current one).
  [[nodiscard]] bool has_buffered() const { return !buffer_.empty(); }

  // Incremental (push) interface — the event loop's side of the reader.
  // The loop receives whatever the socket has, feed()s it, and poll()s for
  // complete requests; the channel is never touched, so a complete
  // pipelined request already in the buffer can never be timed out or
  // blocked on by a recv (it needs no further bytes).

  /// Appends raw received bytes to the spill buffer.
  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

  /// Parses one complete request out of the buffer, consuming its bytes.
  /// Returns nullopt while the buffer holds no complete message (nothing
  /// is consumed — a partial head or body stays until more bytes arrive).
  /// Throws ParseError on malformed input or an oversized header block.
  [[nodiscard]] std::optional<HttpRequest> poll_request();

  /// True if bytes of an incomplete message are buffered — the peer went
  /// quiet (or closed) mid-request rather than between requests.
  [[nodiscard]] bool has_partial() const { return !buffer_.empty(); }

 private:
  [[nodiscard]] std::optional<std::string> read_head();
  [[nodiscard]] std::string take_body(std::size_t length);

  Channel* channel_;
  std::string buffer_;
};

/// One-shot wrappers for single-message exchanges (tests, the 503
/// backpressure reply).  Bytes beyond the first message are discarded —
/// keep-alive connections must hold an HttpReader instead.
[[nodiscard]] std::optional<HttpRequest> read_request(Channel& channel);
[[nodiscard]] HttpResponse read_response(Channel& channel);

/// Serializes and sends a request.  The wire version and Connection header
/// follow request.keep_alive (HTTP/1.1 keep-alive vs close).
void send_request(Channel& channel, const HttpRequest& request);

/// Serializes and sends a response with the given Connection persistence.
/// `extra_headers` is spliced verbatim into the header block — every line
/// must be "Name: value\r\n" (e.g. the Retry-After hint of a degraded-mode
/// 503).
void send_response(Channel& channel, int status, std::string_view body,
                   bool keep_alive = false, std::string_view extra_headers = {});

/// Standard reason phrase for the handful of statuses the server emits.
[[nodiscard]] std::string_view reason_phrase(int status);

}  // namespace clio::net
