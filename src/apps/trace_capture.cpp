#include "apps/trace_capture.hpp"

#include <algorithm>

namespace clio::apps {

TraceCapturingFs::TraceCapturingFs(io::ManagedFileSystem& fs,
                                   std::string sample_name)
    : fs_(fs), recorder_(std::move(sample_name)) {}

RecordingFile TraceCapturingFs::open(const std::string& name,
                                     io::OpenMode mode, std::uint32_t pid) {
  io::ManagedFile file = fs_.open(name, mode);
  std::uint32_t fid;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fid = fid_of(name);
    max_pid_ = std::max(max_pid_, pid);
  }
  record(trace::TraceOp::kOpen, 0, 0, pid, fid);
  return RecordingFile(this, std::move(file), pid, fid);
}

std::uint32_t TraceCapturingFs::fid_of(const std::string& name) {
  auto [it, inserted] =
      fids_.emplace(name, static_cast<std::uint32_t>(fids_.size()));
  return it->second;
}

std::uint32_t TraceCapturingFs::num_files() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::uint32_t>(fids_.size());
}

void TraceCapturingFs::record(trace::TraceOp op, std::uint64_t offset,
                              std::uint64_t length, std::uint32_t pid,
                              std::uint32_t fid) {
  std::lock_guard<std::mutex> lock(mutex_);
  recorder_.record(op, offset, length, pid, fid);
}

trace::TraceFile TraceCapturingFs::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  recorder_.set_counts(
      max_pid_ + 1,
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(fids_.size())));
  return recorder_.finish();
}

RecordingFile::RecordingFile(TraceCapturingFs* capture, io::ManagedFile file,
                             std::uint32_t pid, std::uint32_t fid)
    : capture_(capture), file_(std::move(file)), pid_(pid), fid_(fid) {}

RecordingFile::RecordingFile(RecordingFile&& other) noexcept
    : capture_(other.capture_),
      file_(std::move(other.file_)),
      pid_(other.pid_),
      fid_(other.fid_) {
  other.capture_ = nullptr;
}

RecordingFile& RecordingFile::operator=(RecordingFile&& other) noexcept {
  if (this != &other) {
    if (capture_ != nullptr) {
      try {
        close();
      } catch (...) {
      }
    }
    capture_ = other.capture_;
    file_ = std::move(other.file_);
    pid_ = other.pid_;
    fid_ = other.fid_;
    other.capture_ = nullptr;
  }
  return *this;
}

RecordingFile::~RecordingFile() {
  if (capture_ != nullptr) {
    try {
      close();
    } catch (...) {
      // destructor must not throw
    }
  }
}

std::size_t RecordingFile::read(std::span<std::byte> out) {
  const std::uint64_t offset = file_.position();
  const std::size_t n = file_.read(out);
  capture_->record(trace::TraceOp::kRead, offset, n, pid_, fid_);
  return n;
}

void RecordingFile::read_exact(std::span<std::byte> out) {
  const std::uint64_t offset = file_.position();
  file_.read_exact(out);
  capture_->record(trace::TraceOp::kRead, offset, out.size(), pid_, fid_);
}

void RecordingFile::write(std::span<const std::byte> data) {
  const std::uint64_t offset = file_.position();
  file_.write(data);
  capture_->record(trace::TraceOp::kWrite, offset, data.size(), pid_, fid_);
}

void RecordingFile::seek(std::uint64_t pos) {
  file_.seek(pos);
  capture_->record(trace::TraceOp::kSeek, pos, 0, pid_, fid_);
}

void RecordingFile::close() {
  if (capture_ == nullptr) return;
  file_.close();
  capture_->record(trace::TraceOp::kClose, 0, 0, pid_, fid_);
  capture_ = nullptr;
}

}  // namespace clio::apps
