#include "apps/lu/ooc_lu.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace clio::apps::lu {
namespace {

/// Swaps rows r1 and r2 across all `cols` columns of a column-major panel.
void swap_rows(std::span<double> panel, std::size_t n, std::size_t cols,
               std::size_t r1, std::size_t r2) {
  if (r1 == r2) return;
  for (std::size_t c = 0; c < cols; ++c) {
    std::swap(panel[c * n + r1], panel[c * n + r2]);
  }
}

/// Applies recorded pivots for steps [from, to) to a panel.
void apply_pivots(std::span<double> panel, std::size_t n, std::size_t cols,
                  std::span<const std::size_t> ipiv, std::size_t from,
                  std::size_t to) {
  for (std::size_t c = from; c < to; ++c) {
    swap_rows(panel, n, cols, c, ipiv[c]);
  }
}

}  // namespace

std::vector<std::size_t> OutOfCoreLu::factor(PanelStore& store,
                                             LuStats* stats) const {
  const std::size_t n = store.n();
  std::vector<std::size_t> ipiv(n);
  std::vector<double> w;   // panel being factored
  std::vector<double> lj;  // earlier panel supplying updates

  for (std::size_t k = 0; k < store.num_panels(); ++k) {
    const std::size_t ck = store.panel_start(k);
    const std::size_t wk = store.panel_cols(k);
    store.read_panel(k, w);
    if (stats != nullptr) stats->panel_reads++;

    // Bring W into the current global row order.
    apply_pivots(w, n, wk, ipiv, 0, ck);

    // Updates from every earlier panel (left-looking).
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t cj = store.panel_start(j);
      const std::size_t ej = cj + store.panel_cols(j);
      store.read_panel(j, lj);
      if (stats != nullptr) stats->panel_reads++;
      // The stored panel has pivots applied only through step ej; catch it
      // up to the current order.
      apply_pivots(lj, n, store.panel_cols(j), ipiv, ej, ck);

      // Triangular solve: rows [cj, ej) of W against the unit-lower block
      // of panel j.
      for (std::size_t c = cj; c < ej; ++c) {
        const std::size_t pc = c - cj;  // column within panel j
        for (std::size_t x = 0; x < wk; ++x) {
          const double u = w[x * n + c];
          if (u == 0.0) continue;
          // Subtract u * L(c+1.., c) from W rows below c (within block).
          for (std::size_t r = c + 1; r < ej; ++r) {
            w[x * n + r] -= u * lj[pc * n + r];
          }
        }
      }
      // Schur update: W(ej.., :) -= L(ej.., cj:ej) * U-block.
      for (std::size_t x = 0; x < wk; ++x) {
        for (std::size_t c = cj; c < ej; ++c) {
          const double u = w[x * n + c];
          if (u == 0.0) continue;
          const std::size_t pc = c - cj;
          for (std::size_t r = ej; r < n; ++r) {
            w[x * n + r] -= u * lj[pc * n + r];
          }
          if (stats != nullptr) stats->flops += 2 * (n - ej);
        }
      }
    }

    // Factor the panel's own columns with partial pivoting.
    for (std::size_t c = ck; c < ck + wk; ++c) {
      const std::size_t x = c - ck;
      // Pivot search in column x over rows >= c.
      std::size_t best = c;
      double best_mag = std::fabs(w[x * n + c]);
      for (std::size_t r = c + 1; r < n; ++r) {
        const double mag = std::fabs(w[x * n + r]);
        if (mag > best_mag) {
          best = r;
          best_mag = mag;
        }
      }
      util::check<util::ExecutionError>(best_mag > 0.0,
                                        "OutOfCoreLu: singular matrix");
      ipiv[c] = best;
      swap_rows(w, n, wk, c, best);
      const double diag = w[x * n + c];
      for (std::size_t r = c + 1; r < n; ++r) {
        w[x * n + r] /= diag;
      }
      // Rank-1 update of the remaining columns of this panel.
      for (std::size_t x2 = x + 1; x2 < wk; ++x2) {
        const double u = w[x2 * n + c];
        if (u == 0.0) continue;
        for (std::size_t r = c + 1; r < n; ++r) {
          w[x2 * n + r] -= u * w[x * n + r];
        }
        if (stats != nullptr) stats->flops += 2 * (n - c - 1);
      }
    }

    store.write_panel(k, w);
    if (stats != nullptr) stats->panel_writes++;
  }
  return ipiv;
}

std::vector<double> OutOfCoreLu::load_factors_final_order(
    PanelStore& store, std::span<const std::size_t> ipiv) {
  const std::size_t n = store.n();
  std::vector<double> full(n * n);
  std::vector<double> panel;
  for (std::size_t p = 0; p < store.num_panels(); ++p) {
    const std::size_t start = store.panel_start(p);
    const std::size_t cols = store.panel_cols(p);
    store.read_panel(p, panel);
    apply_pivots(panel, n, cols, ipiv, start + cols, n);
    std::copy(panel.begin(), panel.end(),
              full.begin() + static_cast<std::ptrdiff_t>(start * n));
  }
  return full;
}

std::vector<std::size_t> dense_lu_inplace(std::vector<double>& a,
                                          std::size_t n) {
  util::check<util::ConfigError>(a.size() == n * n,
                                 "dense_lu_inplace: size mismatch");
  std::vector<std::size_t> ipiv(n);
  for (std::size_t c = 0; c < n; ++c) {
    std::size_t best = c;
    double best_mag = std::fabs(a[c * n + c]);
    for (std::size_t r = c + 1; r < n; ++r) {
      const double mag = std::fabs(a[c * n + r]);
      if (mag > best_mag) {
        best = r;
        best_mag = mag;
      }
    }
    util::check<util::ExecutionError>(best_mag > 0.0,
                                      "dense_lu_inplace: singular matrix");
    ipiv[c] = best;
    if (best != c) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[j * n + c], a[j * n + best]);
      }
    }
    const double diag = a[c * n + c];
    for (std::size_t r = c + 1; r < n; ++r) a[c * n + r] /= diag;
    for (std::size_t j = c + 1; j < n; ++j) {
      const double u = a[j * n + c];
      if (u == 0.0) continue;
      for (std::size_t r = c + 1; r < n; ++r) {
        a[j * n + r] -= u * a[c * n + r];
      }
    }
  }
  return ipiv;
}

double lu_residual(std::span<const double> original,
                   std::span<const double> factored,
                   std::span<const std::size_t> ipiv, std::size_t n) {
  // P·A: apply the pivots in step order to the original rows.
  std::vector<double> pa(original.begin(), original.end());
  for (std::size_t c = 0; c < n; ++c) {
    if (ipiv[c] == c) continue;
    for (std::size_t j = 0; j < n; ++j) {
      std::swap(pa[j * n + c], pa[j * n + ipiv[c]]);
    }
  }
  double max_a = 0.0;
  for (double v : original) max_a = std::max(max_a, std::fabs(v));
  if (max_a == 0.0) max_a = 1.0;

  // max |(L·U)(r, j) - PA(r, j)|.
  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t r = 0; r < n; ++r) {
      double sum = 0.0;
      const std::size_t kmax = std::min(r, j);
      for (std::size_t k = 0; k <= kmax; ++k) {
        const double l = (k == r) ? 1.0 : factored[k * n + r];
        sum += l * factored[j * n + k];
      }
      worst = std::max(worst, std::fabs(sum - pa[j * n + r]));
    }
  }
  return worst / max_a;
}

std::vector<double> lu_solve(std::span<const double> factored,
                             std::span<const std::size_t> ipiv,
                             std::span<const double> b, std::size_t n) {
  util::check<util::ConfigError>(b.size() == n, "lu_solve: bad rhs size");
  std::vector<double> x(b.begin(), b.end());
  // Apply P to b.
  for (std::size_t c = 0; c < n; ++c) {
    if (ipiv[c] != c) std::swap(x[c], x[ipiv[c]]);
  }
  // Forward: L y = Pb (unit lower).
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < r; ++k) {
      x[r] -= factored[k * n + r] * x[k];
    }
  }
  // Backward: U x = y.
  for (std::size_t r = n; r-- > 0;) {
    for (std::size_t k = r + 1; k < n; ++k) {
      x[r] -= factored[k * n + r] * x[k];
    }
    x[r] /= factored[r * n + r];
  }
  return x;
}

trace::TraceFile lu_trace_schedule(std::size_t n, std::size_t panel_width,
                                   const std::string& sample) {
  util::check<util::ConfigError>(n >= 1 && panel_width >= 1 && panel_width <= n,
                                 "lu_trace_schedule: bad dimensions");
  trace::TraceRecorder recorder(sample);
  const std::size_t panels = (n + panel_width - 1) / panel_width;
  auto panel_bytes = [&](std::size_t p) {
    const std::size_t start = p * panel_width;
    return static_cast<std::uint64_t>(std::min(panel_width, n - start)) * n *
           sizeof(double);
  };
  recorder.record(trace::TraceOp::kOpen, 0, 0);
  for (std::size_t k = 0; k < panels; ++k) {
    const auto off_k = PanelStore::panel_offset(n, panel_width, k);
    recorder.record(trace::TraceOp::kSeek, off_k, 0);
    recorder.record(trace::TraceOp::kRead, off_k, panel_bytes(k));
    for (std::size_t j = 0; j < k; ++j) {
      const auto off_j = PanelStore::panel_offset(n, panel_width, j);
      recorder.record(trace::TraceOp::kSeek, off_j, 0);
      recorder.record(trace::TraceOp::kRead, off_j, panel_bytes(j));
    }
    recorder.record(trace::TraceOp::kSeek, off_k, 0);
    recorder.record(trace::TraceOp::kWrite, off_k, panel_bytes(k));
  }
  recorder.record(trace::TraceOp::kClose, 0, 0);
  return recorder.finish();
}

}  // namespace clio::apps::lu
