#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/lu/panel_store.hpp"
#include "trace/format.hpp"

namespace clio::apps::lu {

/// Counters of one out-of-core factorization.
struct LuStats {
  std::size_t panel_reads = 0;
  std::size_t panel_writes = 0;
  std::uint64_t flops = 0;
};

/// Out-of-core blocked dense LU with partial pivoting, left-looking over
/// column panels — the decomposition the UMD "LU" workload performs on an
/// out-of-core matrix (cf. Hendrickson & Womble's torus-wrap work the paper
/// cites).  Factoring panel k re-reads every earlier panel, producing the
/// long backward-seek sequences of Table 3.
///
/// Pivot bookkeeping is lazy, LAPACK-style: a stored panel has row swaps
/// applied only up to its own factorization step; the swaps recorded by
/// later panels are applied when the panel is re-read.  factor() returns
/// the global pivot vector ipiv (ipiv[c] = row swapped with row c at
/// elimination step c).
class OutOfCoreLu {
 public:
  /// Factors the matrix held by `store` in place.
  [[nodiscard]] std::vector<std::size_t> factor(PanelStore& store,
                                                LuStats* stats = nullptr) const;

  /// Loads the factored matrix in *final* row order: every panel gets the
  /// pivots recorded after its own step applied, yielding coherent L and U
  /// (P·A = L·U).  Column-major n x n.
  [[nodiscard]] static std::vector<double> load_factors_final_order(
      PanelStore& store, std::span<const std::size_t> ipiv);
};

/// In-core reference: right-looking LU with partial pivoting on a
/// column-major matrix (in place).  Returns ipiv in the same convention.
[[nodiscard]] std::vector<std::size_t> dense_lu_inplace(
    std::vector<double>& a, std::size_t n);

/// Residual max|L·U - P·A| / max|A| given the original matrix and factored
/// output in final row order.
[[nodiscard]] double lu_residual(std::span<const double> original,
                                 std::span<const double> factored,
                                 std::span<const std::size_t> ipiv,
                                 std::size_t n);

/// Solves A x = b using factors in final order + ipiv (forward/back
/// substitution).  Used by tests to validate factorizations end to end.
[[nodiscard]] std::vector<double> lu_solve(std::span<const double> factored,
                                           std::span<const std::size_t> ipiv,
                                           std::span<const double> b,
                                           std::size_t n);

/// Emits the I/O schedule of the out-of-core factorization as a UMD-style
/// trace WITHOUT doing the floating-point work: for each panel, a seek+read
/// of that panel, seek+reads of all earlier panels, and a seek+write back.
/// Used to produce paper-scale (hundreds of MB) traces for the Table 3
/// bench in milliseconds; the schedule is byte-identical to what factor()
/// performs, both delegate to PanelStore::panel_offset.
[[nodiscard]] trace::TraceFile lu_trace_schedule(std::size_t n,
                                                 std::size_t panel_width,
                                                 const std::string& sample);

}  // namespace clio::apps::lu
