#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "apps/trace_capture.hpp"

namespace clio::apps::lu {

/// Out-of-core dense matrix stored as column panels in one file.
///
/// An n x n double matrix is split into panels of `panel_width` columns;
/// panel p occupies a fixed-stride region starting at
/// panel_offset(n, panel_width, p), each panel column-major (element (r, c)
/// of the panel at index c*n + r).  Every panel load is a seek to a large
/// offset followed by one big read — the access shape of the paper's
/// Table 3 ("LU Factorization trace file consists of synchronous I/O reads
/// with the seek and write time recorded").
class PanelStore {
 public:
  PanelStore(TraceCapturingFs& capture, std::string name, std::size_t n,
             std::size_t panel_width, bool create);

  /// Byte offset of a panel within the file (fixed stride, so offsets are
  /// computable without metadata).
  [[nodiscard]] static std::uint64_t panel_offset(std::size_t n,
                                                  std::size_t panel_width,
                                                  std::size_t panel);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t panel_width() const { return panel_width_; }
  [[nodiscard]] std::size_t num_panels() const;
  /// Columns held by panel p (last panel may be narrower).
  [[nodiscard]] std::size_t panel_cols(std::size_t p) const;
  /// First column index of panel p.
  [[nodiscard]] std::size_t panel_start(std::size_t p) const {
    return p * panel_width_;
  }

  /// Writes a panel (data.size() must equal n * panel_cols(p)).
  void write_panel(std::size_t p, std::span<const double> data);

  /// Reads a panel into `out` (resized to n * panel_cols(p)).
  void read_panel(std::size_t p, std::vector<double>& out);

  /// Stores a full column-major n x n matrix, panel by panel.
  void store_matrix(std::span<const double> a);

  /// Loads the full matrix back (column-major n x n).
  [[nodiscard]] std::vector<double> load_matrix();

  void close();

 private:
  TraceCapturingFs& capture_;
  std::string name_;
  std::size_t n_;
  std::size_t panel_width_;
  RecordingFile file_;
};

}  // namespace clio::apps::lu
