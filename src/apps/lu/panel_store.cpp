#include "apps/lu/panel_store.hpp"

#include "util/error.hpp"

namespace clio::apps::lu {

PanelStore::PanelStore(TraceCapturingFs& capture, std::string name,
                       std::size_t n, std::size_t panel_width, bool create)
    : capture_(capture),
      name_(std::move(name)),
      n_(n),
      panel_width_(panel_width) {
  util::check<util::ConfigError>(n >= 1, "PanelStore: n must be >= 1");
  util::check<util::ConfigError>(panel_width >= 1 && panel_width <= n,
                                 "PanelStore: bad panel width");
  file_ = capture_.open(name_, create ? io::OpenMode::kTruncate
                                      : io::OpenMode::kReadWrite);
}

std::uint64_t PanelStore::panel_offset(std::size_t n, std::size_t panel_width,
                                       std::size_t panel) {
  return static_cast<std::uint64_t>(panel) * panel_width * n * sizeof(double);
}

std::size_t PanelStore::num_panels() const {
  return (n_ + panel_width_ - 1) / panel_width_;
}

std::size_t PanelStore::panel_cols(std::size_t p) const {
  util::check<util::ConfigError>(p < num_panels(),
                                 "PanelStore: panel index out of range");
  const std::size_t start = p * panel_width_;
  return std::min(panel_width_, n_ - start);
}

void PanelStore::write_panel(std::size_t p, std::span<const double> data) {
  util::check<util::ConfigError>(data.size() == n_ * panel_cols(p),
                                 "PanelStore: panel size mismatch");
  file_.seek(panel_offset(n_, panel_width_, p));
  file_.write(std::as_bytes(data));
}

void PanelStore::read_panel(std::size_t p, std::vector<double>& out) {
  out.resize(n_ * panel_cols(p));
  file_.seek(panel_offset(n_, panel_width_, p));
  file_.read_exact(std::as_writable_bytes(std::span<double>(out)));
}

void PanelStore::store_matrix(std::span<const double> a) {
  util::check<util::ConfigError>(a.size() == n_ * n_,
                                 "PanelStore: matrix size mismatch");
  for (std::size_t p = 0; p < num_panels(); ++p) {
    const std::size_t start = panel_start(p);
    const std::size_t cols = panel_cols(p);
    write_panel(p, a.subspan(start * n_, cols * n_));
  }
}

std::vector<double> PanelStore::load_matrix() {
  std::vector<double> full(n_ * n_);
  std::vector<double> panel;
  for (std::size_t p = 0; p < num_panels(); ++p) {
    read_panel(p, panel);
    std::copy(panel.begin(), panel.end(),
              full.begin() + static_cast<std::ptrdiff_t>(panel_start(p) * n_));
  }
  return full;
}

void PanelStore::close() {
  if (file_.is_open()) file_.close();
}

}  // namespace clio::apps::lu
