#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/trace_capture.hpp"

namespace clio::apps::titan {

/// Geometry of a tiled multi-band raster, AVHRR-style (the Titan system the
/// paper cites is "a high-performance remote-sensing database" over
/// satellite imagery).
struct RasterConfig {
  std::uint32_t width_tiles = 16;   ///< world width in tiles
  std::uint32_t height_tiles = 16;  ///< world height in tiles
  std::uint32_t tile_size = 64;     ///< pixels per tile edge
  std::uint32_t bands = 2;          ///< spectral bands (e.g. VIS + NIR)
  std::uint64_t seed = 2024;
};

/// One decoded tile of one band: tile_size^2 uint16 samples, row-major.
using TileData = std::vector<std::uint16_t>;

/// Tiled raster file:
///   header: u32 magic 'TTN1', width_tiles, height_tiles, tile_size, bands
///   tiles in band-major, row-major tile order, each tile contiguous:
///     offset = header + ((band * H + ty) * W + tx) * tile_bytes
///
/// Every tile fetch is a seek to the tile's offset plus one contiguous read
/// — the Table 2 access shape (Titan's traces are synchronous reads of
/// whole data blocks).
class RasterStore {
 public:
  static constexpr std::uint32_t kMagic = 0x54544e31;  // "TTN1"
  static constexpr std::uint64_t kHeaderBytes = 20;

  /// Generates a synthetic raster: each band is a smooth deterministic
  /// value-noise field (so spatial aggregates are stable across runs).
  static void generate(TraceCapturingFs& capture, const std::string& name,
                       const RasterConfig& config);

  /// The deterministic sample value generate() places at absolute pixel
  /// (x, y) of `band` — lets tests verify tile reads without golden files.
  [[nodiscard]] static std::uint16_t expected_sample(
      const RasterConfig& config, std::uint32_t band, std::uint32_t x,
      std::uint32_t y);

  /// Opens an existing raster for querying.
  RasterStore(TraceCapturingFs& capture, std::string name);

  [[nodiscard]] const RasterConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t tile_bytes() const;
  [[nodiscard]] std::uint64_t tile_offset(std::uint32_t band,
                                          std::uint32_t tx,
                                          std::uint32_t ty) const;

  /// Reads one tile of one band (seek + read through the managed stack).
  void read_tile(std::uint32_t band, std::uint32_t tx, std::uint32_t ty,
                 TileData& out);

  [[nodiscard]] std::size_t tiles_read() const { return tiles_read_; }

  void close();

 private:
  TraceCapturingFs& capture_;
  std::string name_;
  RasterConfig config_;
  RecordingFile file_;
  std::size_t tiles_read_ = 0;
};

}  // namespace clio::apps::titan
