#include "apps/titan/quadtree.hpp"

#include "util/error.hpp"

namespace clio::apps::titan {

TileQuadtree::TileQuadtree(std::uint32_t width_tiles,
                           std::uint32_t height_tiles)
    : width_(width_tiles), height_(height_tiles) {
  util::check<util::ConfigError>(width_tiles > 0 && height_tiles > 0,
                                 "TileQuadtree: empty grid");
}

std::vector<TileId> TileQuadtree::query(const TileRect& rect) const {
  last_visited_ = 0;
  std::vector<TileId> out;
  if (rect.empty()) return out;
  collect(TileRect{0, 0, width_, height_}, rect, out);
  return out;
}

void TileQuadtree::collect(const TileRect& node, const TileRect& query,
                           std::vector<TileId>& out) const {
  ++last_visited_;
  if (!node.intersects(query)) return;
  if (node.area() == 1) {
    out.push_back(TileId{node.x0, node.y0});
    return;
  }
  // Split the longer axis first so degenerate (non-square, non-power-of-2)
  // grids still terminate; quadrant split when both axes divisible.
  const std::uint32_t mx = node.x0 + std::max(1u, (node.x1 - node.x0) / 2);
  const std::uint32_t my = node.y0 + std::max(1u, (node.y1 - node.y0) / 2);
  const bool split_x = node.x1 - node.x0 > 1;
  const bool split_y = node.y1 - node.y0 > 1;
  if (split_x && split_y) {
    collect(TileRect{node.x0, node.y0, mx, my}, query, out);
    collect(TileRect{mx, node.y0, node.x1, my}, query, out);
    collect(TileRect{node.x0, my, mx, node.y1}, query, out);
    collect(TileRect{mx, my, node.x1, node.y1}, query, out);
  } else if (split_x) {
    collect(TileRect{node.x0, node.y0, mx, node.y1}, query, out);
    collect(TileRect{mx, node.y0, node.x1, node.y1}, query, out);
  } else {
    collect(TileRect{node.x0, node.y0, node.x1, my}, query, out);
    collect(TileRect{node.x0, my, node.x1, node.y1}, query, out);
  }
}

}  // namespace clio::apps::titan
