#include "apps/titan/titan_db.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clio::apps::titan {

TitanDb::TitanDb(RasterStore& store)
    : store_(store),
      index_(store.config().width_tiles, store.config().height_tiles) {
  util::check<util::ConfigError>(store.config().bands >= 2,
                                 "TitanDb: need >= 2 bands for the index");
}

QueryResult TitanDb::range_query(const PixelRect& window) {
  const auto& config = store_.config();
  const std::uint32_t ts = config.tile_size;
  const std::uint32_t world_w = config.width_tiles * ts;
  const std::uint32_t world_h = config.height_tiles * ts;
  util::check<util::ConfigError>(
      window.x0 < window.x1 && window.y0 < window.y1 &&
          window.x1 <= world_w && window.y1 <= world_h,
      "TitanDb: query window out of bounds");

  // Tile footprint of the window.
  const TileRect tiles{window.x0 / ts, window.y0 / ts,
                       (window.x1 + ts - 1) / ts, (window.y1 + ts - 1) / ts};
  const auto hit_tiles = index_.query(tiles);

  QueryResult result;
  result.min_index = 2.0;
  result.max_index = -2.0;
  double sum = 0.0;
  TileData band0;
  TileData band1;
  for (const auto& tile : hit_tiles) {
    store_.read_tile(0, tile.tx, tile.ty, band0);
    store_.read_tile(1, tile.tx, tile.ty, band1);
    result.tiles_fetched += 2;
    // Pixel window within this tile.
    const std::uint32_t px0 = std::max(window.x0, tile.tx * ts) - tile.tx * ts;
    const std::uint32_t py0 = std::max(window.y0, tile.ty * ts) - tile.ty * ts;
    const std::uint32_t px1 =
        std::min(window.x1, (tile.tx + 1) * ts) - tile.tx * ts;
    const std::uint32_t py1 =
        std::min(window.y1, (tile.ty + 1) * ts) - tile.ty * ts;
    for (std::uint32_t y = py0; y < py1; ++y) {
      for (std::uint32_t x = px0; x < px1; ++x) {
        const double v0 = band0[static_cast<std::size_t>(y) * ts + x];
        const double v1 = band1[static_cast<std::size_t>(y) * ts + x];
        const double denom = v0 + v1;
        const double index = denom > 0.0 ? (v1 - v0) / denom : 0.0;
        sum += index;
        result.min_index = std::min(result.min_index, index);
        result.max_index = std::max(result.max_index, index);
        ++result.pixels;
      }
    }
  }
  if (result.pixels > 0) {
    result.mean_index = sum / static_cast<double>(result.pixels);
  } else {
    result.min_index = 0.0;
    result.max_index = 0.0;
  }
  return result;
}

std::vector<PixelRect> TitanDb::make_workload(std::size_t count,
                                              std::uint64_t seed) const {
  const auto& config = store_.config();
  const std::uint32_t ts = config.tile_size;
  const std::uint32_t world_w = config.width_tiles * ts;
  const std::uint32_t world_h = config.height_tiles * ts;
  util::Rng rng(seed);
  // Hotspot centre and size: a quarter of the world.
  const std::uint32_t hx = world_w / 4;
  const std::uint32_t hy = world_h / 4;

  std::vector<PixelRect> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const bool hot = rng.bernoulli(0.6);
    const std::uint32_t max_w = std::max<std::uint32_t>(ts, world_w / 4);
    const std::uint32_t max_h = std::max<std::uint32_t>(ts, world_h / 4);
    const auto w = static_cast<std::uint32_t>(
        ts / 2 + rng.uniform_u64(max_w - ts / 2));
    const auto h = static_cast<std::uint32_t>(
        ts / 2 + rng.uniform_u64(max_h - ts / 2));
    std::uint32_t x0;
    std::uint32_t y0;
    if (hot) {
      x0 = hx + static_cast<std::uint32_t>(rng.uniform_u64(world_w / 4));
      y0 = hy + static_cast<std::uint32_t>(rng.uniform_u64(world_h / 4));
    } else {
      x0 = static_cast<std::uint32_t>(rng.uniform_u64(world_w - w));
      y0 = static_cast<std::uint32_t>(rng.uniform_u64(world_h - h));
    }
    const std::uint32_t x1 = std::min(world_w, x0 + w);
    const std::uint32_t y1 = std::min(world_h, y0 + h);
    if (x0 >= x1 || y0 >= y1) {
      queries.push_back(PixelRect{0, 0, ts, ts});
    } else {
      queries.push_back(PixelRect{x0, y0, x1, y1});
    }
  }
  return queries;
}

}  // namespace clio::apps::titan
