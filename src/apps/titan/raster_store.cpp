#include "apps/titan/raster_store.hpp"

#include <cstring>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clio::apps::titan {
namespace {

/// Deterministic smooth-ish field: a sum of three integer-lattice hash
/// gradients at different scales.  Cheap, seedable, and reproducible at any
/// single pixel — no need to materialize the world to verify a window.
std::uint16_t field_sample(std::uint64_t seed, std::uint32_t band,
                           std::uint32_t x, std::uint32_t y) {
  auto lattice = [&](std::uint32_t gx, std::uint32_t gy, std::uint64_t salt) {
    util::SplitMix64 h(seed ^ salt ^ (static_cast<std::uint64_t>(band) << 56) ^
                       (static_cast<std::uint64_t>(gx) << 28) ^ gy);
    return static_cast<double>(h.next() & 0xffff);
  };
  auto smooth = [&](std::uint32_t scale, std::uint64_t salt) {
    const std::uint32_t gx = x / scale;
    const std::uint32_t gy = y / scale;
    const double fx = static_cast<double>(x % scale) / scale;
    const double fy = static_cast<double>(y % scale) / scale;
    const double v00 = lattice(gx, gy, salt);
    const double v10 = lattice(gx + 1, gy, salt);
    const double v01 = lattice(gx, gy + 1, salt);
    const double v11 = lattice(gx + 1, gy + 1, salt);
    return (v00 * (1 - fx) + v10 * fx) * (1 - fy) +
           (v01 * (1 - fx) + v11 * fx) * fy;
  };
  const double v =
      0.6 * smooth(64, 0x5eed1) + 0.3 * smooth(16, 0x5eed2) +
      0.1 * smooth(4, 0x5eed3);
  return static_cast<std::uint16_t>(v);
}

}  // namespace

void RasterStore::generate(TraceCapturingFs& capture, const std::string& name,
                           const RasterConfig& config) {
  util::check<util::ConfigError>(
      config.width_tiles > 0 && config.height_tiles > 0 &&
          config.tile_size > 0 && config.bands > 0,
      "RasterStore: all dimensions must be positive");

  RecordingFile file = capture.open(name, io::OpenMode::kTruncate);
  std::uint32_t header[5] = {kMagic, config.width_tiles, config.height_tiles,
                             config.tile_size, config.bands};
  file.write(std::as_bytes(std::span<const std::uint32_t>(header)));

  const std::uint32_t ts = config.tile_size;
  TileData tile(static_cast<std::size_t>(ts) * ts);
  for (std::uint32_t band = 0; band < config.bands; ++band) {
    for (std::uint32_t ty = 0; ty < config.height_tiles; ++ty) {
      for (std::uint32_t tx = 0; tx < config.width_tiles; ++tx) {
        for (std::uint32_t py = 0; py < ts; ++py) {
          for (std::uint32_t px = 0; px < ts; ++px) {
            tile[static_cast<std::size_t>(py) * ts + px] = field_sample(
                config.seed, band, tx * ts + px, ty * ts + py);
          }
        }
        file.write(std::as_bytes(std::span<const std::uint16_t>(tile)));
      }
    }
  }
  file.close();
}

std::uint16_t RasterStore::expected_sample(const RasterConfig& config,
                                           std::uint32_t band,
                                           std::uint32_t x, std::uint32_t y) {
  return field_sample(config.seed, band, x, y);
}

RasterStore::RasterStore(TraceCapturingFs& capture, std::string name)
    : capture_(capture), name_(std::move(name)) {
  file_ = capture_.open(name_, io::OpenMode::kRead);
  std::uint32_t header[5];
  file_.read_exact(std::as_writable_bytes(std::span<std::uint32_t>(header)));
  util::check<util::ParseError>(header[0] == kMagic,
                                "RasterStore: bad magic");
  config_.width_tiles = header[1];
  config_.height_tiles = header[2];
  config_.tile_size = header[3];
  config_.bands = header[4];
  // seed is not stored; expected_sample callers supply the original config.
}

std::uint64_t RasterStore::tile_bytes() const {
  return static_cast<std::uint64_t>(config_.tile_size) * config_.tile_size *
         sizeof(std::uint16_t);
}

std::uint64_t RasterStore::tile_offset(std::uint32_t band, std::uint32_t tx,
                                       std::uint32_t ty) const {
  util::check<util::ConfigError>(band < config_.bands &&
                                     tx < config_.width_tiles &&
                                     ty < config_.height_tiles,
                                 "RasterStore: tile index out of range");
  const std::uint64_t index =
      (static_cast<std::uint64_t>(band) * config_.height_tiles + ty) *
          config_.width_tiles +
      tx;
  return kHeaderBytes + index * tile_bytes();
}

void RasterStore::read_tile(std::uint32_t band, std::uint32_t tx,
                            std::uint32_t ty, TileData& out) {
  out.resize(static_cast<std::size_t>(config_.tile_size) * config_.tile_size);
  file_.seek(tile_offset(band, tx, ty));
  file_.read_exact(std::as_writable_bytes(std::span<std::uint16_t>(out)));
  ++tiles_read_;
}

void RasterStore::close() {
  if (file_.is_open()) file_.close();
}

}  // namespace clio::apps::titan
