#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/titan/quadtree.hpp"
#include "apps/titan/raster_store.hpp"

namespace clio::apps::titan {

/// Result of one spatial aggregate query.
struct QueryResult {
  std::uint64_t pixels = 0;     ///< pixels inside the query window
  std::size_t tiles_fetched = 0;
  double mean_index = 0.0;      ///< mean normalized difference index
  double min_index = 0.0;
  double max_index = 0.0;
};

/// Pixel-space query window, [x0, x1) x [y0, y1).
struct PixelRect {
  std::uint32_t x0 = 0;
  std::uint32_t y0 = 0;
  std::uint32_t x1 = 0;
  std::uint32_t y1 = 0;
};

/// Mini remote-sensing query engine over a RasterStore, after Titan
/// (Chang et al., ICDE'97): a spatial range query locates intersecting
/// tiles via the quadtree, fetches each tile of each required band from
/// disk, and computes a normalized-difference index
/// (band1 - band0) / (band1 + band0) over the window — the NDVI-style
/// post-processing Titan serves.
class TitanDb {
 public:
  explicit TitanDb(RasterStore& store);

  /// Runs one aggregate query over the window.
  [[nodiscard]] QueryResult range_query(const PixelRect& window);

  /// Generates a batch of random query windows with a popularity hotspot
  /// (queries cluster around a region, as scientists revisit areas of
  /// interest).  Deterministic per seed.
  [[nodiscard]] std::vector<PixelRect> make_workload(std::size_t count,
                                                     std::uint64_t seed) const;

  [[nodiscard]] const TileQuadtree& index() const { return index_; }

 private:
  RasterStore& store_;
  TileQuadtree index_;
};

}  // namespace clio::apps::titan
