#pragma once

#include <cstdint>
#include <vector>

namespace clio::apps::titan {

/// Axis-aligned rectangle in tile coordinates, [x0, x1) x [y0, y1).
struct TileRect {
  std::uint32_t x0 = 0;
  std::uint32_t y0 = 0;
  std::uint32_t x1 = 0;
  std::uint32_t y1 = 0;

  [[nodiscard]] bool empty() const { return x0 >= x1 || y0 >= y1; }
  [[nodiscard]] std::uint64_t area() const {
    return empty() ? 0
                   : static_cast<std::uint64_t>(x1 - x0) * (y1 - y0);
  }
  [[nodiscard]] bool intersects(const TileRect& other) const {
    return x0 < other.x1 && other.x0 < x1 && y0 < other.y1 && other.y0 < y1;
  }
  [[nodiscard]] bool contains(std::uint32_t x, std::uint32_t y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }
  bool operator==(const TileRect&) const = default;
};

/// A tile id (tx, ty).
struct TileId {
  std::uint32_t tx = 0;
  std::uint32_t ty = 0;
  bool operator==(const TileId&) const = default;
};

/// Region quadtree over the tile grid — Titan's spatial index.  The tree
/// recursively splits the grid into four quadrants down to single tiles;
/// range queries descend only into quadrants intersecting the query
/// rectangle, visiting O(answer + perimeter) nodes.
class TileQuadtree {
 public:
  TileQuadtree(std::uint32_t width_tiles, std::uint32_t height_tiles);

  /// Tiles intersecting `query`, in deterministic (node traversal) order.
  [[nodiscard]] std::vector<TileId> query(const TileRect& query) const;

  /// Number of internal+leaf nodes the last query() visited (diagnostics;
  /// tests assert pruning happens).
  [[nodiscard]] std::size_t last_visited() const { return last_visited_; }

  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }

 private:
  void collect(const TileRect& node, const TileRect& query,
               std::vector<TileId>& out) const;

  std::uint32_t width_;
  std::uint32_t height_;
  mutable std::size_t last_visited_ = 0;
};

}  // namespace clio::apps::titan
