#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace clio::apps::dmine {

/// Fixed-width basket records for the managed-vs-native candidate-counting
/// benchmark axis.  Apriori's inner loop — for every basket, for every
/// candidate itemset, bump the support count if the basket contains all the
/// candidate's items — is the Dmine kernel the paper times.  To port that
/// loop to the VM assembler without variable-length record parsing, baskets
/// are encoded as fixed 16-byte records:
///
///   byte 0      item count n (0..15)
///   bytes 1..n  item ids as u8, sorted ascending
///   bytes n+1.. zero padding
///
/// Records never straddle a power-of-two read chunk, so both the native
/// streaming counter and the VM module can scan chunk-by-chunk.
inline constexpr std::size_t kFixedRecordBytes = 16;
inline constexpr std::size_t kMaxFixedItems = kFixedRecordBytes - 1;

/// Encodes baskets into the fixed-record stream.  Throws ConfigError on a
/// basket with more than kMaxFixedItems items.
[[nodiscard]] std::vector<std::byte> encode_fixed_records(
    const std::vector<std::vector<std::uint8_t>>& baskets);

/// Flattens candidate k-itemsets into a contiguous id buffer (candidate i
/// occupies bytes [i*k, (i+1)*k)).  Every candidate must have exactly k
/// items; throws ConfigError otherwise.
[[nodiscard]] std::vector<std::byte> pack_candidates(
    const std::vector<std::vector<std::uint8_t>>& candidates,
    std::size_t k);

/// The counting kernel over one chunk of whole records: returns the total
/// support summed across all candidates (a basket containing all k items of
/// a candidate contributes 1 for that candidate).  `records.size()` must be
/// a multiple of kFixedRecordBytes and `candidates.size()` a multiple of k.
[[nodiscard]] std::uint64_t count_support(std::span<const std::byte> records,
                                          std::span<const std::byte> candidates,
                                          std::size_t k);

}  // namespace clio::apps::dmine
