#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/trace_capture.hpp"

namespace clio::apps::dmine {

/// Parameters of the synthetic retail database, in the spirit of the
/// IBM/Agrawal quest generator the UMD Dmine workload mined: baskets of
/// Poisson-ish size over a Zipf-popular item universe, salted with planted
/// frequent patterns so association rules exist to find.
struct StoreConfig {
  std::uint32_t num_transactions = 2000;
  std::uint32_t num_items = 200;          ///< item universe size
  double mean_basket = 8.0;               ///< average items per basket
  double zipf_exponent = 0.8;             ///< item popularity skew
  /// Patterns planted into a fraction of baskets (so their subsets become
  /// frequent).  Each inner vector is an itemset inserted together.
  std::vector<std::vector<std::uint32_t>> planted;
  double plant_probability = 0.25;        ///< chance a basket gets a pattern
  std::uint64_t seed = 1234;
};

/// On-disk layout:
///   u32 magic 'DMN1', u32 num_transactions, u32 num_items
///   per transaction: u32 count, count * u32 item ids (sorted, unique)
///
/// Scans stream through a RecordingFile so every pass of the mining
/// algorithm contributes synchronous sequential reads to the captured
/// trace — the access shape of the paper's Table 1 workload.
class TransactionStore {
 public:
  static constexpr std::uint32_t kMagic = 0x444d4e31;  // "DMN1"

  /// Generates and writes a synthetic database file.
  static void generate(TraceCapturingFs& capture, const std::string& name,
                       const StoreConfig& config);

  /// Opens an existing database for scanning.
  TransactionStore(TraceCapturingFs& capture, std::string name);

  [[nodiscard]] std::uint32_t num_transactions() const {
    return num_transactions_;
  }
  [[nodiscard]] std::uint32_t num_items() const { return num_items_; }

  /// Streams every transaction through `visit(items)`.  Each call to scan
  /// re-opens the file (one mining pass = one full scan), reading in
  /// `read_block` byte chunks.
  template <typename Visitor>
  void scan(Visitor&& visit) const;

 private:
  class Scanner;

  TraceCapturingFs& capture_;
  std::string name_;
  std::uint32_t num_transactions_ = 0;
  std::uint32_t num_items_ = 0;
};

/// Buffered reader used by scan(); exposed for tests.
class TransactionStore::Scanner {
 public:
  Scanner(RecordingFile file, std::uint64_t payload_offset);

  /// Reads the next transaction into `items`; false at end of data.
  bool next(std::vector<std::uint32_t>& items);

 private:
  bool fill(std::size_t need);

  RecordingFile file_;
  std::vector<std::byte> buffer_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  bool eof_ = false;
};

template <typename Visitor>
void TransactionStore::scan(Visitor&& visit) const {
  RecordingFile file = capture_.open(name_, io::OpenMode::kRead);
  Scanner scanner(std::move(file), 12);
  std::vector<std::uint32_t> items;
  while (scanner.next(items)) {
    visit(static_cast<const std::vector<std::uint32_t>&>(items));
  }
}

}  // namespace clio::apps::dmine
