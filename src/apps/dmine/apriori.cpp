#include "apps/dmine/apriori.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"

namespace clio::apps::dmine {
namespace {

/// True if every item of `subset` occurs in the sorted `basket`.
bool contains_all(const std::vector<std::uint32_t>& basket,
                  const std::vector<std::uint32_t>& subset) {
  auto it = basket.begin();
  for (auto item : subset) {
    it = std::lower_bound(it, basket.end(), item);
    if (it == basket.end() || *it != item) return false;
    ++it;
  }
  return true;
}

}  // namespace

const ItemSet* MiningResult::find(
    const std::vector<std::uint32_t>& items) const {
  if (items.empty() || items.size() > frequent.size()) return nullptr;
  const auto& level = frequent[items.size() - 1];
  for (const auto& set : level) {
    if (set.items == items) return &set;
  }
  return nullptr;
}

Apriori::Apriori(MiningConfig config) : config_(config) {
  util::check<util::ConfigError>(
      config.min_support > 0.0 && config.min_support <= 1.0,
      "Apriori: min_support must be in (0,1]");
  util::check<util::ConfigError>(
      config.min_confidence >= 0.0 && config.min_confidence <= 1.0,
      "Apriori: min_confidence must be in [0,1]");
  util::check<util::ConfigError>(config.max_itemset_size >= 1,
                                 "Apriori: max_itemset_size must be >= 1");
}

std::vector<std::vector<std::uint32_t>> Apriori::generate_candidates(
    const std::vector<ItemSet>& frequent_prev) const {
  // Join step: combine pairs sharing the first k-1 items; prune step: all
  // (k-1)-subsets must be frequent.
  std::set<std::vector<std::uint32_t>> prev_set;
  for (const auto& s : frequent_prev) prev_set.insert(s.items);

  std::vector<std::vector<std::uint32_t>> candidates;
  for (std::size_t a = 0; a < frequent_prev.size(); ++a) {
    for (std::size_t b = a + 1; b < frequent_prev.size(); ++b) {
      const auto& x = frequent_prev[a].items;
      const auto& y = frequent_prev[b].items;
      if (!std::equal(x.begin(), x.end() - 1, y.begin(), y.end() - 1)) {
        continue;
      }
      std::vector<std::uint32_t> joined = x;
      joined.push_back(y.back());
      if (joined[joined.size() - 2] > joined.back()) {
        std::swap(joined[joined.size() - 2], joined[joined.size() - 1]);
      }
      // Prune: every (k-1)-subset must be frequent.
      bool ok = true;
      std::vector<std::uint32_t> subset(joined.size() - 1);
      for (std::size_t skip = 0; ok && skip < joined.size(); ++skip) {
        subset.clear();
        for (std::size_t i = 0; i < joined.size(); ++i) {
          if (i != skip) subset.push_back(joined[i]);
        }
        ok = prev_set.contains(subset);
      }
      if (ok) candidates.push_back(std::move(joined));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

MiningResult Apriori::run(const TransactionStore& store) const {
  MiningResult result;
  const auto min_count = static_cast<std::uint32_t>(
      config_.min_support * store.num_transactions() + 0.999999);

  // Pass 1: count singletons.
  std::vector<std::uint32_t> single_counts(store.num_items(), 0);
  store.scan([&](const std::vector<std::uint32_t>& basket) {
    for (auto item : basket) single_counts.at(item)++;
  });
  result.passes = 1;

  std::vector<ItemSet> level;
  for (std::uint32_t item = 0; item < store.num_items(); ++item) {
    if (single_counts[item] >= min_count) {
      level.push_back(ItemSet{{item}, single_counts[item]});
    }
  }
  result.frequent.push_back(level);

  // Passes k = 2..max: candidate generation + one counting scan each.
  while (!result.frequent.back().empty() &&
         result.frequent.size() < config_.max_itemset_size) {
    auto candidates = generate_candidates(result.frequent.back());
    if (candidates.empty()) break;
    std::vector<std::uint32_t> counts(candidates.size(), 0);
    store.scan([&](const std::vector<std::uint32_t>& basket) {
      if (basket.size() < result.frequent.size() + 1) return;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (contains_all(basket, candidates[c])) counts[c]++;
      }
    });
    result.passes++;

    std::vector<ItemSet> next;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] >= min_count) {
        next.push_back(ItemSet{std::move(candidates[c]), counts[c]});
      }
    }
    if (next.empty()) break;
    result.frequent.push_back(std::move(next));
  }

  // Rule generation: for every frequent k-set (k >= 2), emit single-
  // consequent rules meeting the confidence bar.
  const double n = static_cast<double>(store.num_transactions());
  for (std::size_t k = 1; k < result.frequent.size(); ++k) {
    for (const auto& set : result.frequent[k]) {
      for (std::size_t out = 0; out < set.items.size(); ++out) {
        std::vector<std::uint32_t> lhs;
        for (std::size_t i = 0; i < set.items.size(); ++i) {
          if (i != out) lhs.push_back(set.items[i]);
        }
        const ItemSet* lhs_set = result.find(lhs);
        if (lhs_set == nullptr || lhs_set->support == 0) continue;
        const double confidence = static_cast<double>(set.support) /
                                  static_cast<double>(lhs_set->support);
        if (confidence >= config_.min_confidence) {
          result.rules.push_back(AssociationRule{
              lhs, set.items[out], confidence,
              static_cast<double>(set.support) / n});
        }
      }
    }
  }
  return result;
}

}  // namespace clio::apps::dmine
