#include "apps/dmine/candidate_count.hpp"

#include "util/error.hpp"

namespace clio::apps::dmine {

using util::check;
using util::ConfigError;

std::vector<std::byte> encode_fixed_records(
    const std::vector<std::vector<std::uint8_t>>& baskets) {
  std::vector<std::byte> out(baskets.size() * kFixedRecordBytes);
  for (std::size_t b = 0; b < baskets.size(); ++b) {
    const auto& basket = baskets[b];
    check<ConfigError>(basket.size() <= kMaxFixedItems,
                       "encode_fixed_records: basket too large");
    std::byte* rec = out.data() + b * kFixedRecordBytes;
    rec[0] = static_cast<std::byte>(basket.size());
    for (std::size_t i = 0; i < basket.size(); ++i) {
      rec[1 + i] = static_cast<std::byte>(basket[i]);
    }
  }
  return out;
}

std::vector<std::byte> pack_candidates(
    const std::vector<std::vector<std::uint8_t>>& candidates,
    std::size_t k) {
  check<ConfigError>(k > 0, "pack_candidates: k must be > 0");
  std::vector<std::byte> out(candidates.size() * k);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    check<ConfigError>(candidates[c].size() == k,
                       "pack_candidates: candidate arity mismatch");
    for (std::size_t i = 0; i < k; ++i) {
      out[c * k + i] = static_cast<std::byte>(candidates[c][i]);
    }
  }
  return out;
}

std::uint64_t count_support(std::span<const std::byte> records,
                            std::span<const std::byte> candidates,
                            std::size_t k) {
  check<ConfigError>(k > 0, "count_support: k must be > 0");
  check<ConfigError>(records.size() % kFixedRecordBytes == 0,
                     "count_support: partial record");
  check<ConfigError>(candidates.size() % k == 0,
                     "count_support: partial candidate");
  const std::size_t num_candidates = candidates.size() / k;
  std::uint64_t total = 0;
  for (std::size_t off = 0; off < records.size(); off += kFixedRecordBytes) {
    const std::byte* rec = records.data() + off;
    const auto n = std::to_integer<std::size_t>(rec[0]);
    for (std::size_t c = 0; c < num_candidates; ++c) {
      const std::byte* cand = candidates.data() + c * k;
      bool all = true;
      for (std::size_t i = 0; i < k && all; ++i) {
        bool found = false;
        for (std::size_t j = 0; j < n; ++j) {
          if (rec[1 + j] == cand[i]) {
            found = true;
            break;
          }
        }
        all = found;
      }
      if (all) ++total;
    }
  }
  return total;
}

}  // namespace clio::apps::dmine
