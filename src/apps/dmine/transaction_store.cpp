#include "apps/dmine/transaction_store.hpp"

#include <algorithm>
#include <cstring>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clio::apps::dmine {
namespace {

constexpr std::size_t kReadBlock = 64 * 1024;

void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + 4);
}

}  // namespace

void TransactionStore::generate(TraceCapturingFs& capture,
                                const std::string& name,
                                const StoreConfig& config) {
  util::check<util::ConfigError>(config.num_transactions > 0,
                                 "TransactionStore: need > 0 transactions");
  util::check<util::ConfigError>(config.num_items > 1,
                                 "TransactionStore: need > 1 items");
  util::check<util::ConfigError>(config.mean_basket >= 1.0,
                                 "TransactionStore: mean basket must be >= 1");
  for (const auto& pattern : config.planted) {
    for (auto item : pattern) {
      util::check<util::ConfigError>(item < config.num_items,
                                     "TransactionStore: planted item out of "
                                     "universe");
    }
  }

  util::Rng rng(config.seed);
  util::ZipfDistribution zipf(config.num_items, config.zipf_exponent);

  RecordingFile file = capture.open(name, io::OpenMode::kTruncate);
  std::vector<std::byte> block;
  block.reserve(256 * 1024);
  append_u32(block, kMagic);
  append_u32(block, config.num_transactions);
  append_u32(block, config.num_items);

  std::set<std::uint32_t> basket;
  for (std::uint32_t t = 0; t < config.num_transactions; ++t) {
    basket.clear();
    // Basket size: 1 + Poisson-ish via exponential rounding.
    const auto target = static_cast<std::size_t>(
        1.0 + rng.exponential(config.mean_basket - 1.0 + 1e-9));
    while (basket.size() < target && basket.size() < config.num_items) {
      basket.insert(static_cast<std::uint32_t>(zipf(rng)));
    }
    if (!config.planted.empty() && rng.bernoulli(config.plant_probability)) {
      const auto& pattern =
          config.planted[rng.uniform_u64(config.planted.size())];
      basket.insert(pattern.begin(), pattern.end());
    }
    append_u32(block, static_cast<std::uint32_t>(basket.size()));
    for (auto item : basket) append_u32(block, item);
    if (block.size() >= 256 * 1024) {
      file.write(block);
      block.clear();
    }
  }
  if (!block.empty()) file.write(block);
  file.close();
}

TransactionStore::TransactionStore(TraceCapturingFs& capture, std::string name)
    : capture_(capture), name_(std::move(name)) {
  RecordingFile file = capture_.open(name_, io::OpenMode::kRead);
  std::uint32_t header[3];
  file.read_exact(std::as_writable_bytes(std::span<std::uint32_t>(header)));
  util::check<util::ParseError>(header[0] == kMagic,
                                "TransactionStore: bad magic");
  num_transactions_ = header[1];
  num_items_ = header[2];
  file.close();
}

TransactionStore::Scanner::Scanner(RecordingFile file,
                                   std::uint64_t payload_offset)
    : file_(std::move(file)) {
  file_.seek(payload_offset);
  buffer_.resize(kReadBlock);
}

bool TransactionStore::Scanner::fill(std::size_t need) {
  // Compact the unconsumed tail, then top up from the file.
  if (buf_pos_ > 0) {
    std::memmove(buffer_.data(), buffer_.data() + buf_pos_,
                 buf_len_ - buf_pos_);
    buf_len_ -= buf_pos_;
    buf_pos_ = 0;
  }
  while (buf_len_ < need && !eof_) {
    if (buffer_.size() < need) buffer_.resize(need);
    const std::size_t got = file_.read(
        std::span<std::byte>(buffer_.data() + buf_len_,
                             buffer_.size() - buf_len_));
    if (got == 0) {
      eof_ = true;
      break;
    }
    buf_len_ += got;
  }
  return buf_len_ >= need;
}

bool TransactionStore::Scanner::next(std::vector<std::uint32_t>& items) {
  if (buf_len_ - buf_pos_ < 4 && !fill(4)) return false;
  std::uint32_t count;
  std::memcpy(&count, buffer_.data() + buf_pos_, 4);
  const std::size_t need = 4 + static_cast<std::size_t>(count) * 4;
  if (buf_len_ - buf_pos_ < need && !fill(need)) {
    throw util::ParseError("TransactionStore: truncated transaction");
  }
  items.resize(count);
  std::memcpy(items.data(), buffer_.data() + buf_pos_ + 4,
              static_cast<std::size_t>(count) * 4);
  buf_pos_ += need;
  return true;
}

}  // namespace clio::apps::dmine
