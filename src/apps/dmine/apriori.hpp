#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/dmine/transaction_store.hpp"

namespace clio::apps::dmine {

/// A frequent itemset with its absolute support count.
struct ItemSet {
  std::vector<std::uint32_t> items;  ///< sorted ascending
  std::uint32_t support = 0;
};

/// An association rule lhs -> rhs with confidence
/// support(lhs ∪ {rhs}) / support(lhs).
struct AssociationRule {
  std::vector<std::uint32_t> lhs;
  std::uint32_t rhs = 0;
  double confidence = 0.0;
  double support_fraction = 0.0;  ///< support(lhs ∪ rhs) / num transactions
};

struct MiningConfig {
  double min_support = 0.05;     ///< fraction of transactions
  double min_confidence = 0.6;
  std::size_t max_itemset_size = 4;
};

struct MiningResult {
  std::vector<std::vector<ItemSet>> frequent;  ///< frequent[k] = (k+1)-sets
  std::vector<AssociationRule> rules;
  std::size_t passes = 0;  ///< database scans performed

  [[nodiscard]] const ItemSet* find(
      const std::vector<std::uint32_t>& items) const;
};

/// Classic Apriori (Agrawal & Srikant) over an on-disk TransactionStore —
/// the algorithm behind the UMD "Dmine" workload ("extracts association
/// rules from retail data", Mueller's implementation study).  Level-wise:
/// pass k scans the database once to count candidate k-itemsets generated
/// by joining frequent (k-1)-itemsets; each pass is a full sequential scan,
/// which is precisely the I/O behaviour Table 1 measures.
class Apriori {
 public:
  explicit Apriori(MiningConfig config);

  [[nodiscard]] MiningResult run(const TransactionStore& store) const;

 private:
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> generate_candidates(
      const std::vector<ItemSet>& frequent_prev) const;

  MiningConfig config_;
};

}  // namespace clio::apps::dmine
