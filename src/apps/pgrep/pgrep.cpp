#include "apps/pgrep/pgrep.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clio::apps::pgrep {
namespace {

/// Pseudo-English filler: lowercase words of 2-9 letters with spaces and
/// occasional newlines.  Deliberately avoids generating the pattern by
/// accident only probabilistically; tests use distinctive patterns.
void fill_noise(std::string& text, std::size_t n, util::Rng& rng) {
  text.clear();
  text.reserve(n);
  while (text.size() < n) {
    const std::size_t word = 2 + rng.uniform_u64(8);
    for (std::size_t i = 0; i < word && text.size() < n; ++i) {
      text.push_back(static_cast<char>('a' + rng.uniform_u64(26)));
    }
    if (text.size() < n) {
      text.push_back(rng.bernoulli(0.12) ? '\n' : ' ');
    }
  }
}

std::string mutate_one_edit(const std::string& pattern, util::Rng& rng) {
  std::string m = pattern;
  const std::size_t pos = rng.uniform_u64(m.size());
  switch (rng.uniform_u64(3)) {
    case 0:  // substitution with a different letter
      m[pos] = static_cast<char>(
          'a' + (static_cast<unsigned>(m[pos] - 'a') + 1 +
                 rng.uniform_u64(24)) % 26);
      break;
    case 1:  // deletion
      m.erase(pos, 1);
      break;
    default:  // insertion
      m.insert(pos, 1, static_cast<char>('a' + rng.uniform_u64(26)));
      break;
  }
  return m;
}

}  // namespace

PlantedCorpus generate_corpus(TraceCapturingFs& capture,
                              const std::string& name,
                              const CorpusConfig& config) {
  util::check<util::ConfigError>(!config.pattern.empty(),
                                 "generate_corpus: empty pattern");
  util::check<util::ConfigError>(
      config.size_bytes > 16 * (config.pattern.size() + 2) *
                              (config.exact_occurrences +
                               config.fuzzy_occurrences + 1),
      "generate_corpus: corpus too small for requested plants");

  util::Rng rng(config.seed);
  std::string text;
  fill_noise(text, static_cast<std::size_t>(config.size_bytes), rng);

  PlantedCorpus planted;
  // Choose disjoint plant slots.
  const std::size_t slot = config.pattern.size() + 2;
  const std::size_t total_plants =
      config.exact_occurrences + config.fuzzy_occurrences;
  std::vector<std::uint64_t> positions;
  std::size_t attempts = 0;
  while (positions.size() < total_plants && attempts < total_plants * 1000) {
    ++attempts;
    const std::uint64_t pos =
        rng.uniform_u64(config.size_bytes - 2 * slot) + 1;
    bool clash = false;
    for (auto p : positions) {
      if (pos + slot > p && p + slot > pos) {
        clash = true;
        break;
      }
    }
    if (!clash) positions.push_back(pos);
  }
  util::check<util::ConfigError>(positions.size() == total_plants,
                                 "generate_corpus: could not place plants");

  for (std::size_t i = 0; i < positions.size(); ++i) {
    const std::uint64_t pos = positions[i];
    std::string payload;
    if (i < config.exact_occurrences) {
      payload = config.pattern;
      planted.exact_positions.push_back(pos);
    } else {
      payload = mutate_one_edit(config.pattern, rng);
      planted.fuzzy_positions.push_back(pos);
    }
    // Space-fence the plant so noise does not extend it.
    text[pos - 1] = ' ';
    std::memcpy(text.data() + pos, payload.data(), payload.size());
    text[pos + payload.size()] = ' ';
  }

  RecordingFile file = capture.open(name, io::OpenMode::kTruncate);
  file.write(std::as_bytes(std::span<const char>(text.data(), text.size())));
  file.close();
  std::sort(planted.exact_positions.begin(), planted.exact_positions.end());
  std::sort(planted.fuzzy_positions.begin(), planted.fuzzy_positions.end());
  return planted;
}

ParallelGrep::ParallelGrep(std::string pattern, PgrepConfig config)
    : pattern_(std::move(pattern)), config_(config) {
  util::check<util::ConfigError>(config_.num_workers >= 1,
                                 "ParallelGrep: need >= 1 worker");
  util::check<util::ConfigError>(config_.read_block >= pattern_.size() * 2,
                                 "ParallelGrep: read_block too small");
  // Constructing the matcher validates pattern/k compatibility early.
  Bitap probe(pattern_, config_.max_errors);
}

PgrepResult ParallelGrep::search(TraceCapturingFs& capture,
                                 const std::string& file_name) const {
  // Chunk the file; overlap guarantees matches crossing a boundary are
  // seen by exactly the earlier worker (dedup handles double counting).
  std::uint64_t file_size;
  {
    RecordingFile probe = capture.open(file_name, io::OpenMode::kRead);
    file_size = probe.size();
    probe.close();
  }
  const std::size_t workers = static_cast<std::size_t>(
      std::min<std::uint64_t>(config_.num_workers,
                              std::max<std::uint64_t>(1, file_size /
                                                             config_.read_block)));
  const std::uint64_t chunk = (file_size + workers - 1) / workers;
  const std::uint64_t overlap = pattern_.size() + config_.max_errors;

  std::vector<std::vector<std::uint64_t>> per_worker(workers);
  std::vector<std::uint64_t> scanned(workers, 0);
  std::vector<std::thread> threads;
  threads.reserve(workers);

  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const std::uint64_t begin = w * chunk;
      const std::uint64_t end =
          std::min<std::uint64_t>(file_size, (w + 1) * chunk + overlap);
      if (begin >= file_size) return;
      RecordingFile file = capture.open(file_name, io::OpenMode::kRead,
                                        static_cast<std::uint32_t>(w));
      file.seek(begin);
      Bitap matcher(pattern_, config_.max_errors);

      // Stream with a carry of (overlap) bytes between blocks so matches
      // spanning block boundaries are found.
      std::string window;
      std::vector<std::byte> block(config_.read_block);
      std::uint64_t window_start = begin;
      std::uint64_t pos = begin;
      while (pos < end) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(config_.read_block, end - pos));
        const std::size_t got =
            file.read(std::span<std::byte>(block.data(), want));
        if (got == 0) break;
        scanned[w] += got;
        window.append(reinterpret_cast<const char*>(block.data()), got);
        pos += got;
        for (auto m : matcher.find(window)) {
          const std::uint64_t absolute = window_start + m;
          // Claim only matches ending within (begin, next chunk's begin +
          // overlap]; dedup below sorts it out.
          per_worker[w].push_back(absolute);
        }
        if (window.size() > overlap) {
          const std::size_t drop = window.size() - overlap;
          window.erase(0, drop);
          window_start += drop;
        }
      }
      file.close();
    });
  }
  for (auto& t : threads) t.join();

  PgrepResult result;
  for (std::size_t w = 0; w < workers; ++w) {
    result.bytes_scanned += scanned[w];
    result.match_ends.insert(result.match_ends.end(), per_worker[w].begin(),
                             per_worker[w].end());
  }
  std::sort(result.match_ends.begin(), result.match_ends.end());
  result.match_ends.erase(
      std::unique(result.match_ends.begin(), result.match_ends.end()),
      result.match_ends.end());
  return result;
}

}  // namespace clio::apps::pgrep
