#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/pgrep/bitap.hpp"
#include "apps/trace_capture.hpp"

namespace clio::apps::pgrep {

/// Synthetic corpus parameters: pseudo-English noise with occurrences of
/// the pattern planted, some mutated within the error budget.
struct CorpusConfig {
  std::uint64_t size_bytes = 1 << 20;
  std::string pattern = "scattering";
  std::size_t exact_occurrences = 20;
  std::size_t fuzzy_occurrences = 10;  ///< 1-edit variants of the pattern
  std::uint64_t seed = 99;
};

/// Where the pattern (or a variant) was planted, for test verification.
struct PlantedCorpus {
  std::vector<std::uint64_t> exact_positions;
  std::vector<std::uint64_t> fuzzy_positions;
};

/// Writes a corpus file and returns the planted ground truth.
PlantedCorpus generate_corpus(TraceCapturingFs& capture,
                              const std::string& name,
                              const CorpusConfig& config);

struct PgrepConfig {
  unsigned max_errors = 1;
  std::size_t num_workers = 4;         ///< parallel chunk scanners
  std::size_t read_block = 64 * 1024;  ///< bytes per synchronous read
};

struct PgrepResult {
  std::vector<std::uint64_t> match_ends;  ///< absolute end offsets, sorted
  std::uint64_t bytes_scanned = 0;
};

/// Parallel approximate search over a file: the file splits into one chunk
/// per worker with (pattern + k - 1) bytes of overlap so boundary matches
/// are not lost; each worker opens the file independently (its own pid in
/// the captured trace) and streams its chunk in read_block chunks — the
/// multi-process sequential-read shape of the UMD Pgrep traces.
class ParallelGrep {
 public:
  ParallelGrep(std::string pattern, PgrepConfig config);

  [[nodiscard]] PgrepResult search(TraceCapturingFs& capture,
                                   const std::string& file_name) const;

 private:
  std::string pattern_;
  PgrepConfig config_;
};

}  // namespace clio::apps::pgrep
