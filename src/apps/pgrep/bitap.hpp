#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace clio::apps::pgrep {

/// Bit-parallel approximate string matching after Wu & Manber's agrep
/// (USENIX '92) — the algorithm behind the UMD "Pgrep" workload ("a
/// modified parallel version of the agrep program from the University of
/// Arizona", used for partial match and approximate searches).
///
/// Patterns up to 63 bytes; k is the maximum Levenshtein distance
/// (substitutions, insertions, deletions).  k = 0 degenerates to the exact
/// shift-and automaton.
class Bitap {
 public:
  static constexpr std::size_t kMaxPattern = 63;

  Bitap(std::string pattern, unsigned max_errors);

  /// Scans `text` and returns the END offsets (exclusive) of every match,
  /// i.e. positions p such that a substring ending at p matches the pattern
  /// within max_errors edits.
  [[nodiscard]] std::vector<std::size_t> find(std::string_view text) const;

  /// True if the text contains at least one match (early-out scan).
  [[nodiscard]] bool contains(std::string_view text) const;

  [[nodiscard]] const std::string& pattern() const { return pattern_; }
  [[nodiscard]] unsigned max_errors() const { return max_errors_; }

  /// The shift-and automaton tables, exposed for incremental scanners and
  /// for ports of the kernel (the VM bitap module builds the same tables).
  [[nodiscard]] std::uint64_t char_mask(unsigned char c) const {
    return char_masks_[c];
  }
  [[nodiscard]] std::uint64_t accept_bit() const { return accept_bit_; }

 private:
  template <bool kEarlyOut>
  std::vector<std::size_t> scan(std::string_view text) const;

  std::string pattern_;
  unsigned max_errors_;
  std::uint64_t char_masks_[256];
  std::uint64_t accept_bit_;
};

/// Incremental counterpart of Bitap::find for chunked streams: the match
/// automaton state (the R vector) carries across feed() calls, so a pattern
/// straddling two read chunks is still found.  This is the native core of
/// the managed-vs-native pgrep benchmark axis — the VM bitap kernel and
/// this scanner consume the same file through the same ManagedFileSystem
/// and must report the same match count.
class BitapStreamScanner {
 public:
  explicit BitapStreamScanner(const Bitap& matcher);

  /// Consumes one chunk; returns the number of matches ending inside it.
  std::uint64_t feed(std::string_view chunk);

  /// Total matches across every chunk fed since construction/reset().
  [[nodiscard]] std::uint64_t matches() const { return matches_; }

  /// Rewinds the automaton to the start-of-text state.
  void reset();

 private:
  const Bitap* matcher_;
  std::vector<std::uint64_t> r_;
  std::uint64_t matches_ = 0;
};

}  // namespace clio::apps::pgrep
