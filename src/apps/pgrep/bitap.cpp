#include "apps/pgrep/bitap.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace clio::apps::pgrep {

Bitap::Bitap(std::string pattern, unsigned max_errors)
    : pattern_(std::move(pattern)), max_errors_(max_errors) {
  util::check<util::ConfigError>(!pattern_.empty(), "Bitap: empty pattern");
  util::check<util::ConfigError>(pattern_.size() <= kMaxPattern,
                                 "Bitap: pattern longer than 63 bytes");
  util::check<util::ConfigError>(max_errors_ < pattern_.size(),
                                 "Bitap: k must be < pattern length");
  std::memset(char_masks_, 0, sizeof(char_masks_));
  for (std::size_t i = 0; i < pattern_.size(); ++i) {
    char_masks_[static_cast<unsigned char>(pattern_[i])] |= 1ULL << i;
  }
  accept_bit_ = 1ULL << (pattern_.size() - 1);
}

template <bool kEarlyOut>
std::vector<std::size_t> Bitap::scan(std::string_view text) const {
  std::vector<std::size_t> matches;
  // R[d] tracks prefixes matching with <= d errors (bit i set = prefix of
  // length i+1 active).  Wu-Manber recurrence per character c:
  //   R0' = ((R0 << 1) | 1) & mask[c]
  //   Rd' = ((Rd << 1 | 1) & mask[c])        match
  //       | (R(d-1))                          insertion  (text char extra)
  //       | (R(d-1) << 1)                     substitution
  //       | (R(d-1)' << 1)                    deletion   (pattern char skipped)
  const unsigned k = max_errors_;
  std::vector<std::uint64_t> r(k + 1, 0);
  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    const std::uint64_t mask =
        char_masks_[static_cast<unsigned char>(text[pos])];
    std::uint64_t prev_old = r[0];  // R(d-1) before update
    r[0] = ((r[0] << 1) | 1ULL) & mask;
    std::uint64_t prev_new = r[0];  // R(d-1) after update
    for (unsigned d = 1; d <= k; ++d) {
      const std::uint64_t old_rd = r[d];
      r[d] = (((r[d] << 1) | 1ULL) & mask)  // match/mismatch advance
             | prev_old                      // insertion
             | (prev_old << 1)               // substitution
             | (prev_new << 1)               // deletion
             | ((1ULL << d) - 1);            // d leading deletions
      prev_old = old_rd;
      prev_new = r[d];
    }
    if (r[k] & accept_bit_) {
      matches.push_back(pos + 1);
      if constexpr (kEarlyOut) return matches;
    }
  }
  return matches;
}

std::vector<std::size_t> Bitap::find(std::string_view text) const {
  return scan<false>(text);
}

bool Bitap::contains(std::string_view text) const {
  return !scan<true>(text).empty();
}

BitapStreamScanner::BitapStreamScanner(const Bitap& matcher)
    : matcher_(&matcher), r_(matcher.max_errors() + 1, 0) {}

std::uint64_t BitapStreamScanner::feed(std::string_view chunk) {
  // Same Wu-Manber recurrence as Bitap::scan, but R survives between calls
  // instead of restarting at zero per text.
  const unsigned k = matcher_->max_errors();
  const std::uint64_t accept = matcher_->accept_bit();
  std::uint64_t found = 0;
  for (const char ch : chunk) {
    const std::uint64_t mask =
        matcher_->char_mask(static_cast<unsigned char>(ch));
    std::uint64_t prev_old = r_[0];
    r_[0] = ((r_[0] << 1) | 1ULL) & mask;
    std::uint64_t prev_new = r_[0];
    for (unsigned d = 1; d <= k; ++d) {
      const std::uint64_t old_rd = r_[d];
      r_[d] = (((r_[d] << 1) | 1ULL) & mask) | prev_old | (prev_old << 1) |
              (prev_new << 1) | ((1ULL << d) - 1);
      prev_old = old_rd;
      prev_new = r_[d];
    }
    if (r_[k] & accept) ++found;
  }
  matches_ += found;
  return found;
}

void BitapStreamScanner::reset() {
  std::fill(r_.begin(), r_.end(), 0);
  matches_ = 0;
}

}  // namespace clio::apps::pgrep
