#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "io/managed_file.hpp"
#include "trace/writer.hpp"

namespace clio::apps {

class RecordingFile;

/// Wraps a ManagedFileSystem so that every open/close/read/write/seek the
/// application performs is also appended to a UMD-style trace.  This is how
/// the suite regenerates the paper's §3 inputs: the five applications are
/// run for real, and the captured trace is what the trace-driven benchmark
/// replays.
///
/// Each distinct file name is assigned a `fid` ("field" in the UMD record
/// layout); worker threads pass their own `pid`.  Thread-safe.
class TraceCapturingFs {
 public:
  /// `sample_name` is written into the trace header as the file replays
  /// should target (the paper uses one large sample file).
  TraceCapturingFs(io::ManagedFileSystem& fs, std::string sample_name);

  /// Opens a managed file and records the Open.
  [[nodiscard]] RecordingFile open(const std::string& name, io::OpenMode mode,
                                   std::uint32_t pid = 0);

  /// Number of distinct files seen so far.
  [[nodiscard]] std::uint32_t num_files() const;

  /// Finalizes the trace (fills header counts).
  [[nodiscard]] trace::TraceFile finish();

  [[nodiscard]] io::ManagedFileSystem& fs() { return fs_; }

 private:
  friend class RecordingFile;

  void record(trace::TraceOp op, std::uint64_t offset, std::uint64_t length,
              std::uint32_t pid, std::uint32_t fid);
  std::uint32_t fid_of(const std::string& name);

  io::ManagedFileSystem& fs_;
  trace::TraceRecorder recorder_;
  std::unordered_map<std::string, std::uint32_t> fids_;
  std::uint32_t max_pid_ = 0;
  mutable std::mutex mutex_;
};

/// A ManagedFile that mirrors every operation into the capture trace.
/// Same interface subset as ManagedFile; movable; auto-closes.
class RecordingFile {
 public:
  RecordingFile() = default;
  RecordingFile(RecordingFile&& other) noexcept;
  RecordingFile& operator=(RecordingFile&& other) noexcept;
  ~RecordingFile();

  std::size_t read(std::span<std::byte> out);
  void read_exact(std::span<std::byte> out);
  void write(std::span<const std::byte> data);
  void seek(std::uint64_t pos);
  void close();

  [[nodiscard]] bool is_open() const { return capture_ != nullptr; }
  [[nodiscard]] std::uint64_t position() const { return file_.position(); }
  [[nodiscard]] std::uint64_t size() const { return file_.size(); }

 private:
  friend class TraceCapturingFs;
  RecordingFile(TraceCapturingFs* capture, io::ManagedFile file,
                std::uint32_t pid, std::uint32_t fid);

  TraceCapturingFs* capture_ = nullptr;
  io::ManagedFile file_;
  std::uint32_t pid_ = 0;
  std::uint32_t fid_ = 0;
};

}  // namespace clio::apps
