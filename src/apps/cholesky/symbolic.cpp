#include "apps/cholesky/symbolic.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace clio::apps::cholesky {

SymbolicFactor symbolic_factor(const SparseMatrix& a) {
  validate(a);
  const std::size_t n = a.n;
  const auto parent = elimination_tree(a);

  SymbolicFactor s;
  s.n = n;
  s.col_rows.assign(n, {});
  s.row_cols.assign(n, {});
  for (std::size_t j = 0; j < n; ++j) s.col_rows[j].push_back(j);

  // Row adjacency (k < i with A(i,k) != 0) from the lower-triangle columns.
  std::vector<std::vector<std::size_t>> row_adj(n);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t p = a.col_ptr[k]; p < a.col_ptr[k + 1]; ++p) {
      if (a.row_idx[p] > k) row_adj[a.row_idx[p]].push_back(k);
    }
  }

  std::vector<std::size_t> mark(n, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    mark[i] = i;
    for (std::size_t k : row_adj[i]) {
      for (std::size_t j = k; mark[j] != i;) {
        s.col_rows[j].push_back(i);  // L(i, j) != 0
        s.row_cols[i].push_back(j);
        mark[j] = i;
        util::check<util::ExecutionError>(parent[j] != kNoParent,
                                          "symbolic_factor: broken etree");
        j = parent[j];
      }
    }
    std::sort(s.row_cols[i].begin(), s.row_cols[i].end());
  }
  // Columns were appended in ascending i (outer loop), so they are sorted.

  s.col_offset.resize(n);
  std::uint64_t offset = 0;
  for (std::size_t j = 0; j < n; ++j) {
    s.col_offset[j] = offset;
    offset += s.column_bytes(j);
    s.nnz += s.col_rows[j].size();
  }
  s.file_bytes = offset;
  return s;
}

}  // namespace clio::apps::cholesky
