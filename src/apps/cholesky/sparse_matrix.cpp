#include "apps/cholesky/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clio::apps::cholesky {

double SparseMatrix::at(std::size_t row, std::size_t col) const {
  for (std::size_t k = col_ptr[col]; k < col_ptr[col + 1]; ++k) {
    if (row_idx[k] == row) return values[k];
    if (row_idx[k] > row) break;
  }
  return 0.0;
}

void validate(const SparseMatrix& a) {
  using util::ConfigError;
  util::check<ConfigError>(a.col_ptr.size() == a.n + 1,
                           "SparseMatrix: bad col_ptr size");
  util::check<ConfigError>(a.row_idx.size() == a.values.size(),
                           "SparseMatrix: rows/values size mismatch");
  util::check<ConfigError>(a.col_ptr.front() == 0 &&
                               a.col_ptr.back() == a.nnz(),
                           "SparseMatrix: col_ptr endpoints wrong");
  for (std::size_t j = 0; j < a.n; ++j) {
    util::check<ConfigError>(a.col_ptr[j] <= a.col_ptr[j + 1],
                             "SparseMatrix: col_ptr not monotone");
    util::check<ConfigError>(
        a.col_ptr[j] < a.col_ptr[j + 1] && a.row_idx[a.col_ptr[j]] == j,
        "SparseMatrix: diagonal missing or not first");
    for (std::size_t k = a.col_ptr[j]; k < a.col_ptr[j + 1]; ++k) {
      util::check<ConfigError>(a.row_idx[k] >= j,
                               "SparseMatrix: upper-triangle entry");
      util::check<ConfigError>(a.row_idx[k] < a.n,
                               "SparseMatrix: row out of range");
      if (k > a.col_ptr[j]) {
        util::check<ConfigError>(a.row_idx[k] > a.row_idx[k - 1],
                                 "SparseMatrix: rows not strictly sorted");
      }
    }
  }
}

SparseMatrix make_spd(std::size_t n, std::size_t extra_per_col,
                      std::uint64_t seed) {
  util::check<util::ConfigError>(n >= 1, "make_spd: n must be >= 1");
  util::Rng rng(seed);

  // Pattern: diagonal + first subdiagonal (keeps the etree connected) +
  // random extras below the diagonal.
  std::vector<std::set<std::size_t>> pattern(n);
  for (std::size_t j = 0; j < n; ++j) {
    pattern[j].insert(j);
    if (j + 1 < n) pattern[j].insert(j + 1);
    for (std::size_t e = 0; e < extra_per_col && j + 2 < n; ++e) {
      pattern[j].insert(j + 2 + rng.uniform_u64(n - j - 2));
    }
  }

  SparseMatrix a;
  a.n = n;
  a.col_ptr.resize(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j) {
    a.col_ptr[j + 1] = a.col_ptr[j] + pattern[j].size();
  }
  a.row_idx.reserve(a.col_ptr[n]);
  a.values.reserve(a.col_ptr[n]);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t row : pattern[j]) {
      a.row_idx.push_back(row);
      a.values.push_back(row == j ? 0.0
                                  : -(0.1 + 0.9 * rng.uniform_double()));
    }
  }

  // Diagonal dominance: diag(j) = 1 + sum of |off-diagonal| in row j and
  // column j (symmetric halves).
  std::vector<double> dominance(n, 1.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = a.col_ptr[j]; k < a.col_ptr[j + 1]; ++k) {
      if (a.row_idx[k] == j) continue;
      const double mag = std::fabs(a.values[k]);
      dominance[j] += mag;             // column contribution
      dominance[a.row_idx[k]] += mag;  // mirrored row contribution
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    a.values[a.col_ptr[j]] = dominance[j];  // diagonal is first in column
  }
  validate(a);
  return a;
}

std::vector<double> to_dense_symmetric(const SparseMatrix& a) {
  std::vector<double> dense(a.n * a.n, 0.0);
  for (std::size_t j = 0; j < a.n; ++j) {
    for (std::size_t k = a.col_ptr[j]; k < a.col_ptr[j + 1]; ++k) {
      const std::size_t i = a.row_idx[k];
      dense[j * a.n + i] = a.values[k];
      dense[i * a.n + j] = a.values[k];
    }
  }
  return dense;
}

std::vector<double> symmetric_matvec(const SparseMatrix& a,
                                     const std::vector<double>& x) {
  util::check<util::ConfigError>(x.size() == a.n,
                                 "symmetric_matvec: size mismatch");
  std::vector<double> y(a.n, 0.0);
  for (std::size_t j = 0; j < a.n; ++j) {
    for (std::size_t k = a.col_ptr[j]; k < a.col_ptr[j + 1]; ++k) {
      const std::size_t i = a.row_idx[k];
      y[i] += a.values[k] * x[j];
      if (i != j) y[j] += a.values[k] * x[i];
    }
  }
  return y;
}

}  // namespace clio::apps::cholesky
