#pragma once

#include <cstdint>
#include <vector>

namespace clio::apps::cholesky {

/// Symmetric positive-definite sparse matrix in compressed sparse column
/// form, storing the LOWER triangle only (row indices >= column, sorted
/// ascending, diagonal always present).
struct SparseMatrix {
  std::size_t n = 0;
  std::vector<std::size_t> col_ptr;  ///< size n+1
  std::vector<std::size_t> row_idx;  ///< size nnz
  std::vector<double> values;        ///< size nnz

  [[nodiscard]] std::size_t nnz() const { return row_idx.size(); }

  /// Value at (row, col) of the lower triangle, 0.0 if absent (row >= col).
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;
};

/// Throws ConfigError on structural violations (unsorted rows, missing
/// diagonal, upper-triangle entries, bad col_ptr).
void validate(const SparseMatrix& a);

/// Random sparse SPD matrix: banded base pattern plus `extra_per_col`
/// random subdiagonal entries per column, values made strictly diagonally
/// dominant (hence positive-definite).  Deterministic per seed.
[[nodiscard]] SparseMatrix make_spd(std::size_t n, std::size_t extra_per_col,
                                    std::uint64_t seed);

/// Expands to a full dense symmetric matrix (column-major n x n).
[[nodiscard]] std::vector<double> to_dense_symmetric(const SparseMatrix& a);

/// y = A x using the symmetric structure.
[[nodiscard]] std::vector<double> symmetric_matvec(
    const SparseMatrix& a, const std::vector<double>& x);

}  // namespace clio::apps::cholesky
