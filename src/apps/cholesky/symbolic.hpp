#pragma once

#include <cstdint>
#include <vector>

#include "apps/cholesky/etree.hpp"

namespace clio::apps::cholesky {

/// Symbolic Cholesky factor: the exact nonzero structure of L plus the
/// byte layout of the out-of-core column file.
struct SymbolicFactor {
  std::size_t n = 0;
  /// Row pattern of each column of L, ascending, first entry = diagonal.
  std::vector<std::vector<std::size_t>> col_rows;
  /// For each column j, the columns k < j with L(j, k) != 0 — i.e. the
  /// row-j pattern, which is exactly the set of columns a left-looking
  /// numeric step must fetch from disk to compute column j.
  std::vector<std::vector<std::size_t>> row_cols;
  /// Byte offset of column j's value segment in the factor file.
  std::vector<std::uint64_t> col_offset;
  std::uint64_t file_bytes = 0;
  std::uint64_t nnz = 0;

  [[nodiscard]] std::uint64_t column_bytes(std::size_t j) const {
    return col_rows[j].size() * sizeof(double);
  }
};

/// Computes the structure of L by row-subtree traversal of the elimination
/// tree (Davis, "Direct Methods for Sparse Linear Systems", §4): the
/// pattern of row i is the union of etree paths from each k adjacent to i
/// in A up to i.  O(|L|) time.
[[nodiscard]] SymbolicFactor symbolic_factor(const SparseMatrix& a);

}  // namespace clio::apps::cholesky
