#pragma once

#include <string>

#include "apps/cholesky/symbolic.hpp"
#include "apps/trace_capture.hpp"

namespace clio::apps::cholesky {

/// Counters of one out-of-core numeric factorization.
struct CholeskyStats {
  std::size_t columns_written = 0;
  std::size_t column_reads = 0;      ///< dependency columns fetched
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t flops = 0;
};

/// Out-of-core left-looking sparse Cholesky, the UMD "Cholesky" workload
/// ("computing Cholesky decomposition for sparse, symmetric
/// positive-definite matrices").  Columns of L live in a disk file laid
/// out by the symbolic factorization; computing column j fetches every
/// column k < j with L(j,k) != 0 (seek + read of an irregular number of
/// bytes — the shape of Table 4), applies their updates, scales by the
/// pivot square root, and writes column j back (seek + write).
class OocCholesky {
 public:
  OocCholesky(const SparseMatrix& a, const SymbolicFactor& symbolic);

  /// Runs the numeric factorization, producing `file_name` in the captured
  /// file system.  Returns counters.
  CholeskyStats factor(TraceCapturingFs& capture,
                       const std::string& file_name) const;

  /// Loads the factor back as a lower-triangular SparseMatrix (pattern from
  /// the symbolic factor, values from the file).
  [[nodiscard]] SparseMatrix load_factor(TraceCapturingFs& capture,
                                         const std::string& file_name) const;

 private:
  const SparseMatrix& a_;
  const SymbolicFactor& symbolic_;
};

/// max |(L·Lᵀ - A)(i,j)| / max|A| over the full symmetric matrix, dense
/// reconstruction — O(n² + n·nnz), for test-sized problems.
[[nodiscard]] double cholesky_residual(const SparseMatrix& a,
                                       const SparseMatrix& l);

/// Solves A x = b given the factor L (forward then backward substitution).
[[nodiscard]] std::vector<double> cholesky_solve(const SparseMatrix& l,
                                                 const std::vector<double>& b);

}  // namespace clio::apps::cholesky
