#pragma once

#include <vector>

#include "apps/cholesky/sparse_matrix.hpp"

namespace clio::apps::cholesky {

/// Sentinel parent for etree roots.
inline constexpr std::size_t kNoParent = SIZE_MAX;

/// Elimination tree of a symmetric sparse matrix (Liu's algorithm with
/// path-compressed virtual ancestors): parent[j] is the smallest row index
/// i > j such that L(i, j) != 0 in the Cholesky factor, kNoParent at roots.
/// The etree drives both the symbolic factorization and the dependency
/// order of the out-of-core numeric phase.
[[nodiscard]] std::vector<std::size_t> elimination_tree(const SparseMatrix& a);

/// A postorder of the forest (children before parents).  Any topological
/// bottom-up order works for left-looking factorization; tests use this to
/// verify tree consistency.
[[nodiscard]] std::vector<std::size_t> postorder(
    const std::vector<std::size_t>& parent);

/// Per-column nonzero counts of L (including the diagonal), computed from
/// the row patterns; used to size the out-of-core column file.
[[nodiscard]] std::vector<std::size_t> column_counts(
    const SparseMatrix& a, const std::vector<std::size_t>& parent);

}  // namespace clio::apps::cholesky
