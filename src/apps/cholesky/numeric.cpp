#include "apps/cholesky/numeric.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace clio::apps::cholesky {

OocCholesky::OocCholesky(const SparseMatrix& a, const SymbolicFactor& symbolic)
    : a_(a), symbolic_(symbolic) {
  util::check<util::ConfigError>(a.n == symbolic.n,
                                 "OocCholesky: matrix/symbolic mismatch");
}

CholeskyStats OocCholesky::factor(TraceCapturingFs& capture,
                                  const std::string& file_name) const {
  CholeskyStats stats;
  const std::size_t n = a_.n;
  RecordingFile file = capture.open(file_name, io::OpenMode::kTruncate);

  std::vector<double> accumulator(n, 0.0);  // dense scatter workspace
  std::vector<double> column;               // values of the column in work
  std::vector<double> dep;                  // fetched dependency column

  for (std::size_t j = 0; j < n; ++j) {
    // Scatter A(j:n, j).
    for (std::size_t p = a_.col_ptr[j]; p < a_.col_ptr[j + 1]; ++p) {
      accumulator[a_.row_idx[p]] = a_.values[p];
    }

    // Left-looking updates: fetch each column k with L(j,k) != 0.
    for (std::size_t k : symbolic_.row_cols[j]) {
      const auto& rows_k = symbolic_.col_rows[k];
      dep.resize(rows_k.size());
      file.seek(symbolic_.col_offset[k]);
      file.read_exact(std::as_writable_bytes(std::span<double>(dep)));
      stats.column_reads++;
      stats.bytes_read += symbolic_.column_bytes(k);

      // Find L(j,k) within the fetched column.
      const auto it = std::lower_bound(rows_k.begin(), rows_k.end(), j);
      util::check<util::ExecutionError>(it != rows_k.end() && *it == j,
                                        "OocCholesky: symbolic/row mismatch");
      const double ljk = dep[static_cast<std::size_t>(it - rows_k.begin())];
      // accumulator(i) -= L(i,k) * L(j,k) for i >= j in column k's pattern.
      for (std::size_t q = static_cast<std::size_t>(it - rows_k.begin());
           q < rows_k.size(); ++q) {
        accumulator[rows_k[q]] -= dep[q] * ljk;
        stats.flops += 2;
      }
    }

    // Pivot and scale.
    const double pivot = accumulator[j];
    util::check<util::ExecutionError>(pivot > 0.0,
                                      "OocCholesky: matrix not positive "
                                      "definite");
    const double diag = std::sqrt(pivot);
    const auto& rows_j = symbolic_.col_rows[j];
    column.resize(rows_j.size());
    column[0] = diag;
    for (std::size_t q = 1; q < rows_j.size(); ++q) {
      column[q] = accumulator[rows_j[q]] / diag;
    }
    // Clear the workspace entries we touched.
    for (std::size_t row : rows_j) accumulator[row] = 0.0;

    file.seek(symbolic_.col_offset[j]);
    file.write(std::as_bytes(std::span<const double>(column)));
    stats.columns_written++;
    stats.bytes_written += symbolic_.column_bytes(j);
  }
  file.close();
  return stats;
}

SparseMatrix OocCholesky::load_factor(TraceCapturingFs& capture,
                                      const std::string& file_name) const {
  RecordingFile file = capture.open(file_name, io::OpenMode::kRead);
  SparseMatrix l;
  l.n = symbolic_.n;
  l.col_ptr.resize(l.n + 1, 0);
  for (std::size_t j = 0; j < l.n; ++j) {
    l.col_ptr[j + 1] = l.col_ptr[j] + symbolic_.col_rows[j].size();
  }
  l.row_idx.reserve(l.col_ptr[l.n]);
  l.values.resize(l.col_ptr[l.n]);
  std::vector<double> column;
  for (std::size_t j = 0; j < l.n; ++j) {
    l.row_idx.insert(l.row_idx.end(), symbolic_.col_rows[j].begin(),
                     symbolic_.col_rows[j].end());
    column.resize(symbolic_.col_rows[j].size());
    file.seek(symbolic_.col_offset[j]);
    file.read_exact(std::as_writable_bytes(std::span<double>(column)));
    std::copy(column.begin(), column.end(),
              l.values.begin() + static_cast<std::ptrdiff_t>(l.col_ptr[j]));
  }
  file.close();
  validate(l);
  return l;
}

double cholesky_residual(const SparseMatrix& a, const SparseMatrix& l) {
  util::check<util::ConfigError>(a.n == l.n,
                                 "cholesky_residual: size mismatch");
  const std::size_t n = a.n;
  const auto dense_a = to_dense_symmetric(a);
  // Dense L.
  std::vector<double> dense_l(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t p = l.col_ptr[j]; p < l.col_ptr[j + 1]; ++p) {
      dense_l[j * n + l.row_idx[p]] = l.values[p];
    }
  }
  double max_a = 0.0;
  for (double v : dense_a) max_a = std::max(max_a, std::fabs(v));
  if (max_a == 0.0) max_a = 1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      const std::size_t kmax = std::min(i, j);
      for (std::size_t k = 0; k <= kmax; ++k) {
        sum += dense_l[k * n + i] * dense_l[k * n + j];
      }
      worst = std::max(worst, std::fabs(sum - dense_a[j * n + i]));
    }
  }
  return worst / max_a;
}

std::vector<double> cholesky_solve(const SparseMatrix& l,
                                   const std::vector<double>& b) {
  util::check<util::ConfigError>(b.size() == l.n,
                                 "cholesky_solve: size mismatch");
  const std::size_t n = l.n;
  std::vector<double> x(b);
  // Forward: L y = b (column-oriented).
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t head = l.col_ptr[j];
    x[j] /= l.values[head];
    for (std::size_t p = head + 1; p < l.col_ptr[j + 1]; ++p) {
      x[l.row_idx[p]] -= l.values[p] * x[j];
    }
  }
  // Backward: Lᵀ x = y (dot-product form per column, descending).
  for (std::size_t j = n; j-- > 0;) {
    const std::size_t head = l.col_ptr[j];
    double sum = x[j];
    for (std::size_t p = head + 1; p < l.col_ptr[j + 1]; ++p) {
      sum -= l.values[p] * x[l.row_idx[p]];
    }
    x[j] = sum / l.values[head];
  }
  return x;
}

}  // namespace clio::apps::cholesky
