#include "apps/cholesky/etree.hpp"

#include "util/error.hpp"

namespace clio::apps::cholesky {

std::vector<std::size_t> elimination_tree(const SparseMatrix& a) {
  validate(a);
  const std::size_t n = a.n;
  std::vector<std::size_t> parent(n, kNoParent);
  std::vector<std::size_t> ancestor(n, kNoParent);
  // Row adjacency of the lower triangle: row_adj[k] = { j < k : A(k,j)!=0 }.
  std::vector<std::vector<std::size_t>> row_adj(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t p = a.col_ptr[j]; p < a.col_ptr[j + 1]; ++p) {
      if (a.row_idx[p] > j) row_adj[a.row_idx[p]].push_back(j);
    }
  }
  // Liu's algorithm, processing nodes k in ascending order: climb from each
  // neighbour toward the root, compressing paths through `ancestor` and
  // linking fresh roots to k.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j : row_adj[k]) {
      std::size_t i = j;
      while (i != kNoParent && i < k) {
        const std::size_t next = ancestor[i];
        ancestor[i] = k;
        if (next == kNoParent) parent[i] = k;
        i = next;
      }
    }
  }
  return parent;
}

std::vector<std::size_t> postorder(const std::vector<std::size_t>& parent) {
  const std::size_t n = parent.size();
  // Build child lists (reversed so traversal yields ascending-ish order).
  std::vector<std::vector<std::size_t>> children(n);
  std::vector<std::size_t> roots;
  for (std::size_t j = 0; j < n; ++j) {
    if (parent[j] == kNoParent) {
      roots.push_back(j);
    } else {
      util::check<util::ConfigError>(parent[j] > j && parent[j] < n,
                                     "postorder: malformed etree");
      children[parent[j]].push_back(j);
    }
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // node, child idx
  for (std::size_t root : roots) {
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [node, next_child] = stack.back();
      if (next_child < children[node].size()) {
        const std::size_t child = children[node][next_child++];
        stack.emplace_back(child, 0);
      } else {
        order.push_back(node);
        stack.pop_back();
      }
    }
  }
  util::check<util::ConfigError>(order.size() == n,
                                 "postorder: cycle or orphan detected");
  return order;
}

std::vector<std::size_t> column_counts(const SparseMatrix& a,
                                       const std::vector<std::size_t>& parent) {
  // Count via row patterns: row i contributes to column j iff j is on the
  // etree path from some k (A(i,k) != 0, k < i) up to i.  O(|L|).
  const std::size_t n = a.n;
  std::vector<std::size_t> counts(n, 1);  // diagonals
  std::vector<std::size_t> mark(n, SIZE_MAX);
  // Row adjacency from the lower-triangle columns.
  std::vector<std::vector<std::size_t>> row_adj(n);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t p = a.col_ptr[k]; p < a.col_ptr[k + 1]; ++p) {
      if (a.row_idx[p] > k) row_adj[a.row_idx[p]].push_back(k);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    mark[i] = i;
    for (std::size_t k : row_adj[i]) {
      for (std::size_t j = k; mark[j] != i; j = parent[j]) {
        counts[j]++;  // L(i, j) != 0
        mark[j] = i;
        if (parent[j] == kNoParent) break;
      }
    }
  }
  return counts;
}

}  // namespace clio::apps::cholesky
