#include "sim/resources.hpp"

#include <memory>

#include "util/error.hpp"

namespace clio::sim {

// ------------------------------------------------------------ CPU pool ----

ResourcePool::ResourcePool(EventQueue& queue, std::size_t servers)
    : queue_(queue), servers_(servers) {
  util::check<util::ConfigError>(servers >= 1,
                                 "ResourcePool: need >= 1 server");
}

void ResourcePool::submit(double service_ms, EventQueue::Callback on_done) {
  util::check<util::ConfigError>(service_ms >= 0.0,
                                 "ResourcePool: negative service time");
  Job job{service_ms, std::move(on_done)};
  if (in_service_ < servers_) {
    start(std::move(job));
  } else {
    waiting_.push_back(std::move(job));
  }
}

void ResourcePool::start(Job job) {
  ++in_service_;
  busy_ms_ += job.service_ms;
  // shared_ptr so the callback can be copied into the scheduler while the
  // job payload stays movable.
  auto done = std::make_shared<EventQueue::Callback>(std::move(job.on_done));
  queue_.schedule_in(job.service_ms, [this, done] {
    --in_service_;
    ++completed_;
    if (!waiting_.empty()) {
      Job next = std::move(waiting_.front());
      waiting_.pop_front();
      start(std::move(next));
    }
    (*done)();
  });
}

// ---------------------------------------------------------- disk queue ----

DiskQueue::DiskQueue(EventQueue& queue, const io::DiskParams& params)
    : queue_(queue), disk_(params) {}

void DiskQueue::submit(std::uint64_t offset, std::uint64_t bytes,
                       EventQueue::Callback on_done) {
  Request request{offset, bytes, std::move(on_done)};
  if (!busy_) {
    start(std::move(request));
  } else {
    waiting_.push_back(std::move(request));
  }
}

void DiskQueue::start(Request request) {
  busy_ = true;
  const double service_ms = disk_.access_ms(request.offset, request.bytes);
  auto done =
      std::make_shared<EventQueue::Callback>(std::move(request.on_done));
  queue_.schedule_in(service_ms, [this, done] {
    busy_ = false;
    if (!waiting_.empty()) {
      Request next = std::move(waiting_.front());
      waiting_.pop_front();
      start(std::move(next));
    }
    (*done)();
  });
}

// -------------------------------------------------------- striped disks ----

StripedDiskResource::StripedDiskResource(EventQueue& queue, std::size_t disks,
                                         std::uint64_t stripe_bytes,
                                         const io::DiskParams& params)
    : queue_(queue), stripe_bytes_(stripe_bytes) {
  util::check<util::ConfigError>(disks >= 1,
                                 "StripedDiskResource: need >= 1 disk");
  util::check<util::ConfigError>(stripe_bytes >= 1,
                                 "StripedDiskResource: stripe must be >= 1");
  disks_.reserve(disks);
  for (std::size_t i = 0; i < disks; ++i) disks_.emplace_back(queue, params);
}

void StripedDiskResource::submit(std::uint64_t offset, std::uint64_t bytes,
                                 EventQueue::Callback on_done) {
  // Decompose into stripe-aligned extents, fan out, and join.
  struct Join {
    std::size_t remaining;
    EventQueue::Callback on_done;
  };
  std::vector<std::pair<std::size_t, std::pair<std::uint64_t, std::uint64_t>>>
      extents;
  std::uint64_t pos = offset;
  std::uint64_t remaining = bytes;
  if (remaining == 0) {
    const std::uint64_t stripe = pos / stripe_bytes_;
    const std::size_t d = static_cast<std::size_t>(stripe % disks_.size());
    const std::uint64_t disk_off =
        (stripe / disks_.size()) * stripe_bytes_ + pos % stripe_bytes_;
    extents.push_back({d, {disk_off, 0}});
  }
  while (remaining > 0) {
    const std::uint64_t stripe = pos / stripe_bytes_;
    const std::uint64_t within = pos % stripe_bytes_;
    const std::uint64_t take = std::min(remaining, stripe_bytes_ - within);
    const std::size_t d = static_cast<std::size_t>(stripe % disks_.size());
    const std::uint64_t disk_off =
        (stripe / disks_.size()) * stripe_bytes_ + within;
    extents.push_back({d, {disk_off, take}});
    pos += take;
    remaining -= take;
  }
  auto join = std::make_shared<Join>(Join{extents.size(), std::move(on_done)});
  for (const auto& [d, ext] : extents) {
    disks_[d].submit(ext.first, ext.second, [join] {
      if (--join->remaining == 0) join->on_done();
    });
  }
}

double StripedDiskResource::total_busy_ms() const {
  double total = 0.0;
  for (const auto& d : disks_) total += d.busy_ms();
  return total;
}

// ------------------------------------------------------------- network ----

NetworkLink::NetworkLink(EventQueue& queue, double bandwidth_mb_s,
                         double latency_ms)
    : queue_(queue), bandwidth_mb_s_(bandwidth_mb_s), latency_ms_(latency_ms) {
  util::check<util::ConfigError>(bandwidth_mb_s > 0.0,
                                 "NetworkLink: bandwidth must be > 0");
  util::check<util::ConfigError>(latency_ms >= 0.0,
                                 "NetworkLink: negative latency");
}

void NetworkLink::submit(std::uint64_t bytes, EventQueue::Callback on_done) {
  Message message{bytes, std::move(on_done)};
  if (!busy_) {
    start(std::move(message));
  } else {
    waiting_.push_back(std::move(message));
  }
}

void NetworkLink::start(Message message) {
  busy_ = true;
  const double service_ms =
      latency_ms_ +
      static_cast<double>(message.bytes) / (bandwidth_mb_s_ * 1e6) * 1e3;
  busy_ms_ += service_ms;
  ++messages_;
  auto done =
      std::make_shared<EventQueue::Callback>(std::move(message.on_done));
  queue_.schedule_in(service_ms, [this, done] {
    busy_ = false;
    if (!waiting_.empty()) {
      Message next = std::move(waiting_.front());
      waiting_.pop_front();
      start(std::move(next));
    }
    (*done)();
  });
}

}  // namespace clio::sim
