#include "sim/event_queue.hpp"

#include "util/error.hpp"

namespace clio::sim {

void EventQueue::schedule_at(double at_ms, Callback cb) {
  util::check<util::ConfigError>(at_ms >= now_ms_,
                                 "EventQueue: cannot schedule in the past");
  queue_.push(Event{at_ms, next_seq_++, std::move(cb)});
}

void EventQueue::schedule_in(double delay_ms, Callback cb) {
  util::check<util::ConfigError>(delay_ms >= 0.0,
                                 "EventQueue: negative delay");
  schedule_at(now_ms_ + delay_ms, std::move(cb));
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move via const_cast is the standard
  // idiom-free option, so copy the callback out instead (cheap: one
  // std::function).
  Event event = queue_.top();
  queue_.pop();
  now_ms_ = event.time;
  ++executed_;
  event.cb();
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace clio::sim
