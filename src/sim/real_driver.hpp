#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "model/application.hpp"
#include "model/synthesis.hpp"

namespace clio::sim {

/// Options of the real-execution driver.
struct RealDriverOptions {
  std::filesystem::path workdir;        ///< directory for program data files
  std::uint64_t io_block = 256 * 1024;  ///< bytes per synchronous read
  std::size_t page_size = 4096;
  std::size_t pool_pages = 1024;        ///< 4 MiB cache: files must overflow it
  /// Measure the managed stack's actual cold-read and loopback-send rates
  /// before the run and synthesize burst work with them, so a burst's
  /// *measured* duration lands near its modeled duration.  When false,
  /// `rates` is used as-is.
  bool calibrate = true;
  model::SynthesisRates rates{};
  std::uint64_t calib_io_bytes = 16ULL << 20;
  std::uint64_t calib_comm_bytes = 8ULL << 20;
};

/// Measured outcome for one program.
struct ProgramRealResult {
  std::string name;
  double cpu_ms = 0.0;
  double io_ms = 0.0;
  double comm_ms = 0.0;
  std::uint64_t io_bytes = 0;
  std::uint64_t comm_bytes = 0;

  [[nodiscard]] double total_ms() const { return cpu_ms + io_ms + comm_ms; }
};

/// Whole-run outcome.
struct RealRunResult {
  std::vector<ProgramRealResult> programs;
  double wall_ms = 0.0;
  double disk_mb_s = 0.0;  ///< rate used for I/O synthesis
  double net_mb_s = 0.0;   ///< rate used for communication synthesis

  [[nodiscard]] double total_cpu_ms() const;
  [[nodiscard]] double total_io_ms() const;
  [[nodiscard]] double total_comm_ms() const;
};

/// Executes a behavioral-model application FOR REAL: computation bursts
/// burn CPU, I/O bursts issue synchronous reads through the managed I/O
/// stack (clio::io) against on-disk files larger than the buffer pool, and
/// communication bursts stream bytes through a Unix-socket pair.  This is
/// the first benchmark of the paper: the model "quickly emulates a parallel
/// application running on the CLI" without implementing the application.
///
/// Programs execute sequentially (the paper reports per-program and
/// aggregate times; running them back-to-back keeps per-burst timing clean
/// on a single-CPU host).
class RealExecutionDriver {
 public:
  explicit RealExecutionDriver(RealDriverOptions options);

  [[nodiscard]] RealRunResult run(const model::ApplicationBehavior& app,
                                  double timebase_sec);

 private:
  RealDriverOptions options_;
};

}  // namespace clio::sim
