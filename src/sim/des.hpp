#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/disk_model.hpp"
#include "model/application.hpp"
#include "model/synthesis.hpp"

namespace clio::sim {

/// Machine under simulation.
struct MachineConfig {
  std::size_t cpus = 1;
  std::size_t disks = 1;
  std::uint64_t stripe_bytes = 256 * 1024;
  /// Granularity of synchronous I/O requests within an I/O burst.  The
  /// paper's applications issue synchronous reads of at most a few hundred
  /// KiB; requests no wider than the stripe unit cannot exploit
  /// intra-request parallelism — the mechanism behind Figure 4's flat curve.
  std::uint64_t io_request_bytes = 256 * 1024;
  double network_mb_s = 100.0;
  double network_latency_ms = 0.05;
  io::DiskParams disk{};
  /// When true, a phase's computation burst is data-parallel across all
  /// CPUs (gang-scheduled: service time divides by the pool size).  This is
  /// the Figure 5 scaling dimension.  When false a burst occupies exactly
  /// one CPU.
  bool data_parallel_cpu = false;
  /// When true, program i's I/O bypasses striping and goes wholly to disk
  /// i mod disks — one spindle per program, no inter-program interference.
  /// Used by the CPU sweep so the I/O term stays at its modeled value
  /// while CPUs scale (classic Amdahl saturation, the Figure 5 mechanism).
  bool partition_disks_by_program = false;
  /// Rates converting burst time to burst work (must match the reference
  /// 1-disk configuration so speedups are relative to the same workload).
  model::SynthesisRates rates{};
  /// When true (default), rates.disk_mb_s is replaced by the modeled disk's
  /// effective *sequential* rate at io_request_bytes granularity, so an I/O
  /// burst's simulated duration on an uncontended single disk matches its
  /// modeled duration — the same calibration the real-execution driver
  /// performs against the real stack.
  bool calibrate_rates = true;
};

/// Per-program outcome of a simulated run.
struct ProgramSimResult {
  std::string name;
  double cpu_ms = 0.0;     ///< time spent in computation bursts
  double io_ms = 0.0;      ///< time spent waiting on disk requests
  double comm_ms = 0.0;    ///< time spent waiting on the network
  double finish_ms = 0.0;  ///< completion timestamp

  [[nodiscard]] double total_ms() const { return cpu_ms + io_ms + comm_ms; }
};

/// Whole-application outcome.
struct SimResult {
  std::vector<ProgramSimResult> programs;
  double makespan_ms = 0.0;  ///< max finish over programs
  double cpu_busy_ms = 0.0;  ///< aggregate CPU busy time
  double disk_busy_ms = 0.0; ///< aggregate disk busy time

  [[nodiscard]] double total_cpu_ms() const;
  [[nodiscard]] double total_io_ms() const;
  [[nodiscard]] double total_comm_ms() const;
};

/// Simulates the application on the machine.  Programs start at t=0 and run
/// concurrently; within a program, phases execute sequentially and each
/// phase serializes CPU burst -> I/O burst -> communication burst (the
/// paper's phase anatomy).  `timebase_sec` is the model timebase used to
/// synthesize burst work (the T of eq. 2).
[[nodiscard]] SimResult simulate(const model::ApplicationBehavior& app,
                                 const MachineConfig& machine,
                                 double timebase_sec);

}  // namespace clio::sim
