#include "sim/speedup.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace clio::sim {

std::vector<SpeedupPoint> sweep_disks(const model::ApplicationBehavior& app,
                                      MachineConfig machine,
                                      const std::vector<std::size_t>& disk_counts,
                                      double timebase_sec) {
  util::check<util::ConfigError>(!disk_counts.empty(),
                                 "sweep_disks: empty sweep");
  if (machine.cpus < app.num_programs()) {
    machine.cpus = app.num_programs();
  }
  machine.data_parallel_cpu = false;

  MachineConfig baseline = machine;
  baseline.disks = 1;
  const double base_ms = simulate(app, baseline, timebase_sec).makespan_ms;

  std::vector<SpeedupPoint> points;
  points.reserve(disk_counts.size());
  for (std::size_t d : disk_counts) {
    MachineConfig config = machine;
    config.disks = d;
    const double ms = simulate(app, config, timebase_sec).makespan_ms;
    points.push_back(SpeedupPoint{d, ms, base_ms / ms});
  }
  return points;
}

std::vector<SpeedupPoint> sweep_cpus(const model::ApplicationBehavior& app,
                                     MachineConfig machine,
                                     const std::vector<std::size_t>& cpu_counts,
                                     double timebase_sec) {
  util::check<util::ConfigError>(!cpu_counts.empty(), "sweep_cpus: empty sweep");
  machine.data_parallel_cpu = true;
  // Isolate the CPU dimension: one spindle per program keeps every I/O
  // burst at its modeled duration, so the curve is pure Amdahl over the
  // application's serial I/O fraction — the paper's Figure 5 mechanism.
  machine.disks = std::max<std::size_t>(machine.disks, app.num_programs());
  machine.partition_disks_by_program = true;

  MachineConfig baseline = machine;
  baseline.cpus = 1;
  const double base_ms = simulate(app, baseline, timebase_sec).makespan_ms;

  std::vector<SpeedupPoint> points;
  points.reserve(cpu_counts.size());
  for (std::size_t c : cpu_counts) {
    MachineConfig config = machine;
    config.cpus = c;
    const double ms = simulate(app, config, timebase_sec).makespan_ms;
    points.push_back(SpeedupPoint{c, ms, base_ms / ms});
  }
  return points;
}

}  // namespace clio::sim
