#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "io/disk_model.hpp"
#include "sim/event_queue.hpp"

namespace clio::sim {

/// Pool of `n` identical servers with a shared FIFO queue (M/G/n-style).
/// Models the CPU set: a job occupies one server for its service time.
class ResourcePool {
 public:
  ResourcePool(EventQueue& queue, std::size_t servers);

  /// Enqueues a job; `on_done` fires when its service completes.
  void submit(double service_ms, EventQueue::Callback on_done);

  [[nodiscard]] std::size_t servers() const { return servers_; }
  [[nodiscard]] double busy_ms() const { return busy_ms_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  /// Jobs queued but not yet started (diagnostic).
  [[nodiscard]] std::size_t backlog() const { return waiting_.size(); }

 private:
  struct Job {
    double service_ms;
    EventQueue::Callback on_done;
  };

  void start(Job job);

  EventQueue& queue_;
  std::size_t servers_;
  std::size_t in_service_ = 0;
  std::deque<Job> waiting_;
  double busy_ms_ = 0.0;
  std::uint64_t completed_ = 0;
};

/// One simulated disk with a FCFS request queue.  Service times come from
/// the analytic DiskModel, including head-position-dependent seeks.
class DiskQueue {
 public:
  DiskQueue(EventQueue& queue, const io::DiskParams& params);

  void submit(std::uint64_t offset, std::uint64_t bytes,
              EventQueue::Callback on_done);

  [[nodiscard]] double busy_ms() const { return disk_.busy_ms(); }
  [[nodiscard]] std::uint64_t requests() const {
    return disk_.requests_served();
  }
  [[nodiscard]] std::uint64_t bytes() const { return disk_.bytes_served(); }

 private:
  struct Request {
    std::uint64_t offset;
    std::uint64_t bytes;
    EventQueue::Callback on_done;
  };

  void start(Request request);

  EventQueue& queue_;
  io::SimDisk disk_;
  bool busy_ = false;
  std::deque<Request> waiting_;
};

/// RAID-0 striping over D DiskQueues.  A logical request completes when the
/// last of its per-disk extents completes.  This is the resource behind
/// Figure 4: requests narrower than the stripe unit exercise one spindle.
class StripedDiskResource {
 public:
  StripedDiskResource(EventQueue& queue, std::size_t disks,
                      std::uint64_t stripe_bytes,
                      const io::DiskParams& params = {});

  void submit(std::uint64_t offset, std::uint64_t bytes,
              EventQueue::Callback on_done);

  [[nodiscard]] std::size_t num_disks() const { return disks_.size(); }
  [[nodiscard]] double total_busy_ms() const;
  [[nodiscard]] const DiskQueue& disk(std::size_t i) const {
    return disks_.at(i);
  }
  /// Direct access to one spindle, for affinity-scheduled workloads that
  /// bypass striping.
  [[nodiscard]] DiskQueue& raw_disk(std::size_t i) { return disks_.at(i); }

 private:
  EventQueue& queue_;
  std::vector<DiskQueue> disks_;
  std::uint64_t stripe_bytes_;
};

/// A shared serial network link: latency + size/bandwidth per message,
/// messages serialized FCFS.  Models the communication medium for
/// communication bursts.
class NetworkLink {
 public:
  NetworkLink(EventQueue& queue, double bandwidth_mb_s, double latency_ms);

  void submit(std::uint64_t bytes, EventQueue::Callback on_done);

  [[nodiscard]] double busy_ms() const { return busy_ms_; }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }

 private:
  struct Message {
    std::uint64_t bytes;
    EventQueue::Callback on_done;
  };

  void start(Message message);

  EventQueue& queue_;
  double bandwidth_mb_s_;
  double latency_ms_;
  bool busy_ = false;
  std::deque<Message> waiting_;
  double busy_ms_ = 0.0;
  std::uint64_t messages_ = 0;
};

}  // namespace clio::sim
