#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace clio::sim {

/// Discrete-event engine core: a clock and a time-ordered callback queue.
///
/// Events at equal timestamps run in scheduling order (a monotone sequence
/// number breaks ties), which keeps simulations deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at_ms` (must be >= now()).
  void schedule_at(double at_ms, Callback cb);

  /// Schedules `cb` `delay_ms` from now (delay >= 0).
  void schedule_in(double delay_ms, Callback cb);

  /// Runs the earliest event.  Returns false if the queue was empty.
  bool step();

  /// Runs events until the queue drains.
  void run();

  [[nodiscard]] double now_ms() const { return now_ms_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ms_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace clio::sim
