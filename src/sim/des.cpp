#include "sim/des.hpp"

#include <algorithm>
#include <memory>

#include "sim/event_queue.hpp"
#include "sim/resources.hpp"
#include "util/error.hpp"

namespace clio::sim {
namespace {

/// Driver for one program: walks its phase-work list, alternating between
/// the CPU pool, the striped disks and the network link.  Instances are
/// owned by shared_ptr captured in the completion callbacks.
class ProgramRun : public std::enable_shared_from_this<ProgramRun> {
 public:
  ProgramRun(EventQueue& queue, ResourcePool& cpus, StripedDiskResource& disks,
             NetworkLink& network, const MachineConfig& machine,
             std::vector<model::PhaseWork> work, std::uint64_t file_base,
             std::size_t program_index, ProgramSimResult* result)
      : queue_(queue),
        cpus_(cpus),
        disks_(disks),
        network_(network),
        machine_(machine),
        work_(std::move(work)),
        io_offset_(file_base),
        program_index_(program_index),
        result_(result) {}

  void start() { next_phase(); }

 private:
  void next_phase() {
    if (phase_ >= work_.size()) {
      result_->finish_ms = queue_.now_ms();
      return;
    }
    run_cpu_burst();
  }

  void run_cpu_burst() {
    const auto& w = work_[phase_];
    double cpu_ms = static_cast<double>(w.cpu_ns) / 1e6;
    if (machine_.data_parallel_cpu) {
      cpu_ms /= static_cast<double>(cpus_.servers());
    }
    if (cpu_ms <= 0.0) {
      run_io_burst();
      return;
    }
    const double begin = queue_.now_ms();
    auto self = shared_from_this();
    cpus_.submit(cpu_ms, [this, self, begin] {
      // Waiting in the CPU queue counts toward the burst: the program is
      // "computing" from its own perspective (the paper measures wall time
      // per activity class).
      result_->cpu_ms += queue_.now_ms() - begin;
      run_io_burst();
    });
  }

  void run_io_burst() {
    io_remaining_ = work_[phase_].io_bytes;
    io_begin_ms_ = queue_.now_ms();
    issue_next_io();
  }

  void issue_next_io() {
    if (io_remaining_ == 0) {
      result_->io_ms += queue_.now_ms() - io_begin_ms_;
      run_comm_burst();
      return;
    }
    const std::uint64_t req =
        std::min<std::uint64_t>(io_remaining_, machine_.io_request_bytes);
    io_remaining_ -= req;
    auto self = shared_from_this();
    if (machine_.partition_disks_by_program) {
      disks_.raw_disk(program_index_ % disks_.num_disks())
          .submit(io_offset_, req, [this, self] { issue_next_io(); });
    } else {
      disks_.submit(io_offset_, req, [this, self] { issue_next_io(); });
    }
    io_offset_ += req;
  }

  void run_comm_burst() {
    const std::uint64_t bytes = work_[phase_].comm_bytes;
    if (bytes == 0) {
      ++phase_;
      next_phase();
      return;
    }
    const double begin = queue_.now_ms();
    auto self = shared_from_this();
    network_.submit(bytes, [this, self, begin] {
      result_->comm_ms += queue_.now_ms() - begin;
      ++phase_;
      next_phase();
    });
  }

  EventQueue& queue_;
  ResourcePool& cpus_;
  StripedDiskResource& disks_;
  NetworkLink& network_;
  const MachineConfig& machine_;
  std::vector<model::PhaseWork> work_;
  std::size_t phase_ = 0;
  std::uint64_t io_remaining_ = 0;
  std::uint64_t io_offset_ = 0;
  std::size_t program_index_ = 0;
  double io_begin_ms_ = 0.0;
  ProgramSimResult* result_;
};

}  // namespace

double SimResult::total_cpu_ms() const {
  double t = 0.0;
  for (const auto& p : programs) t += p.cpu_ms;
  return t;
}

double SimResult::total_io_ms() const {
  double t = 0.0;
  for (const auto& p : programs) t += p.io_ms;
  return t;
}

double SimResult::total_comm_ms() const {
  double t = 0.0;
  for (const auto& p : programs) t += p.comm_ms;
  return t;
}

SimResult simulate(const model::ApplicationBehavior& app,
                   const MachineConfig& machine, double timebase_sec) {
  util::check<util::ConfigError>(timebase_sec > 0.0,
                                 "simulate: timebase must be > 0");
  EventQueue queue;
  ResourcePool cpus(queue, machine.cpus);
  StripedDiskResource disks(queue, machine.disks, machine.stripe_bytes,
                            machine.disk);
  NetworkLink network(queue, machine.network_mb_s,
                      machine.network_latency_ms);

  MachineConfig calibrated = machine;
  if (machine.calibrate_rates) {
    // Effective sequential rate: one request pays command overhead plus
    // media transfer (no seek, no rotation when streaming).
    const io::DiskModel model(machine.disk);
    const double service_ms =
        machine.disk.overhead_ms +
        model.transfer_time_ms(machine.io_request_bytes);
    calibrated.rates.disk_mb_s =
        static_cast<double>(machine.io_request_bytes) / 1e6 /
        (service_ms / 1e3);
  }

  SimResult result;
  result.programs.resize(app.num_programs());
  std::vector<std::shared_ptr<ProgramRun>> runs;
  for (std::size_t i = 0; i < app.num_programs(); ++i) {
    const auto& program = app.programs()[i];
    result.programs[i].name = program.name();
    auto work = model::synthesize_program(program, timebase_sec,
                                          calibrated.rates);
    // Each program owns a distinct on-disk region, so inter-program
    // interference shows up as seeks — as it would with separate files on
    // a shared platter.
    const std::uint64_t file_base = i * (1ULL << 30);
    runs.push_back(std::make_shared<ProgramRun>(
        queue, cpus, disks, network, machine, std::move(work), file_base, i,
        &result.programs[i]));
  }
  for (auto& run : runs) run->start();
  queue.run();

  for (const auto& p : result.programs) {
    result.makespan_ms = std::max(result.makespan_ms, p.finish_ms);
  }
  result.cpu_busy_ms = cpus.busy_ms();
  result.disk_busy_ms = disks.total_busy_ms();
  return result;
}

}  // namespace clio::sim
