#pragma once

#include <vector>

#include "sim/des.hpp"

namespace clio::sim {

/// One point of a scaling experiment.
struct SpeedupPoint {
  std::size_t value = 1;      ///< the swept parameter (#disks or #CPUs)
  double makespan_ms = 0.0;
  double speedup = 1.0;       ///< baseline makespan / this makespan
};

/// Figure 4: speedup of the application as a function of the number of
/// disks.  Baseline is the same machine with one disk.  CPU count defaults
/// to one per program (no CPU contention, isolating the disk dimension).
[[nodiscard]] std::vector<SpeedupPoint> sweep_disks(
    const model::ApplicationBehavior& app, MachineConfig machine,
    const std::vector<std::size_t>& disk_counts, double timebase_sec);

/// Figure 5: speedup as a function of the number of CPUs.  Baseline is one
/// CPU; computation bursts are data-parallel across the pool (the model's
/// parallel-program reading), I/O is serialized on the configured disks.
[[nodiscard]] std::vector<SpeedupPoint> sweep_cpus(
    const model::ApplicationBehavior& app, MachineConfig machine,
    const std::vector<std::size_t>& cpu_counts, double timebase_sec);

}  // namespace clio::sim
