#include "sim/real_driver.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <thread>

#include "io/managed_file.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/stopwatch.hpp"

namespace clio::sim {
namespace {

using util::check;
using util::IoError;
using util::Stopwatch;

/// Byte-streaming channel over a Unix socket pair with an echo thread.
/// Protocol per burst: u64 payload length, payload, then a 1-byte ack from
/// the echo side — so a timed burst includes full round-trip completion.
class LoopbackChannel {
 public:
  LoopbackChannel() {
    int fds[2];
    check<IoError>(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
                   "LoopbackChannel: socketpair failed");
    sender_fd_ = fds[0];
    echo_fd_ = fds[1];
    echo_thread_ = std::thread([this] { echo_loop(); });
  }

  ~LoopbackChannel() {
    ::shutdown(sender_fd_, SHUT_RDWR);
    ::close(sender_fd_);
    if (echo_thread_.joinable()) echo_thread_.join();
    ::close(echo_fd_);
  }

  LoopbackChannel(const LoopbackChannel&) = delete;
  LoopbackChannel& operator=(const LoopbackChannel&) = delete;

  /// Streams `bytes` and waits for the ack.
  void transfer(std::uint64_t bytes) {
    std::uint64_t header = bytes;
    write_all(&header, sizeof(header));
    static constexpr std::size_t kChunk = 64 * 1024;
    std::vector<char> chunk(kChunk, 'c');
    std::uint64_t sent = 0;
    while (sent < bytes) {
      const std::size_t n =
          static_cast<std::size_t>(std::min<std::uint64_t>(kChunk,
                                                           bytes - sent));
      write_all(chunk.data(), n);
      sent += n;
    }
    char ack;
    check<IoError>(read_exact(sender_fd_, &ack, 1),
                   "LoopbackChannel: ack not received");
  }

 private:
  void echo_loop() {
    std::vector<char> buffer(64 * 1024);
    while (true) {
      std::uint64_t expect = 0;
      if (!read_exact(echo_fd_, &expect, sizeof(expect))) return;
      std::uint64_t seen = 0;
      while (seen < expect) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(buffer.size(), expect - seen));
        if (!read_exact(echo_fd_, buffer.data(), n)) return;
        seen += n;
      }
      const char ack = 'A';
      if (::send(echo_fd_, &ack, 1, MSG_NOSIGNAL) != 1) return;
    }
  }

  static bool read_exact(int fd, void* out, std::size_t n) {
    auto* p = static_cast<char*>(out);
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd, p + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<std::size_t>(r);
    }
    return true;
  }

  void write_all(const void* data, std::size_t n) {
    const auto* p = static_cast<const char*>(data);
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t r = ::send(sender_fd_, p + sent, n - sent, MSG_NOSIGNAL);
      check<IoError>(r > 0, "LoopbackChannel: send failed");
      sent += static_cast<std::size_t>(r);
    }
  }

  int sender_fd_ = -1;
  int echo_fd_ = -1;
  std::thread echo_thread_;
};

/// Sequentially reads `bytes` from the file, wrapping to offset 0 at EOF.
/// Returns elapsed milliseconds.
double timed_cyclic_read(io::ManagedFile& file, std::uint64_t bytes,
                         std::uint64_t block, std::uint64_t file_size,
                         std::vector<std::byte>& buffer) {
  Stopwatch watch;
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    if (file.position() >= file_size) file.seek(0);
    const std::uint64_t req = std::min<std::uint64_t>(
        {remaining, block, file_size - file.position()});
    buffer.resize(static_cast<std::size_t>(req));
    file.read_exact(buffer);
    remaining -= req;
  }
  return watch.elapsed_ms();
}

}  // namespace

double RealRunResult::total_cpu_ms() const {
  double t = 0.0;
  for (const auto& p : programs) t += p.cpu_ms;
  return t;
}
double RealRunResult::total_io_ms() const {
  double t = 0.0;
  for (const auto& p : programs) t += p.io_ms;
  return t;
}
double RealRunResult::total_comm_ms() const {
  double t = 0.0;
  for (const auto& p : programs) t += p.comm_ms;
  return t;
}

RealExecutionDriver::RealExecutionDriver(RealDriverOptions options)
    : options_(std::move(options)) {
  check<util::ConfigError>(!options_.workdir.empty(),
                           "RealExecutionDriver: workdir is required");
  check<util::ConfigError>(options_.io_block > 0,
                           "RealExecutionDriver: io_block must be > 0");
}

RealRunResult RealExecutionDriver::run(const model::ApplicationBehavior& app,
                                       double timebase_sec) {
  std::filesystem::create_directories(options_.workdir);
  io::ManagedFsOptions fs_options;
  fs_options.page_size = options_.page_size;
  fs_options.pool_pages = options_.pool_pages;
  io::ManagedFileSystem fs(
      std::make_unique<io::RealFileStore>(options_.workdir), fs_options);

  RealRunResult result;
  const std::uint64_t pool_bytes =
      static_cast<std::uint64_t>(options_.page_size) * options_.pool_pages;

  model::SynthesisRates rates = options_.rates;
  LoopbackChannel channel;

  if (options_.calibrate) {
    // Disk rate: cold sequential read of a file 4x the pool.
    const std::uint64_t calib_size =
        std::max<std::uint64_t>(options_.calib_io_bytes, 4 * pool_bytes);
    util::create_sample_file(options_.workdir / "calib.bin", calib_size);
    fs.drop_caches();
    {
      auto f = fs.open("calib.bin", io::OpenMode::kRead);
      std::vector<std::byte> buffer;
      const double ms = timed_cyclic_read(f, calib_size, options_.io_block,
                                          calib_size, buffer);
      rates.disk_mb_s = static_cast<double>(calib_size) / 1e6 / (ms / 1e3);
    }
    fs.remove("calib.bin");
    // Network rate: one loopback burst.
    {
      Stopwatch watch;
      channel.transfer(options_.calib_comm_bytes);
      const double ms = watch.elapsed_ms();
      rates.network_mb_s =
          static_cast<double>(options_.calib_comm_bytes) / 1e6 / (ms / 1e3);
    }
  }
  result.disk_mb_s = rates.disk_mb_s;
  result.net_mb_s = rates.network_mb_s;

  Stopwatch wall;
  for (std::size_t i = 0; i < app.num_programs(); ++i) {
    const auto& program = app.programs()[i];
    const auto work =
        model::synthesize_program(program, timebase_sec, rates);
    const auto totals = model::total_work(work);

    ProgramRealResult pr;
    pr.name = program.name();

    // The program's data file: big enough that cycling reads keep missing
    // the pool, small enough to create quickly.
    const std::uint64_t file_size = std::min<std::uint64_t>(
        std::max<std::uint64_t>(4 * pool_bytes, options_.io_block),
        std::max<std::uint64_t>(totals.io_bytes, options_.io_block));
    const std::string file_name = "program" + std::to_string(i) + ".bin";
    std::vector<std::byte> buffer;
    if (totals.io_bytes > 0) {
      util::create_sample_file(options_.workdir / file_name, file_size);
    }
    fs.drop_caches();

    io::ManagedFile file;
    if (totals.io_bytes > 0) {
      file = fs.open(file_name, io::OpenMode::kRead);
    }
    for (const auto& phase : work) {
      if (phase.cpu_ns > 0) {
        Stopwatch cpu_watch;
        util::spin_for_ns(phase.cpu_ns);
        pr.cpu_ms += cpu_watch.elapsed_ms();
      }
      if (phase.io_bytes > 0) {
        pr.io_ms += timed_cyclic_read(file, phase.io_bytes, options_.io_block,
                                      file_size, buffer);
        pr.io_bytes += phase.io_bytes;
      }
      if (phase.comm_bytes > 0) {
        Stopwatch comm_watch;
        channel.transfer(phase.comm_bytes);
        pr.comm_ms += comm_watch.elapsed_ms();
        pr.comm_bytes += phase.comm_bytes;
      }
    }
    if (file.is_open()) file.close();
    if (totals.io_bytes > 0) fs.remove(file_name);
    result.programs.push_back(std::move(pr));
  }
  result.wall_ms = wall.elapsed_ms();
  return result;
}

}  // namespace clio::sim
