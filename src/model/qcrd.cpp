#include "model/qcrd.hpp"

namespace clio::model {

ApplicationBehavior make_qcrd() {
  // Program 1: 24 alternating working sets (12 CPU-heavy, 12 I/O-heavy).
  std::vector<WorkingSet> program1;
  program1.reserve(24);
  for (int i = 1; i <= 24; ++i) {
    if (i % 2 == 1) {
      program1.push_back(WorkingSet{.io_fraction = 0.14,
                                    .comm_fraction = 0.0,
                                    .rel_time = 0.066,
                                    .phases = 1});
    } else {
      program1.push_back(WorkingSet{.io_fraction = 0.97,
                                    .comm_fraction = 0.0,
                                    .rel_time = 0.0082,
                                    .phases = 1});
    }
  }
  // Program 2: one working set of 13 identical I/O-intensive phases.
  std::vector<WorkingSet> program2{WorkingSet{.io_fraction = 0.92,
                                              .comm_fraction = 0.0,
                                              .rel_time = 0.03,
                                              .phases = 13}};
  std::vector<ProgramBehavior> programs;
  programs.emplace_back("Program1", std::move(program1));
  programs.emplace_back("Program2", std::move(program2));
  return ApplicationBehavior("QCRD", std::move(programs));
}

ProgramBehavior make_figure1_example() {
  std::vector<WorkingSet> sets{
      WorkingSet{0.52, 0.29, 0.287, 1},
      WorkingSet{0.00, 0.85, 0.185, 2},
      WorkingSet{0.00, 0.57, 0.194, 1},
      WorkingSet{0.81, 0.00, 0.148, 1},
  };
  return ProgramBehavior("Figure1Example", std::move(sets));
}

}  // namespace clio::model
