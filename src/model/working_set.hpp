#pragma once

#include <cstddef>

namespace clio::model {

/// One working set Γi = (φ, γ, ρ, τ) of the application behavioral model
/// (paper §2.1, eq. 7):
///   φ  — I/O fraction: share of each phase spent in its I/O burst
///   γ  — communication fraction: share spent in the communication burst
///   ρ  — relative execution time of EACH phase in the working set, as a
///        fraction of the application's total execution time
///   τ  — number of statistically identical consecutive phases
///
/// The CPU fraction is implicit: 1 - φ - γ (eq. 1 partitions a phase into
/// CPU, communication and disk bursts).
///
/// Note on ρ's normalization: in the paper's own example (Fig. 1) the
/// per-phase ρ values weighted by τ sum to ~1 across the program
/// (0.287 + 2*0.185 + 0.194 + 0.148 = 0.999), so ρ is per *phase* and
/// relative to the program/application timebase.  The QCRD instantiation
/// (eqs. 9-10) keeps that convention.
struct WorkingSet {
  double io_fraction = 0.0;      ///< φ in [0, 1]
  double comm_fraction = 0.0;    ///< γ in [0, 1], φ + γ <= 1
  double rel_time = 0.0;         ///< ρ in (0, 1]
  std::size_t phases = 1;        ///< τ >= 1

  /// CPU share of each phase.
  [[nodiscard]] double cpu_fraction() const {
    return 1.0 - io_fraction - comm_fraction;
  }

  /// Total relative time contributed by the working set (ρ·τ).
  [[nodiscard]] double total_rel_time() const {
    return rel_time * static_cast<double>(phases);
  }

  bool operator==(const WorkingSet&) const = default;
};

/// Throws ConfigError unless 0 <= φ, 0 <= γ, φ+γ <= 1, 0 < ρ <= 1, τ >= 1.
void validate(const WorkingSet& ws);

}  // namespace clio::model
