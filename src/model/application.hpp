#pragma once

#include <string>
#include <vector>

#include "model/program.hpp"

namespace clio::model {

/// A parallel application: a set of interdependent programs that execute in
/// a coordinated manner (paper §2.1, definition 1; eq. 8).  Programs of an
/// application may exhibit different I/O and communication behaviors.
class ApplicationBehavior {
 public:
  ApplicationBehavior(std::string name, std::vector<ProgramBehavior> programs);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<ProgramBehavior>& programs() const {
    return programs_;
  }
  [[nodiscard]] std::size_t num_programs() const { return programs_.size(); }

  /// Aggregate requirements across programs for timebase `total_time`
  /// (eqs. 3-5 summed over the program set).
  [[nodiscard]] Requirements requirements(double total_time) const;

  /// Per-program requirements, same order as programs().
  [[nodiscard]] std::vector<Requirements> per_program_requirements(
      double total_time) const;

  /// Completion time of the application when programs run concurrently and
  /// each program's bursts serialize: max over programs of ρ-sum × T.
  [[nodiscard]] double makespan(double total_time) const;

 private:
  std::string name_;
  std::vector<ProgramBehavior> programs_;
};

}  // namespace clio::model
