#pragma once

#include <string>
#include <vector>

#include "model/working_set.hpp"

namespace clio::model {

/// A single expanded phase: one disjoint interval consisting of an I/O
/// burst, a computation burst and possibly a communication burst (paper
/// §2.1, definition 2).  Fractions are shares of the phase; rel_time is the
/// phase's share of the application timebase.
struct Phase {
  double io_fraction = 0.0;
  double comm_fraction = 0.0;
  double rel_time = 0.0;

  [[nodiscard]] double cpu_fraction() const {
    return 1.0 - io_fraction - comm_fraction;
  }
};

/// Resource requirements over a timebase T (paper eqs. 3-5):
/// R_CPU = Σ T_CPU^i, R_Disk = Σ T_Disk^i, R_COM = Σ T_COM^i.
struct Requirements {
  double cpu = 0.0;
  double disk = 0.0;
  double comm = 0.0;

  [[nodiscard]] double total() const { return cpu + disk + comm; }
};

/// The behavior vector ~Γ = [Γ1 ... ΓM] of one program (eq. 6): an ordered
/// sequence of working sets, expandable into the program's phase sequence.
class ProgramBehavior {
 public:
  ProgramBehavior(std::string name, std::vector<WorkingSet> working_sets);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<WorkingSet>& working_sets() const {
    return working_sets_;
  }

  /// Expands working sets into the flat phase sequence (τ copies each).
  [[nodiscard]] std::vector<Phase> phases() const;

  /// Total number of phases N = Σ τi.
  [[nodiscard]] std::size_t num_phases() const;

  /// Σ ρi·τi — the program's share of the application timebase.
  [[nodiscard]] double total_rel_time() const;

  /// Requirements when the application timebase is `total_time` seconds:
  /// phase i runs ρi·total_time seconds split by its fractions.
  [[nodiscard]] Requirements requirements(double total_time) const;

  /// A copy whose ρ values are scaled so total_rel_time() == 1 (useful when
  /// treating the program as its own timebase).
  [[nodiscard]] ProgramBehavior normalized() const;

 private:
  std::string name_;
  std::vector<WorkingSet> working_sets_;
};

}  // namespace clio::model
