#pragma once

#include <cstdint>
#include <vector>

#include "model/application.hpp"

namespace clio::model {

/// Rates used to translate burst *time* (what the model specifies) into
/// burst *work* (what an executor can actually perform): an I/O burst of
/// s seconds becomes s × disk_mb_s megabytes of file I/O, a communication
/// burst becomes s × network_mb_s megabytes of message traffic.
struct SynthesisRates {
  double disk_mb_s = 55.0;
  double network_mb_s = 100.0;
};

/// Concrete work for one phase.
struct PhaseWork {
  std::int64_t cpu_ns = 0;       ///< computation burst, nanoseconds to burn
  std::uint64_t io_bytes = 0;    ///< disk burst, bytes to read/write
  std::uint64_t comm_bytes = 0;  ///< communication burst, bytes to exchange
};

/// Expands a program into per-phase work items for an application timebase
/// of `total_time_sec` seconds.  This is what lets the first benchmark
/// "quickly emulate a parallel application running on the CLI" (paper §2.1)
/// — the model quadruples drive a real executor instead of a hand-written
/// application.
[[nodiscard]] std::vector<PhaseWork> synthesize_program(
    const ProgramBehavior& program, double total_time_sec,
    const SynthesisRates& rates = {});

/// Totals of a work vector (for verification and reporting).
struct WorkTotals {
  std::int64_t cpu_ns = 0;
  std::uint64_t io_bytes = 0;
  std::uint64_t comm_bytes = 0;
};
[[nodiscard]] WorkTotals total_work(const std::vector<PhaseWork>& work);

}  // namespace clio::model
