#include "model/program.hpp"

#include "util/error.hpp"

namespace clio::model {

ProgramBehavior::ProgramBehavior(std::string name,
                                 std::vector<WorkingSet> working_sets)
    : name_(std::move(name)), working_sets_(std::move(working_sets)) {
  util::check<util::ConfigError>(!working_sets_.empty(),
                                 "ProgramBehavior: need >= 1 working set");
  for (const auto& ws : working_sets_) validate(ws);
}

std::vector<Phase> ProgramBehavior::phases() const {
  std::vector<Phase> result;
  result.reserve(num_phases());
  for (const auto& ws : working_sets_) {
    for (std::size_t p = 0; p < ws.phases; ++p) {
      result.push_back(Phase{ws.io_fraction, ws.comm_fraction, ws.rel_time});
    }
  }
  return result;
}

std::size_t ProgramBehavior::num_phases() const {
  std::size_t n = 0;
  for (const auto& ws : working_sets_) n += ws.phases;
  return n;
}

double ProgramBehavior::total_rel_time() const {
  double total = 0.0;
  for (const auto& ws : working_sets_) total += ws.total_rel_time();
  return total;
}

Requirements ProgramBehavior::requirements(double total_time) const {
  util::check<util::ConfigError>(total_time > 0.0,
                                 "requirements: total_time must be > 0");
  Requirements r;
  for (const auto& ws : working_sets_) {
    const double ws_time = ws.total_rel_time() * total_time;
    r.disk += ws.io_fraction * ws_time;
    r.comm += ws.comm_fraction * ws_time;
    r.cpu += ws.cpu_fraction() * ws_time;
  }
  return r;
}

ProgramBehavior ProgramBehavior::normalized() const {
  const double total = total_rel_time();
  std::vector<WorkingSet> scaled = working_sets_;
  for (auto& ws : scaled) ws.rel_time /= total;
  return ProgramBehavior(name_, std::move(scaled));
}

}  // namespace clio::model
