#include "model/synthesis.hpp"

#include <cmath>

#include "util/error.hpp"

namespace clio::model {

std::vector<PhaseWork> synthesize_program(const ProgramBehavior& program,
                                          double total_time_sec,
                                          const SynthesisRates& rates) {
  util::check<util::ConfigError>(total_time_sec > 0.0,
                                 "synthesize_program: timebase must be > 0");
  util::check<util::ConfigError>(rates.disk_mb_s > 0.0,
                                 "synthesize_program: disk rate must be > 0");
  util::check<util::ConfigError>(
      rates.network_mb_s > 0.0,
      "synthesize_program: network rate must be > 0");

  std::vector<PhaseWork> work;
  const auto phases = program.phases();
  work.reserve(phases.size());
  for (const auto& phase : phases) {
    const double phase_sec = phase.rel_time * total_time_sec;
    PhaseWork w;
    w.cpu_ns = static_cast<std::int64_t>(
        std::llround(phase.cpu_fraction() * phase_sec * 1e9));
    w.io_bytes = static_cast<std::uint64_t>(
        std::llround(phase.io_fraction * phase_sec * rates.disk_mb_s * 1e6));
    w.comm_bytes = static_cast<std::uint64_t>(std::llround(
        phase.comm_fraction * phase_sec * rates.network_mb_s * 1e6));
    work.push_back(w);
  }
  return work;
}

WorkTotals total_work(const std::vector<PhaseWork>& work) {
  WorkTotals totals;
  for (const auto& w : work) {
    totals.cpu_ns += w.cpu_ns;
    totals.io_bytes += w.io_bytes;
    totals.comm_bytes += w.comm_bytes;
  }
  return totals;
}

}  // namespace clio::model
