#include "model/working_set.hpp"

#include "util/error.hpp"

namespace clio::model {

void validate(const WorkingSet& ws) {
  using util::ConfigError;
  util::check<ConfigError>(ws.io_fraction >= 0.0 && ws.io_fraction <= 1.0,
                           "WorkingSet: io_fraction out of [0,1]");
  util::check<ConfigError>(ws.comm_fraction >= 0.0 && ws.comm_fraction <= 1.0,
                           "WorkingSet: comm_fraction out of [0,1]");
  util::check<ConfigError>(ws.io_fraction + ws.comm_fraction <= 1.0 + 1e-12,
                           "WorkingSet: io + comm fractions exceed 1");
  util::check<ConfigError>(ws.rel_time > 0.0 && ws.rel_time <= 1.0,
                           "WorkingSet: rel_time out of (0,1]");
  util::check<ConfigError>(ws.phases >= 1, "WorkingSet: phases must be >= 1");
}

}  // namespace clio::model
