#include "model/application.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace clio::model {

ApplicationBehavior::ApplicationBehavior(std::string name,
                                         std::vector<ProgramBehavior> programs)
    : name_(std::move(name)), programs_(std::move(programs)) {
  util::check<util::ConfigError>(!programs_.empty(),
                                 "ApplicationBehavior: need >= 1 program");
}

Requirements ApplicationBehavior::requirements(double total_time) const {
  Requirements total;
  for (const auto& p : programs_) {
    const Requirements r = p.requirements(total_time);
    total.cpu += r.cpu;
    total.disk += r.disk;
    total.comm += r.comm;
  }
  return total;
}

std::vector<Requirements> ApplicationBehavior::per_program_requirements(
    double total_time) const {
  std::vector<Requirements> result;
  result.reserve(programs_.size());
  for (const auto& p : programs_) {
    result.push_back(p.requirements(total_time));
  }
  return result;
}

double ApplicationBehavior::makespan(double total_time) const {
  double longest = 0.0;
  for (const auto& p : programs_) {
    longest = std::max(longest, p.total_rel_time() * total_time);
  }
  return longest;
}

}  // namespace clio::model
