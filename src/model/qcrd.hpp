#pragma once

#include "model/application.hpp"

namespace clio::model {

/// Builds the QCRD application exactly as the paper specifies (§2.2,
/// eqs. 8-10).
///
/// QCRD solves the Schrödinger equation for the cross sections of the
/// scattering of an atom by a diatomic molecule; it is I/O-intensive
/// because the global matrices exceed memory and are processed iteratively
/// through in-memory buffers, giving burst-cyclic I/O.
///
/// Program 1 (eq. 9): a sequence of CPU- and I/O-intensive phases repeated
/// 12 times —
///   Γ1,i = (0.14, 0, 0.066, 1)  for i = 1, 3, ..., 23
///   Γ1,i = (0.97, 0, 0.0082, 1) for i = 2, 4, ..., 24
///
/// Program 2 (eq. 10): 13 identical phases with more I/O-intensive
/// activity —
///   Γ2 = [(0.92, 0, 0.03, 13)]
[[nodiscard]] ApplicationBehavior make_qcrd();

/// The five-working-set example program of the paper's Figure 1, used by
/// tests as a second reference point:
///   ~Γ = [(0.52, 0.29, 0.287, 1), (0, 0.85, 0.185, 2),
///         (0, 0.57, 0.194, 1), (0.81, 0, 0.148, 1)]
[[nodiscard]] ProgramBehavior make_figure1_example();

}  // namespace clio::model
