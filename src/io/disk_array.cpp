#include "io/disk_array.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace clio::io {

DiskArray::DiskArray(std::size_t num_disks, std::uint64_t stripe_bytes,
                     const DiskParams& params)
    : stripe_bytes_(stripe_bytes) {
  util::check<util::ConfigError>(num_disks > 0,
                                 "DiskArray: need at least one disk");
  util::check<util::ConfigError>(stripe_bytes > 0,
                                 "DiskArray: stripe unit must be > 0");
  disks_.reserve(num_disks);
  for (std::size_t i = 0; i < num_disks; ++i) disks_.emplace_back(params);
}

std::vector<StripeExtent> DiskArray::map(std::uint64_t offset,
                                         std::uint64_t length) const {
  std::vector<StripeExtent> extents;
  std::uint64_t pos = offset;
  std::uint64_t remaining = length;
  // Pure seek (length 0): map to the disk owning the target stripe.
  if (remaining == 0) {
    const std::uint64_t stripe = pos / stripe_bytes_;
    extents.push_back(
        StripeExtent{static_cast<std::size_t>(stripe % disks_.size()),
                     (stripe / disks_.size()) * stripe_bytes_ +
                         pos % stripe_bytes_,
                     0});
    return extents;
  }
  while (remaining > 0) {
    const std::uint64_t stripe = pos / stripe_bytes_;
    const std::uint64_t within = pos % stripe_bytes_;
    const std::uint64_t take = std::min(remaining, stripe_bytes_ - within);
    extents.push_back(StripeExtent{
        static_cast<std::size_t>(stripe % disks_.size()),
        (stripe / disks_.size()) * stripe_bytes_ + within, take});
    pos += take;
    remaining -= take;
  }
  return extents;
}

double DiskArray::access_ms(std::uint64_t offset, std::uint64_t length) {
  const auto extents = map(offset, length);
  // Coalesce per-disk: each disk serves its pieces back to back; the
  // logical request completes when the slowest disk does.
  std::vector<double> per_disk(disks_.size(), 0.0);
  for (const auto& e : extents) {
    per_disk[e.disk] += disks_[e.disk].access_ms(e.disk_offset, e.length);
  }
  return *std::max_element(per_disk.begin(), per_disk.end());
}

double DiskArray::total_busy_ms() const {
  double total = 0.0;
  for (const auto& d : disks_) total += d.busy_ms();
  return total;
}

void DiskArray::reset_counters() {
  for (auto& d : disks_) d.reset_counters();
}

}  // namespace clio::io
