#include "io/uring_store.hpp"

#include "util/error.hpp"

#if !defined(CLIO_HAVE_URING)
#define CLIO_HAVE_URING 0
#endif

#if CLIO_HAVE_URING

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace clio::io {

using util::check;
using util::ConfigError;
using util::IoError;

namespace {

int sys_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int sys_uring_register(int fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg,
                                    nr_args));
}

/// CQE errno → the sync path's exception taxonomy (see throw_syscall_error
/// in file_store.cpp): EIO / EAGAIN are transient, the rest definitive.
std::exception_ptr make_errno_error(const char* what, int err) {
  const std::string msg =
      std::string("UringStore: ") + what + " failed: " + std::strerror(err);
  try {
    if (err == EIO || err == EAGAIN || err == EWOULDBLOCK) {
      throw util::TransientIoError(msg);
    }
    throw IoError(msg);
  } catch (...) {
    return std::current_exception();
  }
}

std::exception_ptr make_error(std::string msg) {
  try {
    throw IoError(std::move(msg));
  } catch (...) {
    return std::current_exception();
  }
}

unsigned load_acquire(const unsigned* p) {
  return std::atomic_ref<const unsigned>(*p).load(std::memory_order_acquire);
}

void store_release(unsigned* p, unsigned v) {
  std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

}  // namespace

struct UringStore::Impl {
  /// One in-flight op.  Lives in a node-based map, so iovec storage and
  /// the record itself stay address-stable across other insertions — the
  /// kernel reads `iov` until the op completes.
  struct Pending {
    AsyncTicket ticket = 0;
    std::uint64_t user_data = 0;  ///< caller's, echoed on the completion
    AsyncOpKind kind = AsyncOpKind::kRead;
    FileId file = kInvalidFile;
    int fd = -1;
    std::uint64_t offset = 0;  ///< next submission offset (advances)
    std::vector<iovec> iov;    ///< remaining scatter list, trimmed in place
    std::size_t iov_next = 0;  ///< first iovec not fully transferred
    std::uint64_t done = 0;    ///< bytes transferred so far
    std::uint64_t total = 0;   ///< full payload size
    std::chrono::steady_clock::time_point start;
    int buf_index = -1;  ///< >= 0: READ_FIXED/WRITE_FIXED against this region
    std::byte* addr = nullptr;  ///< fixed-path cursor
    std::size_t len = 0;        ///< fixed-path remaining length
  };

  struct TicketState {
    std::size_t expected = 0;
    std::size_t completed = 0;
    std::vector<AsyncCompletion> ready;
  };

  RealFileStore& files;
  Config config;

  int ring_fd = -1;
  unsigned sq_entries = 0;
  unsigned cq_entries = 0;
  void* sq_ring = MAP_FAILED;
  std::size_t sq_ring_len = 0;
  void* cq_ring = MAP_FAILED;
  std::size_t cq_ring_len = 0;
  bool single_mmap = false;
  void* sqe_mem = MAP_FAILED;
  std::size_t sqe_mem_len = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  io_uring_sqe* sqes = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  io_uring_cqe* cqes = nullptr;

  std::mutex mutex;
  std::condition_variable cv;
  bool kernel_waiter = false;  ///< one thread at a time blocks in the kernel
  unsigned sq_pending = 0;     ///< SQEs published to the ring, not yet entered
  unsigned inflight = 0;       ///< ops the kernel owes a CQE for

  std::unordered_map<std::uint64_t, Pending> pending;
  std::uint64_t next_internal = 1;
  std::unordered_map<AsyncTicket, TicketState> tickets;
  AsyncTicket next_ticket = 1;
  IoStats* stats = nullptr;  ///< not owned; guarded by mutex

  std::vector<std::pair<std::byte*, std::size_t>> fixed_regions;
  bool buffers_registered = false;

  explicit Impl(RealFileStore& files_in, Config config_in)
      : files(files_in), config(config_in) {
    check<ConfigError>(config.entries >= 1 && config.entries <= 4096,
                       "UringStore: entries must be in [1, 4096]");
    io_uring_params params{};
    ring_fd = sys_uring_setup(config.entries, &params);
    check<ConfigError>(ring_fd >= 0,
                       std::string("UringStore: io_uring_setup failed: ") +
                           std::strerror(errno));
    sq_entries = params.sq_entries;
    cq_entries = params.cq_entries;
    sq_ring_len = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_len = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_ring_len = cq_ring_len = std::max(sq_ring_len, cq_ring_len);
    }
    sq_ring = ::mmap(nullptr, sq_ring_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (sq_ring == MAP_FAILED) {
      const int err = errno;
      teardown();
      throw ConfigError(std::string("UringStore: SQ mmap failed: ") +
                        std::strerror(err));
    }
    if (single_mmap) {
      cq_ring = sq_ring;
    } else {
      cq_ring = ::mmap(nullptr, cq_ring_len, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
      if (cq_ring == MAP_FAILED) {
        const int err = errno;
        teardown();
        throw ConfigError(std::string("UringStore: CQ mmap failed: ") +
                          std::strerror(err));
      }
    }
    sqe_mem_len = params.sq_entries * sizeof(io_uring_sqe);
    sqe_mem = ::mmap(nullptr, sqe_mem_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
    if (sqe_mem == MAP_FAILED) {
      const int err = errno;
      teardown();
      throw ConfigError(std::string("UringStore: SQE mmap failed: ") +
                        std::strerror(err));
    }
    auto* sq_base = static_cast<char*>(sq_ring);
    sq_head = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
    sq_mask = reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
    sqes = static_cast<io_uring_sqe*>(sqe_mem);
    auto* cq_base = static_cast<char*>(cq_ring);
    cq_head = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
    cq_mask = reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);
  }

  ~Impl() {
    // Best effort: never leave the kernel writing into freed buffers.
    // The pool drains its tickets before teardown, so this loop is
    // normally a no-op.
    std::unique_lock<std::mutex> lock(mutex);
    while (!pending.empty()) {
      submit_pending();
      lock.unlock();
      static_cast<void>(sys_uring_enter(ring_fd, 0, 1, IORING_ENTER_GETEVENTS));
      lock.lock();
      reap_locked();
    }
    lock.unlock();
    teardown();
  }

  void teardown() {
    if (sqe_mem != MAP_FAILED) ::munmap(sqe_mem, sqe_mem_len);
    if (!single_mmap && cq_ring != MAP_FAILED) ::munmap(cq_ring, cq_ring_len);
    if (sq_ring != MAP_FAILED) ::munmap(sq_ring, sq_ring_len);
    sqe_mem = cq_ring = sq_ring = MAP_FAILED;
    if (ring_fd >= 0) ::close(ring_fd);
    ring_fd = -1;
  }

  // ----------------------------------------------------------- SQ side ----

  /// Returns a zeroed SQE slot, flushing published-but-unentered SQEs if
  /// the ring is full.  Mutex held.
  io_uring_sqe* get_sqe() {
    for (;;) {
      const unsigned head = load_acquire(sq_head);
      const unsigned tail = *sq_tail;
      if (tail - head < sq_entries) {
        const unsigned idx = tail & *sq_mask;
        io_uring_sqe* sqe = &sqes[idx];
        std::memset(sqe, 0, sizeof(*sqe));
        sq_array[idx] = idx;
        store_release(sq_tail, tail + 1);
        sq_pending++;
        return sqe;
      }
      // Ring full: everything in it is ours and unentered — flush.
      submit_pending();
    }
  }

  /// Publishes every filled SQE to the kernel with one io_uring_enter per
  /// loop turn (one, in practice).  Mutex held.
  void submit_pending() {
    while (sq_pending > 0) {
      const int r = sys_uring_enter(ring_fd, sq_pending, 0, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EBUSY) {
          // Completion-side backpressure: drain CQEs, then retry.  With
          // the in-flight cap this is all but unreachable.
          reap_locked();
          continue;
        }
        throw IoError(std::string("UringStore: io_uring_enter failed: ") +
                      std::strerror(errno));
      }
      if (stats != nullptr) stats->record_submit_syscalls(1);
      sq_pending -= static_cast<unsigned>(r);
    }
  }

  /// Fills one SQE for `p`'s remaining transfer.  Mutex held.
  void prep_sqe(std::uint64_t internal_id, Pending& p) {
    io_uring_sqe* sqe = get_sqe();
    const bool write = p.kind == AsyncOpKind::kWrite ||
                       p.kind == AsyncOpKind::kWritev;
    if (p.buf_index >= 0) {
      sqe->opcode = write ? IORING_OP_WRITE_FIXED : IORING_OP_READ_FIXED;
      sqe->addr = reinterpret_cast<std::uint64_t>(p.addr);
      sqe->len = static_cast<unsigned>(p.len);
      sqe->buf_index = static_cast<std::uint16_t>(p.buf_index);
    } else {
      sqe->opcode = write ? IORING_OP_WRITEV : IORING_OP_READV;
      sqe->addr = reinterpret_cast<std::uint64_t>(p.iov.data() + p.iov_next);
      sqe->len = static_cast<unsigned>(p.iov.size() - p.iov_next);
    }
    sqe->fd = p.fd;
    sqe->off = p.offset;
    sqe->user_data = internal_id;
  }

  /// The fixed-buffer region containing [data, data+len), or -1.
  int find_fixed_region(const std::byte* data, std::size_t len) const {
    if (!buffers_registered || len == 0) return -1;
    for (std::size_t i = 0; i < fixed_regions.size(); ++i) {
      const auto& [base, size] = fixed_regions[i];
      if (data >= base && data + len <= base + size) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  // ----------------------------------------------------------- CQ side ----

  /// Processes every available CQE; resubmits partial transfers, delivers
  /// finished/failed ops to their tickets.  Mutex held.
  void reap_locked() {
    bool advanced = false;
    for (;;) {
      // Re-read the head each turn: handle_cqe can recurse into this
      // function through submit_pending's backpressure path, and a cached
      // cursor would then rewind the ring.
      const unsigned head = *cq_head;
      if (head == load_acquire(cq_tail)) break;
      const io_uring_cqe cqe = cqes[head & *cq_mask];
      store_release(cq_head, head + 1);
      advanced = true;
      handle_cqe(cqe);
    }
    if (advanced) submit_pending();  // flush any resubmissions in one enter
  }

  void handle_cqe(const io_uring_cqe& cqe) {
    auto it = pending.find(cqe.user_data);
    if (it == pending.end()) return;  // stale/unknown — nothing to do
    Pending& p = it->second;
    const bool write = p.kind == AsyncOpKind::kWrite ||
                       p.kind == AsyncOpKind::kWritev;
    const int res = cqe.res;
    if (res < 0) {
      if (res == -EINTR) {
        prep_sqe(it->first, p);  // interrupted: re-issue, no progress made
        return;
      }
      finish(it, make_errno_error(write ? "async write" : "async read", -res));
      return;
    }
    if (res == 0) {
      if (write) {
        // A zero-byte pwritev with bytes remaining would loop forever.
        finish(it, make_error("UringStore: write completed 0 bytes"));
      } else {
        finish(it, nullptr);  // EOF: deliver what was read so far
      }
      return;
    }
    // Forward progress: advance the cursors, finish or continue.
    p.done += static_cast<std::uint64_t>(res);
    p.offset += static_cast<std::uint64_t>(res);
    if (p.buf_index >= 0) {
      p.addr += res;
      p.len -= static_cast<std::size_t>(res);
    } else {
      std::size_t consumed = static_cast<std::size_t>(res);
      while (p.iov_next < p.iov.size() &&
             consumed >= p.iov[p.iov_next].iov_len) {
        consumed -= p.iov[p.iov_next].iov_len;
        p.iov_next++;
      }
      if (consumed > 0) {
        iovec& v = p.iov[p.iov_next];
        v.iov_base = static_cast<char*>(v.iov_base) + consumed;
        v.iov_len -= consumed;
      }
    }
    if (p.done >= p.total) {
      finish(it, nullptr);
    } else {
      prep_sqe(it->first, p);  // short mid-file transfer: continue
    }
  }

  /// Delivers the completion for a finished/failed op and retires it.
  void finish(std::unordered_map<std::uint64_t, Pending>::iterator it,
              std::exception_ptr error) {
    Pending& p = it->second;
    const bool write = p.kind == AsyncOpKind::kWrite ||
                       p.kind == AsyncOpKind::kWritev;
    AsyncCompletion c;
    c.user_data = p.user_data;
    c.kind = p.kind;
    c.bytes = error == nullptr ? static_cast<std::size_t>(p.done) : 0;
    c.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - p.start)
               .count();
    c.error = std::move(error);
    if (write && c.ok() && p.done > 0) {
      // `offset` has advanced past every byte written.
      files.note_external_write(p.file, p.offset);
    }
    inflight--;
    deliver(p.ticket, std::move(c));
    pending.erase(it);
  }

  /// Files a completion under its ticket.  Mutex held.
  void deliver(AsyncTicket ticket, AsyncCompletion c) {
    if (stats != nullptr) stats->record_async_completion(c.bytes, !c.ok());
    auto it = tickets.find(ticket);
    if (it == tickets.end()) return;
    it->second.completed++;
    it->second.ready.push_back(std::move(c));
    cv.notify_all();
  }

  /// Blocks until at least one more CQE is (or may be) available, letting
  /// only one thread into the kernel at a time.  Mutex held on entry/exit.
  void wait_for_cqe(std::unique_lock<std::mutex>& lock) {
    if (kernel_waiter) {
      cv.wait(lock);
      return;
    }
    kernel_waiter = true;
    lock.unlock();
    const int r = sys_uring_enter(ring_fd, 0, 1, IORING_ENTER_GETEVENTS);
    const int err = errno;
    lock.lock();
    kernel_waiter = false;
    cv.notify_all();
    if (r < 0 && err != EINTR) {
      throw IoError(std::string("UringStore: io_uring_enter(GETEVENTS) "
                                "failed: ") +
                    std::strerror(err));
    }
  }
};

// ----------------------------------------------------------- interface ----

bool UringStore::supported() {
  static const bool ok = [] {
    io_uring_params params{};
    const int fd = sys_uring_setup(4, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return ok;
}

UringStore::UringStore(RealFileStore& files)
    : UringStore(files, Config{}) {}

UringStore::UringStore(RealFileStore& files, Config config)
    : impl_(std::make_unique<Impl>(files, config)) {}

UringStore::~UringStore() = default;

RealFileStore& UringStore::files() { return impl_->files; }

void UringStore::bind_stats(IoStats* stats) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->stats = stats;
}

bool UringStore::register_buffers(
    std::span<const std::span<std::byte>> regions) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->buffers_registered || regions.empty()) {
    return impl_->buffers_registered;
  }
  std::vector<iovec> iov;
  iov.reserve(regions.size());
  for (const auto& r : regions) {
    if (r.empty()) return false;
    iov.push_back(iovec{r.data(), r.size()});
  }
  const int rc =
      sys_uring_register(impl_->ring_fd, IORING_REGISTER_BUFFERS, iov.data(),
                         static_cast<unsigned>(iov.size()));
  if (rc < 0) return false;  // e.g. RLIMIT_MEMLOCK — stay on the plain path
  impl_->fixed_regions.clear();
  for (const auto& r : regions) {
    impl_->fixed_regions.emplace_back(r.data(), r.size());
  }
  impl_->buffers_registered = true;
  return true;
}

AsyncTicket UringStore::submit(std::vector<AsyncOp> batch) {
  check<ConfigError>(!batch.empty(), "UringStore: empty batch");
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lock(im.mutex);
  const AsyncTicket ticket = im.next_ticket++;
  im.tickets[ticket].expected = batch.size();
  if (im.stats != nullptr) im.stats->record_async_submission(batch.size());
  const auto now = std::chrono::steady_clock::now();
  for (const auto& op : batch) {
    // Zero-payload ops complete immediately; a zero-length SQE would be a
    // kernel-version lottery.
    const std::uint64_t total = op.payload_bytes();
    if (total == 0) {
      AsyncCompletion c;
      c.user_data = op.user_data;
      c.kind = op.kind;
      im.deliver(ticket, std::move(c));
      continue;
    }
    int fd = -1;
    try {
      fd = im.files.native_handle(op.file);
    } catch (...) {
      AsyncCompletion c;
      c.user_data = op.user_data;
      c.kind = op.kind;
      c.error = std::current_exception();
      im.deliver(ticket, std::move(c));
      continue;
    }
    // Cap in-flight ops at the CQ size so the completion ring can never
    // overflow; flush queued SQEs first or the kernel has nothing to chew.
    while (im.inflight >= im.cq_entries) {
      im.submit_pending();
      im.wait_for_cqe(lock);
      im.reap_locked();
    }
    const std::uint64_t id = im.next_internal++;
    Impl::Pending& p = im.pending[id];
    p.ticket = ticket;
    p.user_data = op.user_data;
    p.kind = op.kind;
    p.file = op.file;
    p.fd = fd;
    p.offset = op.offset;
    p.total = total;
    p.start = now;
    switch (op.kind) {
      case AsyncOpKind::kRead:
        p.buf_index = im.find_fixed_region(op.out.data(), op.out.size());
        if (p.buf_index >= 0) {
          p.addr = op.out.data();
          p.len = op.out.size();
        } else {
          p.iov.push_back(iovec{op.out.data(), op.out.size()});
        }
        break;
      case AsyncOpKind::kWrite:
        p.buf_index = im.find_fixed_region(op.data.data(), op.data.size());
        if (p.buf_index >= 0) {
          p.addr = const_cast<std::byte*>(op.data.data());
          p.len = op.data.size();
        } else {
          p.iov.push_back(
              iovec{const_cast<std::byte*>(op.data.data()), op.data.size()});
        }
        break;
      case AsyncOpKind::kReadv:
        for (const auto& part : op.read_parts) {
          if (part.empty()) continue;
          p.iov.push_back(iovec{part.data(), part.size()});
        }
        break;
      case AsyncOpKind::kWritev:
        for (const auto& part : op.write_parts) {
          if (part.empty()) continue;
          p.iov.push_back(
              iovec{const_cast<std::byte*>(part.data()), part.size()});
        }
        break;
    }
    im.inflight++;
    im.prep_sqe(id, p);
  }
  // One enter publishes the whole batch — the coalesced gather costs one
  // submit syscall regardless of how many runs it carries.
  im.submit_pending();
  return ticket;
}

std::size_t UringStore::poll(AsyncTicket ticket,
                             std::vector<AsyncCompletion>& out) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mutex);
  im.reap_locked();
  auto it = im.tickets.find(ticket);
  if (it == im.tickets.end()) return 0;
  const std::size_t n = it->second.ready.size();
  for (auto& c : it->second.ready) out.push_back(std::move(c));
  it->second.ready.clear();
  if (it->second.completed == it->second.expected) im.tickets.erase(it);
  return n;
}

std::vector<AsyncCompletion> UringStore::wait(AsyncTicket ticket) {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lock(im.mutex);
  for (;;) {
    im.reap_locked();
    auto it = im.tickets.find(ticket);
    if (it == im.tickets.end()) return {};
    if (it->second.completed == it->second.expected) {
      std::vector<AsyncCompletion> out = std::move(it->second.ready);
      im.tickets.erase(it);
      return out;
    }
    im.wait_for_cqe(lock);
  }
}

}  // namespace clio::io

#else  // !CLIO_HAVE_URING — stub so the target links on any platform

namespace clio::io {

struct UringStore::Impl {};

bool UringStore::supported() { return false; }

UringStore::UringStore(RealFileStore& files)
    : UringStore(files, Config{}) {}

UringStore::UringStore(RealFileStore& files, Config config) {
  static_cast<void>(files);
  static_cast<void>(config);
  throw util::ConfigError(
      "UringStore: built without io_uring support (CLIO_HAVE_URING=0)");
}

UringStore::~UringStore() = default;

RealFileStore& UringStore::files() {
  throw util::ConfigError("UringStore: unavailable");
}

void UringStore::bind_stats(IoStats*) {}

bool UringStore::register_buffers(std::span<const std::span<std::byte>>) {
  return false;
}

AsyncTicket UringStore::submit(std::vector<AsyncOp>) {
  throw util::ConfigError("UringStore: unavailable");
}

std::size_t UringStore::poll(AsyncTicket, std::vector<AsyncCompletion>&) {
  return 0;
}

std::vector<AsyncCompletion> UringStore::wait(AsyncTicket) { return {}; }

}  // namespace clio::io

#endif  // CLIO_HAVE_URING
