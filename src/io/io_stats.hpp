#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"
#include "util/statistics.hpp"

namespace clio::io {

/// I/O operation classes.  The numeric values of the first five match the
/// UMD trace format the paper uses (Open=0, Close=1, Read=2, Write=3,
/// Seek=4); the vectored classes are internal — they account the backing
/// gather/scatter calls the buffer pool's coalesced flush and prefetch
/// paths issue, so batching ratios are observable from IoStats.  Traces
/// never carry them (see kIoTraceOpCount).
enum class IoOp : std::uint8_t {
  kOpen = 0,
  kClose = 1,
  kRead = 2,
  kWrite = 3,
  kSeek = 4,
  kReadv = 5,   ///< coalesced backing gather read (pool-internal)
  kWritev = 6,  ///< coalesced backing gather write (pool-internal)
};

/// Op codes a UMD trace record may carry (kOpen..kSeek).
inline constexpr std::size_t kIoTraceOpCount = 5;
/// All op classes IoStats accounts, including the vectored internals.
inline constexpr std::size_t kIoOpCount = 7;

[[nodiscard]] std::string_view io_op_name(IoOp op);

/// One timed operation, kept when detailed logging is enabled.  Tables 3-4
/// of the paper are rendered straight from these records.
struct OpRecord {
  IoOp op;
  std::uint64_t bytes;  ///< payload length (0 for open/close)
  double ms;            ///< measured latency in milliseconds
};

/// Resilience-layer counters: what the retry/breaker machinery did on top
/// of the raw op latencies.  Snapshot value returned by
/// IoStats::resilience().
struct ResilienceCounters {
  std::uint64_t retries = 0;            ///< transient failures re-issued
  std::uint64_t absorbed_faults = 0;    ///< ops that failed, retried, succeeded
  std::uint64_t breaker_trips = 0;      ///< circuit-breaker open transitions
  std::uint64_t breaker_fast_fails = 0; ///< calls refused by an open breaker
  std::uint64_t deadline_expiries = 0;  ///< retry loops cut short by deadlines
};

/// Counters of the asynchronous submission/completion path, fed by
/// AsyncBackingStore::bind_stats().  `submit_syscalls` is what makes the
/// batching observable: uring counts one per io_uring_enter (a whole
/// coalesced batch), the thread-pool fallback one per executed op, so
/// submit_syscalls / (bytes_completed / page_size) is the
/// syscalls-per-page ratio the roadmap asks the stats to assert.
struct AsyncCounters {
  std::uint64_t submissions = 0;        ///< submit() batches accepted
  std::uint64_t submitted_ops = 0;      ///< ops across all batches
  std::uint64_t completions = 0;        ///< completions produced
  std::uint64_t completion_errors = 0;  ///< completions carrying an error
  std::uint64_t submit_syscalls = 0;    ///< kernel round-trips spent submitting
  std::uint64_t resubmissions = 0;      ///< retry decorator re-submits
  std::uint64_t bytes_completed = 0;    ///< payload bytes of ok completions

  /// Submission syscalls per completed page — the batching ratio.  Returns
  /// 0 before any bytes complete.
  [[nodiscard]] double syscalls_per_page(std::size_t page_size) const {
    if (bytes_completed == 0 || page_size == 0) return 0.0;
    const double pages =
        static_cast<double>(bytes_completed) / static_cast<double>(page_size);
    return static_cast<double>(submit_syscalls) / pages;
  }
};

/// Thread-safe point-in-time summary of one op class, returned by
/// IoStats::op_snapshot() — the live-observability counterpart of the
/// reference-returning op_stats()/op_histogram() accessors, safe to call
/// while worker threads are still recording.
struct OpSnapshot {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t bytes = 0;
};

/// Per-operation-class latency accounting for a managed file system.
///
/// Always keeps streaming statistics and a log2 histogram per op class;
/// optionally keeps the full per-operation record list (needed by benches
/// that print per-request rows, e.g. the LU seek table).
///
/// record() and reset() are internally synchronized so every worker thread
/// of a server can account into one instance.  The value-returning readers
/// (total_ms, total_bytes, render) take the same lock; op_stats and
/// op_histogram hand out references, so call those only after the recording
/// threads have quiesced (benchmarks report after joining their workers).
class IoStats {
 public:
  explicit IoStats(bool keep_records = false);

  void record(IoOp op, std::uint64_t bytes, double ms);
  void reset();

  [[nodiscard]] const util::RunningStats& op_stats(IoOp op) const;
  [[nodiscard]] const util::LatencyHistogram& op_histogram(IoOp op) const;

  /// Total bytes recorded against one op class.  With the vectored classes
  /// this is what makes coalescing ratios observable from stats alone:
  /// op_bytes(kWritev) / (op_stats(kWritev).count() * page_size) is the
  /// pages-per-backing-call ratio of the flush path.
  [[nodiscard]] std::uint64_t op_bytes(IoOp op) const;

  /// Locked value copy of one op class — unlike op_stats/op_histogram this
  /// is safe while recording threads are live, which is what the /statz
  /// endpoint and the metric gauges scrape.
  [[nodiscard]] OpSnapshot op_snapshot(IoOp op) const;
  [[nodiscard]] const std::vector<OpRecord>& records() const {
    return records_;
  }
  [[nodiscard]] bool keeps_records() const { return keep_records_; }

  /// Total milliseconds across all operation classes.
  [[nodiscard]] double total_ms() const;
  /// Total bytes moved by read+write.
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Resilience counters, fed by io::RetryingStore::bind_stats().
  void record_retry();
  void record_absorbed_fault();
  void record_breaker_trip();
  void record_breaker_fast_fail();
  void record_deadline_expiry();
  [[nodiscard]] ResilienceCounters resilience() const;

  /// Async submission/completion counters, fed by
  /// io::AsyncBackingStore::bind_stats().
  void record_async_submission(std::uint64_t ops);
  void record_async_completion(std::uint64_t bytes, bool failed);
  void record_submit_syscalls(std::uint64_t n);
  void record_async_resubmission();
  [[nodiscard]] AsyncCounters async_counters() const;

  /// Renders a per-op-class summary table (count, mean ms, min, max, bytes),
  /// followed by a resilience line when any retry/breaker activity occurred.
  void render(std::ostream& os) const;

 private:
  std::array<util::RunningStats, kIoOpCount> stats_{};
  std::array<util::LatencyHistogram, kIoOpCount> histograms_{};
  std::array<std::uint64_t, kIoOpCount> bytes_{};
  std::vector<OpRecord> records_;
  ResilienceCounters resilience_{};
  AsyncCounters async_{};
  bool keep_records_;
  mutable std::mutex mutex_;
};

}  // namespace clio::io
