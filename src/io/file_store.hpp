#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/disk_array.hpp"

namespace clio::io {

/// Opaque handle to a file within a BackingStore.
using FileId = std::uint32_t;
inline constexpr FileId kInvalidFile = UINT32_MAX;

/// Abstract block storage beneath the buffer pool.
///
/// Two implementations: RealFileStore does real kernel I/O against files in
/// a directory (used by all replay/web-server benchmarks), SimFileStore
/// keeps bytes in memory and charges a DiskArray cost model (used by the
/// discrete-event experiments, where modeled time, not wall time, matters).
class BackingStore {
 public:
  virtual ~BackingStore() = default;

  /// Opens (or creates, if `create`) the named file; returns its id.
  /// Opening the same name twice returns the same id.
  virtual FileId open(const std::string& name, bool create) = 0;

  /// Closes the id.  Later open() of the same name re-yields a valid id.
  virtual void close(FileId id) = 0;

  [[nodiscard]] virtual std::uint64_t size(FileId id) const = 0;

  virtual void truncate(FileId id, std::uint64_t new_size) = 0;

  /// Reads up to out.size() bytes at `offset`; returns bytes actually read
  /// (short at EOF, 0 past EOF).
  virtual std::size_t read(FileId id, std::uint64_t offset,
                           std::span<std::byte> out) = 0;

  /// Writes all bytes at `offset`, extending the file if needed.
  virtual void write(FileId id, std::uint64_t offset,
                     std::span<const std::byte> data) = 0;

  /// Writes several buffers contiguously starting at `offset` — the buffer
  /// pool's coalesced write-back path.  Implementations should treat the
  /// whole gather as one storage access (pwritev / a single modeled seek);
  /// the default falls back to one write() per part.
  virtual void writev(FileId id, std::uint64_t offset,
                      std::span<const std::span<const std::byte>> parts);

  /// Reads contiguous bytes starting at `offset`, scattering them into
  /// `parts` in order — the buffer pool's coalesced prefetch path.  Returns
  /// total bytes read (short at EOF, 0 past EOF).  Implementations should
  /// treat the whole scatter as one storage access (preadv / a single
  /// modeled seek); the default falls back to one read() per part.
  virtual std::size_t readv(FileId id, std::uint64_t offset,
                            std::span<const std::span<std::byte>> parts);

  /// Returns true if the named file exists in the store.
  [[nodiscard]] virtual bool exists(const std::string& name) const = 0;

  /// The id the name is (or was) bound to, kInvalidFile if never opened.
  /// Ids are stable across close/reopen of the same name — like an inode —
  /// so buffer-pool pages stay warm between uses; remove() retires the id.
  [[nodiscard]] virtual FileId lookup(const std::string& name) const = 0;

  virtual void remove(const std::string& name) = 0;

 protected:
  /// The de-vectorized fallbacks behind the default readv/writev bodies,
  /// as named non-virtual helpers so a decorator that cannot (or must not)
  /// forward a gather natively can *say so* — `writev_fallback(...)` — and
  /// reviewers can tell a deliberate de-vectorization from a forgotten
  /// override.  writev_fallback issues one write() per part;
  /// readv_fallback one read() per part, stopping at the first short read
  /// so the caller sees exactly the EOF semantics of read().
  void writev_fallback(FileId id, std::uint64_t offset,
                       std::span<const std::span<const std::byte>> parts);
  std::size_t readv_fallback(FileId id, std::uint64_t offset,
                             std::span<const std::span<std::byte>> parts);
};

/// BackingStore over a real directory using POSIX descriptors and
/// pread/pwrite/pwritev (thread-safe positioned I/O).  Metadata operations
/// are mutex-guarded, so concurrent opens/reads from worker threads are
/// safe.
class RealFileStore final : public BackingStore {
 public:
  /// `idle_fd_cache` > 0 keeps up to that many descriptors open after
  /// their last close (see trim_idle), so re-opening hot files costs a
  /// hash lookup instead of an open(2)/close(2) pair — the serving layer
  /// opts in.  0 (default) retires descriptors eagerly, preserving the
  /// strict "operations on a closed id fail" contract.
  explicit RealFileStore(std::filesystem::path root,
                         std::size_t idle_fd_cache = 0);
  ~RealFileStore() override;

  RealFileStore(const RealFileStore&) = delete;
  RealFileStore& operator=(const RealFileStore&) = delete;

  FileId open(const std::string& name, bool create) override;
  void close(FileId id) override;
  [[nodiscard]] std::uint64_t size(FileId id) const override;
  void truncate(FileId id, std::uint64_t new_size) override;
  std::size_t read(FileId id, std::uint64_t offset,
                   std::span<std::byte> out) override;
  void write(FileId id, std::uint64_t offset,
             std::span<const std::byte> data) override;
  void writev(FileId id, std::uint64_t offset,
              std::span<const std::span<const std::byte>> parts) override;
  std::size_t readv(FileId id, std::uint64_t offset,
                    std::span<const std::span<std::byte>> parts) override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  [[nodiscard]] FileId lookup(const std::string& name) const override;
  void remove(const std::string& name) override;

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

  /// The POSIX descriptor behind an open id — the seam UringStore needs to
  /// build SQEs against the same descriptors the sync path uses.  Throws
  /// util::IoError for a closed/invalid id.  The fd stays owned by this
  /// store and is valid until close() drops the last reference.
  [[nodiscard]] int native_handle(FileId id) const { return fd_of(id); }

  /// Tells the store that bytes up to `end_offset` were written to `id`
  /// outside its own write paths (an io_uring completion), so the cached
  /// size stays coherent.  Cheap: a mutex-guarded max().
  void note_external_write(FileId id, std::uint64_t end_offset) {
    grow_cached_size(id, end_offset);
  }

 private:
  struct Entry {
    int fd = -1;
    std::string name;
    std::uint32_t refs = 0;
    bool idle = false;  ///< refs == 0 but fd kept open in the idle cache
    /// Bumped each time the entry enters the idle queue, so trim_idle can
    /// tell a live queue entry from one left stale by an interleaved
    /// reopen + re-close (which must not evict the freshly re-idled fd).
    std::uint64_t idle_gen = 0;
    /// Cached file size (-1 = unknown).  Every mutation flows through this
    /// store, so write/writev/truncate keep it coherent; size() then costs
    /// a map lookup instead of an fstat(2) per call — the serving path
    /// asks for the size on every GET.  mutable: size() is const and may
    /// fill the cache on first use (under mutex_).
    mutable std::int64_t size = -1;
    /// Lower bound on the size while the cache is unset: a write that
    /// ended at byte E proves size >= E even before anyone fstats.  Lets
    /// size() resist caching a stale fstat that raced an extending write
    /// (the stat runs outside mutex_).
    std::int64_t size_floor = 0;
  };

  int fd_of(FileId id) const;
  void trim_idle();  ///< mutex held
  void grow_cached_size(FileId id, std::uint64_t end_offset);

  std::size_t idle_fd_cache_ = 0;
  std::filesystem::path root_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, FileId> by_name_;
  /// FIFO of (id, idle_gen) pairs; entries whose generation no longer
  /// matches are stale (reopened since queueing) and skipped by trim.
  std::deque<std::pair<FileId, std::uint64_t>> idle_fds_;
  mutable std::mutex mutex_;
};

/// In-memory BackingStore that charges every access to a striped DiskArray
/// cost model.  `consume_model_ms()` drains the accumulated modeled time so
/// a simulator can advance its clock by it.
///
/// Thread-safe: BufferPool is documented thread-safe over any BackingStore,
/// so metadata, file bytes, and the modeled-time accumulator are all guarded
/// by one mutex (the work under it is memcpy-scale, never kernel I/O).
class SimFileStore final : public BackingStore {
 public:
  /// The store places file f's byte b at array address hash(f)+b, so
  /// distinct files live in distinct regions of the address space.
  SimFileStore(std::size_t num_disks, std::uint64_t stripe_bytes,
               const DiskParams& params = DiskParams{});

  FileId open(const std::string& name, bool create) override;
  void close(FileId id) override;
  [[nodiscard]] std::uint64_t size(FileId id) const override;
  void truncate(FileId id, std::uint64_t new_size) override;
  std::size_t read(FileId id, std::uint64_t offset,
                   std::span<std::byte> out) override;
  void write(FileId id, std::uint64_t offset,
             std::span<const std::byte> data) override;
  void writev(FileId id, std::uint64_t offset,
              std::span<const std::span<const std::byte>> parts) override;
  std::size_t readv(FileId id, std::uint64_t offset,
                    std::span<const std::span<std::byte>> parts) override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  [[nodiscard]] FileId lookup(const std::string& name) const override;
  void remove(const std::string& name) override;

  /// Returns and clears the modeled time accumulated since the last call.
  double consume_model_ms();

  [[nodiscard]] const DiskArray& array() const { return array_; }

 private:
  struct Entry {
    std::vector<std::byte> data;
    std::string name;
    std::uint64_t base_address = 0;
    std::uint32_t refs = 0;
    bool live = false;
  };

  Entry& entry_of(FileId id);
  const Entry& entry_of(FileId id) const;

  DiskArray array_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, FileId> by_name_;
  double pending_model_ms_ = 0.0;
  mutable std::mutex mutex_;
};

}  // namespace clio::io
