#include "io/buffer_pool.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace clio::io {

using util::check;
using util::IoError;

BufferPool::BufferPool(BackingStore& store, BufferPoolConfig config)
    : store_(store), config_(config) {
  check<util::ConfigError>(config_.page_size >= 64,
                           "BufferPool: page_size must be >= 64");
  check<util::ConfigError>(config_.capacity_pages >= 1,
                           "BufferPool: capacity must be >= 1 page");
  frames_.resize(config_.capacity_pages);
  free_frames_.reserve(config_.capacity_pages);
  for (std::size_t i = config_.capacity_pages; i > 0; --i) {
    free_frames_.push_back(i - 1);
  }
}

BufferPool::~BufferPool() {
  // Best effort: persist dirty pages.  Failures are swallowed because a
  // destructor must not throw; callers who care flush explicitly.
  try {
    flush_all();
  } catch (...) {
  }
}

// ------------------------------------------------------------- guards ----

BufferPool::PageGuard::PageGuard(BufferPool* pool, std::size_t frame)
    : pool_(pool), frame_(frame) {}

BufferPool::PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
}

BufferPool::PageGuard& BufferPool::PageGuard::operator=(
    PageGuard&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->unpin(frame_);
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
  }
  return *this;
}

BufferPool::PageGuard::~PageGuard() {
  if (pool_ != nullptr) pool_->unpin(frame_);
}

std::span<std::byte> BufferPool::PageGuard::data() const {
  check<IoError>(pool_ != nullptr, "PageGuard: empty guard");
  return pool_->frames_[frame_].data;
}

std::size_t BufferPool::PageGuard::valid_bytes() const {
  check<IoError>(pool_ != nullptr, "PageGuard: empty guard");
  return pool_->frames_[frame_].valid_bytes;
}

void BufferPool::PageGuard::mark_dirty(std::size_t up_to) {
  check<IoError>(pool_ != nullptr, "PageGuard: empty guard");
  Frame& f = pool_->frames_[frame_];
  check<IoError>(up_to <= f.data.size(), "PageGuard: dirty extent > page");
  std::lock_guard<std::mutex> lock(pool_->mutex_);
  f.dirty = true;
  f.valid_bytes = std::max(f.valid_bytes, up_to);
  auto& extent = pool_->dirty_extent_[f.file];
  extent = std::max(extent,
                    f.page_no * pool_->config_.page_size + f.valid_bytes);
}

// --------------------------------------------------------------- pool ----

BufferPool::PageGuard BufferPool::pin(FileId file, std::uint64_t page_no) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t idx = find_or_load(file, page_no,
                                       /*count_as_prefetch=*/false);
  frames_[idx].pins++;
  touch(idx);
  return PageGuard(this, idx);
}

bool BufferPool::prefetch(FileId file, std::uint64_t page_no) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (page_table_.contains(PageKey{file, page_no})) return false;
  const std::size_t idx = find_or_load(file, page_no,
                                       /*count_as_prefetch=*/true);
  touch(idx);
  return true;
}

bool BufferPool::contains(FileId file, std::uint64_t page_no) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return page_table_.contains(PageKey{file, page_no});
}

std::size_t BufferPool::find_or_load(FileId file, std::uint64_t page_no,
                                     bool count_as_prefetch) {
  if (auto it = page_table_.find(PageKey{file, page_no});
      it != page_table_.end()) {
    if (!count_as_prefetch) stats_.hits++;
    return it->second;
  }
  if (count_as_prefetch) {
    stats_.prefetches++;
  } else {
    stats_.misses++;
  }
  const std::size_t idx = allocate_frame();
  load_frame(idx, file, page_no);
  page_table_.emplace(PageKey{file, page_no}, idx);
  return idx;
}

std::size_t BufferPool::allocate_frame() {
  if (!free_frames_.empty()) {
    const std::size_t idx = free_frames_.back();
    free_frames_.pop_back();
    frames_[idx].lru_pos = lru_.insert(lru_.begin(), idx);
    return idx;
  }
  // Evict the least recently used unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    Frame& f = frames_[*it];
    if (f.pins > 0) continue;
    const std::size_t idx = *it;
    if (f.dirty) write_back(f);
    page_table_.erase(PageKey{f.file, f.page_no});
    stats_.evictions++;
    f.in_use = false;
    touch(idx);  // move to MRU position for reuse
    return idx;
  }
  throw IoError("BufferPool: all frames pinned, cannot allocate");
}

void BufferPool::load_frame(std::size_t idx, FileId file,
                            std::uint64_t page_no) {
  Frame& f = frames_[idx];
  f.file = file;
  f.page_no = page_no;
  f.data.assign(config_.page_size, std::byte{0});
  f.valid_bytes =
      store_.read(file, page_no * config_.page_size, f.data);
  f.pins = 0;
  f.dirty = false;
  f.in_use = true;
}

void BufferPool::write_back(Frame& frame) {
  store_.write(frame.file, frame.page_no * config_.page_size,
               std::span<const std::byte>(frame.data.data(),
                                          frame.valid_bytes));
  frame.dirty = false;
  stats_.writebacks++;
}

void BufferPool::touch(std::size_t idx) {
  lru_.splice(lru_.begin(), lru_, frames_[idx].lru_pos);
}

void BufferPool::unpin(std::size_t idx) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& f = frames_[idx];
  check<IoError>(f.pins > 0, "BufferPool: unpin of unpinned frame");
  f.pins--;
}

void BufferPool::flush_file(FileId file) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Frame& f : frames_) {
    if (f.in_use && f.file == file && f.dirty) write_back(f);
  }
}

void BufferPool::flush_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Frame& f : frames_) {
    if (f.in_use && f.dirty) write_back(f);
  }
}

std::uint64_t BufferPool::logical_file_size(FileId file) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t store_size = store_.size(file);
  const auto it = dirty_extent_.find(file);
  if (it == dirty_extent_.end()) return store_size;
  return std::max(store_size, it->second);
}

void BufferPool::discard_file(FileId file) {
  std::lock_guard<std::mutex> lock(mutex_);
  dirty_extent_.erase(file);
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.in_use || f.file != file) continue;
    check<IoError>(f.pins == 0, "BufferPool: discard of pinned page");
    page_table_.erase(PageKey{f.file, f.page_no});
    f.in_use = false;
    f.dirty = false;
    lru_.erase(f.lru_pos);
    free_frames_.push_back(i);
  }
}

PoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t BufferPool::resident_pages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return page_table_.size();
}

}  // namespace clio::io
