#include "io/buffer_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <memory>
#include <utility>

#include "util/error.hpp"

namespace clio::io {

using util::check;
using util::IoError;

namespace {

std::size_t auto_shards(std::size_t capacity_pages) {
  return std::clamp<std::size_t>(capacity_pages / 256, 1, 16);
}

/// Async readahead hints beyond this many in-flight gathers are dropped,
/// not queued: a saturated backlog means I/O is already behind the reader.
constexpr std::size_t kMaxQueuedPrefetches = 1024;

}  // namespace

BufferPool::BufferPool(BackingStore& store, BufferPoolConfig config,
                       AsyncBackingStore* async)
    : store_(store), config_(config), async_(async) {
  check<util::ConfigError>(config_.page_size >= 64,
                           "BufferPool: page_size must be >= 64");
  check<util::ConfigError>(config_.capacity_pages >= 1,
                           "BufferPool: capacity must be >= 1 page");
  check<util::ConfigError>(config_.coalesce_pages >= 1,
                           "BufferPool: coalesce_pages must be >= 1");
  if (config_.shards == 0) config_.shards = auto_shards(config_.capacity_pages);
  check<util::ConfigError>(config_.shards <= config_.capacity_pages,
                           "BufferPool: more shards than capacity pages");
  shards_ = std::vector<Shard>(config_.shards);
  frames_.resize(config_.capacity_pages);
  free_frames_.reserve(config_.capacity_pages);
  for (std::size_t i = config_.capacity_pages; i > 0; --i) {
    free_frames_.push_back(i - 1);
  }
  if (config_.async_prefetch) {
    check<util::ConfigError>(config_.prefetch_threads >= 1,
                             "BufferPool: async_prefetch needs >= 1 thread");
    if (async_ == nullptr) {
      owned_async_ = std::make_unique<ThreadPoolAsyncStore>(
          store_, config_.prefetch_threads);
      async_ = owned_async_.get();
    }
    // One completion reaper: gathers are submitted inline by the hinting
    // thread, so the only background work left is harvesting completions
    // and publishing frames.
    prefetch_reaper_thread_ = std::thread([this] { prefetch_reaper(); });
  }
}

BufferPool::~BufferPool() {
  if (prefetch_reaper_thread_.joinable()) {
    // Quiesce the reaper first.  Unlike the old request queue, every entry
    // in the backlog is *already submitted* I/O whose completions must be
    // harvested and whose frames must be published or unwound, so the
    // reaper drains the whole queue before exiting.  After the join no
    // thread touches frames_ but ours.
    {
      std::lock_guard<std::mutex> lock(prefetch_mutex_);
      prefetch_stop_ = true;
    }
    prefetch_work_cv_.notify_all();
    prefetch_reaper_thread_.join();
  }
  // Best effort: persist dirty pages.  Failures are swallowed because a
  // destructor must not throw; callers who care flush explicitly.
  try {
    flush_all();
  } catch (...) {
  }
}

// ------------------------------------------------------ backing transfers ----

std::size_t BufferPool::backing_read(FileId file, std::uint64_t offset,
                                     std::span<std::byte> out) {
  if (async_ == nullptr) return store_.read(file, offset, out);
  std::vector<AsyncOp> batch;
  batch.push_back(AsyncOp::make_read(file, offset, out));
  const std::vector<AsyncCompletion> done =
      async_->submit_and_wait(std::move(batch));
  check<IoError>(done.size() == 1, "BufferPool: lost a read completion");
  done.front().rethrow();
  return done.front().bytes;
}

void BufferPool::backing_write(FileId file, std::uint64_t offset,
                               std::span<const std::byte> data) {
  if (async_ == nullptr) {
    store_.write(file, offset, data);
    return;
  }
  std::vector<AsyncOp> batch;
  batch.push_back(AsyncOp::make_write(file, offset, data));
  const std::vector<AsyncCompletion> done =
      async_->submit_and_wait(std::move(batch));
  check<IoError>(done.size() == 1, "BufferPool: lost a write completion");
  done.front().rethrow();
}

std::size_t BufferPool::shard_of(const PageKey& key) const {
  return PageKeyHash{}(key) % shards_.size();
}

// ------------------------------------------------------------- guards ----

BufferPool::PageGuard::PageGuard(BufferPool* pool, std::size_t shard,
                                 std::size_t frame)
    : pool_(pool), shard_(shard), frame_(frame) {}

BufferPool::PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), shard_(other.shard_), frame_(other.frame_) {
  other.pool_ = nullptr;
}

BufferPool::PageGuard& BufferPool::PageGuard::operator=(
    PageGuard&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->unpin(shard_, frame_);
    pool_ = other.pool_;
    shard_ = other.shard_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
  }
  return *this;
}

BufferPool::PageGuard::~PageGuard() {
  if (pool_ != nullptr) pool_->unpin(shard_, frame_);
}

std::span<std::byte> BufferPool::PageGuard::data() const {
  check<IoError>(pool_ != nullptr, "PageGuard: empty guard");
  return pool_->frames_[frame_].data;
}

std::size_t BufferPool::PageGuard::valid_bytes() const {
  check<IoError>(pool_ != nullptr, "PageGuard: empty guard");
  return pool_->frames_[frame_].valid_bytes;
}

void BufferPool::PageGuard::mark_dirty(std::size_t up_to) {
  check<IoError>(pool_ != nullptr, "PageGuard: empty guard");
  Shard& sh = pool_->shards_[shard_];
  // The extent lock is held ACROSS the dirty-bit publication: flush_file's
  // never-dirtied fast path reads dirty_extent_ alone, so any observer of
  // f.dirty == true must already be able to see this file's extent entry.
  // (Publishing the bit first and the entry second let the fast path skip
  // a just-dirtied page.)  Lock order extent -> shard is safe: no path
  // acquires extent_mutex_ while holding a shard mutex.
  std::lock_guard<std::mutex> extent_lock(pool_->extent_mutex_);
  std::uint64_t new_extent = 0;
  FileId file = kInvalidFile;
  {
    // Frame fields are read under the shard lock: an unlocked read of
    // data.size() here raced with load_frame in the pre-sharding pool.
    std::lock_guard<std::mutex> lock(sh.mutex);
    Frame& f = pool_->frames_[frame_];
    check<IoError>(up_to <= f.data.size(), "PageGuard: dirty extent > page");
    f.dirty = true;
    f.valid_bytes = std::max(f.valid_bytes, up_to);
    file = f.file;
    new_extent = f.page_no * pool_->config_.page_size + f.valid_bytes;
  }
  auto& extent = pool_->dirty_extent_[file];
  extent = std::max(extent, new_extent);
}

// ---------------------------------------------------------- LRU intrusive ----

void BufferPool::lru_push_front(Shard& sh, std::size_t idx) {
  Frame& f = frames_[idx];
  f.lru_prev = kNoFrame;
  f.lru_next = sh.lru_head;
  if (sh.lru_head != kNoFrame) frames_[sh.lru_head].lru_prev = idx;
  sh.lru_head = idx;
  if (sh.lru_tail == kNoFrame) sh.lru_tail = idx;
}

void BufferPool::lru_remove(Shard& sh, std::size_t idx) {
  Frame& f = frames_[idx];
  if (f.lru_prev != kNoFrame) {
    frames_[f.lru_prev].lru_next = f.lru_next;
  } else {
    sh.lru_head = f.lru_next;
  }
  if (f.lru_next != kNoFrame) {
    frames_[f.lru_next].lru_prev = f.lru_prev;
  } else {
    sh.lru_tail = f.lru_prev;
  }
  f.lru_prev = kNoFrame;
  f.lru_next = kNoFrame;
}

void BufferPool::lru_touch(Shard& sh, std::size_t idx) {
  if (sh.lru_head == idx) return;
  lru_remove(sh, idx);
  lru_push_front(sh, idx);
}

// --------------------------------------------------------------- pool ----

BufferPool::PageGuard BufferPool::pin(FileId file, std::uint64_t page_no) {
  const std::size_t s = shard_of(PageKey{file, page_no});
  Shard& sh = shards_[s];
  std::unique_lock<std::mutex> lk(sh.mutex);
  const std::size_t idx = find_or_load(sh, lk, file, page_no,
                                       /*count_as_prefetch=*/false,
                                       /*pin_result=*/true);
  return PageGuard(this, s, idx);
}

bool BufferPool::prefetch(FileId file, std::uint64_t page_no) {
  const PageKey key{file, page_no};
  Shard& sh = shards_[shard_of(key)];
  std::unique_lock<std::mutex> lk(sh.mutex);
  // Resident or already being loaded by someone else: nothing to do.
  if (sh.page_table.contains(key)) return false;
  find_or_load(sh, lk, file, page_no, /*count_as_prefetch=*/true,
               /*pin_result=*/false);
  return true;
}

/// Phase 1 of every prefetch window: clamp to end-of-file, then claim a
/// frame for every cold page, entering it into its shard's page table
/// io_busy-latched — a concurrent faulter of the same page waits on the
/// shard CV instead of duplicating the read.  Resident and in-flight pages
/// are skipped (they split the gather runs); under frame pressure the rest
/// of the window is dropped, never waited for: prefetch is a hint and must
/// not stall on pinned frames.  Frame buffers are sized here so the gather
/// phase cannot hit bad_alloc mid-publication.  On error every claimed
/// frame is unwound before rethrowing (a demand pin would otherwise hang
/// on the leaked latch).
std::vector<BufferPool::PrefetchTarget> BufferPool::claim_prefetch_targets(
    FileId file, std::uint64_t first_page, std::size_t count) {
  std::vector<PrefetchTarget> targets;
  // Clamp the window to end-of-file: faulting zero-filled pages past EOF
  // into the pool wastes frames and pollutes the LRU.  A page past the
  // store's size that holds unflushed dirty data is necessarily resident,
  // so it is skipped below anyway.
  const std::uint64_t file_size = store_.size(file);
  if (file_size == 0) return targets;
  const std::uint64_t last_page = (file_size - 1) / config_.page_size;
  if (first_page > last_page) return targets;
  count = static_cast<std::size_t>(
      std::min<std::uint64_t>(count, last_page - first_page + 1));
  targets.reserve(count);
  try {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t page_no = first_page + i;
      const PageKey key{file, page_no};
      const std::size_t s = shard_of(key);
      Shard& sh = shards_[s];
      std::unique_lock<std::mutex> lk(sh.mutex);
      if (sh.page_table.contains(key)) continue;
      bool transient_holds = false;
      const std::size_t idx = try_acquire_frame(sh, lk, transient_holds);
      if (idx == kNoFrame) break;
      if (sh.page_table.contains(key)) {
        // Lost a race while try_acquire_frame released the lock.
        release_frame(idx);
        continue;
      }
      install_loading_frame(sh, file, page_no, idx, /*pins=*/0);
      Frame& f = frames_[idx];
      if (f.data.size() != config_.page_size) {
        f.data.resize(config_.page_size);  // can throw bad_alloc
      }
      sh.stats.prefetches++;
      targets.push_back(PrefetchTarget{page_no, s, idx});
    }
  } catch (...) {
    abort_prefetch_frames(file, targets);
    throw;
  }
  return targets;
}

std::vector<BufferPool::GatherRun> BufferPool::build_gather_runs(
    std::span<const PrefetchTarget> targets) const {
  std::vector<GatherRun> runs;
  for (std::size_t i = 0; i < targets.size();) {
    std::size_t j = i + 1;
    while (j < targets.size() && j - i < config_.coalesce_pages &&
           targets[j].page_no == targets[j - 1].page_no + 1) {
      j++;
    }
    runs.push_back(GatherRun{i, j - i});
    i = j;
  }
  return runs;
}

AsyncTicket BufferPool::submit_gather(FileId file,
                                      std::span<const PrefetchTarget> targets,
                                      std::span<const GatherRun> runs) {
  std::vector<AsyncOp> batch;
  batch.reserve(runs.size());
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const GatherRun& run = runs[r];
    std::vector<std::span<std::byte>> parts;
    parts.reserve(run.count);
    for (std::size_t k = 0; k < run.count; ++k) {
      Frame& f = frames_[targets[run.first + k].frame];
      parts.emplace_back(f.data.data(), config_.page_size);
    }
    batch.push_back(
        AsyncOp::make_readv(file, targets[run.first].page_no * config_.page_size,
                            std::move(parts), /*user_data=*/r));
  }
  return async_->submit(std::move(batch));
}

void BufferPool::publish_gather_run(std::span<const PrefetchTarget> targets,
                                    const GatherRun& run, std::size_t got) {
  // Set each frame's valid extent, zero any stale tail of a reused frame,
  // then release the io_busy latch under the lock.
  for (std::size_t k = 0; k < run.count; ++k) {
    Frame& f = frames_[targets[run.first + k].frame];
    const std::size_t skip = k * config_.page_size;
    const std::size_t valid =
        got > skip ? std::min(config_.page_size, got - skip) : 0;
    if (valid < config_.page_size) {
      std::memset(f.data.data() + valid, 0, config_.page_size - valid);
    }
    Shard& sh = shards_[targets[run.first + k].shard];
    std::lock_guard<std::mutex> lock(sh.mutex);
    f.valid_bytes = valid;
    f.io_busy = false;
    if (k == 0) {
      // Credit the whole gather to the run's first shard; stats() sums.
      sh.stats.gather_read_calls++;
      sh.stats.gather_read_pages += run.count;
    }
    sh.io_cv.notify_all();
  }
}

std::size_t BufferPool::complete_gather(FileId file,
                                        std::span<const PrefetchTarget> targets,
                                        std::span<const GatherRun> runs,
                                        std::vector<AsyncCompletion>& done,
                                        std::exception_ptr* error) {
  std::size_t loaded = 0;
  std::vector<char> seen(runs.size(), 0);
  for (AsyncCompletion& c : done) {
    const GatherRun& run = runs[static_cast<std::size_t>(c.user_data)];
    seen[static_cast<std::size_t>(c.user_data)] = 1;
    if (c.ok()) {
      publish_gather_run(targets, run, c.bytes);
      loaded += run.count;
    } else {
      // A failed gather must leave no half-valid frame resident; runs that
      // completed cleanly stay — their data is complete.
      abort_prefetch_frames(file, targets.subspan(run.first, run.count));
      if (error != nullptr && *error == nullptr) *error = c.error;
    }
  }
  // A lost completion would be a backend contract violation, but latches
  // must never leak: unwind any run that was not reported at all.
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (seen[r] == 0) {
      abort_prefetch_frames(file,
                            targets.subspan(runs[r].first, runs[r].count));
    }
  }
  return loaded;
}

std::size_t BufferPool::prefetch_range(FileId file, std::uint64_t first_page,
                                       std::size_t count) {
  if (count == 0) return 0;
  const std::vector<PrefetchTarget> targets =
      claim_prefetch_targets(file, first_page, count);
  if (targets.empty()) return 0;

  // Phase 2: one vectored gather per contiguous run of claimed pages, all
  // I/O outside any lock (the io_busy latches own the frames).  Runs are
  // capped at coalesce_pages, mirroring the write-back side.
  const std::vector<GatherRun> runs = build_gather_runs(targets);
  std::size_t loaded = 0;
  std::exception_ptr error;
  if (async_ != nullptr) {
    // Completion-driven: the whole window is ONE submitted batch (one run =
    // one vectored AsyncOp), so on io_uring it costs one submit syscall.
    AsyncTicket ticket = 0;
    std::vector<AsyncCompletion> done;
    try {
      ticket = submit_gather(file, targets, runs);
      done = async_->wait(ticket);
    } catch (...) {
      // Submission/harvest failure: nothing was published yet, so every
      // claimed frame unwinds.
      abort_prefetch_frames(file, targets);
      throw;
    }
    loaded = complete_gather(file, targets, runs, done, &error);
  } else {
    std::vector<std::span<std::byte>> parts;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const GatherRun& run = runs[r];
      std::size_t got = 0;
      try {
        parts.clear();
        for (std::size_t k = 0; k < run.count; ++k) {
          Frame& f = frames_[targets[run.first + k].frame];
          parts.emplace_back(f.data.data(), config_.page_size);
        }
        got = store_.readv(file, targets[run.first].page_no * config_.page_size,
                           parts);
      } catch (...) {
        // Unwind this run and everything not yet issued: a failed gather
        // must leave no half-valid frame resident.  Runs already published
        // stay — their data is complete.
        error = std::current_exception();
        abort_prefetch_frames(
            file,
            std::span<const PrefetchTarget>(targets).subspan(run.first));
        break;
      }
      publish_gather_run(targets, run, got);
      loaded += run.count;
    }
  }
  if (error) std::rethrow_exception(error);
  return loaded;
}

/// Drops the claimed-but-unloaded frames of a failed prefetch: page-table
/// entries are erased and the frames returned to the free list, so faulters
/// waiting on them retry from a clean slate.  The prefetch counter is taken
/// back too — PoolStats counts pages actually loaded, and these were not.
void BufferPool::abort_prefetch_frames(
    FileId file, std::span<const PrefetchTarget> targets) {
  for (const PrefetchTarget& t : targets) {
    Shard& sh = shards_[t.shard];
    std::lock_guard<std::mutex> lock(sh.mutex);
    Frame& f = frames_[t.frame];
    sh.page_table.erase(PageKey{file, t.page_no});
    lru_remove(sh, t.frame);
    f.in_use = false;
    f.io_busy = false;
    sh.stats.prefetches--;
    release_frame(t.frame);
    sh.io_cv.notify_all();
  }
}

std::size_t BufferPool::prefetch_range_async(FileId file,
                                             std::uint64_t first_page,
                                             std::size_t count) {
  if (count == 0) return 0;
  if (!config_.async_prefetch) {
    return prefetch_range(file, first_page, count);
  }
  {
    std::lock_guard<std::mutex> lock(prefetch_mutex_);
    if (prefetch_stop_ || pending_gathers_.size() >= kMaxQueuedPrefetches) {
      return 0;  // drop the hint; I/O is already behind the reader
    }
  }
  // Claim + submit inline on the hinting thread — both are cheap (no data
  // transfer) — and let the reaper harvest the completions.  Everything
  // here is best-effort: claim or submission failures drop the hint, and
  // the demand fault reports real errors to the actual reader.
  PendingGather g;
  g.file = file;
  try {
    g.targets = claim_prefetch_targets(file, first_page, count);
  } catch (...) {
    return 0;  // claimed frames already unwound
  }
  if (g.targets.empty()) return 0;
  g.runs = build_gather_runs(g.targets);
  try {
    g.ticket = submit_gather(file, g.targets, g.runs);
  } catch (...) {
    abort_prefetch_frames(file, g.targets);
    return 0;
  }
  bool raced_shutdown = false;
  {
    std::lock_guard<std::mutex> lock(prefetch_mutex_);
    if (prefetch_stop_) {
      // Shutdown raced the submission; the reaper may already be past its
      // final drain, so harvest inline rather than leak the latches.
      raced_shutdown = true;
    } else {
      g.seq = prefetch_enqueue_seq_++;
      pending_gathers_.push_back(std::move(g));
    }
  }
  if (raced_shutdown) {
    std::vector<AsyncCompletion> done = async_->wait(g.ticket);
    complete_gather(g.file, g.targets, g.runs, done, nullptr);
    return 0;
  }
  prefetch_work_cv_.notify_one();
  return 0;
}

void BufferPool::drain_prefetches() {
  if (!config_.async_prefetch) return;
  std::unique_lock<std::mutex> lock(prefetch_mutex_);
  // Snapshot semantics: wait for the gathers that exist *now*, not for a
  // backlog other threads may keep refilling — otherwise a flush or close
  // could starve behind unrelated readers' readahead.  Pops are FIFO, so
  // "every seq below the snapshot has been popped and is no longer in
  // flight" is exactly "the backlog at entry has been published".
  const std::uint64_t upto = prefetch_enqueue_seq_;
  prefetch_done_cv_.wait(lock, [&] {
    for (const std::uint64_t seq : prefetch_inflight_seqs_) {
      if (seq < upto) return false;
    }
    return prefetch_popped_seq_ >= upto;
  });
}

void BufferPool::prefetch_reaper() {
  std::unique_lock<std::mutex> lock(prefetch_mutex_);
  for (;;) {
    prefetch_work_cv_.wait(lock, [this] {
      return prefetch_stop_ || !pending_gathers_.empty();
    });
    // On stop the whole backlog still drains: every queued entry is
    // *submitted* I/O whose completions must be harvested and whose
    // io_busy latches must be released.
    if (pending_gathers_.empty()) return;
    PendingGather g = std::move(pending_gathers_.front());
    pending_gathers_.pop_front();
    prefetch_popped_seq_ = g.seq + 1;
    prefetch_inflight_seqs_.push_back(g.seq);
    lock.unlock();
    try {
      std::vector<AsyncCompletion> done = async_->wait(g.ticket);
      complete_gather(g.file, g.targets, g.runs, done, /*error=*/nullptr);
    } catch (...) {
      // Harvest failure: nothing was published, so unwind every frame —
      // readahead is best-effort and the demand fault reports real errors.
      abort_prefetch_frames(g.file, g.targets);
    }
    lock.lock();
    prefetch_inflight_seqs_.erase(
        std::find(prefetch_inflight_seqs_.begin(),
                  prefetch_inflight_seqs_.end(), g.seq));
    prefetch_done_cv_.notify_all();
  }
}

bool BufferPool::contains(FileId file, std::uint64_t page_no) const {
  const PageKey key{file, page_no};
  const Shard& sh = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(sh.mutex);
  return sh.page_table.contains(key);
}

std::size_t BufferPool::find_or_load(Shard& sh,
                                     std::unique_lock<std::mutex>& lk,
                                     FileId file, std::uint64_t page_no,
                                     bool count_as_prefetch,
                                     bool pin_result) {
  const PageKey key{file, page_no};
  for (;;) {
    if (auto it = sh.page_table.find(key); it != sh.page_table.end()) {
      Frame& f = frames_[it->second];
      if (f.io_busy) {
        // Another thread is faulting or writing back this very page: wait
        // for its I/O instead of issuing a conflicting backing access.
        sh.io_cv.wait(lk);
        continue;
      }
      if (!count_as_prefetch) sh.stats.hits++;
      if (pin_result) f.pins++;
      lru_touch(sh, it->second);
      return it->second;
    }
    const std::size_t idx = acquire_frame(sh, lk);
    if (sh.page_table.contains(key)) {
      // Lost a race while acquire_frame released the lock: someone else
      // claimed this page.  Return the frame and retry.
      release_frame(idx);
      continue;
    }
    install_loading_frame(sh, file, page_no, idx, pin_result ? 1u : 0u);
    Frame& f = frames_[idx];
    if (count_as_prefetch) {
      sh.stats.prefetches++;
    } else {
      sh.stats.misses++;
    }
    // The actual disk read happens outside the shard lock; the io_busy
    // latch keeps the frame from being evicted or double-loaded.
    lk.unlock();
    std::exception_ptr error;
    std::size_t got = 0;
    try {
      if (f.data.size() != config_.page_size) {
        f.data.resize(config_.page_size);  // zero-filled on first allocation
      }
      got = backing_read(file, page_no * config_.page_size, f.data);
      if (got < config_.page_size) {
        // Only the stale tail needs zeroing; full-page loads skip the
        // page-sized memset the old code paid on every load.
        std::memset(f.data.data() + got, 0, config_.page_size - got);
      }
    } catch (...) {
      error = std::current_exception();
    }
    lk.lock();
    if (error) {
      sh.page_table.erase(key);
      lru_remove(sh, idx);
      f.in_use = false;
      f.io_busy = false;
      f.pins = 0;
      // Prefetches count pages actually loaded; a miss stays counted — the
      // demand fault did happen even though its load failed.
      if (count_as_prefetch) sh.stats.prefetches--;
      release_frame(idx);
      sh.io_cv.notify_all();
      std::rethrow_exception(error);
    }
    f.valid_bytes = got;
    f.io_busy = false;
    sh.io_cv.notify_all();
    return idx;
  }
}

/// Installs `idx` as the io_busy-latched frame for (file, page_no): resets
/// the frame's bookkeeping and enters it into `sh`'s page table and LRU.
/// Caller holds the shard lock, owns the load, and must either publish the
/// frame (valid_bytes + io_busy = false) or unwind it on failure.
void BufferPool::install_loading_frame(Shard& sh, FileId file,
                                       std::uint64_t page_no, std::size_t idx,
                                       std::uint32_t pins) {
  Frame& f = frames_[idx];
  f.file = file;
  f.page_no = page_no;
  f.valid_bytes = 0;
  f.pins = pins;
  f.dirty = false;
  f.in_use = true;
  f.io_busy = true;
  sh.page_table.emplace(PageKey{file, page_no}, idx);
  lru_push_front(sh, idx);
}

/// Returns an unused frame to the pool-wide free list.
void BufferPool::release_frame(std::size_t idx) {
  std::lock_guard<std::mutex> lock(free_mutex_);
  free_frames_.push_back(idx);
}

/// Tries to evict `sh`'s least recently used unpinned frame.  Returns the
/// detached frame index, or kNoFrame if nothing was evictable; sets
/// `transient_holds` if a frame was skipped only because of in-flight I/O
/// or a flush hold.  May release and reacquire `lk` for a dirty victim's
/// write-back.
std::size_t BufferPool::try_evict_from(Shard& sh,
                                       std::unique_lock<std::mutex>& lk,
                                       bool& transient_holds) {
  for (std::size_t idx = sh.lru_tail; idx != kNoFrame;
       idx = frames_[idx].lru_prev) {
    Frame& f = frames_[idx];
    if (f.pins > 0) continue;
    if (f.io_busy || f.flush_pins > 0) {
      // In-flight load or flush write: will be released shortly.
      transient_holds = true;
      continue;
    }
    if (f.dirty) {
      // Write the victim back before retiring its page-table entry: a
      // concurrent fault on the same page must find the io_busy entry
      // and wait, not race a fresh store read against this write.
      f.dirty = false;
      f.io_busy = true;
      f.io_write = true;
      lru_remove(sh, idx);
      const FileId file = f.file;
      const std::uint64_t offset = f.page_no * config_.page_size;
      const std::size_t n = f.valid_bytes;
      lk.unlock();
      std::exception_ptr error;
      try {
        backing_write(file, offset,
                      std::span<const std::byte>(f.data.data(), n));
      } catch (...) {
        error = std::current_exception();
      }
      lk.lock();
      f.io_busy = false;
      f.io_write = false;
      if (error) {
        // Failed write-back: keep the page resident and dirty so a later
        // flush or eviction can retry — its data must not be lost just
        // because this allocation failed.
        f.dirty = true;
        lru_push_front(sh, idx);
        sh.io_cv.notify_all();
        std::rethrow_exception(error);
      }
      sh.stats.writebacks++;
    } else {
      lru_remove(sh, idx);
    }
    sh.page_table.erase(PageKey{f.file, f.page_no});
    sh.stats.evictions++;
    f.in_use = false;
    sh.io_cv.notify_all();
    return idx;
  }
  return kNoFrame;
}

/// One allocation attempt, with `self`'s mutex held on entry and exit.
/// Order: pool-wide free list, then eviction from `self`, then eviction
/// from sibling shards (releasing `self`'s lock; at most one shard lock is
/// ever held, so shards cannot deadlock).  Returns kNoFrame when nothing
/// was obtainable right now; `transient_holds` is set if a frame was
/// skipped only because of in-flight I/O or a flush hold.
std::size_t BufferPool::try_acquire_frame(Shard& self,
                                          std::unique_lock<std::mutex>& lk,
                                          bool& transient_holds) {
  {
    std::lock_guard<std::mutex> lock(free_mutex_);
    if (!free_frames_.empty()) {
      const std::size_t idx = free_frames_.back();
      free_frames_.pop_back();
      return idx;
    }
  }
  const std::size_t local = try_evict_from(self, lk, transient_holds);
  if (local != kNoFrame) return local;
  if (shards_.size() > 1) {
    const std::size_t self_idx = static_cast<std::size_t>(&self - shards_.data());
    std::size_t stolen = kNoFrame;
    lk.unlock();
    for (std::size_t off = 1; off < shards_.size() && stolen == kNoFrame;
         ++off) {
      Shard& other = shards_[(self_idx + off) % shards_.size()];
      std::unique_lock<std::mutex> other_lk(other.mutex);
      stolen = try_evict_from(other, other_lk, transient_holds);
    }
    lk.lock();
    if (stolen != kNoFrame) return stolen;
  }
  return kNoFrame;
}

/// Hands the caller a frame, retrying until one is available.  Throws only
/// when every frame in the pool is durably pinned.
std::size_t BufferPool::acquire_frame(Shard& self,
                                      std::unique_lock<std::mutex>& lk) {
  for (;;) {
    bool transient_holds = false;
    const std::size_t idx = try_acquire_frame(self, lk, transient_holds);
    if (idx != kNoFrame) return idx;
    // Only durable PageGuard pins justify failing; transient holds by a
    // concurrent flush or loader resolve, so wait and rescan.  The wait is
    // bounded because the hold may live in a sibling shard whose progress
    // signals that shard's CV, not ours.
    if (!transient_holds) {
      throw IoError("BufferPool: all frames pinned, cannot allocate");
    }
    self.io_cv.wait_for(lk, std::chrono::milliseconds(1));
  }
}

void BufferPool::unpin(std::size_t shard, std::size_t frame) {
  Shard& sh = shards_[shard];
  std::lock_guard<std::mutex> lock(sh.mutex);
  Frame& f = frames_[frame];
  check<IoError>(f.pins > 0, "BufferPool: unpin of unpinned frame");
  f.pins--;
}

// ---------------------------------------------------------------- flush ----

void BufferPool::collect_dirty(Shard& sh, std::size_t shard_idx, FileId file,
                               bool match_all, std::vector<FlushEntry>& out) {
  std::unique_lock<std::mutex> lock(sh.mutex);
  // Wait out in-flight write-backs on matching pages before scanning.  A
  // dirty page mid-eviction (io_write) or mid-flush (flush_pins) is
  // invisible to the dirty scan below — both clear `dirty` before their
  // write runs — but if that write *fails* the page comes back dirty, and
  // a flush that already returned success would have silently skipped it:
  // a durability hole the fault-injection harness exposed (stress seed
  // 1014 for the eviction case; the flush_pins case is its concurrent-
  // flush twin).  Waiting until the in-flight write settles means every
  // failed write-back has re-dirtied its page before we scan, so flush
  // either persists the page or propagates an error — never neither.
  // Clean loads (io_busy without io_write) are irrelevant to durability
  // and are NOT waited on, so read storms cannot stall a flush.
  //
  // Deadlock-free: every flush collects shards in index order and only
  // holds flush_pins in shards it has finished collecting, so a flush
  // waiting here can only be waiting on a flush whose own wait (if any)
  // is in a strictly higher shard — wait chains cannot cycle.  Eviction
  // write-backs finish without taking further locks.
  for (;;) {
    bool busy = false;
    for (const auto& [key, idx] : sh.page_table) {
      if (!match_all && key.file != file) continue;
      const Frame& f = frames_[idx];
      if (f.io_write || f.flush_pins > 0) {
        busy = true;
        break;
      }
    }
    if (!busy) break;
    sh.io_cv.wait(lock);
  }
  for (std::size_t i = sh.lru_head; i != kNoFrame; i = frames_[i].lru_next) {
    Frame& f = frames_[i];
    if (!f.in_use || !f.dirty || f.io_busy) continue;
    if (!match_all && f.file != file) continue;
    // Clear dirty now and take a transient hold: the coalesced write below
    // runs without the shard lock, and the hold keeps the frame from being
    // evicted (a concurrent mark_dirty simply re-dirties the page).
    f.dirty = false;
    f.flush_pins++;
    out.push_back(FlushEntry{f.file, f.page_no, shard_idx, i, f.valid_bytes});
  }
}

void BufferPool::write_back_coalesced(std::vector<FlushEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const FlushEntry& a, const FlushEntry& b) {
              return a.file != b.file ? a.file < b.file
                                      : a.page_no < b.page_no;
            });
  std::exception_ptr error;
  std::vector<bool> written(entries.size(), false);
  // Runs extend while pages are adjacent in the same file and every page
  // except the last covers the full page (no holes in the middle).
  // Single-page runs go through writev too (one-part gather): every flush
  // backing call is then the same op class, so the coalescing ratio
  // computed from vectored-op stats (PoolStats here, IoStats at the
  // managed level) covers the whole flush path, not just the multi-page
  // gathers.
  struct WriteRun {
    std::size_t first;
    std::size_t last;  ///< exclusive
  };
  std::vector<WriteRun> runs;
  for (std::size_t i = 0; i < entries.size();) {
    std::size_t j = i + 1;
    while (j < entries.size() && j - i < config_.coalesce_pages &&
           entries[j].file == entries[i].file &&
           entries[j].page_no == entries[j - 1].page_no + 1 &&
           entries[j - 1].valid_bytes == config_.page_size) {
      j++;
    }
    runs.push_back(WriteRun{i, j});
    i = j;
  }
  const auto credit_run = [&](const WriteRun& run) {
    for (std::size_t k = run.first; k < run.last; ++k) written[k] = true;
    // Credit the backing call to the run's first shard; stats() sums.
    Shard& sh = shards_[entries[run.first].shard];
    std::lock_guard<std::mutex> lock(sh.mutex);
    sh.stats.flush_write_calls++;
    sh.stats.flush_write_pages += run.last - run.first;
  };
  if (async_ != nullptr && !runs.empty()) {
    // Completion-driven flush: every run is one vectored AsyncOp and the
    // whole flush is ONE submitted batch (on io_uring, one submit syscall
    // for the entire dirty set).  All runs are attempted; pages whose run
    // failed are re-dirtied below and the first error propagates.
    try {
      std::vector<AsyncOp> batch;
      batch.reserve(runs.size());
      for (std::size_t r = 0; r < runs.size(); ++r) {
        const WriteRun& run = runs[r];
        std::vector<std::span<const std::byte>> parts;
        parts.reserve(run.last - run.first);
        for (std::size_t k = run.first; k < run.last; ++k) {
          const FlushEntry& e = entries[k];
          parts.emplace_back(frames_[e.frame].data.data(), e.valid_bytes);
        }
        batch.push_back(AsyncOp::make_writev(
            entries[run.first].file,
            entries[run.first].page_no * config_.page_size, std::move(parts),
            /*user_data=*/r));
      }
      std::vector<AsyncCompletion> done =
          async_->submit_and_wait(std::move(batch));
      for (const AsyncCompletion& c : done) {
        const WriteRun& run = runs[static_cast<std::size_t>(c.user_data)];
        if (c.ok()) {
          credit_run(run);
        } else if (!error) {
          error = c.error;
        }
      }
    } catch (...) {
      // Submission/harvest failure: nothing confirmed written; every page
      // re-dirties below.
      error = std::current_exception();
    }
  } else {
    std::vector<std::span<const std::byte>> parts;
    for (const WriteRun& run : runs) {
      if (error) break;
      try {
        parts.clear();
        for (std::size_t k = run.first; k < run.last; ++k) {
          const FlushEntry& e = entries[k];
          parts.emplace_back(frames_[e.frame].data.data(), e.valid_bytes);
        }
        store_.writev(entries[run.first].file,
                      entries[run.first].page_no * config_.page_size, parts);
        credit_run(run);
      } catch (...) {
        error = std::current_exception();
      }
    }
  }
  // Release the holds; credit write-backs that happened and re-dirty the
  // pages a failed write left behind, so a retried flush still sees them.
  for (std::size_t k = 0; k < entries.size(); ++k) {
    const FlushEntry& e = entries[k];
    Shard& sh = shards_[e.shard];
    std::lock_guard<std::mutex> lock(sh.mutex);
    Frame& f = frames_[e.frame];
    f.flush_pins--;
    if (written[k]) {
      sh.stats.writebacks++;
    } else {
      f.dirty = true;
    }
    sh.io_cv.notify_all();
  }
  if (error) std::rethrow_exception(error);
}

void BufferPool::flush_file(FileId file) {
  // Drain first even on the fast path below: ManagedFile::close relies on
  // "flush_file drains on entry" before it releases the backing fd, and a
  // read-only file can still have readahead in flight.  Free when async
  // prefetch is off (no workers), which is the serving hot path.
  drain_prefetches();
  {
    // Fast path: no page of this file was ever dirtied since the last
    // discard (mark_dirty is the only writer of dirty_extent_), so there
    // is nothing to write back and no failing in-flight write-back to
    // wait out.  Read-only streams close() through here on every request.
    std::lock_guard<std::mutex> lock(extent_mutex_);
    if (!dirty_extent_.contains(file)) return;
  }
  std::vector<FlushEntry> dirty;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    collect_dirty(shards_[s], s, file, /*match_all=*/false, dirty);
  }
  write_back_coalesced(dirty);
}

void BufferPool::flush_all() {
  drain_prefetches();
  std::vector<FlushEntry> dirty;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    collect_dirty(shards_[s], s, kInvalidFile, /*match_all=*/true, dirty);
  }
  write_back_coalesced(dirty);
}

// ---------------------------------------------------------------- misc ----

std::uint64_t BufferPool::logical_file_size(FileId file) const {
  const std::uint64_t store_size = store_.size(file);
  std::lock_guard<std::mutex> lock(extent_mutex_);
  const auto it = dirty_extent_.find(file);
  if (it == dirty_extent_.end()) return store_size;
  return std::max(store_size, it->second);
}

void BufferPool::discard_file(FileId file) {
  // Outstanding async readahead may still target this file; let it land
  // before dropping, so no worker re-faults pages mid-discard.
  drain_prefetches();
  {
    std::lock_guard<std::mutex> lock(extent_mutex_);
    dirty_extent_.erase(file);
  }
  for (Shard& sh : shards_) {
    std::unique_lock<std::mutex> lk(sh.mutex);
    // Wait out in-flight loads, eviction write-backs and flush writes of
    // this file so the drop is complete.  The page table — not the LRU —
    // is the authoritative index: a frame mid-eviction is detached from
    // the LRU but keeps its table entry until its write-back finishes.
    for (;;) {
      bool busy = false;
      for (const auto& [key, idx] : sh.page_table) {
        if (key.file != file) continue;
        const Frame& f = frames_[idx];
        if (f.io_busy || f.flush_pins > 0) {
          busy = true;
          break;
        }
      }
      if (!busy) break;
      sh.io_cv.wait(lk);
    }
    for (auto it = sh.page_table.begin(); it != sh.page_table.end();) {
      if (it->first.file != file) {
        ++it;
        continue;
      }
      const std::size_t idx = it->second;
      Frame& f = frames_[idx];
      check<IoError>(f.pins == 0, "BufferPool: discard of pinned page");
      f.in_use = false;
      f.dirty = false;
      lru_remove(sh, idx);
      release_frame(idx);
      it = sh.page_table.erase(it);
    }
  }
}

std::size_t BufferPool::evict_clean() {
  // Let queued readahead land first so its frames are evictable too.
  drain_prefetches();
  std::size_t dropped = 0;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mutex);
    for (auto it = sh.page_table.begin(); it != sh.page_table.end();) {
      const std::size_t idx = it->second;
      Frame& f = frames_[idx];
      // Anything referenced, mid-I/O or dirty stays resident: this is a
      // cache hint, not a correctness operation.
      if (f.pins > 0 || f.flush_pins > 0 || f.io_busy || f.dirty) {
        ++it;
        continue;
      }
      f.in_use = false;
      lru_remove(sh, idx);
      release_frame(idx);
      it = sh.page_table.erase(it);
      sh.stats.evictions++;
      ++dropped;
    }
  }
  return dropped;
}

namespace {

void add_shard_stats(PoolStats& total, const PoolStats& s) {
  total.hits += s.hits;
  total.misses += s.misses;
  total.evictions += s.evictions;
  total.writebacks += s.writebacks;
  total.prefetches += s.prefetches;
  total.flush_write_calls += s.flush_write_calls;
  total.flush_write_pages += s.flush_write_pages;
  total.gather_read_calls += s.gather_read_calls;
  total.gather_read_pages += s.gather_read_pages;
}

}  // namespace

PoolStats BufferPool::stats() const {
  PoolStats total;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mutex);
    add_shard_stats(total, sh.stats);
  }
  return total;
}

void BufferPool::debug_validate(bool expect_unpinned) const {
  const auto fail = [](const std::string& what) {
    throw IoError("BufferPool::debug_validate: " + what);
  };
  // All shard locks (index order), then the free-list lock — the same
  // shard-before-free order every other path uses, so this cannot deadlock
  // against concurrent stragglers while it waits for quiescence.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const Shard& sh : shards_) locks.emplace_back(sh.mutex);
  std::lock_guard<std::mutex> free_lock(free_mutex_);

  std::vector<char> seen(frames_.size(), 0);  // reachable via some LRU list
  PoolStats total;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = shards_[s];
    // Walk the LRU forward, checking link symmetry and per-frame state.
    std::size_t count = 0;
    std::size_t prev = kNoFrame;
    for (std::size_t idx = sh.lru_head; idx != kNoFrame;
         idx = frames_[idx].lru_next) {
      if (idx >= frames_.size()) fail("LRU link out of range");
      if (++count > frames_.size()) fail("LRU list contains a cycle");
      const Frame& f = frames_[idx];
      if (f.lru_prev != prev) fail("LRU back-link mismatch");
      if (!f.in_use) fail("LRU frame not in_use");
      if (seen[idx] != 0) fail("frame linked into two LRU lists");
      seen[idx] = 1;
      const PageKey key{f.file, f.page_no};
      if (shard_of(key) != s) fail("frame resident in the wrong shard");
      const auto it = sh.page_table.find(key);
      if (it == sh.page_table.end()) fail("LRU frame missing from page table");
      if (it->second != idx) fail("page table maps key to a different frame");
      if (f.io_busy) fail("leaked io_busy latch on a quiescent pool");
      if (f.io_write) fail("leaked io_write flag on a quiescent pool");
      if (f.flush_pins != 0) fail("leaked flush_pin on a quiescent pool");
      if (expect_unpinned && f.pins != 0) fail("leaked PageGuard pin");
      if (f.data.size() != config_.page_size) fail("frame buffer not sized");
      if (f.valid_bytes > config_.page_size) fail("valid_bytes > page_size");
      prev = idx;
    }
    if (prev != sh.lru_tail) fail("LRU tail does not terminate the list");
    // At quiescence no frame is detached mid-eviction, so the page table
    // and the LRU list must index exactly the same frames.
    if (count != sh.page_table.size()) {
      fail("page table entry not linked into the LRU");
    }
    add_shard_stats(total, sh.stats);
  }
  // Global frame accounting: every frame is either reachable through
  // exactly one LRU list (checked above) or parked on the free list.
  std::size_t resident = 0;
  for (std::size_t idx = 0; idx < frames_.size(); ++idx) {
    if (frames_[idx].in_use) {
      resident++;
      if (seen[idx] == 0) fail("in_use frame unreachable from any LRU");
    } else if (seen[idx] != 0) {
      fail("free frame linked into an LRU");
    }
  }
  std::vector<char> freed(frames_.size(), 0);
  for (const std::size_t idx : free_frames_) {
    if (idx >= frames_.size()) fail("free-list index out of range");
    if (frames_[idx].in_use) fail("in_use frame on the free list");
    if (freed[idx] != 0) fail("frame on the free list twice");
    freed[idx] = 1;
  }
  if (resident + free_frames_.size() != config_.capacity_pages) {
    fail("frames leaked: resident + free != capacity");
  }
  // Stats consistency.  Every resident or evicted page came from a
  // successful load, and every load was counted as a miss or a prefetch
  // (failed misses still count as misses, so this is an inequality).
  if (resident + total.evictions > total.misses + total.prefetches) {
    fail("stats: more residents+evictions than counted loads");
  }
  if (total.flush_write_pages > total.writebacks) {
    fail("stats: flush wrote more pages than writebacks counted");
  }
  if (total.gather_read_pages > total.prefetches) {
    fail("stats: gathers loaded more pages than prefetches counted");
  }
}

std::size_t BufferPool::resident_pages() const {
  std::size_t total = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mutex);
    total += sh.page_table.size();
  }
  return total;
}

}  // namespace clio::io
