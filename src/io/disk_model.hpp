#pragma once

#include <cstdint>

namespace clio::io {

/// Parameters of one simulated disk, circa the paper's 2004 hardware
/// (a desktop IDE drive).  The defaults matter only for the discrete-event
/// experiments (Figures 4-5); trace replay uses real files.
struct DiskParams {
  double min_seek_ms = 1.0;    ///< single-track seek
  double avg_seek_ms = 8.5;    ///< average (1/3-stroke) seek
  double rpm = 7200.0;         ///< spindle speed
  double transfer_mb_s = 55.0; ///< sustained media transfer rate
  double overhead_ms = 0.10;   ///< controller/command overhead per request
  std::uint64_t capacity_bytes = 64ULL << 30;  ///< addressable span
};

/// Analytic service-time model of a single disk, after Ruemmler & Wilkes.
///
/// Seek time follows the standard concave square-root curve between the
/// single-track and full-stroke costs; rotational latency averages half a
/// revolution; transfer is linear in request length.  The model is
/// deliberately simple — the paper's Figure 4 depends only on the *relative*
/// cost of I/O as disks are added, not on device fidelity.
class DiskModel {
 public:
  explicit DiskModel(const DiskParams& params);

  /// Seek cost from byte address `from` to `to`.
  [[nodiscard]] double seek_time_ms(std::uint64_t from, std::uint64_t to) const;

  /// Expected rotational delay (half a revolution).
  [[nodiscard]] double rotational_latency_ms() const;

  /// Media transfer time for `bytes`.
  [[nodiscard]] double transfer_time_ms(std::uint64_t bytes) const;

  /// Full request service time: overhead + seek + rotation + transfer.
  /// A zero-byte request (pure seek) skips the rotational term.
  [[nodiscard]] double service_time_ms(std::uint64_t head_pos,
                                       std::uint64_t offset,
                                       std::uint64_t bytes) const;

  [[nodiscard]] const DiskParams& params() const { return params_; }

 private:
  DiskParams params_;
  double full_stroke_ms_;  ///< derived: seek across the whole span
};

/// A disk with a remembered head position; serves requests in arrival order
/// and accumulates busy time.  This is the unit the DiskArray stripes over
/// and the DES schedules.
class SimDisk {
 public:
  explicit SimDisk(const DiskParams& params) : model_(params) {}

  /// Services a request, advances the head, and returns the service time.
  double access_ms(std::uint64_t offset, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t head_position() const { return head_; }
  [[nodiscard]] double busy_ms() const { return busy_ms_; }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_; }
  [[nodiscard]] std::uint64_t bytes_served() const { return bytes_; }
  [[nodiscard]] const DiskModel& model() const { return model_; }

  void reset_counters();

 private:
  DiskModel model_;
  std::uint64_t head_ = 0;
  double busy_ms_ = 0.0;
  std::uint64_t requests_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace clio::io
