#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "io/file_store.hpp"
#include "io/io_stats.hpp"
#include "util/resilience.hpp"
#include "util/rng.hpp"

namespace clio::io {

/// Retry policy of a RetryingStore.  The backoff schedule is seeded so a
/// seeded test replays the exact same sleep sequence; `seed` feeds one
/// SplitMix64 stream from which each data op derives its own jitter stream.
struct RetryPolicy {
  util::BackoffPolicy backoff{};
  std::uint64_t seed = 0x5eed;
  /// Per-op wall-clock budget (0 = none).  Independently of this knob, the
  /// calling thread's ambient util::DeadlineScope — the per-request budget
  /// the serving layer arms — is always honored: the retry loop gives up
  /// with util::TimeoutError rather than sleep past either deadline.
  std::uint32_t op_deadline_ms = 0;
};

/// Counters of what a RetryingStore actually did.
struct RetryStats {
  std::uint64_t attempts = 0;    ///< inner data-path calls issued
  std::uint64_t retries = 0;     ///< re-issues after a transient failure
  std::uint64_t absorbed = 0;    ///< ops that failed, were retried, and succeeded
  std::uint64_t exhausted = 0;   ///< transient failures surfaced (retries spent)
  std::uint64_t permanent = 0;   ///< permanent failures surfaced immediately
  std::uint64_t fast_fails = 0;  ///< calls refused by an open circuit breaker
  std::uint64_t deadline_expiries = 0;  ///< retry loops cut short by a deadline
};

/// BackingStore decorator that makes the data path *react* to faults
/// instead of surfacing every blip: transient errors (util::TransientIoError
/// — clean EIOs, injected short reads) are retried with bounded,
/// seeded-jitter exponential backoff under per-op and ambient deadlines,
/// while permanent errors (torn writes, disk full, bad handles — plain
/// util::IoError) surface immediately and are never retried blindly.
///
/// An optional shared util::CircuitBreaker (not owned) turns repeated
/// failure into fast-fails: every attempt asks try_acquire() first, every
/// outcome is recorded, and while the breaker is open calls fail instantly
/// with TransientIoError instead of piling retries onto a sick store.
/// Permanent errors count as breaker *successes*: the store answered
/// definitively, so the infrastructure is healthy.
///
/// Metadata operations forward verbatim (the FaultStore convention: the
/// interesting unwind paths all hang off the data ops).
///
/// Thread-safe: counters and the seed stream are mutex-guarded; inner
/// calls and backoff sleeps run outside the lock.
class RetryingStore final : public BackingStore {
 public:
  /// Decorates a store owned elsewhere (must outlive this).
  RetryingStore(BackingStore& inner, RetryPolicy policy = {},
                util::CircuitBreaker* breaker = nullptr);

  /// Decorates and owns the inner store — the shape ManagedFileSystem
  /// needs, since it takes its store by unique_ptr.
  RetryingStore(std::unique_ptr<BackingStore> inner, RetryPolicy policy = {},
                util::CircuitBreaker* breaker = nullptr);

  FileId open(const std::string& name, bool create) override;
  void close(FileId id) override;
  [[nodiscard]] std::uint64_t size(FileId id) const override;
  void truncate(FileId id, std::uint64_t new_size) override;
  std::size_t read(FileId id, std::uint64_t offset,
                   std::span<std::byte> out) override;
  void write(FileId id, std::uint64_t offset,
             std::span<const std::byte> data) override;
  void writev(FileId id, std::uint64_t offset,
              std::span<const std::span<const std::byte>> parts) override;
  std::size_t readv(FileId id, std::uint64_t offset,
                    std::span<const std::span<std::byte>> parts) override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  [[nodiscard]] FileId lookup(const std::string& name) const override;
  void remove(const std::string& name) override;

  /// Mirrors retries / breaker trips / fast-fails / deadline expiries into
  /// an IoStats' resilience counters (not owned; call before traffic or
  /// after quiescing).  ManagedFileSystem owners bind their fs.stats() so
  /// the availability machinery shows up next to the latency tables.
  void bind_stats(IoStats* stats);

  [[nodiscard]] RetryStats stats() const;
  void reset_stats();

  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] util::CircuitBreaker* breaker() { return breaker_; }
  [[nodiscard]] BackingStore& inner() { return inner_; }

 private:
  /// Runs one data op under the retry/backoff/breaker/deadline loop.
  template <typename Fn>
  auto with_retries(const char* op, Fn&& fn)
      -> decltype(fn());

  [[nodiscard]] std::uint64_t next_backoff_seed();
  void note_retry();
  void note_absorbed();
  void note_exhausted();
  void note_permanent();
  void note_fast_fail();
  void note_deadline_expiry();
  void note_attempt();
  void note_trip();

  std::unique_ptr<BackingStore> owned_;  ///< null when wrapping a reference
  BackingStore& inner_;
  RetryPolicy policy_;
  util::CircuitBreaker* breaker_;  ///< not owned; may be null
  IoStats* io_stats_ = nullptr;    ///< not owned; may be null
  mutable std::mutex mutex_;       ///< stats_ + rng_
  util::SplitMix64 rng_;
  RetryStats stats_;
};

}  // namespace clio::io
