#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/async_store.hpp"
#include "io/file_store.hpp"
#include "io/io_stats.hpp"
#include "io/store_decorator.hpp"
#include "util/resilience.hpp"
#include "util/rng.hpp"

namespace clio::io {

/// Retry policy of a RetryingStore.  The backoff schedule is seeded so a
/// seeded test replays the exact same sleep sequence; `seed` feeds one
/// SplitMix64 stream from which each data op derives its own jitter stream.
struct RetryPolicy {
  util::BackoffPolicy backoff{};
  std::uint64_t seed = 0x5eed;
  /// Per-op wall-clock budget (0 = none).  Independently of this knob, the
  /// calling thread's ambient util::DeadlineScope — the per-request budget
  /// the serving layer arms — is always honored: the retry loop gives up
  /// with util::TimeoutError rather than sleep past either deadline.
  std::uint32_t op_deadline_ms = 0;
};

/// Counters of what a RetryingStore actually did.
struct RetryStats {
  std::uint64_t attempts = 0;    ///< inner data-path calls issued
  std::uint64_t retries = 0;     ///< re-issues after a transient failure
  std::uint64_t absorbed = 0;    ///< ops that failed, were retried, and succeeded
  std::uint64_t exhausted = 0;   ///< transient failures surfaced (retries spent)
  std::uint64_t permanent = 0;   ///< permanent failures surfaced immediately
  std::uint64_t fast_fails = 0;  ///< calls refused by an open circuit breaker
  std::uint64_t deadline_expiries = 0;  ///< retry loops cut short by a deadline
};

/// BackingStore decorator that makes the data path *react* to faults
/// instead of surfacing every blip: transient errors (util::TransientIoError
/// — clean EIOs, injected short reads) are retried with bounded,
/// seeded-jitter exponential backoff under per-op and ambient deadlines,
/// while permanent errors (torn writes, disk full, bad handles — plain
/// util::IoError) surface immediately and are never retried blindly.
///
/// An optional shared util::CircuitBreaker (not owned) turns repeated
/// failure into fast-fails: every attempt asks try_acquire() first, every
/// outcome is recorded, and while the breaker is open calls fail instantly
/// with TransientIoError instead of piling retries onto a sick store.
/// Permanent errors count as breaker *successes*: the store answered
/// definitively, so the infrastructure is healthy.
///
/// Metadata operations forward verbatim (the FaultStore convention: the
/// interesting unwind paths all hang off the data ops).
///
/// Thread-safe: counters and the seed stream are mutex-guarded; inner
/// calls and backoff sleeps run outside the lock.
class RetryingStore final : public StoreDecorator {
 public:
  /// Decorates a store owned elsewhere (must outlive this).
  RetryingStore(BackingStore& inner, RetryPolicy policy = {},
                util::CircuitBreaker* breaker = nullptr);

  /// Decorates and owns the inner store — the shape ManagedFileSystem
  /// needs, since it takes its store by unique_ptr.
  RetryingStore(std::unique_ptr<BackingStore> inner, RetryPolicy policy = {},
                util::CircuitBreaker* breaker = nullptr);

  std::size_t read(FileId id, std::uint64_t offset,
                   std::span<std::byte> out) override;
  void write(FileId id, std::uint64_t offset,
             std::span<const std::byte> data) override;
  void writev(FileId id, std::uint64_t offset,
              std::span<const std::span<const std::byte>> parts) override;
  std::size_t readv(FileId id, std::uint64_t offset,
                    std::span<const std::span<std::byte>> parts) override;

  /// Mirrors retries / breaker trips / fast-fails / deadline expiries into
  /// an IoStats' resilience counters (not owned; call before traffic or
  /// after quiescing).  ManagedFileSystem owners bind their fs.stats() so
  /// the availability machinery shows up next to the latency tables.
  void bind_stats(IoStats* stats) override;

  [[nodiscard]] RetryStats stats() const;
  void reset_stats();

  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] util::CircuitBreaker* breaker() { return breaker_; }

 private:
  /// Runs one data op under the retry/backoff/breaker/deadline loop.
  template <typename Fn>
  auto with_retries(const char* op, Fn&& fn)
      -> decltype(fn());

  [[nodiscard]] std::uint64_t next_backoff_seed();
  void note_retry();
  void note_absorbed();
  void note_exhausted();
  void note_permanent();
  void note_fast_fail();
  void note_deadline_expiry();
  void note_attempt();
  void note_trip();

  RetryPolicy policy_;
  util::CircuitBreaker* breaker_;  ///< not owned; may be null
  IoStats* io_stats_ = nullptr;    ///< not owned; may be null
  mutable std::mutex mutex_;       ///< stats_ + rng_
  util::SplitMix64 rng_;
  RetryStats stats_;
};

/// AsyncBackingStore decorator that re-submits transient completion
/// failures under the exact Deadline/Backoff/breaker rules of the sync
/// RetryingStore: each op gets its own seeded Backoff and a deadline
/// captured at submit() (the tighter of the ambient util::DeadlineScope
/// and the per-op budget); every attempt asks the shared breaker's
/// try_acquire() first; transient errors (util::TransientIoError) are
/// re-submitted after the backoff delay, permanent ones (plain
/// util::IoError) settle immediately and count as breaker successes.
///
/// Retries are driven from the harvest side: wait() sleeps out backoff
/// delays and re-submits inline until every op settles; poll() never
/// sleeps — it re-submits only ops whose delay has already elapsed, so a
/// poll loop converges without blocking.
class RetryingAsyncStore final : public AsyncBackingStore {
 public:
  /// The inner store is not owned and must outlive this.
  explicit RetryingAsyncStore(AsyncBackingStore& inner,
                              RetryPolicy policy = {},
                              util::CircuitBreaker* breaker = nullptr);

  AsyncTicket submit(std::vector<AsyncOp> batch) override;
  std::size_t poll(AsyncTicket ticket,
                   std::vector<AsyncCompletion>& out) override;
  std::vector<AsyncCompletion> wait(AsyncTicket ticket) override;

  /// Mirrors the resilience counters into the IoStats (like the sync
  /// store's bind_stats) and forwards the binding to the inner store so
  /// its async counters land in the same place.
  void bind_stats(IoStats* stats) override;

  [[nodiscard]] RetryStats stats() const;
  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] AsyncBackingStore& inner() { return inner_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct OpState {
    AsyncOp op;  ///< kept so a transient failure can be re-submitted verbatim
    util::Backoff backoff;
    util::Deadline deadline;
    bool settled = false;
    bool retried = false;
    bool awaiting_resubmit = false;
    Clock::time_point next_attempt{};  ///< earliest re-submission time
    AsyncCompletion result{};
    bool delivered = false;
  };

  struct TicketState {
    std::vector<OpState> ops;
    /// Inner tickets not yet fully harvested, with the number of
    /// completions each still owes (an inner ticket forgets itself once
    /// drained, so waiting on a fully-harvested one would be an error).
    std::vector<std::pair<AsyncTicket, std::size_t>> inner_tickets;
    std::size_t settled_count = 0;
    std::size_t delivered_count = 0;
  };

  /// Classifies one inner completion: settle, or schedule a re-submission.
  /// Mutex held.
  void process_completion_locked(TicketState& st, AsyncCompletion&& c);
  /// Re-submits every op whose backoff delay has elapsed.  Mutex held.
  void resubmit_due_locked(TicketState& st, Clock::time_point now);
  /// Moves settled, undelivered results into `out`.  Mutex held.
  std::size_t drain_locked(TicketState& st, std::vector<AsyncCompletion>& out);
  void settle_locked(TicketState& st, OpState& op, AsyncCompletion&& c);

  /// Mutex held (rng_ and the counters share mutex_).
  [[nodiscard]] std::uint64_t next_backoff_seed_locked();
  void note_locked(void (IoStats::*record)(),
                   std::uint64_t RetryStats::*counter);

  AsyncBackingStore& inner_;
  RetryPolicy policy_;
  util::CircuitBreaker* breaker_;  ///< not owned; may be null
  IoStats* io_stats_ = nullptr;    ///< not owned; guarded by mutex_
  mutable std::mutex mutex_;
  util::SplitMix64 rng_;
  RetryStats stats_;
  std::unordered_map<AsyncTicket, TicketState> tickets_;
  AsyncTicket next_ticket_ = 1;
};

}  // namespace clio::io
