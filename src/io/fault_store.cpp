#include "io/fault_store.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace clio::io {

using util::check;
using util::IoError;

std::string_view fault_op_name(FaultOp op) {
  switch (op) {
    case FaultOp::kRead:
      return "read";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kReadv:
      return "readv";
    case FaultOp::kWritev:
      return "writev";
  }
  return "?";
}

std::uint64_t FaultStats::total_calls() const {
  std::uint64_t total = 0;
  for (const auto c : calls) total += c;
  return total;
}

std::uint64_t FaultStats::total_faults() const {
  std::uint64_t total = 0;
  for (const auto f : faults) total += f;
  return total;
}

FaultStore::FaultStore(BackingStore& inner, FaultPlan plan)
    : StoreDecorator(inner), plan_(plan), rng_(plan.seed) {
  check<util::ConfigError>(plan_.torn_granularity >= 1,
                           "FaultStore: torn_granularity must be >= 1");
}

FaultStore::FaultStore(std::unique_ptr<BackingStore> inner, FaultPlan plan)
    : StoreDecorator(std::move(inner)), plan_(plan), rng_(plan.seed) {
  check<util::ConfigError>(plan_.torn_granularity >= 1,
                           "FaultStore: torn_granularity must be >= 1");
}

// Metadata operations forward through the StoreDecorator base verbatim:
// the buffer pool's interesting unwind paths all hang off the data ops.

// ------------------------------------------------------------- control ----

void FaultStore::arm(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = on;
}

bool FaultStore::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

void FaultStore::fail_next(FaultOp op, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  forced_fails_[static_cast<std::size_t>(op)] = n;
}

void FaultStore::set_plan(FaultPlan plan) {
  check<util::ConfigError>(plan.torn_granularity >= 1,
                           "FaultStore: torn_granularity must be >= 1");
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
  rng_ = util::SplitMix64(plan.seed);
}

FaultPlan FaultStore::plan() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_;
}

FaultStats FaultStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FaultStore::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = FaultStats{};
  forced_fails_.fill(0);
  bytes_written_ = 0;
  rng_ = util::SplitMix64(plan_.seed);
}

// ------------------------------------------------------------ decisions ----

double FaultStore::roll() {
  return static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
}

/// Resolves every injected behaviour for one call under the mutex; the
/// caller performs the (possibly trimmed) inner op and any sleep outside
/// it.  Check order: forced > fail_nth > fail_prob > tear/short > budget —
/// the exact-targeting triggers win so tests can aim faults precisely even
/// with background probabilities armed.
FaultStore::Decision FaultStore::decide(FaultOp op,
                                        std::uint64_t payload_bytes) {
  const auto idx = static_cast<std::size_t>(op);
  const bool is_write = op == FaultOp::kWrite || op == FaultOp::kWritev;
  std::lock_guard<std::mutex> lock(mutex_);
  Decision d;
  if (!armed_) return d;
  d.call_index = ++stats_.calls[idx];
  if (plan_.latency_prob > 0.0 && roll() < plan_.latency_prob) {
    d.sleep_us = plan_.latency_us;
    stats_.latency_injections++;
  }
  if (forced_fails_[idx] > 0) {
    forced_fails_[idx]--;
    stats_.faults[idx]++;
    d.fail_clean = true;
    d.reason = "forced EIO";
    return d;
  }
  if (plan_.fail_nth[idx] != 0 && d.call_index == plan_.fail_nth[idx]) {
    stats_.faults[idx]++;
    d.fail_clean = true;
    d.reason = "EIO (fail_nth)";
    return d;
  }
  if (plan_.fail_prob[idx] > 0.0 && roll() < plan_.fail_prob[idx]) {
    stats_.faults[idx]++;
    d.fail_clean = true;
    d.reason = "EIO";
    return d;
  }
  if (!is_write && payload_bytes > 0 && plan_.short_read_prob > 0.0 &&
      roll() < plan_.short_read_prob) {
    stats_.faults[idx]++;
    stats_.short_reads++;
    d.tear = true;
    d.partial_bytes =
        static_cast<std::size_t>(rng_.next() % payload_bytes);
    d.reason = "short read";
    return d;
  }
  if (is_write && payload_bytes > 0 && plan_.torn_write_prob > 0.0 &&
      roll() < plan_.torn_write_prob) {
    stats_.faults[idx]++;
    stats_.torn_writes++;
    d.tear = true;
    d.partial_bytes = static_cast<std::size_t>(
        (rng_.next() % payload_bytes) / plan_.torn_granularity *
        plan_.torn_granularity);
    if (plan_.disk_full_after_bytes > 0) {
      // The persisted prefix charges the byte budget too, and is capped by
      // it — a torn write must not smuggle bytes past the quota.
      const std::uint64_t budget = plan_.disk_full_after_bytes;
      const std::uint64_t allowed =
          budget > bytes_written_ ? budget - bytes_written_ : 0;
      d.partial_bytes = static_cast<std::size_t>(std::min<std::uint64_t>(
          d.partial_bytes,
          allowed / plan_.torn_granularity * plan_.torn_granularity));
      bytes_written_ += d.partial_bytes;
    }
    d.reason = "torn write";
    return d;
  }
  if (is_write && plan_.disk_full_after_bytes > 0) {
    const std::uint64_t budget = plan_.disk_full_after_bytes;
    if (bytes_written_ + payload_bytes > budget) {
      const std::uint64_t allowed =
          budget > bytes_written_ ? budget - bytes_written_ : 0;
      stats_.faults[idx]++;
      stats_.disk_full_faults++;
      d.tear = true;
      d.partial_bytes = static_cast<std::size_t>(
          allowed / plan_.torn_granularity * plan_.torn_granularity);
      d.reason = "disk full";
      bytes_written_ = budget;  // the budget is gone either way
      return d;
    }
    bytes_written_ += payload_bytes;
  }
  return d;
}

FaultStore::AsyncInjection FaultStore::decide_async(
    FaultOp op, std::uint64_t payload_bytes) {
  const Decision d = decide(op, payload_bytes);
  AsyncInjection inj;
  inj.sleep_us = d.sleep_us;
  inj.fail_clean = d.fail_clean;
  inj.tear = d.tear;
  inj.partial_bytes = d.partial_bytes;
  if (d.fail_clean || d.tear) {
    // Package the exact exception the sync path would throw, so async
    // completions carry an identical error taxonomy.
    try {
      throw_injected(op, d);
    } catch (...) {
      inj.error = std::current_exception();
    }
  }
  return inj;
}

void FaultStore::throw_injected(FaultOp op, const Decision& d) const {
  const std::string what = "FaultStore: injected " + std::string(d.reason) +
                           " on " + std::string(fault_op_name(op)) +
                           " (call #" + std::to_string(d.call_index) + ")";
  // Clean EIOs and short reads are transient: nothing durable changed, a
  // retry may succeed.  Torn writes and disk-full are permanent: bytes (or
  // a quota) are gone, so blind re-issue would corrupt — plain IoError.
  const bool is_write = op == FaultOp::kWrite || op == FaultOp::kWritev;
  if (d.fail_clean || (d.tear && !is_write)) {
    throw util::TransientIoError(what);
  }
  throw IoError(what);
}

// ------------------------------------------------------------- data ops ----

std::size_t FaultStore::read(FileId id, std::uint64_t offset,
                             std::span<std::byte> out) {
  const Decision d = decide(FaultOp::kRead, out.size());
  if (d.sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.sleep_us));
  }
  if (d.fail_clean) throw_injected(FaultOp::kRead, d);
  if (d.tear) {
    // Fill a prefix so the caller's buffer is observably dirtied, then
    // fail: the unwind path must treat the whole buffer as garbage.
    static_cast<void>(inner_.read(id, offset, out.first(d.partial_bytes)));
    throw_injected(FaultOp::kRead, d);
  }
  return inner_.read(id, offset, out);
}

std::size_t FaultStore::readv(FileId id, std::uint64_t offset,
                              std::span<const std::span<std::byte>> parts) {
  std::uint64_t total = 0;
  for (const auto& part : parts) total += part.size();
  const Decision d = decide(FaultOp::kReadv, total);
  if (d.sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.sleep_us));
  }
  if (d.fail_clean) throw_injected(FaultOp::kReadv, d);
  if (d.tear) {
    std::size_t budget = d.partial_bytes;
    std::vector<std::span<std::byte>> trimmed;
    for (const auto& part : parts) {
      if (budget == 0) break;
      const std::size_t n = std::min(part.size(), budget);
      trimmed.push_back(part.first(n));
      budget -= n;
    }
    if (!trimmed.empty()) static_cast<void>(inner_.readv(id, offset, trimmed));
    throw_injected(FaultOp::kReadv, d);
  }
  return inner_.readv(id, offset, parts);
}

void FaultStore::write(FileId id, std::uint64_t offset,
                       std::span<const std::byte> data) {
  const Decision d = decide(FaultOp::kWrite, data.size());
  if (d.sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.sleep_us));
  }
  if (d.fail_clean) throw_injected(FaultOp::kWrite, d);
  if (d.tear) {
    if (d.partial_bytes > 0) {
      inner_.write(id, offset, data.first(d.partial_bytes));
    }
    throw_injected(FaultOp::kWrite, d);
  }
  inner_.write(id, offset, data);
}

void FaultStore::writev(FileId id, std::uint64_t offset,
                        std::span<const std::span<const std::byte>> parts) {
  std::uint64_t total = 0;
  for (const auto& part : parts) total += part.size();
  const Decision d = decide(FaultOp::kWritev, total);
  if (d.sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.sleep_us));
  }
  if (d.fail_clean) throw_injected(FaultOp::kWritev, d);
  if (d.tear) {
    // Persist a prefix of the gather — with page-sized granularity this is
    // exactly the "torn multi-page writev" case: some pages land, the rest
    // (and the error) are the flusher's problem.
    std::size_t budget = d.partial_bytes;
    std::vector<std::span<const std::byte>> trimmed;
    for (const auto& part : parts) {
      if (budget == 0) break;
      const std::size_t n = std::min(part.size(), budget);
      trimmed.push_back(part.first(n));
      budget -= n;
    }
    if (!trimmed.empty()) inner_.writev(id, offset, trimmed);
    throw_injected(FaultOp::kWritev, d);
  }
  inner_.writev(id, offset, parts);
}

// ------------------------------------------------------ AsyncFaultStore ----

namespace {

FaultOp fault_op_of(AsyncOpKind kind) {
  switch (kind) {
    case AsyncOpKind::kRead:
      return FaultOp::kRead;
    case AsyncOpKind::kWrite:
      return FaultOp::kWrite;
    case AsyncOpKind::kReadv:
      return FaultOp::kReadv;
    case AsyncOpKind::kWritev:
      return FaultOp::kWritev;
  }
  return FaultOp::kRead;
}

/// Trims an op's payload to the injected prefix, in place — the async
/// mirror of the sync tear paths (fill/persist a prefix, then fail).
void trim_to_prefix(AsyncOp& op, std::size_t budget) {
  switch (op.kind) {
    case AsyncOpKind::kRead:
      op.out = op.out.first(std::min(op.out.size(), budget));
      return;
    case AsyncOpKind::kWrite:
      op.data = op.data.first(std::min(op.data.size(), budget));
      return;
    case AsyncOpKind::kReadv: {
      std::vector<std::span<std::byte>> trimmed;
      for (const auto& part : op.read_parts) {
        if (budget == 0) break;
        const std::size_t n = std::min(part.size(), budget);
        trimmed.push_back(part.first(n));
        budget -= n;
      }
      op.read_parts = std::move(trimmed);
      return;
    }
    case AsyncOpKind::kWritev: {
      std::vector<std::span<const std::byte>> trimmed;
      for (const auto& part : op.write_parts) {
        if (budget == 0) break;
        const std::size_t n = std::min(part.size(), budget);
        trimmed.push_back(part.first(n));
        budget -= n;
      }
      op.write_parts = std::move(trimmed);
      return;
    }
  }
}

}  // namespace

AsyncFaultStore::AsyncFaultStore(AsyncBackingStore& inner, FaultStore& faults)
    : inner_(inner), faults_(faults) {}

void AsyncFaultStore::bind_stats(IoStats* stats) { inner_.bind_stats(stats); }

AsyncTicket AsyncFaultStore::submit(std::vector<AsyncOp> batch) {
  util::check<util::ConfigError>(!batch.empty(), "AsyncFaultStore: empty batch");
  const auto now = Clock::now();
  std::vector<AsyncOp> forward;
  forward.reserve(batch.size());
  std::vector<Stamp> stamps;
  std::vector<std::pair<Clock::time_point, AsyncCompletion>> synthesized;
  for (auto& op : batch) {
    const auto inj =
        faults_.decide_async(fault_op_of(op.kind), op.payload_bytes());
    const auto ready = now + std::chrono::microseconds(inj.sleep_us);
    if (inj.fail_clean) {
      // Never reaches the inner store; the completion carries the error.
      AsyncCompletion c;
      c.user_data = op.user_data;
      c.kind = op.kind;
      c.error = inj.error;
      synthesized.emplace_back(ready, std::move(c));
      continue;
    }
    Stamp stamp;
    stamp.user_data = op.user_data;
    stamp.error = inj.error;  // null unless torn
    stamp.ready = ready;
    if (inj.tear) trim_to_prefix(op, inj.partial_bytes);
    // Rewrite user_data to the forwarded index so duplicate caller values
    // cannot collide when completions are matched back up.
    op.user_data = stamps.size();
    stamps.push_back(std::move(stamp));
    if (op.payload_bytes() == 0 && inj.tear) {
      // Tear trimmed the op to nothing: skip the inner call entirely and
      // synthesize the failure (matches the sync paths' empty-trim skip).
      AsyncCompletion c;
      c.user_data = stamps.back().user_data;
      c.kind = op.kind;
      c.error = stamps.back().error;
      synthesized.emplace_back(stamps.back().ready, std::move(c));
      stamps.pop_back();
      continue;
    }
    forward.push_back(std::move(op));
  }
  // Re-key forwarded ops after any tear-to-empty removals shifted indices.
  for (std::size_t i = 0; i < forward.size(); ++i) forward[i].user_data = i;

  std::lock_guard<std::mutex> lock(mutex_);
  const AsyncTicket ticket = next_ticket_++;
  TicketState& st = tickets_[ticket];
  st.expected = batch.size();
  st.stamps = std::move(stamps);
  st.held = std::move(synthesized);
  if (!forward.empty()) {
    st.inner_ticket = inner_.submit(std::move(forward));
    st.has_inner = true;
  }
  return ticket;
}

void AsyncFaultStore::absorb_inner_locked(
    TicketState& st, std::vector<AsyncCompletion>&& inner_done) {
  for (auto& c : inner_done) {
    const std::size_t idx = static_cast<std::size_t>(c.user_data);
    const Stamp& stamp = st.stamps.at(idx);
    c.user_data = stamp.user_data;  // restore the caller's tag
    if (stamp.error != nullptr && c.ok()) {
      // Injected tear: the prefix landed (or filled), the op still fails.
      // If the inner store *also* failed, its error wins — it is the more
      // real outcome.
      c.error = stamp.error;
      c.bytes = 0;
    }
    st.absorbed++;
    st.held.emplace_back(stamp.ready, std::move(c));
  }
}

std::size_t AsyncFaultStore::release_due_locked(
    TicketState& st, Clock::time_point now, std::vector<AsyncCompletion>& out) {
  std::size_t released = 0;
  for (std::size_t i = 0; i < st.held.size();) {
    if (st.held[i].first <= now) {
      out.push_back(std::move(st.held[i].second));
      st.held[i] = std::move(st.held.back());
      st.held.pop_back();
      released++;
    } else {
      ++i;
    }
  }
  st.returned += released;
  return released;
}

std::size_t AsyncFaultStore::poll(AsyncTicket ticket,
                                  std::vector<AsyncCompletion>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) return 0;
  TicketState& st = it->second;
  if (st.has_inner && st.absorbed < st.stamps.size()) {
    std::vector<AsyncCompletion> done;
    inner_.poll(st.inner_ticket, done);
    absorb_inner_locked(st, std::move(done));
  }
  const std::size_t n = release_due_locked(st, Clock::now(), out);
  if (st.returned == st.expected) tickets_.erase(it);
  return n;
}

std::vector<AsyncCompletion> AsyncFaultStore::wait(AsyncTicket ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) return {};
  TicketState& st = it->second;
  if (st.has_inner && st.absorbed < st.stamps.size()) {
    const AsyncTicket inner_ticket = st.inner_ticket;
    lock.unlock();
    auto done = inner_.wait(inner_ticket);
    lock.lock();
    // `st` stays valid across the unlock: tickets are only erased once
    // fully returned, and this one still has completions outstanding.
    absorb_inner_locked(st, std::move(done));
  }
  // Everything is in `held` now; sleep out the latest injected latency so
  // delayed completions land inside the measured window, like sync sleeps.
  Clock::time_point latest = Clock::now();
  for (const auto& [ready, c] : st.held) latest = std::max(latest, ready);
  if (latest > Clock::now()) {
    lock.unlock();
    std::this_thread::sleep_until(latest);
    lock.lock();
  }
  std::vector<AsyncCompletion> out;
  release_due_locked(st, latest, out);
  if (st.returned == st.expected) tickets_.erase(it);
  return out;
}

}  // namespace clio::io
