#pragma once

#include <cstdint>
#include <unordered_map>

#include "io/file_store.hpp"

namespace clio::io {

/// Readahead policy knobs.  window = 0 disables prefetching entirely
/// (the `ablation_prefetch` bench sweeps this).
struct PrefetchConfig {
  std::size_t window = 4;      ///< pages fetched ahead once sequential
  std::size_t min_streak = 2;  ///< consecutive pages before kicking in
};

/// A contiguous run of pages proposed for readahead ([first, first+count)).
/// Sequential readahead is always contiguous, so returning a range instead
/// of materializing a page vector keeps the hot path allocation-free, and
/// the pool loads each contiguous cold run with a single vectored
/// BackingStore::readv gather (mirroring the write-back coalescing).
struct PrefetchRange {
  std::uint64_t first = 0;
  std::size_t count = 0;
  [[nodiscard]] bool empty() const { return count == 0; }
};

/// Detects per-file sequential page access and proposes readahead.
///
/// The paper attributes its cold/warm asymmetries to exactly this mechanism:
/// "At the time when a read, write, or seek operation is performed, a
/// prefetch operation will be invoked accordingly."  The policy here is the
/// classic streak detector: after `min_streak` consecutive pages, propose
/// the next `window` pages.  Stateless about residency — the BufferPool
/// skips pages that are already cached.
class SequentialPrefetcher {
 public:
  explicit SequentialPrefetcher(PrefetchConfig config = {});

  /// Records an access to (file, page) and returns the run of pages worth
  /// prefetching (empty until the sequential streak is established).
  PrefetchRange propose(FileId file, std::uint64_t page);

  /// Forgets per-file state (e.g. after close).
  void forget(FileId file);

  void reset();

  [[nodiscard]] const PrefetchConfig& config() const { return config_; }

 private:
  struct StreamState {
    std::uint64_t last_page = UINT64_MAX;
    std::size_t streak = 0;
  };

  PrefetchConfig config_;
  std::unordered_map<FileId, StreamState> streams_;
};

}  // namespace clio::io
