#pragma once

#include <cstdint>
#include <vector>

#include "io/disk_model.hpp"

namespace clio::io {

/// One contiguous piece of a striped request, mapped onto a single disk.
struct StripeExtent {
  std::size_t disk;          ///< index of the disk serving this piece
  std::uint64_t disk_offset; ///< byte offset within that disk
  std::uint64_t length;      ///< bytes of the piece
};

/// RAID-0-style striping across N identical simulated disks.
///
/// Figure 4 of the paper varies the number of disks {2,4,8,16,32} and finds
/// speedup nearly flat for QCRD; the mechanism is visible here: requests
/// smaller than the stripe unit land on a single disk, so adding spindles
/// only helps when requests span stripes or arrive concurrently.
class DiskArray {
 public:
  DiskArray(std::size_t num_disks, std::uint64_t stripe_bytes,
            const DiskParams& params = DiskParams{});

  /// Decomposes a logical request into per-disk extents (in logical order).
  [[nodiscard]] std::vector<StripeExtent> map(std::uint64_t offset,
                                              std::uint64_t length) const;

  /// Services a logical request.  Pieces on distinct disks proceed in
  /// parallel; the request completes when the slowest disk finishes, so the
  /// returned latency is the max of per-disk sums.
  double access_ms(std::uint64_t offset, std::uint64_t length);

  [[nodiscard]] std::size_t num_disks() const { return disks_.size(); }
  [[nodiscard]] std::uint64_t stripe_bytes() const { return stripe_bytes_; }
  [[nodiscard]] const SimDisk& disk(std::size_t i) const {
    return disks_.at(i);
  }

  /// Aggregate busy time across disks (for utilization accounting).
  [[nodiscard]] double total_busy_ms() const;

  void reset_counters();

 private:
  std::vector<SimDisk> disks_;
  std::uint64_t stripe_bytes_;
};

}  // namespace clio::io
