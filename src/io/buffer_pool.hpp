#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "io/file_store.hpp"

namespace clio::io {

/// Buffer pool configuration.  Defaults give a 16 MiB cache of 4 KiB pages,
/// mirroring the OS-level I/O buffers the paper's SSCLI experiments observe.
struct BufferPoolConfig {
  std::size_t page_size = 4096;
  std::size_t capacity_pages = 4096;
};

/// Counters exposed for tests and ablation benches.
struct PoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t prefetches = 0;  ///< pages loaded by prefetch (not in misses)
};

/// Page-granular LRU cache over a BackingStore.
///
/// This is the component responsible for every first-touch effect in the
/// paper: cold pages pay a backing-store access ("a page fault occurs,
/// resulting in the corresponding page being fetched from the disk into the
/// buffers"), warm pages are served from memory, and dirty pages are written
/// back on eviction or flush — which is why closing a file costs more than
/// opening it (Tables 1-4).
///
/// Thread-safe: one mutex guards metadata and load/write-back I/O.  Pinned
/// pages are never evicted; data access through a PageGuard is lock-free and
/// safe provided no two threads write the same page concurrently (the
/// benchmarks never do — POST creates uniquely-named files, as in the paper).
class BufferPool {
 public:
  BufferPool(BackingStore& store, BufferPoolConfig config = {});

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// RAII pin on a cached page.  While alive the frame cannot be evicted.
  class PageGuard {
   public:
    PageGuard() = default;
    PageGuard(BufferPool* pool, std::size_t frame);
    PageGuard(PageGuard&& other) noexcept;
    PageGuard& operator=(PageGuard&& other) noexcept;
    PageGuard(const PageGuard&) = delete;
    PageGuard& operator=(const PageGuard&) = delete;
    ~PageGuard();

    /// Whole page bytes (page_size long, zero-filled past EOF).
    [[nodiscard]] std::span<std::byte> data() const;

    /// Bytes of the page that hold real file content.
    [[nodiscard]] std::size_t valid_bytes() const;

    /// Marks the page dirty and extends its valid extent to `up_to` bytes.
    void mark_dirty(std::size_t up_to);

    [[nodiscard]] bool empty() const { return pool_ == nullptr; }

   private:
    BufferPool* pool_ = nullptr;
    std::size_t frame_ = 0;
  };

  /// Pins page `page_no` of `file`, loading it on a miss.
  PageGuard pin(FileId file, std::uint64_t page_no);

  /// Loads a page into the cache without pinning it, if absent.
  /// Returns true if the page was actually loaded (i.e. it was cold).
  bool prefetch(FileId file, std::uint64_t page_no);

  /// True if the page is resident (test/diagnostic helper).
  [[nodiscard]] bool contains(FileId file, std::uint64_t page_no) const;

  /// Writes back all dirty pages of `file`.
  void flush_file(FileId file);

  /// Writes back every dirty page.
  void flush_all();

  /// Drops all pages of `file` without write-back (used after remove).
  void discard_file(FileId file);

  /// Logical size of the file as seen through the cache: the backing
  /// store's size extended by any dirty page not yet written back.
  [[nodiscard]] std::uint64_t logical_file_size(FileId file) const;

  [[nodiscard]] PoolStats stats() const;
  [[nodiscard]] std::size_t page_size() const { return config_.page_size; }
  [[nodiscard]] std::size_t capacity_pages() const {
    return config_.capacity_pages;
  }
  [[nodiscard]] std::size_t resident_pages() const;
  [[nodiscard]] BackingStore& store() { return store_; }

 private:
  struct Frame {
    FileId file = kInvalidFile;
    std::uint64_t page_no = 0;
    std::vector<std::byte> data;
    std::size_t valid_bytes = 0;
    std::uint32_t pins = 0;
    bool dirty = false;
    bool in_use = false;
    std::list<std::size_t>::iterator lru_pos;
  };

  struct PageKey {
    FileId file;
    std::uint64_t page_no;
    bool operator==(const PageKey&) const = default;
  };
  struct PageKeyHash {
    std::size_t operator()(const PageKey& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.file) << 48) ^ k.page_no);
    }
  };

  // All private helpers assume mutex_ is held.
  std::size_t find_or_load(FileId file, std::uint64_t page_no,
                           bool count_as_prefetch);
  std::size_t allocate_frame();
  void load_frame(std::size_t idx, FileId file, std::uint64_t page_no);
  void write_back(Frame& frame);
  void touch(std::size_t idx);
  void unpin(std::size_t idx);

  BackingStore& store_;
  BufferPoolConfig config_;
  std::vector<Frame> frames_;
  std::list<std::size_t> lru_;  ///< front = most recently used
  std::vector<std::size_t> free_frames_;
  std::unordered_map<PageKey, std::size_t, PageKeyHash> page_table_;
  /// Furthest byte ever dirtied per file; only grows, erased on discard.
  std::unordered_map<FileId, std::uint64_t> dirty_extent_;
  PoolStats stats_;
  mutable std::mutex mutex_;

  friend class PageGuard;
};

}  // namespace clio::io
