#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "io/async_store.hpp"
#include "io/file_store.hpp"

namespace clio::io {

/// Buffer pool configuration.  Defaults give a 16 MiB cache of 4 KiB pages,
/// mirroring the OS-level I/O buffers the paper's SSCLI experiments observe.
struct BufferPoolConfig {
  std::size_t page_size = 4096;
  std::size_t capacity_pages = 4096;

  /// Number of lock-striped sub-pools.  Pages are distributed across shards
  /// by a mixed hash of (file, page_no); each shard has its own mutex, page
  /// table, LRU list, and stats, so concurrent accesses to different pages
  /// contend only when they land on the same shard.  0 = auto: one shard
  /// per 256 capacity pages, clamped to [1, 16] — small pools (tests,
  /// tight-cache ablations) keep a single shard and therefore exact global
  /// LRU order; default-sized pools get 16-way striping.
  std::size_t shards = 0;

  /// Upper bound on the number of adjacent dirty pages merged into a single
  /// vectored backing-store write during flush_file/flush_all, and on the
  /// number of adjacent cold pages merged into a single vectored gather
  /// read during prefetch_range.  1 disables coalescing on both sides (one
  /// backing call per page, the pre-sharding behaviour).
  std::size_t coalesce_pages = 64;

  /// Opt-in background readahead: when set, prefetch_range_async() claims
  /// frames inline, submits the gather batch to the pool's AsyncBackingStore
  /// and returns immediately; a single completion reaper publishes the pages
  /// as completions land, so sequential readers overlap readahead with
  /// compute.  flush_file/flush_all/discard_file and the destructor drain
  /// in-flight gathers before proceeding.
  bool async_prefetch = false;
  /// Worker count of the ThreadPoolAsyncStore the pool builds when
  /// async_prefetch is on and no external AsyncBackingStore was supplied.
  std::size_t prefetch_threads = 1;
};

/// Counters exposed for tests and ablation benches.  With sharding enabled
/// these are exact totals: every hit/miss/eviction/writeback/prefetch is
/// counted under its shard's lock and summed on stats().
struct PoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t prefetches = 0;  ///< pages loaded by prefetch (not in misses)
  // Vectored-transfer accounting: how many backing calls the coalesced
  // paths issued and how many pages rode them, so batching ratios
  // (pages / call) are observable from stats instead of only from bench
  // counters.  flush_write_* covers every flush_file/flush_all backing
  // call (all runs go out as writev, single-page runs as a one-part
  // gather); gather_read_* covers prefetch_range readv gathers.  Eviction
  // write-backs are never coalesced and count only in `writebacks`.
  std::uint64_t flush_write_calls = 0;
  std::uint64_t flush_write_pages = 0;
  std::uint64_t gather_read_calls = 0;
  std::uint64_t gather_read_pages = 0;
};

/// Key of a cached page and its hash.  The hash feeds both the per-shard
/// page tables and shard selection, so it must mix *both* fields into the
/// low bits: the previous `(file << 48) ^ page_no` scheme degenerated under
/// modulo — page N of every file shared a bucket and a shard.  This is a
/// SplitMix64-style finalizer over both fields.
struct PageKey {
  FileId file;
  std::uint64_t page_no;
  bool operator==(const PageKey&) const = default;
};
struct PageKeyHash {
  static constexpr std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::size_t operator()(const PageKey& k) const {
    return static_cast<std::size_t>(
        mix(k.page_no + 0x9e3779b97f4a7c15ULL * (k.file + 1)));
  }
};

/// Page-granular LRU cache over a BackingStore.
///
/// This is the component responsible for every first-touch effect in the
/// paper: cold pages pay a backing-store access ("a page fault occurs,
/// resulting in the corresponding page being fetched from the disk into the
/// buffers"), warm pages are served from memory, and dirty pages are written
/// back on eviction or flush — which is why closing a file costs more than
/// opening it (Tables 1-4).
///
/// Concurrency structure: the pool is split into `config.shards` lock
/// stripes, each owning its mutex, page table, LRU list and stats.  A
/// pin/prefetch takes only its shard's mutex, and all backing-store I/O —
/// miss loads and eviction write-backs — happens *outside* that mutex, with
/// the frame held by a per-frame "io busy" latch: a second thread faulting
/// the same page waits on the shard's condition variable instead of
/// repeating the load, while unrelated pages (same shard or not) proceed.
/// Warm hits on different shards never contend.
///
/// Frames themselves are pooled globally (one free list), not split
/// statically across shards: a shard borrows a frame on demand and only
/// evicts — locally first, then from sibling shards — once all
/// capacity_pages frames are in use.  This keeps the capacity guarantee
/// exact (a working set of capacity_pages stays fully resident regardless
/// of how its pages hash) and means "all frames pinned" can only happen
/// when every frame in the pool is truly pinned.
///
/// Both bulk transfer directions are coalesced: flush merges adjacent dirty
/// pages into vectored writev gathers, and prefetch_range merges adjacent
/// cold pages into vectored readv scatters — one backing access per run
/// instead of one per page.  With an AsyncBackingStore attached, every bulk
/// transfer rides the submission/completion interface (a flush or prefetch
/// window is ONE submitted batch — on io_uring, one submit syscall), and
/// with config.async_prefetch readahead gathers are submitted inline and
/// published by a completion reaper so they overlap the caller's compute.
///
/// Pinned pages are never evicted; data access through a PageGuard is
/// lock-free and safe provided no two threads write the same page
/// concurrently (the benchmarks never do — POST creates uniquely-named
/// files, as in the paper).  Mutating a page's bytes while a flush or
/// eviction is writing that page back counts as such a conflict: the
/// write-back may persist a torn snapshot, though the page stays dirty
/// and the next flush writes the final bytes.
class BufferPool {
 public:
  /// `async` (optional, not owned, must outlive the pool) routes every bulk
  /// backing transfer — miss loads, eviction write-backs, coalesced flush
  /// runs and prefetch gathers — through the submission/completion
  /// interface instead of the sync BackingStore calls.  When it is null and
  /// config.async_prefetch is on, the pool builds its own
  /// ThreadPoolAsyncStore over `store` (config.prefetch_threads workers);
  /// when both are absent the pool stays fully synchronous.
  BufferPool(BackingStore& store, BufferPoolConfig config = {},
             AsyncBackingStore* async = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// RAII pin on a cached page.  While alive the frame cannot be evicted.
  class PageGuard {
   public:
    PageGuard() = default;
    PageGuard(BufferPool* pool, std::size_t shard, std::size_t frame);
    PageGuard(PageGuard&& other) noexcept;
    PageGuard& operator=(PageGuard&& other) noexcept;
    PageGuard(const PageGuard&) = delete;
    PageGuard& operator=(const PageGuard&) = delete;
    ~PageGuard();

    /// Whole page bytes (page_size long, zero-filled past EOF).
    [[nodiscard]] std::span<std::byte> data() const;

    /// Bytes of the page that hold real file content.
    [[nodiscard]] std::size_t valid_bytes() const;

    /// Marks the page dirty and extends its valid extent to `up_to` bytes.
    void mark_dirty(std::size_t up_to);

    [[nodiscard]] bool empty() const { return pool_ == nullptr; }

   private:
    BufferPool* pool_ = nullptr;
    std::size_t shard_ = 0;
    std::size_t frame_ = 0;
  };

  /// Pins page `page_no` of `file`, loading it on a miss.
  PageGuard pin(FileId file, std::uint64_t page_no);

  /// Loads a page into the cache without pinning it, if absent.
  /// Returns true if the page was actually loaded (i.e. it was cold).
  bool prefetch(FileId file, std::uint64_t page_no);

  /// Prefetches `count` consecutive pages starting at `first_page`;
  /// returns how many were cold and actually loaded.  The window is clamped
  /// to end-of-file (pages wholly past EOF are never faulted in), cold
  /// pages are claimed up front across shards with io_busy latches, and
  /// each contiguous cold run is loaded by a single vectored
  /// BackingStore::readv issued outside any lock (runs are capped at
  /// config.coalesce_pages).  Under frame pressure the tail of the window
  /// is dropped rather than waited for — prefetch is a hint.
  std::size_t prefetch_range(FileId file, std::uint64_t first_page,
                             std::size_t count);

  /// Like prefetch_range but, when config.async_prefetch is on, claims the
  /// cold frames inline, submits their gather batch to the async store and
  /// returns 0 immediately — the completion reaper publishes the pages when
  /// the completions land (the hint is dropped if the in-flight gather
  /// backlog is saturated, and claim failures are swallowed: prefetch is a
  /// hint).  Falls back to the synchronous path when async prefetch is off.
  std::size_t prefetch_range_async(FileId file, std::uint64_t first_page,
                                   std::size_t count);

  /// Blocks until every async prefetch queued or in flight *at the time of
  /// the call* has completed (no-op when async_prefetch is off).  Snapshot
  /// semantics keep the wait bounded: hints other threads enqueue after
  /// entry are not chased.  flush_file/flush_all/discard_file call this on
  /// entry so their view of residency is quiescent.
  void drain_prefetches();

  /// True if the page is resident or being loaded (test/diagnostic helper).
  [[nodiscard]] bool contains(FileId file, std::uint64_t page_no) const;

  /// Writes back all dirty pages of `file`, coalescing adjacent pages into
  /// vectored backing-store writes.
  void flush_file(FileId file);

  /// Writes back every dirty page (coalesced).
  void flush_all();

  /// Drops all pages of `file` without write-back (used after remove).
  void discard_file(FileId file);

  /// Best-effort cache drop: evicts every resident page that is clean and
  /// unreferenced (no pins, no flush holds, no in-flight I/O).  Unlike
  /// discard_file it never throws on a pinned page — pages in active use
  /// simply stay resident — so it is safe to call while other threads are
  /// serving requests (ManagedFileSystem::drop_caches / make_cold racing
  /// live traffic).  Flush first for a fully cold cache.  Returns the
  /// number of pages dropped.
  std::size_t evict_clean();

  /// Logical size of the file as seen through the cache: the backing
  /// store's size extended by any dirty page not yet written back.
  [[nodiscard]] std::uint64_t logical_file_size(FileId file) const;

  /// Exhaustively checks the pool's internal invariants, throwing
  /// util::IoError with a description of the first violation found:
  /// frame accounting (every frame is free xor resident in exactly one
  /// shard's page table), LRU integrity (links consistent, every resident
  /// frame reachable), no leaked io_busy latches or flush_pins, per-frame
  /// sanity (valid_bytes <= page_size, buffers sized), and stats
  /// consistency.  Requires quiescence: no other thread may be using the
  /// pool, and callers of async prefetch should drain_prefetches() first
  /// so no background gather is mid-flight.  With `expect_unpinned` (the
  /// default) any surviving
  /// PageGuard pin is reported too — pass false while guards are live.
  /// This is the stress harness's post-run oracle; it is cheap enough to
  /// call after every test.
  void debug_validate(bool expect_unpinned = true) const;

  [[nodiscard]] PoolStats stats() const;
  [[nodiscard]] std::size_t page_size() const { return config_.page_size; }
  [[nodiscard]] std::size_t capacity_pages() const {
    return config_.capacity_pages;
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t resident_pages() const;
  [[nodiscard]] BackingStore& store() { return store_; }

  /// The submission/completion store the pool's bulk transfers ride, or
  /// null when the pool runs fully synchronously.  Exposed so owners can
  /// bind_stats() it into their IoStats.
  [[nodiscard]] AsyncBackingStore* async_store() { return async_; }

 private:
  static constexpr std::size_t kNoFrame = SIZE_MAX;

  struct Frame {
    FileId file = kInvalidFile;
    std::uint64_t page_no = 0;
    std::vector<std::byte> data;
    std::size_t valid_bytes = 0;
    std::uint32_t pins = 0;
    /// Transient holds taken by flush while its coalesced write runs
    /// outside the lock.  Kept separate from `pins` so eviction can tell
    /// "caller holds a PageGuard" (throw when no frame is free) from
    /// "flush is briefly using this frame" (wait, it will be released).
    std::uint32_t flush_pins = 0;
    bool dirty = false;
    bool in_use = false;
    /// Set while a miss load or eviction write-back runs outside the shard
    /// lock; such frames are skipped by eviction and waited on by faulters.
    bool io_busy = false;
    /// Refines io_busy: set only while an eviction *write-back* is in
    /// flight.  Flush waits on this (a failed write-back re-dirties the
    /// page, which flush must then pick up) but not on plain io_busy, so
    /// a stream of clean demand loads cannot stall a flush.
    bool io_write = false;
    // Intrusive LRU links (indices into the shard's frame vector): no
    // allocator traffic on touch, unlike the former std::list.
    std::size_t lru_prev = kNoFrame;
    std::size_t lru_next = kNoFrame;
  };

  /// One lock stripe: page table, LRU and stats for the pages that hash
  /// here.  Frames are drawn from the pool-wide free list on demand.
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable io_cv;  ///< signalled when io_busy clears
    std::size_t lru_head = kNoFrame;  ///< most recently used
    std::size_t lru_tail = kNoFrame;  ///< least recently used
    std::unordered_map<PageKey, std::size_t, PageKeyHash> page_table;
    PoolStats stats;
  };

  /// A dirty page captured for flush: pinned so it cannot be evicted while
  /// the (lock-free) coalesced write runs.
  struct FlushEntry {
    FileId file;
    std::uint64_t page_no;
    std::size_t shard;
    std::size_t frame;
    std::size_t valid_bytes;
  };

  /// A cold page claimed for prefetch: its frame sits in the page table
  /// io_busy-latched while the coalesced gather read runs outside the lock.
  struct PrefetchTarget {
    std::uint64_t page_no;
    std::size_t shard;
    std::size_t frame;
  };

  /// One contiguous run of claimed prefetch targets, expressed as a span
  /// [first, first + count) into the claim vector — the unit that becomes
  /// one vectored gather AsyncOp (user_data = run index).
  struct GatherRun {
    std::size_t first;
    std::size_t count;
  };

  /// A submitted-but-unharvested async readahead gather.  The frames in
  /// `targets` sit io_busy-latched until the reaper publishes or aborts
  /// them.  `seq` orders gathers so a drain can wait for exactly the
  /// backlog present at its entry (snapshot semantics) instead of chasing
  /// a queue other threads keep refilling.
  struct PendingGather {
    FileId file;
    AsyncTicket ticket;
    std::vector<PrefetchTarget> targets;
    std::vector<GatherRun> runs;
    std::uint64_t seq;
  };

  [[nodiscard]] std::size_t shard_of(const PageKey& key) const;

  // Shard-local helpers; all assume the shard's mutex is held by `lk` /
  // the caller unless stated otherwise.
  std::size_t find_or_load(Shard& sh, std::unique_lock<std::mutex>& lk,
                           FileId file, std::uint64_t page_no,
                           bool count_as_prefetch, bool pin_result);
  void install_loading_frame(Shard& sh, FileId file, std::uint64_t page_no,
                             std::size_t idx, std::uint32_t pins);
  std::size_t acquire_frame(Shard& self, std::unique_lock<std::mutex>& lk);
  std::size_t try_acquire_frame(Shard& self, std::unique_lock<std::mutex>& lk,
                                bool& transient_holds);
  std::size_t try_evict_from(Shard& sh, std::unique_lock<std::mutex>& lk,
                             bool& transient_holds);
  void abort_prefetch_frames(FileId file,
                             std::span<const PrefetchTarget> targets);
  void prefetch_reaper();

  // Single-op backing transfers (miss loads, eviction write-backs): ride
  // the async store as one-op batches when present, else the sync calls.
  std::size_t backing_read(FileId file, std::uint64_t offset,
                           std::span<std::byte> out);
  void backing_write(FileId file, std::uint64_t offset,
                     std::span<const std::byte> data);

  /// Phase 1 of a prefetch window: clamps to EOF and claims every cold
  /// frame io_busy-latched, with buffers sized.  Unwinds and rethrows on a
  /// claim failure.
  [[nodiscard]] std::vector<PrefetchTarget> claim_prefetch_targets(
      FileId file, std::uint64_t first_page, std::size_t count);
  /// Splits claimed targets into contiguous runs of at most coalesce_pages.
  [[nodiscard]] std::vector<GatherRun> build_gather_runs(
      std::span<const PrefetchTarget> targets) const;
  /// One readv AsyncOp per run (user_data = run index), one submit call.
  AsyncTicket submit_gather(FileId file,
                            std::span<const PrefetchTarget> targets,
                            std::span<const GatherRun> runs);
  /// Publishes / aborts runs from their harvested completions; returns the
  /// number of pages published.  Stores the first error seen in `error`
  /// when non-null, else swallows (reaper hint semantics).
  std::size_t complete_gather(FileId file,
                              std::span<const PrefetchTarget> targets,
                              std::span<const GatherRun> runs,
                              std::vector<AsyncCompletion>& done,
                              std::exception_ptr* error);
  /// Publishes one run's frames: valid extents from `got`, stale tails
  /// zeroed, io_busy latches released, gather stats credited.
  void publish_gather_run(std::span<const PrefetchTarget> targets,
                          const GatherRun& run, std::size_t got);
  void release_frame(std::size_t idx);
  void lru_push_front(Shard& sh, std::size_t idx);
  void lru_remove(Shard& sh, std::size_t idx);
  void lru_touch(Shard& sh, std::size_t idx);
  void unpin(std::size_t shard, std::size_t frame);

  void collect_dirty(Shard& sh, std::size_t shard_idx, FileId file,
                     bool match_all, std::vector<FlushEntry>& out);
  void write_back_coalesced(std::vector<FlushEntry>& entries);

  BackingStore& store_;
  BufferPoolConfig config_;
  /// Completion-driven transfer path: external (not owned), the pool's own
  /// ThreadPoolAsyncStore, or null for a fully synchronous pool.
  AsyncBackingStore* async_ = nullptr;
  std::unique_ptr<ThreadPoolAsyncStore> owned_async_;
  std::vector<Shard> shards_;
  std::vector<Frame> frames_;  ///< all capacity_pages frames, shard-agnostic
  std::vector<std::size_t> free_frames_;
  mutable std::mutex free_mutex_;  ///< mutable: debug_validate() is const
  /// Furthest byte ever dirtied per file; only grows, erased on discard.
  std::unordered_map<FileId, std::uint64_t> dirty_extent_;
  mutable std::mutex extent_mutex_;

  // Async readahead state (empty / idle unless config.async_prefetch).
  // Submitted gathers carry FIFO sequence numbers: `prefetch_enqueue_seq_`
  // is the next to assign, seqs below `prefetch_popped_seq_` have left the
  // queue, and `prefetch_inflight_seqs_` holds the popped-but-unharvested
  // ones the reaper is currently waiting on.
  std::thread prefetch_reaper_thread_;
  std::deque<PendingGather> pending_gathers_;
  std::mutex prefetch_mutex_;
  std::condition_variable prefetch_work_cv_;  ///< the reaper waits for gathers
  std::condition_variable prefetch_done_cv_;  ///< drainers wait on progress
  std::uint64_t prefetch_enqueue_seq_ = 0;
  std::uint64_t prefetch_popped_seq_ = 0;
  std::vector<std::uint64_t> prefetch_inflight_seqs_;
  bool prefetch_stop_ = false;

  friend class PageGuard;
};

}  // namespace clio::io
