#include "io/store_decorator.hpp"

#include "util/stopwatch.hpp"

namespace clio::io {

using util::Stopwatch;

void VectoredStatsStore::bind_stats(IoStats* stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = stats;
}

IoStats* VectoredStatsStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t VectoredStatsStore::readv(
    FileId id, std::uint64_t offset,
    std::span<const std::span<std::byte>> parts) {
  IoStats* s = stats();
  if (s == nullptr) return inner_.readv(id, offset, parts);
  Stopwatch watch;
  const std::size_t got = inner_.readv(id, offset, parts);
  s->record(IoOp::kReadv, got, watch.elapsed_ms());
  return got;
}

void VectoredStatsStore::writev(
    FileId id, std::uint64_t offset,
    std::span<const std::span<const std::byte>> parts) {
  IoStats* s = stats();
  if (s == nullptr) {
    inner_.writev(id, offset, parts);
    return;
  }
  Stopwatch watch;
  inner_.writev(id, offset, parts);
  std::uint64_t total = 0;
  for (const auto& part : parts) total += part.size();
  s->record(IoOp::kWritev, total, watch.elapsed_ms());
}

}  // namespace clio::io
