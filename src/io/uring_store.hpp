#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "io/async_store.hpp"
#include "io/file_store.hpp"

namespace clio::io {

/// AsyncBackingStore implementation over io_uring, built directly on the
/// raw kernel interface (io_uring_setup / io_uring_enter / mmap'd rings —
/// no liburing dependency, which keeps the container image untouched).
///
/// Shape:
///  - submit(batch) fills one SQE per op — IORING_OP_READV/WRITEV, so a
///    whole coalesced gather is a single SQE — and publishes the batch
///    with ONE io_uring_enter.  That is the batching contract the
///    syscalls-per-page counter asserts: a 16-page coalesced gather costs
///    one submit syscall, not sixteen.
///  - Completions are harvested from the CQ ring; partial transfers
///    (short mid-file preadv, partial pwritev) are re-submitted
///    transparently until EOF or full completion, mirroring the retry
///    loops in RealFileStore.  res == 0 on a read is EOF.
///  - Failed CQEs are classified by errno exactly like the sync path
///    (EIO/EAGAIN → util::TransientIoError, else util::IoError) and
///    delivered as completion errors; -EINTR is re-submitted.
///  - register_buffers() registers fixed I/O regions
///    (IORING_REGISTER_BUFFERS); after it succeeds, single-buffer
///    read/write ops that lie entirely inside one registered region are
///    submitted as READ_FIXED/WRITE_FIXED, skipping the per-op page
///    pinning — "registered buffers where possible".
///
/// File handles come from a RealFileStore: the store keeps owning the
/// descriptors (native_handle), and write completions report back through
/// note_external_write so the cached-size optimization stays coherent.
/// Construction throws util::ConfigError when the kernel (or the build,
/// see CLIO_HAVE_URING) lacks io_uring — gate with UringStore::supported().
class UringStore final : public AsyncBackingStore {
 public:
  struct Config {
    /// SQ ring size (the kernel rounds up to a power of two and sizes the
    /// CQ ring at twice this).  In-flight ops are capped at the CQ size so
    /// the completion ring can never overflow.
    unsigned entries = 128;
  };

  explicit UringStore(RealFileStore& files);
  UringStore(RealFileStore& files, Config config);
  ~UringStore() override;

  UringStore(const UringStore&) = delete;
  UringStore& operator=(const UringStore&) = delete;

  /// True when the running kernel accepts io_uring_setup (cached probe).
  /// False when the build was configured without io_uring support.
  [[nodiscard]] static bool supported();

  /// Registers fixed I/O buffer regions with the kernel.  Returns true on
  /// success; false (staying unregistered, with every op taking the
  /// non-fixed path) when the kernel refuses — e.g. locked-memory limits.
  /// Call once, before submitting; buffers must outlive the store.
  bool register_buffers(std::span<const std::span<std::byte>> regions);

  AsyncTicket submit(std::vector<AsyncOp> batch) override;
  std::size_t poll(AsyncTicket ticket,
                   std::vector<AsyncCompletion>& out) override;
  std::vector<AsyncCompletion> wait(AsyncTicket ticket) override;
  void bind_stats(IoStats* stats) override;

  [[nodiscard]] RealFileStore& files();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace clio::io
