#include "io/prefetcher.hpp"

namespace clio::io {

SequentialPrefetcher::SequentialPrefetcher(PrefetchConfig config)
    : config_(config) {}

PrefetchRange SequentialPrefetcher::propose(FileId file, std::uint64_t page) {
  StreamState& st = streams_[file];
  if (st.last_page != UINT64_MAX && page == st.last_page + 1) {
    st.streak++;
  } else if (page == st.last_page) {
    // Repeated touch of the same page neither extends nor breaks the streak.
  } else {
    st.streak = 1;
  }
  st.last_page = page;
  if (config_.window == 0 || st.streak < config_.min_streak) return {};
  return PrefetchRange{page + 1, config_.window};
}

void SequentialPrefetcher::forget(FileId file) { streams_.erase(file); }

void SequentialPrefetcher::reset() { streams_.clear(); }

}  // namespace clio::io
