#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/async_store.hpp"
#include "io/file_store.hpp"
#include "io/store_decorator.hpp"
#include "util/rng.hpp"

namespace clio::io {

/// The four data-path operations a FaultStore can inject faults into.
/// Metadata operations (open/close/size/...) are always forwarded verbatim:
/// the buffer pool's interesting unwind paths all hang off the data ops.
enum class FaultOp : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  kReadv = 2,
  kWritev = 3,
};

inline constexpr std::size_t kFaultOpCount = 4;

[[nodiscard]] std::string_view fault_op_name(FaultOp op);

/// Declarative description of the faults a FaultStore injects.  All
/// randomness is drawn from one SplitMix64 stream seeded with `seed`, so a
/// given plan replays identically in a single-threaded test; multi-threaded
/// stress runs are reproduced by re-running with the same seed (every
/// harness failure message prints it).
struct FaultPlan {
  std::uint64_t seed = 0x5eed;

  /// Per-op probability in [0, 1] that a call throws util::IoError before
  /// touching the inner store (a clean EIO).  Indexed by FaultOp.
  std::array<double, kFaultOpCount> fail_prob{};

  /// 1-based call index at which that op fails with a clean EIO (0 = off).
  /// Counts calls of that op since construction / reset(), letting a test
  /// aim a fault at an exact code path ("the 2nd readv = the prefetch
  /// gather for the second run").  Indexed by FaultOp.
  std::array<std::uint64_t, kFaultOpCount> fail_nth{};

  /// Probability that a read/readv fills only a random prefix of its
  /// payload from the inner store and then throws.  The caller must treat
  /// the buffer as garbage — exactly what a failed DMA leaves behind.
  double short_read_prob = 0.0;

  /// Probability that a write/writev persists only a random prefix of its
  /// bytes to the inner store and then throws (a torn write).
  double torn_write_prob = 0.0;

  /// Torn-write prefixes (including disk-full tears) are rounded down to a
  /// multiple of this many bytes.  Stress harnesses set it to the pool's
  /// page size so a torn multi-page writev tears *between* pages and the
  /// byte oracle stays page-uniform; unit tests use 1 to tear anywhere.
  std::size_t torn_granularity = 1;

  /// Probability of sleeping `latency_us` before an op proceeds — a latency
  /// spike mid-eviction or mid-gather, widening race windows.
  double latency_prob = 0.0;
  std::uint32_t latency_us = 50;

  /// Total bytes writable through this store before every further write
  /// throws "disk full" (0 = unlimited).  The failing write is torn at the
  /// budget boundary (rounded down to torn_granularity).  Overwrites charge
  /// the budget too — this models a byte quota, not a block allocator.
  std::uint64_t disk_full_after_bytes = 0;
};

/// Counters of what a FaultStore actually did, for asserting injection
/// rates ("this run injected >= 1 fault per 100 ops") and for bench output.
struct FaultStats {
  std::array<std::uint64_t, kFaultOpCount> calls{};   ///< ops that reached the store
  std::array<std::uint64_t, kFaultOpCount> faults{};  ///< ops that threw
  std::uint64_t short_reads = 0;      ///< reads torn mid-fill (subset of faults)
  std::uint64_t torn_writes = 0;      ///< writes torn mid-persist (subset)
  std::uint64_t disk_full_faults = 0; ///< writes refused by the byte budget
  std::uint64_t latency_injections = 0;

  [[nodiscard]] std::uint64_t total_calls() const;
  [[nodiscard]] std::uint64_t total_faults() const;
};

/// BackingStore decorator that injects deterministic, seeded faults into
/// the data path: clean EIOs, short reads, torn writes, latency spikes and
/// disk-full, per the FaultPlan.  Wraps any store (RealFileStore,
/// SimFileStore, a test double), so the same plan exercises the buffer
/// pool's unwind paths against real kernel I/O and the modeled array alike.
///
/// Thread-safe: fault decisions (RNG draws, counters, the byte budget) are
/// taken under one mutex, but the inner store call and any injected sleep
/// run outside it, so concurrency between data ops is preserved.
///
/// Faults surface as util::IoError, the same type real store failures use —
/// callers cannot (and must not) tell them apart.
class FaultStore final : public StoreDecorator {
 public:
  /// Decorates a store owned elsewhere (must outlive this).
  FaultStore(BackingStore& inner, FaultPlan plan = {});

  /// Decorates and owns the inner store — the shape ManagedFileSystem
  /// needs, since it takes its store by unique_ptr.
  FaultStore(std::unique_ptr<BackingStore> inner, FaultPlan plan = {});

  std::size_t read(FileId id, std::uint64_t offset,
                   std::span<std::byte> out) override;
  void write(FileId id, std::uint64_t offset,
             std::span<const std::byte> data) override;
  void writev(FileId id, std::uint64_t offset,
              std::span<const std::span<const std::byte>> parts) override;
  std::size_t readv(FileId id, std::uint64_t offset,
                    std::span<const std::span<std::byte>> parts) override;

  /// Master switch.  Disarmed, every op forwards verbatim (and is not
  /// counted) — harnesses disarm before their final flush + oracle check.
  void arm(bool on);
  [[nodiscard]] bool armed() const;

  /// Forces the next `n` calls of `op` to fail with a clean EIO, ahead of
  /// any plan probability.  Lets a test aim a fault at "whatever backing
  /// read the async worker issues next" without computing call indices.
  void fail_next(FaultOp op, std::uint64_t n);

  /// Replaces the plan and reseeds the RNG from it (counters are kept).
  void set_plan(FaultPlan plan);
  [[nodiscard]] FaultPlan plan() const;

  [[nodiscard]] FaultStats stats() const;

  /// Clears counters, the forced-failure latches and the disk-full budget
  /// consumption, and reseeds the RNG from the plan.
  void reset();

  /// What one async op should suffer, resolved from the same plan, RNG
  /// stream, counters and arm switch as the sync path — so one seeded plan
  /// drives both faces of a store at once.  Consumed by AsyncFaultStore.
  struct AsyncInjection {
    std::uint32_t sleep_us = 0;  ///< delay the completion this much
    bool fail_clean = false;     ///< do not forward; complete with `error`
    bool tear = false;           ///< forward only `partial_bytes`, error anyway
    std::size_t partial_bytes = 0;
    std::exception_ptr error;  ///< set when fail_clean || tear
  };
  [[nodiscard]] AsyncInjection decide_async(FaultOp op,
                                            std::uint64_t payload_bytes);

 private:
  /// What decide() resolved for one call; acted on outside the mutex.
  struct Decision {
    std::uint32_t sleep_us = 0;  ///< injected latency (0 = none)
    bool fail_clean = false;     ///< throw before any side effect
    bool tear = false;           ///< forward `partial_bytes`, then throw
    std::size_t partial_bytes = 0;
    const char* reason = "";
    std::uint64_t call_index = 0;
  };

  Decision decide(FaultOp op, std::uint64_t payload_bytes);
  [[noreturn]] void throw_injected(FaultOp op, const Decision& d) const;
  double roll();  ///< uniform [0,1) from the seeded stream; mutex held

  mutable std::mutex mutex_;
  FaultPlan plan_;
  util::SplitMix64 rng_;
  FaultStats stats_;
  std::array<std::uint64_t, kFaultOpCount> forced_fails_{};
  std::uint64_t bytes_written_ = 0;  ///< disk-full budget consumption
  bool armed_ = true;
};

/// AsyncBackingStore decorator that injects the same seeded fault plan into
/// *completions*.  It shares a FaultStore's plan, RNG stream, counters and
/// arm switch (via FaultStore::decide_async), so one plan exercises the
/// sync and async paths of a harness with one switch — and faults land
/// inside real completion interleavings, which is exactly where the stress
/// harness finds bugs.
///
/// Decisions are taken at submit():
///  - clean-EIO victims are never forwarded; their completion carries the
///    injected error,
///  - torn ops are trimmed to the injected prefix before forwarding and
///    their completion is stamped with the injected error (the inner
///    outcome, if also a failure, wins — it is the more real error),
///  - latency spikes defer the completion's *delivery*: poll() holds the
///    completion back until its ready time, wait() sleeps the remainder.
class AsyncFaultStore final : public AsyncBackingStore {
 public:
  /// Neither store is owned; both must outlive this.
  AsyncFaultStore(AsyncBackingStore& inner, FaultStore& faults);

  AsyncTicket submit(std::vector<AsyncOp> batch) override;
  std::size_t poll(AsyncTicket ticket,
                   std::vector<AsyncCompletion>& out) override;
  std::vector<AsyncCompletion> wait(AsyncTicket ticket) override;
  void bind_stats(IoStats* stats) override;

  [[nodiscard]] AsyncBackingStore& inner() { return inner_; }
  [[nodiscard]] FaultStore& faults() { return faults_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Verdict for one forwarded op, keyed by its index in the inner batch
  /// (user_data is rewritten to that index so duplicates cannot collide).
  struct Stamp {
    std::uint64_t user_data = 0;  ///< caller's original, restored on delivery
    std::exception_ptr error;     ///< injected error, null = clean
    Clock::time_point ready;      ///< earliest delivery time
  };

  struct TicketState {
    AsyncTicket inner_ticket = 0;
    bool has_inner = false;
    std::size_t expected = 0;   ///< caller batch size
    std::size_t returned = 0;   ///< completions handed back to the caller
    std::size_t absorbed = 0;   ///< inner completions absorbed into `held`
    std::vector<Stamp> stamps;  ///< by forwarded-op index
    /// Completions available but not yet returned to the caller: injected
    /// fail-cleans plus inner completions held for a latency spike.
    std::vector<std::pair<Clock::time_point, AsyncCompletion>> held;
  };

  /// Pulls newly-available inner completions into `held`; mutex held.
  void absorb_inner_locked(TicketState& st,
                           std::vector<AsyncCompletion>&& inner_done);
  /// Moves every held completion whose time has come into `out`.
  std::size_t release_due_locked(TicketState& st, Clock::time_point now,
                                 std::vector<AsyncCompletion>& out);

  AsyncBackingStore& inner_;
  FaultStore& faults_;
  std::mutex mutex_;
  std::unordered_map<AsyncTicket, TicketState> tickets_;
  AsyncTicket next_ticket_ = 1;
};

}  // namespace clio::io
