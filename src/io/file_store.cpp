#include "io/file_store.hpp"

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clio::io {

using util::check;
using util::IoError;

namespace {

/// Throws for a failed data-path syscall, classified by errno: a flaky
/// medium (EIO) or a transiently unready descriptor (EAGAIN/EWOULDBLOCK)
/// is retryable — TransientIoError — while anything else (EBADF, EFBIG,
/// ENOSPC...) is a definitive answer and stays a plain IoError.
[[noreturn]] void throw_syscall_error(const char* what, int err) {
  const std::string msg =
      std::string("RealFileStore: ") + what + " failed: " + std::strerror(err);
  if (err == EIO || err == EAGAIN || err == EWOULDBLOCK) {
    throw util::TransientIoError(msg);
  }
  throw IoError(msg);
}

}  // namespace

// ---------------------------------------------------------------- base ----

void BackingStore::writev(FileId id, std::uint64_t offset,
                          std::span<const std::span<const std::byte>> parts) {
  writev_fallback(id, offset, parts);
}

std::size_t BackingStore::readv(FileId id, std::uint64_t offset,
                                std::span<const std::span<std::byte>> parts) {
  return readv_fallback(id, offset, parts);
}

void BackingStore::writev_fallback(
    FileId id, std::uint64_t offset,
    std::span<const std::span<const std::byte>> parts) {
  // Portable fallback: stores that cannot gather natively still see the
  // parts in order, one write per part.
  for (const auto& part : parts) {
    write(id, offset, part);
    offset += part.size();
  }
}

std::size_t BackingStore::readv_fallback(
    FileId id, std::uint64_t offset,
    std::span<const std::span<std::byte>> parts) {
  // Portable fallback: one read per part, stopping at the first short read
  // so the caller sees exactly the EOF semantics of read().
  std::size_t total = 0;
  for (const auto& part : parts) {
    const std::size_t n = read(id, offset + total, part);
    total += n;
    if (n < part.size()) break;
  }
  return total;
}

// ---------------------------------------------------------------- Real ----

RealFileStore::RealFileStore(std::filesystem::path root,
                             std::size_t idle_fd_cache)
    : idle_fd_cache_(idle_fd_cache), root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

RealFileStore::~RealFileStore() {
  for (auto& e : entries_) {
    if (e.fd >= 0) ::close(e.fd);
  }
}

FileId RealFileStore::open(const std::string& name, bool create) {
  check<IoError>(!name.empty() && name.find('/') == std::string::npos,
                 "RealFileStore: file names must be flat and non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  int flags = O_RDWR;
  if (create) flags |= O_CREAT;
  const auto path = root_ / name;
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    Entry& e = entries_[it->second];
    if (e.fd < 0) {
      // Re-binding a retired-but-remembered name: same id, fresh fd, so
      // buffer-pool pages cached under this id stay valid.
      e.fd = ::open(path.c_str(), flags, 0644);
      if (e.fd < 0) {
        throw IoError("RealFileStore: reopen('" + path.string() +
                      "') failed: " + std::strerror(errno));
      }
    }
    e.idle = false;  // leaving the idle cache (stale queue entry is skipped)
    e.refs++;
    return it->second;
  }
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    throw IoError("RealFileStore: open('" + path.string() +
                  "') failed: " + std::strerror(errno));
  }
  const auto id = static_cast<FileId>(entries_.size());
  entries_.push_back(Entry{fd, name, 1});
  by_name_.emplace(name, id);
  return id;
}

void RealFileStore::close(FileId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  check<IoError>(id < entries_.size() && entries_[id].fd >= 0,
                 "RealFileStore: close of invalid id");
  Entry& e = entries_[id];
  if (--e.refs > 0) return;
  if (idle_fd_cache_ == 0) {
    ::close(e.fd);
    e.fd = -1;
    // The name->id binding survives so a reopen finds warm cache pages.
    return;
  }
  // Keep the descriptor in the idle cache instead of closing: the serving
  // hot path reopens the same files every request, and an open(2)/close(2)
  // pair per request is pure overhead.  The cache is capped so a stream of
  // one-shot files (POST uploads) cannot exhaust descriptors.  The
  // name->id binding survives either way, so a reopen finds warm pages.
  e.idle = true;
  ++e.idle_gen;
  idle_fds_.emplace_back(id, e.idle_gen);
  trim_idle();
}

void RealFileStore::trim_idle() {
  while (idle_fds_.size() > idle_fd_cache_) {
    const auto [id, gen] = idle_fds_.front();
    idle_fds_.pop_front();
    Entry& e = entries_[id];
    // Stale entry: reopened (no longer idle) or re-idled since it was
    // queued (a newer queue entry carries the current generation) — in
    // either case this one must not evict the descriptor.
    if (!e.idle || e.idle_gen != gen) continue;
    ::close(e.fd);
    e.fd = -1;
    e.idle = false;
  }
}

int RealFileStore::fd_of(FileId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  check<IoError>(id < entries_.size() && entries_[id].fd >= 0,
                 "RealFileStore: invalid file id");
  return entries_[id].fd;
}

std::uint64_t RealFileStore::size(FileId id) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    check<IoError>(id < entries_.size() && entries_[id].fd >= 0,
                   "RealFileStore: invalid file id");
    if (entries_[id].size >= 0) {
      return static_cast<std::uint64_t>(entries_[id].size);
    }
  }
  struct stat st {};
  check<IoError>(::fstat(fd_of(id), &st) == 0, "RealFileStore: fstat failed");
  std::lock_guard<std::mutex> lock(mutex_);
  // A write may have extended the file between the fstat above and
  // re-taking the lock — never let a stale stat shrink what is already
  // known, whether the concurrent writer filled the cache (size >= 0) or
  // only raised the floor (cache still unset).
  const Entry& e = entries_[id];
  if (e.size < 0) {
    // `size` is mutable: filling the cache is the one write a const
    // accessor performs.
    e.size = std::max<std::int64_t>(st.st_size, e.size_floor);
  }
  return static_cast<std::uint64_t>(e.size);
}

void RealFileStore::truncate(FileId id, std::uint64_t new_size) {
  check<IoError>(::ftruncate(fd_of(id), static_cast<off_t>(new_size)) == 0,
                 "RealFileStore: ftruncate failed");
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[id].size = static_cast<std::int64_t>(new_size);
  entries_[id].size_floor = static_cast<std::int64_t>(new_size);
}

/// Extends the cached size after bytes were written up to `end_offset`.
/// While the cache is unset only the floor moves — the true size may be
/// larger than any write seen through this store instance (pre-existing
/// file), so the first size() still fstats and maxes with the floor.
void RealFileStore::grow_cached_size(FileId id, std::uint64_t end_offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[id];
  const auto end = static_cast<std::int64_t>(end_offset);
  if (e.size >= 0) {
    e.size = std::max(e.size, end);
  } else {
    e.size_floor = std::max(e.size_floor, end);
  }
}

std::size_t RealFileStore::read(FileId id, std::uint64_t offset,
                                std::span<std::byte> out) {
  std::size_t total = 0;
  while (total < out.size()) {
    const ssize_t n =
        ::pread(fd_of(id), out.data() + total, out.size() - total,
                static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_syscall_error("pread", errno);
    }
    if (n == 0) break;  // EOF
    total += static_cast<std::size_t>(n);
  }
  return total;
}

void RealFileStore::write(FileId id, std::uint64_t offset,
                          std::span<const std::byte> data) {
  std::size_t total = 0;
  while (total < data.size()) {
    const ssize_t n =
        ::pwrite(fd_of(id), data.data() + total, data.size() - total,
                 static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_syscall_error("pwrite", errno);
    }
    total += static_cast<std::size_t>(n);
  }
  grow_cached_size(id, offset + data.size());
}

void RealFileStore::writev(FileId id, std::uint64_t offset,
                           std::span<const std::span<const std::byte>> parts) {
  const int fd = fd_of(id);
  std::vector<iovec> iov;
  iov.reserve(parts.size());
  for (const auto& part : parts) {
    if (part.empty()) continue;
    iov.push_back(iovec{const_cast<std::byte*>(part.data()), part.size()});
  }
  std::size_t next = 0;  // first iovec not fully written yet
  while (next < iov.size()) {
    const int cnt =
        static_cast<int>(std::min<std::size_t>(iov.size() - next, IOV_MAX));
    const ssize_t n =
        ::pwritev(fd, iov.data() + next, cnt, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_syscall_error("pwritev", errno);
    }
    offset += static_cast<std::uint64_t>(n);
    // Consume fully-written iovecs; trim a partially-written one.
    std::size_t done = static_cast<std::size_t>(n);
    while (next < iov.size() && done >= iov[next].iov_len) {
      done -= iov[next].iov_len;
      next++;
    }
    if (done > 0) {
      iov[next].iov_base = static_cast<char*>(iov[next].iov_base) + done;
      iov[next].iov_len -= done;
    }
  }
  // `offset` has advanced past every byte written.
  grow_cached_size(id, offset);
}

std::size_t RealFileStore::readv(FileId id, std::uint64_t offset,
                                 std::span<const std::span<std::byte>> parts) {
  const int fd = fd_of(id);
  std::vector<iovec> iov;
  iov.reserve(parts.size());
  for (const auto& part : parts) {
    if (part.empty()) continue;
    iov.push_back(iovec{part.data(), part.size()});
  }
  std::size_t total = 0;
  std::size_t next = 0;  // first iovec not fully filled yet
  while (next < iov.size()) {
    const int cnt =
        static_cast<int>(std::min<std::size_t>(iov.size() - next, IOV_MAX));
    const ssize_t n =
        ::preadv(fd, iov.data() + next, cnt, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_syscall_error("preadv", errno);
    }
    if (n == 0) break;  // EOF
    offset += static_cast<std::uint64_t>(n);
    total += static_cast<std::size_t>(n);
    // Consume fully-filled iovecs; trim a partially-filled one.
    std::size_t done = static_cast<std::size_t>(n);
    while (next < iov.size() && done >= iov[next].iov_len) {
      done -= iov[next].iov_len;
      next++;
    }
    if (done > 0) {
      iov[next].iov_base = static_cast<char*>(iov[next].iov_base) + done;
      iov[next].iov_len -= done;
    }
  }
  return total;
}

bool RealFileStore::exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // A live name->id binding proves existence without a stat: remove()
  // erases the binding, and all mutations flow through this store.  This
  // turns the per-GET existence probe into a hash lookup.
  if (by_name_.contains(name)) return true;
  return std::filesystem::exists(root_ / name);
}

FileId RealFileStore::lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidFile : it->second;
}

void RealFileStore::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    Entry& e = entries_[it->second];
    check<IoError>(e.refs == 0, "RealFileStore: cannot remove an open file");
    if (e.fd >= 0) {
      // Idle-cached descriptor: release it before unlinking.
      ::close(e.fd);
      e.fd = -1;
      e.idle = false;
    }
    by_name_.erase(it);  // retire the id; it is never reused
  }
  std::filesystem::remove(root_ / name);
}

// ----------------------------------------------------------------- Sim ----

SimFileStore::SimFileStore(std::size_t num_disks, std::uint64_t stripe_bytes,
                           const DiskParams& params)
    : array_(num_disks, stripe_bytes, params) {}

FileId SimFileStore::open(const std::string& name, bool create) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    Entry& e = entries_[it->second];
    e.refs++;
    return it->second;
  }
  check<IoError>(create, "SimFileStore: no such file '" + name + "'");
  const auto id = static_cast<FileId>(entries_.size());
  Entry e;
  e.name = name;
  // Scatter files across the modeled address space so inter-file seeks have
  // non-trivial distance, like separate regions of a real platter.
  util::SplitMix64 hash(std::hash<std::string>{}(name));
  e.base_address = hash.next() % (32ULL << 30);
  e.refs = 1;
  e.live = true;
  entries_.push_back(std::move(e));
  by_name_.emplace(name, id);
  return id;
}

void SimFileStore::close(FileId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_of(id);
  check<IoError>(e.refs > 0, "SimFileStore: close of closed id");
  e.refs--;
}

SimFileStore::Entry& SimFileStore::entry_of(FileId id) {
  check<IoError>(id < entries_.size() && entries_[id].live,
                 "SimFileStore: invalid file id");
  return entries_[id];
}

const SimFileStore::Entry& SimFileStore::entry_of(FileId id) const {
  check<IoError>(id < entries_.size() && entries_[id].live,
                 "SimFileStore: invalid file id");
  return entries_[id];
}

std::uint64_t SimFileStore::size(FileId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry& e = entry_of(id);
  check<IoError>(e.refs > 0, "SimFileStore: size of closed id");
  return e.data.size();
}

void SimFileStore::truncate(FileId id, std::uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_of(id);
  check<IoError>(e.refs > 0, "SimFileStore: truncate of closed id");
  e.data.resize(static_cast<std::size_t>(new_size));
}

std::size_t SimFileStore::read(FileId id, std::uint64_t offset,
                               std::span<std::byte> out) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_of(id);
  check<IoError>(e.refs > 0, "SimFileStore: read of closed id");
  if (offset >= e.data.size()) {
    // Charge the arm movement even for a miss past EOF.
    pending_model_ms_ += array_.access_ms(e.base_address + offset, 0);
    return 0;
  }
  const std::size_t n = std::min<std::size_t>(
      out.size(), e.data.size() - static_cast<std::size_t>(offset));
  // n == 0 leaves an empty span's null data() untouched (UB for memcpy).
  if (n > 0) std::memcpy(out.data(), e.data.data() + offset, n);
  pending_model_ms_ += array_.access_ms(e.base_address + offset, n);
  return n;
}

void SimFileStore::write(FileId id, std::uint64_t offset,
                         std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_of(id);
  check<IoError>(e.refs > 0, "SimFileStore: write of closed id");
  const std::uint64_t end = offset + data.size();
  if (end > e.data.size()) e.data.resize(static_cast<std::size_t>(end));
  if (!data.empty()) {
    std::memcpy(e.data.data() + offset, data.data(), data.size());
  }
  pending_model_ms_ += array_.access_ms(e.base_address + offset, data.size());
}

void SimFileStore::writev(FileId id, std::uint64_t offset,
                          std::span<const std::span<const std::byte>> parts) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_of(id);
  check<IoError>(e.refs > 0, "SimFileStore: write of closed id");
  std::uint64_t total = 0;
  for (const auto& part : parts) total += part.size();
  const std::uint64_t end = offset + total;
  if (end > e.data.size()) e.data.resize(static_cast<std::size_t>(end));
  std::uint64_t pos = offset;
  for (const auto& part : parts) {
    if (part.empty()) continue;  // null data() is UB for memcpy
    std::memcpy(e.data.data() + pos, part.data(), part.size());
    pos += part.size();
  }
  // One modeled access for the whole gather: coalescing saves the per-page
  // seek + rotational cost, exactly the effect the paper's Tables measure.
  pending_model_ms_ += array_.access_ms(e.base_address + offset, total);
}

std::size_t SimFileStore::readv(FileId id, std::uint64_t offset,
                                std::span<const std::span<std::byte>> parts) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_of(id);
  check<IoError>(e.refs > 0, "SimFileStore: read of closed id");
  if (offset >= e.data.size()) {
    // Charge the arm movement even for a miss past EOF.
    pending_model_ms_ += array_.access_ms(e.base_address + offset, 0);
    return 0;
  }
  std::size_t total = 0;
  for (const auto& part : parts) {
    const std::uint64_t pos = offset + total;
    if (pos >= e.data.size()) break;
    const std::size_t n = std::min<std::size_t>(
        part.size(), e.data.size() - static_cast<std::size_t>(pos));
    if (n > 0) std::memcpy(part.data(), e.data.data() + pos, n);
    total += n;
    if (n < part.size()) break;
  }
  // One modeled access for the whole scatter: coalescing saves the per-page
  // seek + rotational cost, mirroring writev on the read side.
  pending_model_ms_ += array_.access_ms(e.base_address + offset, total);
  return total;
}

bool SimFileStore::exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_name_.find(name) != by_name_.end();
}

FileId SimFileStore::lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidFile : it->second;
}

void SimFileStore::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return;
  check<IoError>(entries_[it->second].refs == 0,
                 "SimFileStore: cannot remove an open file");
  entries_[it->second].live = false;
  entries_[it->second].data.clear();
  by_name_.erase(it);
}

double SimFileStore::consume_model_ms() {
  std::lock_guard<std::mutex> lock(mutex_);
  const double t = pending_model_ms_;
  pending_model_ms_ = 0.0;
  return t;
}

}  // namespace clio::io
