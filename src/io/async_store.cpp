#include "io/async_store.hpp"

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace clio::io {

using util::check;
using util::ConfigError;
using util::Stopwatch;

std::string_view async_op_name(AsyncOpKind kind) {
  switch (kind) {
    case AsyncOpKind::kRead:
      return "read";
    case AsyncOpKind::kWrite:
      return "write";
    case AsyncOpKind::kReadv:
      return "readv";
    case AsyncOpKind::kWritev:
      return "writev";
  }
  return "?";
}

// ------------------------------------------------------------- AsyncOp ----

AsyncOp AsyncOp::make_read(FileId file, std::uint64_t offset,
                           std::span<std::byte> out, std::uint64_t user_data) {
  AsyncOp op;
  op.kind = AsyncOpKind::kRead;
  op.file = file;
  op.offset = offset;
  op.out = out;
  op.user_data = user_data;
  return op;
}

AsyncOp AsyncOp::make_write(FileId file, std::uint64_t offset,
                            std::span<const std::byte> data,
                            std::uint64_t user_data) {
  AsyncOp op;
  op.kind = AsyncOpKind::kWrite;
  op.file = file;
  op.offset = offset;
  op.data = data;
  op.user_data = user_data;
  return op;
}

AsyncOp AsyncOp::make_readv(FileId file, std::uint64_t offset,
                            std::vector<std::span<std::byte>> parts,
                            std::uint64_t user_data) {
  AsyncOp op;
  op.kind = AsyncOpKind::kReadv;
  op.file = file;
  op.offset = offset;
  op.read_parts = std::move(parts);
  op.user_data = user_data;
  return op;
}

AsyncOp AsyncOp::make_writev(FileId file, std::uint64_t offset,
                             std::vector<std::span<const std::byte>> parts,
                             std::uint64_t user_data) {
  AsyncOp op;
  op.kind = AsyncOpKind::kWritev;
  op.file = file;
  op.offset = offset;
  op.write_parts = std::move(parts);
  op.user_data = user_data;
  return op;
}

std::uint64_t AsyncOp::payload_bytes() const {
  switch (kind) {
    case AsyncOpKind::kRead:
      return out.size();
    case AsyncOpKind::kWrite:
      return data.size();
    case AsyncOpKind::kReadv: {
      std::uint64_t total = 0;
      for (const auto& part : read_parts) total += part.size();
      return total;
    }
    case AsyncOpKind::kWritev: {
      std::uint64_t total = 0;
      for (const auto& part : write_parts) total += part.size();
      return total;
    }
  }
  return 0;
}

// ------------------------------------------------------ sync execution ----

AsyncCompletion execute_sync_op(BackingStore& store, const AsyncOp& op) {
  AsyncCompletion c;
  c.user_data = op.user_data;
  c.kind = op.kind;
  Stopwatch watch;
  try {
    switch (op.kind) {
      case AsyncOpKind::kRead:
        c.bytes = store.read(op.file, op.offset, op.out);
        break;
      case AsyncOpKind::kWrite:
        store.write(op.file, op.offset, op.data);
        c.bytes = op.data.size();
        break;
      case AsyncOpKind::kReadv:
        c.bytes = store.readv(op.file, op.offset, op.read_parts);
        break;
      case AsyncOpKind::kWritev: {
        store.writev(op.file, op.offset, op.write_parts);
        for (const auto& part : op.write_parts) c.bytes += part.size();
        break;
      }
    }
  } catch (...) {
    c.bytes = 0;
    c.error = std::current_exception();
  }
  c.ms = watch.elapsed_ms();
  return c;
}

// -------------------------------------------------- ThreadPoolAsyncStore ----

ThreadPoolAsyncStore::ThreadPoolAsyncStore(BackingStore& inner,
                                           std::size_t threads)
    : inner_(inner) {
  check<ConfigError>(threads >= 1, "ThreadPoolAsyncStore: threads must be >= 1");
  workers_.reserve(threads);
  try {
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker(); });
    }
  } catch (...) {
    // Unwind any workers that did start before rethrowing.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
    throw;
  }
}

ThreadPoolAsyncStore::~ThreadPoolAsyncStore() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  // Workers drain the remaining queue before exiting: every submitted op
  // was accepted, so every submitted op completes.
  for (auto& w : workers_) w.join();
}

void ThreadPoolAsyncStore::bind_stats(IoStats* stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = stats;
}

AsyncTicket ThreadPoolAsyncStore::submit(std::vector<AsyncOp> batch) {
  check<ConfigError>(!batch.empty(), "ThreadPoolAsyncStore: empty batch");
  AsyncTicket ticket = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    check<ConfigError>(!stop_, "ThreadPoolAsyncStore: submit after shutdown");
    ticket = next_ticket_++;
    tickets_[ticket].expected = batch.size();
    if (stats_ != nullptr) stats_->record_async_submission(batch.size());
    for (auto& op : batch) {
      queue_.push_back(QueuedOp{std::move(op), ticket});
    }
  }
  if (batch.size() > 1) {
    work_cv_.notify_all();
  } else {
    work_cv_.notify_one();
  }
  return ticket;
}

void ThreadPoolAsyncStore::worker() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping and fully drained
    QueuedOp item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    AsyncCompletion c = execute_sync_op(inner_, item.op);
    lock.lock();
    // The fallback pays one kernel round-trip (one sync store call) per op;
    // account it so syscalls-per-page contrasts with uring's batched enter.
    if (stats_ != nullptr) {
      stats_->record_submit_syscalls(1);
      stats_->record_async_completion(c.bytes, !c.ok());
    }
    complete_locked(item.ticket, std::move(c));
    done_cv_.notify_all();
  }
}

void ThreadPoolAsyncStore::complete_locked(AsyncTicket ticket,
                                           AsyncCompletion completion) {
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) return;  // ticket already abandoned
  it->second.completed++;
  it->second.ready.push_back(std::move(completion));
}

void ThreadPoolAsyncStore::maybe_forget_locked(
    std::unordered_map<AsyncTicket, TicketState>::iterator it) {
  if (it->second.completed == it->second.expected &&
      it->second.ready.empty()) {
    tickets_.erase(it);
  }
}

std::size_t ThreadPoolAsyncStore::poll(AsyncTicket ticket,
                                       std::vector<AsyncCompletion>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) return 0;
  const std::size_t n = it->second.ready.size();
  for (auto& c : it->second.ready) out.push_back(std::move(c));
  it->second.ready.clear();
  maybe_forget_locked(it);
  return n;
}

std::vector<AsyncCompletion> ThreadPoolAsyncStore::wait(AsyncTicket ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) return {};
  done_cv_.wait(lock, [&] {
    return it->second.completed == it->second.expected;
  });
  std::vector<AsyncCompletion> out = std::move(it->second.ready);
  it->second.ready.clear();
  maybe_forget_locked(it);
  return out;
}

}  // namespace clio::io
