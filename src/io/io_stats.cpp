#include "io/io_stats.hpp"

#include <ostream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace clio::io {

std::string_view io_op_name(IoOp op) {
  switch (op) {
    case IoOp::kOpen:
      return "open";
    case IoOp::kClose:
      return "close";
    case IoOp::kRead:
      return "read";
    case IoOp::kWrite:
      return "write";
    case IoOp::kSeek:
      return "seek";
    case IoOp::kReadv:
      return "readv";
    case IoOp::kWritev:
      return "writev";
  }
  return "?";
}

IoStats::IoStats(bool keep_records) : keep_records_(keep_records) {}

void IoStats::record(IoOp op, std::uint64_t bytes, double ms) {
  const auto idx = static_cast<std::size_t>(op);
  util::check<util::ConfigError>(idx < kIoOpCount, "IoStats: bad op");
  std::lock_guard<std::mutex> lock(mutex_);
  stats_[idx].push(ms);
  histograms_[idx].push(static_cast<std::uint64_t>(ms * 1e6));
  bytes_[idx] += bytes;
  if (keep_records_) records_.push_back(OpRecord{op, bytes, ms});
}

void IoStats::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& s : stats_) s.reset();
  for (auto& h : histograms_) h.reset();
  bytes_.fill(0);
  records_.clear();
  resilience_ = ResilienceCounters{};
  async_ = AsyncCounters{};
}

void IoStats::record_retry() {
  std::lock_guard<std::mutex> lock(mutex_);
  resilience_.retries++;
}

void IoStats::record_absorbed_fault() {
  std::lock_guard<std::mutex> lock(mutex_);
  resilience_.absorbed_faults++;
}

void IoStats::record_breaker_trip() {
  std::lock_guard<std::mutex> lock(mutex_);
  resilience_.breaker_trips++;
}

void IoStats::record_breaker_fast_fail() {
  std::lock_guard<std::mutex> lock(mutex_);
  resilience_.breaker_fast_fails++;
}

void IoStats::record_deadline_expiry() {
  std::lock_guard<std::mutex> lock(mutex_);
  resilience_.deadline_expiries++;
}

ResilienceCounters IoStats::resilience() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resilience_;
}

void IoStats::record_async_submission(std::uint64_t ops) {
  std::lock_guard<std::mutex> lock(mutex_);
  async_.submissions++;
  async_.submitted_ops += ops;
}

void IoStats::record_async_completion(std::uint64_t bytes, bool failed) {
  std::lock_guard<std::mutex> lock(mutex_);
  async_.completions++;
  if (failed) {
    async_.completion_errors++;
  } else {
    async_.bytes_completed += bytes;
  }
}

void IoStats::record_submit_syscalls(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  async_.submit_syscalls += n;
}

void IoStats::record_async_resubmission() {
  std::lock_guard<std::mutex> lock(mutex_);
  async_.resubmissions++;
}

AsyncCounters IoStats::async_counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return async_;
}

const util::RunningStats& IoStats::op_stats(IoOp op) const {
  // Returns a reference, so no lock is useful here: callers read these
  // after their workers quiesce (see the class comment).
  return stats_.at(static_cast<std::size_t>(op));
}

const util::LatencyHistogram& IoStats::op_histogram(IoOp op) const {
  return histograms_.at(static_cast<std::size_t>(op));
}

std::uint64_t IoStats::op_bytes(IoOp op) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_.at(static_cast<std::size_t>(op));
}

OpSnapshot IoStats::op_snapshot(IoOp op) const {
  const auto idx = static_cast<std::size_t>(op);
  util::check<util::ConfigError>(idx < kIoOpCount, "IoStats: bad op");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto& s = stats_[idx];
  OpSnapshot snap;
  snap.count = s.count();
  if (snap.count > 0) {
    snap.mean_ms = s.mean();
    snap.min_ms = s.min();
    snap.max_ms = s.max();
  }
  snap.bytes = bytes_[idx];
  return snap;
}

double IoStats::total_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& s : stats_) total += s.sum();
  return total;
}

std::uint64_t IoStats::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_[static_cast<std::size_t>(IoOp::kRead)] +
         bytes_[static_cast<std::size_t>(IoOp::kWrite)];
}

void IoStats::render(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::TextTable table(
      {"op", "count", "mean (ms)", "min (ms)", "max (ms)", "bytes"});
  for (std::size_t i = 0; i < kIoOpCount; ++i) {
    const auto& s = stats_[i];
    if (s.count() == 0) continue;
    table.add_row({std::string(io_op_name(static_cast<IoOp>(i))),
                   std::to_string(s.count()), util::format_ms(s.mean()),
                   util::format_ms(s.min()), util::format_ms(s.max()),
                   std::to_string(bytes_[i])});
  }
  table.render(os);
  const auto& r = resilience_;
  if (r.retries != 0 || r.absorbed_faults != 0 || r.breaker_trips != 0 ||
      r.breaker_fast_fails != 0 || r.deadline_expiries != 0) {
    os << "resilience: retries=" << r.retries
       << " absorbed=" << r.absorbed_faults << " trips=" << r.breaker_trips
       << " fast_fails=" << r.breaker_fast_fails
       << " deadline_expiries=" << r.deadline_expiries << "\n";
  }
  const auto& a = async_;
  if (a.submissions != 0) {
    os << "async: submissions=" << a.submissions
       << " ops=" << a.submitted_ops << " completions=" << a.completions
       << " errors=" << a.completion_errors
       << " submit_syscalls=" << a.submit_syscalls
       << " resubmissions=" << a.resubmissions
       << " bytes=" << a.bytes_completed << "\n";
  }
}

}  // namespace clio::io
