#include "io/disk_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace clio::io {

DiskModel::DiskModel(const DiskParams& params) : params_(params) {
  util::check<util::ConfigError>(params.min_seek_ms >= 0.0,
                                 "DiskModel: min_seek_ms must be >= 0");
  util::check<util::ConfigError>(params.avg_seek_ms >= params.min_seek_ms,
                                 "DiskModel: avg_seek_ms < min_seek_ms");
  util::check<util::ConfigError>(params.rpm > 0.0,
                                 "DiskModel: rpm must be > 0");
  util::check<util::ConfigError>(params.transfer_mb_s > 0.0,
                                 "DiskModel: transfer rate must be > 0");
  util::check<util::ConfigError>(params.capacity_bytes > 0,
                                 "DiskModel: capacity must be > 0");
  // With the sqrt model, seek(d) = min + (max - min) * sqrt(d / capacity)
  // and the average over uniformly random pairs is min + 0.47*(max-min)
  // (E[sqrt(u)] for |x-y| of uniforms ~ 0.47); calibrate full-stroke so the
  // configured average comes out right.
  full_stroke_ms_ =
      params.min_seek_ms + (params.avg_seek_ms - params.min_seek_ms) / 0.47;
}

double DiskModel::seek_time_ms(std::uint64_t from, std::uint64_t to) const {
  if (from == to) return 0.0;
  const std::uint64_t dist = from > to ? from - to : to - from;
  const double frac = std::min(
      1.0, static_cast<double>(dist) /
               static_cast<double>(params_.capacity_bytes));
  return params_.min_seek_ms +
         (full_stroke_ms_ - params_.min_seek_ms) * std::sqrt(frac);
}

double DiskModel::rotational_latency_ms() const {
  // Half a revolution on average: (60 / rpm) * 1000 / 2 ms.
  return 30000.0 / params_.rpm;
}

double DiskModel::transfer_time_ms(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / (params_.transfer_mb_s * 1e6) * 1e3;
}

double DiskModel::service_time_ms(std::uint64_t head_pos, std::uint64_t offset,
                                  std::uint64_t bytes) const {
  double t = params_.overhead_ms + seek_time_ms(head_pos, offset);
  if (bytes > 0) {
    // Rotational latency applies only after repositioning; a request that
    // continues where the head already sits streams from the track
    // (read-ahead buffer), as on real hardware.
    if (head_pos != offset) t += rotational_latency_ms();
    t += transfer_time_ms(bytes);
  }
  return t;
}

double SimDisk::access_ms(std::uint64_t offset, std::uint64_t bytes) {
  const double t = model_.service_time_ms(head_, offset, bytes);
  head_ = offset + bytes;
  busy_ms_ += t;
  ++requests_;
  bytes_ += bytes;
  return t;
}

void SimDisk::reset_counters() {
  busy_ms_ = 0.0;
  requests_ = 0;
  bytes_ = 0;
}

}  // namespace clio::io
