#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "io/buffer_pool.hpp"
#include "io/io_stats.hpp"
#include "io/prefetcher.hpp"

namespace clio::io {

/// How a ManagedFile is opened, mirroring .NET FileMode semantics.
enum class OpenMode {
  kRead,       ///< existing file, read-only intent
  kReadWrite,  ///< existing file, read/write
  kCreate,     ///< create if absent, keep content if present
  kTruncate,   ///< create or wipe
};

/// Knobs of the managed I/O stack; each maps to a paper observation or an
/// ablation in DESIGN.md §5.
struct ManagedFsOptions {
  std::size_t page_size = 4096;
  std::size_t pool_pages = 4096;      ///< 16 MiB cache by default
  std::size_t pool_shards = 0;        ///< lock stripes; 0 = auto (see BufferPoolConfig)
  PrefetchConfig prefetch;            ///< readahead policy
  bool prefetch_on_seek = true;       ///< paper: prefetch on read/write/seek
  /// Submit readahead gathers through the pool's async store and publish
  /// them from a completion reaper, so sequential reads overlap the window
  /// load with compute instead of paying for it inline (see
  /// BufferPoolConfig::async_prefetch).
  bool async_prefetch = false;
  std::size_t prefetch_threads = 1;   ///< async-store workers (see pool config)
  bool writeback_on_close = true;     ///< close flushes dirty pages
  bool keep_op_records = false;       ///< retain per-op rows for tables
};

class ManagedFile;

/// Facade owning the backing store, the buffer pool, the prefetcher and the
/// latency accounting.  This is the C++ analogue of the System.IO stack the
/// paper's benchmarks run on: every open/close/read/write/seek goes through
/// the pool and is timed into IoStats.
class ManagedFileSystem {
 public:
  ManagedFileSystem(std::unique_ptr<BackingStore> store,
                    ManagedFsOptions options = {});
  ~ManagedFileSystem();

  ManagedFileSystem(const ManagedFileSystem&) = delete;
  ManagedFileSystem& operator=(const ManagedFileSystem&) = delete;

  /// Opens a managed file (timed as an Open operation).
  [[nodiscard]] ManagedFile open(const std::string& name, OpenMode mode);

  [[nodiscard]] bool exists(const std::string& name) const;
  void remove(const std::string& name);

  [[nodiscard]] IoStats& stats() { return stats_; }
  [[nodiscard]] const IoStats& stats() const { return stats_; }
  [[nodiscard]] BufferPool& pool() { return *pool_; }
  [[nodiscard]] BackingStore& store() { return *store_; }

  /// The pool's submission/completion store (already stats-bound), or null
  /// when the stack runs fully synchronously.
  [[nodiscard]] AsyncBackingStore* async_store() {
    return pool_->async_store();
  }
  [[nodiscard]] const ManagedFsOptions& options() const { return options_; }

  /// Drops every cached page (flushing dirty ones first).  Benchmarks call
  /// this to re-create a cold cache between trials.
  void drop_caches();

 private:
  friend class ManagedFile;

  [[nodiscard]] BufferPoolConfig pool_config() const;

  // Declaration order is destruction-critical: the pool's destructor
  // flushes through pool_store_ into stats_, so both must outlive pool_
  // (i.e. be declared before it).
  std::unique_ptr<BackingStore> store_;
  ManagedFsOptions options_;
  IoStats stats_;  ///< internally synchronized
  /// The store the pool actually talks to: `store_` wrapped in a decorator
  /// that times every vectored backing call into stats_ (IoOp::kReadv /
  /// kWritev), so coalescing ratios show up in the op table.
  std::unique_ptr<BackingStore> pool_store_;
  std::unique_ptr<BufferPool> pool_;
  SequentialPrefetcher prefetcher_;
  std::mutex prefetcher_mutex_;
};

/// A position-tracking stream over one file, in the style of .NET
/// FileStream.  Movable, auto-closes on destruction.  Not thread-safe per
/// instance (each server thread opens its own stream, as in the paper).
class ManagedFile {
 public:
  ManagedFile() = default;
  ManagedFile(ManagedFile&& other) noexcept;
  ManagedFile& operator=(ManagedFile&& other) noexcept;
  ManagedFile(const ManagedFile&) = delete;
  ManagedFile& operator=(const ManagedFile&) = delete;
  ~ManagedFile();

  /// Reads up to out.size() bytes from the current position; returns the
  /// count actually read (0 at EOF).  Timed as a Read.
  std::size_t read(std::span<std::byte> out);

  /// Reads exactly `out.size()` bytes or throws IoError.
  void read_exact(std::span<std::byte> out);

  /// Writes all bytes at the current position, extending the file.  Timed
  /// as a Write.  Returns the count actually accepted into the stream —
  /// callers that report bytes written (e.g. the VM's file_write syscall)
  /// must echo this, not the requested count.  A failure mid-write (a
  /// faulting page load under a partial-page write) throws instead, with
  /// the position unchanged past the accepted prefix.
  std::size_t write(std::span<const std::byte> data);

  /// Moves the stream position (absolute, from the beginning — the paper's
  /// replay semantics).  Touches the target page when prefetch_on_seek is
  /// set.  Timed as a Seek.
  void seek(std::uint64_t pos);

  /// Flushes this file's dirty pages (when writeback_on_close is set) and
  /// releases the handle.  Timed as a Close.  Idempotent.
  void close();

  [[nodiscard]] bool is_open() const { return fs_ != nullptr; }
  [[nodiscard]] std::uint64_t position() const { return position_; }
  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  /// The backing-store id behind this stream — the seam the serving
  /// layer's zero-copy path needs to pin this file's pages directly
  /// (BufferPool::pin) or fetch its POSIX descriptor for sendfile
  /// (RealFileStore::native_handle).  Valid while the file is open.
  [[nodiscard]] FileId id() const { return id_; }

 private:
  friend class ManagedFileSystem;
  ManagedFile(ManagedFileSystem* fs, FileId id, std::string name);

  /// Sentinel for "caller has not computed the file size".
  static constexpr std::uint64_t kUnknownSize = UINT64_MAX;

  void run_prefetch(std::uint64_t page,
                    std::uint64_t file_size = kUnknownSize);

  ManagedFileSystem* fs_ = nullptr;
  FileId id_ = kInvalidFile;
  std::string name_;
  std::uint64_t position_ = 0;
};

}  // namespace clio::io
