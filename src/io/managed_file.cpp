#include "io/managed_file.hpp"

#include <algorithm>
#include <cstring>

#include "io/store_decorator.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace clio::io {

using util::check;
using util::IoError;
using util::Stopwatch;

ManagedFileSystem::ManagedFileSystem(std::unique_ptr<BackingStore> store,
                                     ManagedFsOptions options)
    : store_(std::move(store)),
      options_(options),
      stats_(options.keep_op_records),
      prefetcher_(options.prefetch) {
  check<util::ConfigError>(store_ != nullptr,
                           "ManagedFileSystem: null backing store");
  // One helper builds and binds the whole decorator chain: the pool talks
  // to a VectoredStatsStore (coalescing ratios land in the op table as
  // IoOp::kReadv / kWritev), and bind_chain walks every StoreDecorator the
  // caller stacked below (RetryingStore, FaultStore, ...) so their
  // resilience counters report into this filesystem's stats too.
  pool_store_ = std::make_unique<VectoredStatsStore>(*store_);
  StoreDecorator::bind_chain(*pool_store_, &stats_);
  pool_ = std::make_unique<BufferPool>(*pool_store_, pool_config());
  // The pool's submission/completion path (if any) reports its async
  // counters — submissions, completions, submit syscalls — here as well.
  if (AsyncBackingStore* async = pool_->async_store(); async != nullptr) {
    async->bind_stats(&stats_);
  }
}

ManagedFileSystem::~ManagedFileSystem() = default;

BufferPoolConfig ManagedFileSystem::pool_config() const {
  return BufferPoolConfig{.page_size = options_.page_size,
                          .capacity_pages = options_.pool_pages,
                          .shards = options_.pool_shards,
                          .async_prefetch = options_.async_prefetch,
                          .prefetch_threads = options_.prefetch_threads};
}

ManagedFile ManagedFileSystem::open(const std::string& name, OpenMode mode) {
  Stopwatch watch;
  const bool create = (mode == OpenMode::kCreate || mode == OpenMode::kTruncate);
  if (!create) {
    check<IoError>(store_->exists(name),
                   "ManagedFileSystem: no such file '" + name + "'");
  }
  const FileId id = store_->open(name, create);
  if (mode == OpenMode::kTruncate) {
    pool_->discard_file(id);
    store_->truncate(id, 0);
  }
  ManagedFile file(this, id, name);
  const double ms = watch.elapsed_ms();
  stats_.record(IoOp::kOpen, 0, ms);
  return file;
}

bool ManagedFileSystem::exists(const std::string& name) const {
  return store_->exists(name);
}

void ManagedFileSystem::remove(const std::string& name) {
  // Drop any cached pages first: the id may be re-bound to a new file of
  // the same name later, and stale pages must not leak into it.
  const FileId id = store_->lookup(name);
  if (id != kInvalidFile) pool_->discard_file(id);
  store_->remove(name);
}

void ManagedFileSystem::drop_caches() {
  // Flush, then evict in place.  The pool object must survive: replacing
  // it (the old implementation) frees frames that concurrent requests may
  // still hold PageGuards into — make_cold() races live traffic by design.
  pool_->flush_all();
  pool_->evict_clean();
  std::lock_guard<std::mutex> lock(prefetcher_mutex_);
  prefetcher_.reset();
}

// --------------------------------------------------------------- file ----

ManagedFile::ManagedFile(ManagedFileSystem* fs, FileId id, std::string name)
    : fs_(fs), id_(id), name_(std::move(name)) {}

ManagedFile::ManagedFile(ManagedFile&& other) noexcept
    : fs_(other.fs_),
      id_(other.id_),
      name_(std::move(other.name_)),
      position_(other.position_) {
  other.fs_ = nullptr;
  other.id_ = kInvalidFile;
}

ManagedFile& ManagedFile::operator=(ManagedFile&& other) noexcept {
  if (this != &other) {
    if (fs_ != nullptr) {
      try {
        close();
      } catch (...) {
      }
    }
    fs_ = other.fs_;
    id_ = other.id_;
    name_ = std::move(other.name_);
    position_ = other.position_;
    other.fs_ = nullptr;
    other.id_ = kInvalidFile;
  }
  return *this;
}

ManagedFile::~ManagedFile() {
  if (fs_ != nullptr) {
    try {
      close();
    } catch (...) {
      // Destructors must not throw; explicit close() reports errors.
    }
  }
}

std::uint64_t ManagedFile::size() const {
  check<IoError>(fs_ != nullptr, "ManagedFile: closed");
  return fs_->pool_->logical_file_size(id_);
}

void ManagedFile::run_prefetch(std::uint64_t page, std::uint64_t file_size) {
  // A file that fits in one page has nothing ahead to fetch: skip the
  // shared prefetcher outright.  The serving hot path reads small objects
  // at a high rate, and the prefetcher sits behind a global mutex.
  if (file_size != kUnknownSize && file_size <= fs_->pool_->page_size()) {
    return;
  }
  PrefetchRange ahead;
  {
    std::lock_guard<std::mutex> lock(fs_->prefetcher_mutex_);
    ahead = fs_->prefetcher_.propose(id_, page);
  }
  if (ahead.empty()) return;
  if (file_size == kUnknownSize) file_size = size();
  if (file_size == 0) return;
  const std::uint64_t last_page = (file_size - 1) / fs_->pool_->page_size();
  if (ahead.first > last_page) return;
  const std::size_t count = static_cast<std::size_t>(
      std::min<std::uint64_t>(ahead.count, last_page - ahead.first + 1));
  // With async_prefetch on, the window loads on the pool's I/O workers
  // while this reader keeps consuming warm pages; otherwise inline.
  fs_->pool_->prefetch_range_async(id_, ahead.first, count);
}

std::size_t ManagedFile::read(std::span<std::byte> out) {
  check<IoError>(fs_ != nullptr, "ManagedFile: read on closed file");
  Stopwatch watch;
  const std::size_t page_size = fs_->pool_->page_size();
  const std::uint64_t file_size = size();
  std::size_t total = 0;
  if (position_ < file_size && !out.empty()) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(out.size(), file_size - position_));
    while (total < want) {
      const std::uint64_t pos = position_ + total;
      const std::uint64_t page = pos / page_size;
      const std::size_t within = static_cast<std::size_t>(pos % page_size);
      const std::size_t take = std::min(want - total, page_size - within);
      {
        auto guard = fs_->pool_->pin(id_, page);
        std::memcpy(out.data() + total, guard.data().data() + within, take);
      }
      run_prefetch(page, file_size);
      total += take;
    }
    position_ += total;
  }
  const double ms = watch.elapsed_ms();
  fs_->stats_.record(IoOp::kRead, total, ms);
  return total;
}

void ManagedFile::read_exact(std::span<std::byte> out) {
  const std::size_t n = read(out);
  check<IoError>(n == out.size(),
                 "ManagedFile: short read from '" + name_ + "'");
}

std::size_t ManagedFile::write(std::span<const std::byte> data) {
  check<IoError>(fs_ != nullptr, "ManagedFile: write on closed file");
  Stopwatch watch;
  const std::size_t page_size = fs_->pool_->page_size();
  std::size_t total = 0;
  while (total < data.size()) {
    const std::uint64_t pos = position_ + total;
    const std::uint64_t page = pos / page_size;
    const std::size_t within = static_cast<std::size_t>(pos % page_size);
    const std::size_t take = std::min(data.size() - total, page_size - within);
    {
      auto guard = fs_->pool_->pin(id_, page);
      std::memcpy(guard.data().data() + within, data.data() + total, take);
      guard.mark_dirty(within + take);
    }
    run_prefetch(page);
    total += take;
  }
  position_ += total;
  const double ms = watch.elapsed_ms();
  fs_->stats_.record(IoOp::kWrite, total, ms);
  return total;
}

void ManagedFile::seek(std::uint64_t pos) {
  check<IoError>(fs_ != nullptr, "ManagedFile: seek on closed file");
  Stopwatch watch;
  position_ = pos;
  if (fs_->options_.prefetch_on_seek && size() > 0) {
    const std::size_t page_size = fs_->pool_->page_size();
    const std::uint64_t last_page = (size() - 1) / page_size;
    const std::uint64_t page = std::min(pos / page_size, last_page);
    // Touching the target page is what makes a cold seek expensive and a
    // warm seek nearly free — the Table 3/4 effect.
    fs_->pool_->prefetch(id_, page);
    run_prefetch(page);
  }
  const double ms = watch.elapsed_ms();
  fs_->stats_.record(IoOp::kSeek, pos, ms);
}

void ManagedFile::close() {
  if (fs_ == nullptr) return;
  Stopwatch watch;
  // Outstanding async readahead for this file must land before the backing
  // handle is released; flush_file drains on entry, so only the no-flush
  // configuration needs the explicit drain.
  if (fs_->options_.writeback_on_close) {
    fs_->pool_->flush_file(id_);
  } else {
    fs_->pool_->drain_prefetches();
  }
  {
    std::lock_guard<std::mutex> lock(fs_->prefetcher_mutex_);
    fs_->prefetcher_.forget(id_);
  }
  fs_->store_->close(id_);
  const double ms = watch.elapsed_ms();
  fs_->stats_.record(IoOp::kClose, 0, ms);
  fs_ = nullptr;
  id_ = kInvalidFile;
}

}  // namespace clio::io
