#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "io/file_store.hpp"
#include "io/io_stats.hpp"

namespace clio::io {

/// The operation classes an AsyncBackingStore accepts — the BackingStore
/// data path, verbatim.  Metadata operations (open/size/truncate/...) stay
/// synchronous on the BackingStore interface: they are cheap, rare, and
/// the pool calls them from setup paths, never from the I/O hot loop.
enum class AsyncOpKind : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  kReadv = 2,
  kWritev = 3,
};

[[nodiscard]] std::string_view async_op_name(AsyncOpKind kind);

/// One submitted storage operation.  The vectored part lists are *owned*
/// (vectors, not spans-of-spans) so an op can be copied and re-submitted
/// verbatim — the retry decorator depends on that — while the payload
/// buffers themselves stay caller-owned and must outlive the completion.
///
/// `user_data` is echoed on the completion untouched; batch submitters use
/// it to map completions (which arrive in any order) back to their work
/// items.
struct AsyncOp {
  AsyncOpKind kind = AsyncOpKind::kRead;
  FileId file = kInvalidFile;
  std::uint64_t offset = 0;
  std::uint64_t user_data = 0;
  std::span<std::byte> out{};             ///< kRead destination
  std::span<const std::byte> data{};      ///< kWrite source
  std::vector<std::span<std::byte>> read_parts;         ///< kReadv
  std::vector<std::span<const std::byte>> write_parts;  ///< kWritev

  [[nodiscard]] static AsyncOp make_read(FileId file, std::uint64_t offset,
                                         std::span<std::byte> out,
                                         std::uint64_t user_data = 0);
  [[nodiscard]] static AsyncOp make_write(FileId file, std::uint64_t offset,
                                          std::span<const std::byte> data,
                                          std::uint64_t user_data = 0);
  [[nodiscard]] static AsyncOp make_readv(
      FileId file, std::uint64_t offset,
      std::vector<std::span<std::byte>> parts, std::uint64_t user_data = 0);
  [[nodiscard]] static AsyncOp make_writev(
      FileId file, std::uint64_t offset,
      std::vector<std::span<const std::byte>> parts,
      std::uint64_t user_data = 0);

  [[nodiscard]] bool is_write() const {
    return kind == AsyncOpKind::kWrite || kind == AsyncOpKind::kWritev;
  }
  /// Total payload size of the op, summed over vectored parts.
  [[nodiscard]] std::uint64_t payload_bytes() const;
};

/// The typed per-op result of an async submission.  Errors travel as
/// std::exception_ptr so completions carry the exact exception taxonomy of
/// the sync path (util::TransientIoError vs util::IoError vs
/// util::TimeoutError) — rethrow() restores it, and decorators classify by
/// catching, exactly like the sync retry loop does.
struct AsyncCompletion {
  std::uint64_t user_data = 0;
  AsyncOpKind kind = AsyncOpKind::kRead;
  /// Bytes transferred.  For reads: actually-read count (short at EOF, 0
  /// past EOF — the read()/readv() contract).  For successful writes: the
  /// full payload.  Meaningless when `error` is set (a torn read's buffer
  /// is garbage, a torn write's persisted prefix is the error's problem).
  std::size_t bytes = 0;
  double ms = 0.0;  ///< submit-to-completion latency
  std::exception_ptr error;

  [[nodiscard]] bool ok() const { return error == nullptr; }
  void rethrow() const {
    if (error) std::rethrow_exception(error);
  }
};

/// Handle to one submitted batch.  Tickets are per-store, never reused,
/// and forgotten once every completion of the batch has been delivered.
using AsyncTicket = std::uint64_t;

/// Submission/completion interface over a backing store: submit a batch of
/// operations in one call, harvest typed per-op completions in whatever
/// order the backend finishes them.  This is the asynchronous face of
/// BackingStore — UringStore implements it with io_uring rings and batched
/// submit syscalls, ThreadPoolAsyncStore wraps any synchronous store so
/// SimFileStore, fault/retry decorators and non-Linux kernels keep working
/// behind the identical interface.
///
/// Contract, for every implementation:
///  - submit() never throws for per-op failures; those surface as
///    completions carrying the error.  It throws util::ConfigError only
///    for unusable batches (empty).
///  - Completions are delivered exactly once, split freely between poll()
///    calls and a final wait().  Order within a batch is unspecified.
///  - wait() blocks until every not-yet-delivered completion of the ticket
///    is available and returns them all; poll() never blocks.
///  - A fully-delivered (or unknown) ticket is forgotten: wait() returns
///    empty, poll() returns 0.  Tickets are not shared across stores.
///  - Payload buffers belong to the caller and must stay alive and
///    untouched until the op's completion has been delivered.
///
/// Thread-safety: submit/poll/wait may be called from any thread; waiting
/// on the same ticket from two threads concurrently is unspecified.
class AsyncBackingStore {
 public:
  virtual ~AsyncBackingStore() = default;

  /// Submits the whole batch in one call — for UringStore that is one
  /// io_uring_enter carrying every op — and returns the ticket the
  /// completions will be harvested under.
  virtual AsyncTicket submit(std::vector<AsyncOp> batch) = 0;

  /// Appends any newly-available completions for `ticket` to `out` and
  /// returns how many were appended.  Never blocks.
  virtual std::size_t poll(AsyncTicket ticket,
                           std::vector<AsyncCompletion>& out) = 0;

  /// Blocks until the batch is fully complete; returns every completion
  /// not already delivered through poll().
  virtual std::vector<AsyncCompletion> wait(AsyncTicket ticket) = 0;

  /// Mirrors submission/completion counters into an IoStats (not owned;
  /// bind before traffic or after quiescing).
  virtual void bind_stats(IoStats* stats) = 0;

  /// Convenience: submit one batch and block for all its completions.
  std::vector<AsyncCompletion> submit_and_wait(std::vector<AsyncOp> batch) {
    return wait(submit(std::move(batch)));
  }
};

/// Executes one AsyncOp synchronously against a BackingStore and packages
/// the outcome — bytes or the caught exception — as a completion.  The
/// shared execution body of ThreadPoolAsyncStore and of tests that need a
/// reference result.
[[nodiscard]] AsyncCompletion execute_sync_op(BackingStore& store,
                                              const AsyncOp& op);

/// AsyncBackingStore fallback over any synchronous BackingStore: a small
/// worker pool drains a FIFO of submitted ops and packages each sync call's
/// outcome as a completion.  With more than one worker, completions genuinely
/// reorder.  Because the workers call straight through the sync interface,
/// any decorator chain below (FaultStore, RetryingStore, VectoredStatsStore)
/// keeps working unchanged — faults and retries land inside the worker call
/// and surface in the completion.
///
/// Counts one submit "syscall" per executed op in the async counters: the
/// fallback pays one kernel round-trip per op, which is exactly the
/// batching deficit versus UringStore the syscalls-per-page stat exists to
/// show.
class ThreadPoolAsyncStore final : public AsyncBackingStore {
 public:
  explicit ThreadPoolAsyncStore(BackingStore& inner, std::size_t threads = 2);
  ~ThreadPoolAsyncStore() override;

  ThreadPoolAsyncStore(const ThreadPoolAsyncStore&) = delete;
  ThreadPoolAsyncStore& operator=(const ThreadPoolAsyncStore&) = delete;

  AsyncTicket submit(std::vector<AsyncOp> batch) override;
  std::size_t poll(AsyncTicket ticket,
                   std::vector<AsyncCompletion>& out) override;
  std::vector<AsyncCompletion> wait(AsyncTicket ticket) override;
  void bind_stats(IoStats* stats) override;

  [[nodiscard]] BackingStore& inner() { return inner_; }

 private:
  struct TicketState {
    std::size_t expected = 0;   ///< ops submitted under this ticket
    std::size_t completed = 0;  ///< completions produced so far
    std::vector<AsyncCompletion> ready;  ///< completed, not yet delivered
  };
  struct QueuedOp {
    AsyncOp op;
    AsyncTicket ticket = 0;
  };

  void worker();
  /// Files one completion under its ticket; mutex held by caller.
  void complete_locked(AsyncTicket ticket, AsyncCompletion completion);
  /// Drops the ticket once fully completed and fully delivered.
  void maybe_forget_locked(std::unordered_map<AsyncTicket,
                                              TicketState>::iterator it);

  BackingStore& inner_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< queue_ non-empty or stopping
  std::condition_variable done_cv_;  ///< a completion landed
  std::deque<QueuedOp> queue_;
  std::unordered_map<AsyncTicket, TicketState> tickets_;
  AsyncTicket next_ticket_ = 1;
  IoStats* stats_ = nullptr;  ///< not owned; guarded by mutex_
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace clio::io
