#include "io/retrying_store.hpp"

#include <chrono>
#include <thread>
#include <type_traits>

#include "util/error.hpp"

namespace clio::io {

using util::Deadline;
using util::DeadlineScope;
using util::TimeoutError;
using util::TransientIoError;

RetryingStore::RetryingStore(BackingStore& inner, RetryPolicy policy,
                             util::CircuitBreaker* breaker)
    : inner_(inner), policy_(policy), breaker_(breaker), rng_(policy.seed) {}

RetryingStore::RetryingStore(std::unique_ptr<BackingStore> inner,
                             RetryPolicy policy, util::CircuitBreaker* breaker)
    : owned_(std::move(inner)), inner_(*owned_), policy_(policy),
      breaker_(breaker), rng_(policy.seed) {}

// ------------------------------------------------------------ metadata ----

FileId RetryingStore::open(const std::string& name, bool create) {
  return inner_.open(name, create);
}
void RetryingStore::close(FileId id) { inner_.close(id); }
std::uint64_t RetryingStore::size(FileId id) const { return inner_.size(id); }
void RetryingStore::truncate(FileId id, std::uint64_t new_size) {
  inner_.truncate(id, new_size);
}
bool RetryingStore::exists(const std::string& name) const {
  return inner_.exists(name);
}
FileId RetryingStore::lookup(const std::string& name) const {
  return inner_.lookup(name);
}
void RetryingStore::remove(const std::string& name) { inner_.remove(name); }

// ------------------------------------------------------------- control ----

void RetryingStore::bind_stats(IoStats* stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  io_stats_ = stats;
}

RetryStats RetryingStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void RetryingStore::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = RetryStats{};
  rng_ = util::SplitMix64(policy_.seed);
}

std::uint64_t RetryingStore::next_backoff_seed() {
  std::lock_guard<std::mutex> lock(mutex_);
  return rng_.next();
}

// Counter notes.  Each takes the mutex once; the hot path (success on the
// first attempt) pays exactly one note_attempt().
void RetryingStore::note_attempt() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.attempts++;
}
void RetryingStore::note_retry() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.retries++;
  if (io_stats_ != nullptr) io_stats_->record_retry();
}
void RetryingStore::note_absorbed() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.absorbed++;
  if (io_stats_ != nullptr) io_stats_->record_absorbed_fault();
}
void RetryingStore::note_exhausted() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.exhausted++;
}
void RetryingStore::note_permanent() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.permanent++;
}
void RetryingStore::note_fast_fail() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.fast_fails++;
  if (io_stats_ != nullptr) io_stats_->record_breaker_fast_fail();
}
void RetryingStore::note_deadline_expiry() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.deadline_expiries++;
  if (io_stats_ != nullptr) io_stats_->record_deadline_expiry();
}
void RetryingStore::note_trip() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (io_stats_ != nullptr) io_stats_->record_breaker_trip();
}

// ------------------------------------------------------------ the loop ----

template <typename Fn>
auto RetryingStore::with_retries(const char* op, Fn&& fn) -> decltype(fn()) {
  // Effective deadline: the tighter of the per-op budget and the calling
  // thread's ambient (per-request) budget.
  Deadline deadline = DeadlineScope::current();
  if (policy_.op_deadline_ms > 0) {
    deadline =
        Deadline::earlier(deadline, Deadline::after_ms(policy_.op_deadline_ms));
  }
  util::Backoff backoff(policy_.backoff, next_backoff_seed());
  bool retried = false;
  for (;;) {
    if (breaker_ != nullptr && !breaker_->try_acquire()) {
      note_fast_fail();
      throw TransientIoError(std::string("RetryingStore: circuit open, ") +
                             op + " fast-failed");
    }
    note_attempt();
    try {
      if constexpr (std::is_void_v<decltype(fn())>) {
        fn();
        if (breaker_ != nullptr) breaker_->record_success();
        if (retried) note_absorbed();
        return;
      } else {
        auto result = fn();
        if (breaker_ != nullptr) breaker_->record_success();
        if (retried) note_absorbed();
        return result;
      }
    } catch (const TransientIoError&) {
      if (breaker_ != nullptr && breaker_->record_failure()) note_trip();
      if (backoff.exhausted()) {
        note_exhausted();
        throw;
      }
      const auto delay = backoff.next_delay();
      if (deadline.expired() || deadline.remaining() < delay) {
        note_deadline_expiry();
        throw TimeoutError(
            std::string("RetryingStore: deadline exhausted retrying ") + op);
      }
      std::this_thread::sleep_for(delay);
      retried = true;
      note_retry();
    } catch (const util::IoError&) {
      // Permanent storage semantics (torn write, disk full, closed id):
      // the store answered definitively.  Never retried, and recorded as a
      // breaker success — the infrastructure is reachable and responsive.
      if (breaker_ != nullptr) breaker_->record_success();
      note_permanent();
      throw;
    }
  }
}

// ------------------------------------------------------------- data ops ----

std::size_t RetryingStore::read(FileId id, std::uint64_t offset,
                                std::span<std::byte> out) {
  return with_retries("read", [&] { return inner_.read(id, offset, out); });
}

std::size_t RetryingStore::readv(FileId id, std::uint64_t offset,
                                 std::span<const std::span<std::byte>> parts) {
  return with_retries("readv", [&] { return inner_.readv(id, offset, parts); });
}

void RetryingStore::write(FileId id, std::uint64_t offset,
                          std::span<const std::byte> data) {
  with_retries("write", [&] { inner_.write(id, offset, data); });
}

void RetryingStore::writev(FileId id, std::uint64_t offset,
                           std::span<const std::span<const std::byte>> parts) {
  with_retries("writev", [&] { inner_.writev(id, offset, parts); });
}

}  // namespace clio::io
