#include "io/retrying_store.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <type_traits>
#include <utility>

#include "util/error.hpp"

namespace clio::io {

using util::Deadline;
using util::DeadlineScope;
using util::TimeoutError;
using util::TransientIoError;

RetryingStore::RetryingStore(BackingStore& inner, RetryPolicy policy,
                             util::CircuitBreaker* breaker)
    : StoreDecorator(inner), policy_(policy), breaker_(breaker),
      rng_(policy.seed) {}

RetryingStore::RetryingStore(std::unique_ptr<BackingStore> inner,
                             RetryPolicy policy, util::CircuitBreaker* breaker)
    : StoreDecorator(std::move(inner)), policy_(policy), breaker_(breaker),
      rng_(policy.seed) {}

// Metadata operations forward verbatim through StoreDecorator.

// ------------------------------------------------------------- control ----

void RetryingStore::bind_stats(IoStats* stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  io_stats_ = stats;
}

RetryStats RetryingStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void RetryingStore::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = RetryStats{};
  rng_ = util::SplitMix64(policy_.seed);
}

std::uint64_t RetryingStore::next_backoff_seed() {
  std::lock_guard<std::mutex> lock(mutex_);
  return rng_.next();
}

// Counter notes.  Each takes the mutex once; the hot path (success on the
// first attempt) pays exactly one note_attempt().
void RetryingStore::note_attempt() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.attempts++;
}
void RetryingStore::note_retry() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.retries++;
  if (io_stats_ != nullptr) io_stats_->record_retry();
}
void RetryingStore::note_absorbed() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.absorbed++;
  if (io_stats_ != nullptr) io_stats_->record_absorbed_fault();
}
void RetryingStore::note_exhausted() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.exhausted++;
}
void RetryingStore::note_permanent() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.permanent++;
}
void RetryingStore::note_fast_fail() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.fast_fails++;
  if (io_stats_ != nullptr) io_stats_->record_breaker_fast_fail();
}
void RetryingStore::note_deadline_expiry() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.deadline_expiries++;
  if (io_stats_ != nullptr) io_stats_->record_deadline_expiry();
}
void RetryingStore::note_trip() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (io_stats_ != nullptr) io_stats_->record_breaker_trip();
}

// ------------------------------------------------------------ the loop ----

template <typename Fn>
auto RetryingStore::with_retries(const char* op, Fn&& fn) -> decltype(fn()) {
  // Effective deadline: the tighter of the per-op budget and the calling
  // thread's ambient (per-request) budget.
  Deadline deadline = DeadlineScope::current();
  if (policy_.op_deadline_ms > 0) {
    deadline =
        Deadline::earlier(deadline, Deadline::after_ms(policy_.op_deadline_ms));
  }
  util::Backoff backoff(policy_.backoff, next_backoff_seed());
  bool retried = false;
  for (;;) {
    if (breaker_ != nullptr && !breaker_->try_acquire()) {
      note_fast_fail();
      throw TransientIoError(std::string("RetryingStore: circuit open, ") +
                             op + " fast-failed");
    }
    note_attempt();
    try {
      if constexpr (std::is_void_v<decltype(fn())>) {
        fn();
        if (breaker_ != nullptr) breaker_->record_success();
        if (retried) note_absorbed();
        return;
      } else {
        auto result = fn();
        if (breaker_ != nullptr) breaker_->record_success();
        if (retried) note_absorbed();
        return result;
      }
    } catch (const TransientIoError&) {
      if (breaker_ != nullptr && breaker_->record_failure()) note_trip();
      if (backoff.exhausted()) {
        note_exhausted();
        throw;
      }
      const auto delay = backoff.next_delay();
      if (deadline.expired() || deadline.remaining() < delay) {
        note_deadline_expiry();
        throw TimeoutError(
            std::string("RetryingStore: deadline exhausted retrying ") + op);
      }
      std::this_thread::sleep_for(delay);
      retried = true;
      note_retry();
    } catch (const util::IoError&) {
      // Permanent storage semantics (torn write, disk full, closed id):
      // the store answered definitively.  Never retried, and recorded as a
      // breaker success — the infrastructure is reachable and responsive.
      if (breaker_ != nullptr) breaker_->record_success();
      note_permanent();
      throw;
    }
  }
}

// ------------------------------------------------------------- data ops ----

std::size_t RetryingStore::read(FileId id, std::uint64_t offset,
                                std::span<std::byte> out) {
  return with_retries("read", [&] { return inner_.read(id, offset, out); });
}

std::size_t RetryingStore::readv(FileId id, std::uint64_t offset,
                                 std::span<const std::span<std::byte>> parts) {
  return with_retries("readv", [&] { return inner_.readv(id, offset, parts); });
}

void RetryingStore::write(FileId id, std::uint64_t offset,
                          std::span<const std::byte> data) {
  with_retries("write", [&] { inner_.write(id, offset, data); });
}

void RetryingStore::writev(FileId id, std::uint64_t offset,
                           std::span<const std::span<const std::byte>> parts) {
  with_retries("writev", [&] { inner_.writev(id, offset, parts); });
}

// ==================================================== RetryingAsyncStore ====

RetryingAsyncStore::RetryingAsyncStore(AsyncBackingStore& inner,
                                       RetryPolicy policy,
                                       util::CircuitBreaker* breaker)
    : inner_(inner), policy_(policy), breaker_(breaker), rng_(policy.seed) {}

void RetryingAsyncStore::bind_stats(IoStats* stats) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    io_stats_ = stats;
  }
  inner_.bind_stats(stats);
}

RetryStats RetryingAsyncStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t RetryingAsyncStore::next_backoff_seed_locked() {
  return rng_.next();
}

void RetryingAsyncStore::note_locked(void (IoStats::*record)(),
                                     std::uint64_t RetryStats::*counter) {
  if (counter != nullptr) stats_.*counter += 1;
  if (record != nullptr && io_stats_ != nullptr) (io_stats_->*record)();
}

namespace {

[[nodiscard]] AsyncCompletion synthesized_failure(const AsyncOp& op,
                                                  std::exception_ptr error) {
  AsyncCompletion c;
  c.user_data = op.user_data;
  c.kind = op.kind;
  c.bytes = 0;
  c.ms = 0.0;
  c.error = std::move(error);
  return c;
}

}  // namespace

AsyncTicket RetryingAsyncStore::submit(std::vector<AsyncOp> batch) {
  util::check<util::ConfigError>(!batch.empty(),
                                 "RetryingAsyncStore: empty batch");
  // Effective deadline, captured once for the whole batch: the tighter of
  // the per-op budget and the submitting thread's ambient request budget.
  // Harvest may happen on another thread, so the scope is bound now.
  Deadline deadline = DeadlineScope::current();
  if (policy_.op_deadline_ms > 0) {
    deadline =
        Deadline::earlier(deadline, Deadline::after_ms(policy_.op_deadline_ms));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const AsyncTicket ticket = next_ticket_++;
  TicketState& st = tickets_[ticket];
  st.ops.reserve(batch.size());

  std::vector<AsyncOp> forward;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    st.ops.push_back(OpState{
        .op = std::move(batch[i]),
        .backoff = util::Backoff(policy_.backoff, next_backoff_seed_locked()),
        .deadline = deadline,
    });
    OpState& op = st.ops.back();
    if (breaker_ != nullptr && !breaker_->try_acquire()) {
      note_locked(&IoStats::record_breaker_fast_fail, &RetryStats::fast_fails);
      settle_locked(st, op,
                    synthesized_failure(
                        op.op, std::make_exception_ptr(TransientIoError(
                                   "RetryingAsyncStore: circuit open, " +
                                   std::string(async_op_name(op.op.kind)) +
                                   " fast-failed"))));
      continue;
    }
    note_locked(nullptr, &RetryStats::attempts);
    // Forward a copy with user_data rewritten to the op index so inner
    // completions map back unambiguously even when callers reuse tags.
    AsyncOp copy = op.op;
    copy.user_data = i;
    forward.push_back(std::move(copy));
  }
  if (!forward.empty()) {
    const std::size_t owed = forward.size();
    st.inner_tickets.emplace_back(inner_.submit(std::move(forward)), owed);
  }
  return ticket;
}

void RetryingAsyncStore::settle_locked(TicketState& st, OpState& op,
                                       AsyncCompletion&& c) {
  op.settled = true;
  op.result = std::move(c);
  st.settled_count++;
}

void RetryingAsyncStore::process_completion_locked(TicketState& st,
                                                   AsyncCompletion&& c) {
  OpState& op = st.ops.at(static_cast<std::size_t>(c.user_data));
  c.user_data = op.op.user_data;  // restore the caller's tag
  if (c.ok()) {
    if (breaker_ != nullptr) breaker_->record_success();
    if (op.retried) {
      note_locked(&IoStats::record_absorbed_fault, &RetryStats::absorbed);
    }
    settle_locked(st, op, std::move(c));
    return;
  }
  try {
    std::rethrow_exception(c.error);
  } catch (const TransientIoError&) {
    if (breaker_ != nullptr && breaker_->record_failure()) {
      note_locked(&IoStats::record_breaker_trip, nullptr);
    }
    if (op.backoff.exhausted()) {
      note_locked(nullptr, &RetryStats::exhausted);
      settle_locked(st, op, std::move(c));
      return;
    }
    const auto delay = op.backoff.next_delay();
    if (op.deadline.expired() || op.deadline.remaining() < delay) {
      note_locked(&IoStats::record_deadline_expiry,
                  &RetryStats::deadline_expiries);
      settle_locked(
          st, op,
          synthesized_failure(
              op.op, std::make_exception_ptr(TimeoutError(
                         "RetryingAsyncStore: deadline exhausted retrying " +
                         std::string(async_op_name(op.op.kind))))));
      return;
    }
    op.awaiting_resubmit = true;
    op.next_attempt = Clock::now() + delay;
  } catch (const util::IoError&) {
    // Permanent storage semantics: never retried, breaker success (the
    // store answered definitively) — exactly the sync with_retries rules.
    if (breaker_ != nullptr) breaker_->record_success();
    note_locked(nullptr, &RetryStats::permanent);
    settle_locked(st, op, std::move(c));
  } catch (...) {
    settle_locked(st, op, std::move(c));
  }
}

void RetryingAsyncStore::resubmit_due_locked(TicketState& st,
                                             Clock::time_point now) {
  std::vector<AsyncOp> forward;
  for (std::size_t i = 0; i < st.ops.size(); ++i) {
    OpState& op = st.ops[i];
    if (!op.awaiting_resubmit || op.next_attempt > now) continue;
    op.awaiting_resubmit = false;
    if (breaker_ != nullptr && !breaker_->try_acquire()) {
      note_locked(&IoStats::record_breaker_fast_fail, &RetryStats::fast_fails);
      settle_locked(st, op,
                    synthesized_failure(
                        op.op, std::make_exception_ptr(TransientIoError(
                                   "RetryingAsyncStore: circuit open, " +
                                   std::string(async_op_name(op.op.kind)) +
                                   " fast-failed"))));
      continue;
    }
    op.retried = true;
    note_locked(&IoStats::record_retry, &RetryStats::retries);
    note_locked(&IoStats::record_async_resubmission, nullptr);
    note_locked(nullptr, &RetryStats::attempts);
    AsyncOp copy = op.op;
    copy.user_data = i;
    forward.push_back(std::move(copy));
  }
  if (!forward.empty()) {
    const std::size_t owed = forward.size();
    st.inner_tickets.emplace_back(inner_.submit(std::move(forward)), owed);
  }
}

std::size_t RetryingAsyncStore::drain_locked(TicketState& st,
                                             std::vector<AsyncCompletion>& out) {
  std::size_t n = 0;
  for (OpState& op : st.ops) {
    if (!op.settled || op.delivered) continue;
    op.delivered = true;
    st.delivered_count++;
    out.push_back(std::move(op.result));
    ++n;
  }
  return n;
}

std::size_t RetryingAsyncStore::poll(AsyncTicket ticket,
                                     std::vector<AsyncCompletion>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) return 0;
  TicketState& st = it->second;

  // Harvest whatever the inner store has ready, without blocking.
  std::vector<AsyncCompletion> got;
  for (auto& [inner_ticket, owed] : st.inner_tickets) {
    got.clear();
    inner_.poll(inner_ticket, got);
    owed -= got.size();
    for (AsyncCompletion& c : got) {
      process_completion_locked(st, std::move(c));
    }
  }
  std::erase_if(st.inner_tickets, [](const auto& t) { return t.second == 0; });

  // Re-submit only ops whose backoff has already elapsed — poll never sleeps.
  resubmit_due_locked(st, Clock::now());

  const std::size_t n = drain_locked(st, out);
  if (st.delivered_count == st.ops.size()) tickets_.erase(it);
  return n;
}

std::vector<AsyncCompletion> RetryingAsyncStore::wait(AsyncTicket ticket) {
  std::vector<AsyncCompletion> out;
  for (;;) {
    AsyncTicket pending_inner = 0;
    std::size_t pending_owed = 0;
    Clock::time_point sleep_until{};
    bool need_sleep = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = tickets_.find(ticket);
      if (it == tickets_.end()) return out;
      TicketState& st = it->second;

      resubmit_due_locked(st, Clock::now());
      if (!st.inner_tickets.empty()) {
        pending_inner = st.inner_tickets.front().first;
        pending_owed = st.inner_tickets.front().second;
      } else {
        // No inner work in flight: either everything settled, or some op
        // is waiting out its backoff delay.
        bool any_future = false;
        Clock::time_point earliest = Clock::time_point::max();
        for (const OpState& op : st.ops) {
          if (!op.awaiting_resubmit) continue;
          any_future = true;
          earliest = std::min(earliest, op.next_attempt);
        }
        if (!any_future) {
          drain_locked(st, out);
          tickets_.erase(it);
          return out;
        }
        need_sleep = true;
        sleep_until = earliest;
      }
    }
    if (need_sleep) {
      std::this_thread::sleep_until(sleep_until);
      continue;
    }
    // Block on the oldest inner ticket outside the lock (the inner store
    // has its own synchronization; our state for this ticket only changes
    // under mutex_, which we re-take before touching it).
    std::vector<AsyncCompletion> got = inner_.wait(pending_inner);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tickets_.find(ticket);
    if (it == tickets_.end()) return out;
    TicketState& st = it->second;
    for (AsyncCompletion& c : got) {
      process_completion_locked(st, std::move(c));
    }
    // A waited-on inner ticket is fully drained and forgotten by the inner
    // store, whatever a racing poll may have harvested first.
    (void)pending_owed;
    std::erase_if(st.inner_tickets,
                  [&](const auto& t) { return t.first == pending_inner; });
  }
}

}  // namespace clio::io
