#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "io/file_store.hpp"
#include "io/io_stats.hpp"
#include "util/error.hpp"

namespace clio::io {

/// Base of every BackingStore decorator (FaultStore, RetryingStore,
/// VectoredStatsStore): holds the inner store — owned or referenced — and
/// forwards every operation verbatim, *including the vectored data ops*.
/// A decorator that overrides nothing is fully transparent, and one that
/// forgets readv/writev no longer silently de-vectorizes the pool's
/// coalesced gathers into per-part calls (the base forwards the gather
/// whole; the de-vectorized BackingStore fallbacks are now opt-in via the
/// protected readv_fallback/writev_fallback helpers).
///
/// bind_stats() is the uniform observability seam: decorators that mirror
/// counters into an IoStats accept one here, the rest inherit the no-op,
/// so a whole chain can be bound without knowing its shape — see
/// bind_chain().
class StoreDecorator : public BackingStore {
 public:
  /// Decorates a store owned elsewhere (must outlive this).
  explicit StoreDecorator(BackingStore& inner) : inner_(inner) {}

  /// Decorates and owns the inner store — the shape ManagedFileSystem
  /// needs, since it takes its store by unique_ptr.
  explicit StoreDecorator(std::unique_ptr<BackingStore> inner)
      : owned_((util::check<util::ConfigError>(
                    inner != nullptr, "StoreDecorator: null inner store"),
                std::move(inner))),
        inner_(*owned_) {}

  FileId open(const std::string& name, bool create) override {
    return inner_.open(name, create);
  }
  void close(FileId id) override { inner_.close(id); }
  [[nodiscard]] std::uint64_t size(FileId id) const override {
    return inner_.size(id);
  }
  void truncate(FileId id, std::uint64_t new_size) override {
    inner_.truncate(id, new_size);
  }
  std::size_t read(FileId id, std::uint64_t offset,
                   std::span<std::byte> out) override {
    return inner_.read(id, offset, out);
  }
  void write(FileId id, std::uint64_t offset,
             std::span<const std::byte> data) override {
    inner_.write(id, offset, data);
  }
  void writev(FileId id, std::uint64_t offset,
              std::span<const std::span<const std::byte>> parts) override {
    inner_.writev(id, offset, parts);
  }
  std::size_t readv(FileId id, std::uint64_t offset,
                    std::span<const std::span<std::byte>> parts) override {
    return inner_.readv(id, offset, parts);
  }
  [[nodiscard]] bool exists(const std::string& name) const override {
    return inner_.exists(name);
  }
  [[nodiscard]] FileId lookup(const std::string& name) const override {
    return inner_.lookup(name);
  }
  void remove(const std::string& name) override { inner_.remove(name); }

  [[nodiscard]] BackingStore& inner() { return inner_; }

  /// Mirrors this decorator's counters into an IoStats (not owned; bind
  /// before traffic or after quiescing).  Default: no counters, no-op.
  virtual void bind_stats(IoStats* stats) { static_cast<void>(stats); }

  /// Binds one IoStats down a whole decorator chain: walks inner() through
  /// every StoreDecorator layer, calling bind_stats() on each, and stops at
  /// the first non-decorator (the terminal store).  Chains compose in any
  /// order — FaultStore over RetryingStore over VectoredStatsStore or any
  /// permutation — and the caller needs to know nothing about the shape.
  static void bind_chain(BackingStore& top, IoStats* stats) {
    for (auto* layer = dynamic_cast<StoreDecorator*>(&top); layer != nullptr;
         layer = dynamic_cast<StoreDecorator*>(&layer->inner())) {
      layer->bind_stats(stats);
    }
  }

 protected:
  std::unique_ptr<BackingStore> owned_;  ///< null when wrapping a reference
  BackingStore& inner_;
};

/// Decorator that times the vectored data ops into an IoStats under the
/// pool-internal kReadv/kWritev classes, making the coalescing ratios of
/// the flush and prefetch paths observable from stats alone.  Scalar
/// read/write forward untimed: ManagedFile already accounts those at the
/// trace-op layer, and double-counting would skew the totals.
///
/// Unbound (stats == nullptr) it is fully transparent.
class VectoredStatsStore final : public StoreDecorator {
 public:
  explicit VectoredStatsStore(BackingStore& inner, IoStats* stats = nullptr)
      : StoreDecorator(inner), stats_(stats) {}

  void writev(FileId id, std::uint64_t offset,
              std::span<const std::span<const std::byte>> parts) override;
  std::size_t readv(FileId id, std::uint64_t offset,
                    std::span<const std::span<std::byte>> parts) override;

  void bind_stats(IoStats* stats) override;

 private:
  [[nodiscard]] IoStats* stats() const;

  IoStats* stats_;  ///< not owned; may be null.  Guarded by mutex_.
  mutable std::mutex mutex_;
};

}  // namespace clio::io
