#include "obs/span.hpp"

#include <string>

namespace clio::obs {
namespace {

// Innermost active trace / span on this thread (the DeadlineScope ambient
// pattern: plain thread_local pointers, saved and restored by each scope).
thread_local TraceScope* t_ambient_trace = nullptr;
thread_local SpanScope* t_ambient_span = nullptr;

constexpr std::array<std::string_view, kStageCount> kStageNames = {
    "accept", "queue_wait", "parse", "handler", "storage_op", "send"};

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::string_view stage_name(Stage s) {
  return kStageNames.at(static_cast<std::size_t>(s));
}

RequestTracer::RequestTracer(MetricsRegistry& registry, std::uint64_t seed)
    : registry_(registry), seed_(seed) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::string name =
        "clio_request_stage_" +
        std::string(kStageNames[i]) + "_ns";
    stage_timers_[i] = &registry_.timer(name);
  }
  traces_started_ = &registry_.counter("clio_request_traces_started_total");
  spans_opened_ = &registry_.counter("clio_request_spans_opened_total");
  spans_closed_ = &registry_.counter("clio_request_spans_closed_total");
}

std::uint64_t RequestTracer::next_trace_id() {
  const std::uint64_t n = next_n_.fetch_add(1, std::memory_order_relaxed) + 1;
  return mix64(seed_ + n * 0x9e3779b97f4a7c15ULL);
}

void RequestTracer::record_stage(Stage stage, std::uint64_t ns) {
  stage_timers_[static_cast<std::size_t>(stage)]->record_ns(ns);
}

std::uint64_t RequestTracer::traces_started() const {
  return traces_started_->value();
}
std::uint64_t RequestTracer::spans_opened() const {
  return spans_opened_->value();
}
std::uint64_t RequestTracer::spans_closed() const {
  return spans_closed_->value();
}

TraceScope::TraceScope(RequestTracer& tracer)
    : tracer_(tracer),
      trace_id_(tracer.next_trace_id()),
      prev_trace_(t_ambient_trace),
      prev_span_(t_ambient_span) {
  t_ambient_trace = this;
  // Spans of an outer trace must not become parents of this trace's spans.
  t_ambient_span = nullptr;
  tracer_.traces_started_->inc();
}

TraceScope::~TraceScope() {
  t_ambient_trace = prev_trace_;
  t_ambient_span = prev_span_;
}

RequestTracer* TraceScope::ambient_tracer() {
  return t_ambient_trace != nullptr ? &t_ambient_trace->tracer_ : nullptr;
}

std::uint64_t TraceScope::ambient_trace_id() {
  return t_ambient_trace != nullptr ? t_ambient_trace->trace_id_ : 0;
}

SpanScope::SpanScope(Stage stage)
    : stage_(stage), tracer_(TraceScope::ambient_tracer()), parent_(nullptr) {
  if (tracer_ == nullptr) return;  // no ambient trace: inert span
  parent_ = t_ambient_span;
  t_ambient_span = this;
  tracer_->spans_opened_->inc();
}

SpanScope::~SpanScope() {
  if (tracer_ == nullptr) return;
  tracer_->record_stage(stage_,
                        static_cast<std::uint64_t>(watch_.elapsed_ns()));
  tracer_->spans_closed_->inc();
  t_ambient_span = parent_;
}

std::size_t SpanScope::depth() {
  std::size_t d = 0;
  for (SpanScope* s = t_ambient_span; s != nullptr; s = s->parent_) ++d;
  return d;
}

}  // namespace clio::obs
