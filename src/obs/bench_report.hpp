#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"

namespace clio::obs {

/// Machine-readable benchmark result: named scenarios, each carrying scalar
/// metrics and full latency distributions.  Every bench (and the load
/// generator) builds one of these alongside its human-readable tables, then
/// calls write_default() to drop `BENCH_<name>.json` for the CI perf
/// trajectory and `tools/bench_compare.py`.
///
/// Schema (version 1):
///   {"bench": "<name>", "schema": 1,
///    "scenarios": [
///      {"name": "...",
///       "metrics": {"<metric>": <double>, ...},
///       "distributions": {"<dist>": {count, total_ns, min_ns, max_ns,
///                                    mean_ns, p50_ns, p90_ns, p99_ns,
///                                    p999_ns, buckets: [...]}}}]}
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  /// Starts (or reopens) a scenario; subsequent metric()/distribution()
  /// calls attach to it.
  void scenario(std::string_view name);

  /// Scalar result in the current scenario (ops/s, MB/s, hit-rate, ...).
  void metric(std::string_view name, double value);

  /// Full latency distribution in the current scenario; captured as a
  /// Snapshot immediately, so the histogram may keep evolving afterwards.
  void distribution(std::string_view name, const util::LatencyHistogram& h);
  void distribution(std::string_view name,
                    const util::LatencyHistogram::Snapshot& s);

  [[nodiscard]] const std::string& bench_name() const { return bench_name_; }
  [[nodiscard]] std::size_t scenario_count() const { return scenarios_.size(); }

  void write_json(std::ostream& os) const;

  /// Writes `BENCH_<name>.json` into $CLIO_BENCH_JSON_DIR (default: the
  /// current directory) and returns the path; returns "" without writing
  /// when CLIO_BENCH_JSON=0 disables emission.  Throws IoError if the file
  /// cannot be written.
  std::string write_default() const;

 private:
  struct Scenario {
    std::string name;
    // Insertion-ordered: comparisons read nicer when order matches the
    // human tables.
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<std::pair<std::string, util::LatencyHistogram::Snapshot>>
        distributions;
  };

  Scenario& current();

  std::string bench_name_;
  std::vector<Scenario> scenarios_;
};

}  // namespace clio::obs
