#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace clio::obs {

/// Minimal streaming JSON writer — the single serializer behind every
/// machine-readable surface (`/statz`, `BENCH_*.json`).  Emits strictly
/// valid JSON: strings are escaped, numbers are finite (NaN/Inf degrade to
/// null), and object/array nesting is tracked so a structural misuse (a
/// value without a key inside an object, an unclosed scope at the end)
/// throws ConfigError instead of producing garbage a parser chokes on.
///
/// Usage is push-style:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("name"); w.value("micro_webserver");
///   w.key("rows"); w.begin_array(); w.value(1.0); w.end_array();
///   w.end_object();   // top-level scope closed: the document is complete
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = true);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key of the next value inside an object.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::uint64_t u);
  void value(std::int64_t i);
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(bool b);
  void null();

  // Key + value in one call — the common case.
  template <typename T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

  /// True once the top-level scope has been closed.
  [[nodiscard]] bool complete() const { return complete_; }

 private:
  enum class ScopeKind : std::uint8_t { kObject, kArray };
  struct Scope {
    ScopeKind kind;
    bool has_items = false;
    bool key_pending = false;  ///< object: key() emitted, value expected
  };

  void before_value();
  void write_escaped(std::string_view s);
  void newline_indent();

  std::ostream& os_;
  bool pretty_;
  bool complete_ = false;
  std::vector<Scope> scopes_;
};

}  // namespace clio::obs
