#include "obs/bench_report.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace clio::obs {

BenchReport::BenchReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  util::check<util::ConfigError>(!bench_name_.empty(),
                                 "BenchReport: bench name must be non-empty");
}

void BenchReport::scenario(std::string_view name) {
  for (auto& s : scenarios_) {
    if (s.name == name) {
      // Reopen: move it to the back so current() keeps appending to it.
      Scenario reopened = std::move(s);
      std::swap(s, scenarios_.back());
      scenarios_.back() = std::move(reopened);
      return;
    }
  }
  scenarios_.push_back(Scenario{std::string(name), {}, {}});
}

BenchReport::Scenario& BenchReport::current() {
  util::check<util::ConfigError>(
      !scenarios_.empty(),
      "BenchReport: call scenario() before metric()/distribution()");
  return scenarios_.back();
}

void BenchReport::metric(std::string_view name, double value) {
  current().metrics.emplace_back(std::string(name), value);
}

void BenchReport::distribution(std::string_view name,
                               const util::LatencyHistogram& h) {
  distribution(name, h.snapshot());
}

void BenchReport::distribution(std::string_view name,
                               const util::LatencyHistogram::Snapshot& s) {
  current().distributions.emplace_back(std::string(name), s);
}

void BenchReport::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.kv("bench", bench_name_);
  w.kv("schema", 1);
  w.key("scenarios");
  w.begin_array();
  for (const Scenario& s : scenarios_) {
    w.begin_object();
    w.kv("name", s.name);
    w.key("metrics");
    w.begin_object();
    for (const auto& [name, value] : s.metrics) w.kv(name, value);
    w.end_object();
    w.key("distributions");
    w.begin_object();
    for (const auto& [name, snap] : s.distributions) {
      w.key(name);
      write_histogram_json(w, snap);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string BenchReport::write_default() const {
  const char* toggle = std::getenv("CLIO_BENCH_JSON");
  if (toggle != nullptr && std::string_view(toggle) == "0") return "";
  const char* dir = std::getenv("CLIO_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
  if (path.back() != '/') path += '/';
  path += "BENCH_" + bench_name_ + ".json";
  std::ofstream out(path);
  util::check<util::IoError>(out.good(),
                             "BenchReport: cannot open " + path);
  write_json(out);
  out.flush();
  util::check<util::IoError>(out.good(),
                             "BenchReport: write failed for " + path);
  return path;
}

}  // namespace clio::obs
