#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace clio::obs {

/// Pipeline stages of one request's life through the web-serving path, in
/// pipeline order.  Each stage gets its own registry timer, so per-stage
/// latency quantiles fall out of the metrics snapshot.
enum class Stage : std::uint8_t {
  kAccept,      ///< accept(2) return → connection enqueued
  kQueueWait,   ///< enqueued → popped by a worker
  kParse,       ///< request bytes read + parsed
  kHandler,     ///< dispatch: routing + handler body (encloses the next two)
  kStorageOp,   ///< buffer-pool / storage work inside the handler
  kSend,        ///< response serialization + send
};

inline constexpr std::size_t kStageCount = 6;

[[nodiscard]] std::string_view stage_name(Stage s);

/// Per-server trace factory: owns the six stage timers plus the span
/// accounting counters, and mints deterministic trace IDs.
///
/// Determinism: trace id n (1-based) is the SplitMix64 finalizer mix of
/// `seed + n * golden_gamma`, i.e. the sequence of IDs for a given seed is
/// fixed regardless of threading — only the *assignment* of IDs to requests
/// varies with scheduling.  Under a single-connection deterministic load,
/// the full ID sequence is reproducible, which is what the tests pin down.
class RequestTracer {
 public:
  RequestTracer(MetricsRegistry& registry, std::uint64_t seed);

  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  /// Mints the next deterministic trace ID (thread-safe).
  std::uint64_t next_trace_id();

  /// Records a stage duration directly — for stages measured outside an
  /// ambient TraceScope (accept and queue-wait happen before the request
  /// exists).
  void record_stage(Stage stage, std::uint64_t ns);

  [[nodiscard]] MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Span accounting — opened must equal closed once traffic quiesces.
  [[nodiscard]] std::uint64_t traces_started() const;
  [[nodiscard]] std::uint64_t spans_opened() const;
  [[nodiscard]] std::uint64_t spans_closed() const;

 private:
  friend class TraceScope;
  friend class SpanScope;

  MetricsRegistry& registry_;
  std::uint64_t seed_;
  std::atomic<std::uint64_t> next_n_{0};
  std::array<Timer*, kStageCount> stage_timers_{};
  Counter* traces_started_ = nullptr;
  Counter* spans_opened_ = nullptr;
  Counter* spans_closed_ = nullptr;
};

/// Ambient per-request trace, riding the same thread-local pattern as
/// util::DeadlineScope: constructing one makes `tracer` and a fresh trace
/// ID ambient on this thread; SpanScopes opened below it record into that
/// tracer.  Nests (save/restore), so a request handled inside another
/// traced context keeps both traces intact.
class TraceScope {
 public:
  explicit TraceScope(RequestTracer& tracer);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }

  /// The tracer of the innermost active TraceScope on this thread, or
  /// nullptr when none — what SpanScope consults.
  [[nodiscard]] static RequestTracer* ambient_tracer();
  [[nodiscard]] static std::uint64_t ambient_trace_id();

 private:
  RequestTracer& tracer_;
  std::uint64_t trace_id_;
  TraceScope* prev_trace_;
  class SpanScope* prev_span_;
};

/// RAII stage span: times its scope and records the duration into the
/// ambient tracer's timer for `stage`.  A no-op when no TraceScope is
/// active on the thread (so library code can open spans unconditionally).
/// Spans nest; depth() reports the current nesting level for tests.
class SpanScope {
 public:
  explicit SpanScope(Stage stage);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  [[nodiscard]] Stage stage() const { return stage_; }
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  /// Nesting depth of active spans on this thread (0 = none).
  [[nodiscard]] static std::size_t depth();

 private:
  friend class TraceScope;

  Stage stage_;
  RequestTracer* tracer_;  ///< nullptr: inactive (no ambient trace)
  SpanScope* parent_;
  util::Stopwatch watch_;
};

}  // namespace clio::obs
