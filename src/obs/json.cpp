#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace clio::obs {

JsonWriter::JsonWriter(std::ostream& os, bool pretty)
    : os_(os), pretty_(pretty) {}

JsonWriter::~JsonWriter() = default;

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (std::size_t i = 0; i < scopes_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  util::check<util::ConfigError>(!complete_,
                                 "JsonWriter: document already complete");
  if (scopes_.empty()) return;  // top-level value
  Scope& top = scopes_.back();
  if (top.kind == ScopeKind::kObject) {
    util::check<util::ConfigError>(
        top.key_pending, "JsonWriter: value inside an object needs a key");
    top.key_pending = false;
    return;  // key() already wrote the separator and indent
  }
  if (top.has_items) os_ << ',';
  newline_indent();
  top.has_items = true;
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  scopes_.push_back(Scope{ScopeKind::kObject});
}

void JsonWriter::end_object() {
  util::check<util::ConfigError>(
      !scopes_.empty() && scopes_.back().kind == ScopeKind::kObject &&
          !scopes_.back().key_pending,
      "JsonWriter: end_object outside an object (or a key awaits its value)");
  const bool had_items = scopes_.back().has_items;
  scopes_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
  if (scopes_.empty()) {
    complete_ = true;
    if (pretty_) os_ << '\n';
  }
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  scopes_.push_back(Scope{ScopeKind::kArray});
}

void JsonWriter::end_array() {
  util::check<util::ConfigError>(
      !scopes_.empty() && scopes_.back().kind == ScopeKind::kArray,
      "JsonWriter: end_array outside an array");
  const bool had_items = scopes_.back().has_items;
  scopes_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
  if (scopes_.empty()) {
    complete_ = true;
    if (pretty_) os_ << '\n';
  }
}

void JsonWriter::key(std::string_view k) {
  util::check<util::ConfigError>(
      !scopes_.empty() && scopes_.back().kind == ScopeKind::kObject &&
          !scopes_.back().key_pending,
      "JsonWriter: key() is only valid inside an object, once per value");
  Scope& top = scopes_.back();
  if (top.has_items) os_ << ',';
  newline_indent();
  top.has_items = true;
  top.key_pending = true;
  write_escaped(k);
  os_ << (pretty_ ? ": " : ":");
}

void JsonWriter::write_escaped(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os_ << "\\\"";
        break;
      case '\\':
        os_ << "\\\\";
        break;
      case '\n':
        os_ << "\\n";
        break;
      case '\r':
        os_ << "\\r";
        break;
      case '\t':
        os_ << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

void JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(s);
}

void JsonWriter::value(double d) {
  before_value();
  if (!std::isfinite(d)) {
    os_ << "null";  // NaN/Inf are not JSON; null keeps the document valid
    return;
  }
  // Shortest round-trippable form; integral doubles print without ".0",
  // which JSON permits (every number is a double to a JSON parser anyway).
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Trim to a friendlier precision when it round-trips.
  char shorter[32];
  std::snprintf(shorter, sizeof(shorter), "%.6g", d);
  double reparsed = 0.0;
  std::sscanf(shorter, "%lf", &reparsed);
  os_ << (reparsed == d ? shorter : buf);
}

void JsonWriter::value(std::uint64_t u) {
  before_value();
  os_ << u;
}

void JsonWriter::value(std::int64_t i) {
  before_value();
  os_ << i;
}

void JsonWriter::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

}  // namespace clio::obs
