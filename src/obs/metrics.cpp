#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace clio::obs {
namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  auto tail = [&](char c) { return head(c) || (c >= '0' && c <= '9'); };
  if (!head(name.front())) return false;
  return std::all_of(name.begin() + 1, name.end(), tail);
}

void check_valid_name(std::string_view name) {
  util::check<util::ConfigError>(
      valid_metric_name(name),
      "metric name must match [a-zA-Z_:][a-zA-Z0-9_:]*: '" +
          std::string(name) + "'");
}

}  // namespace

std::string_view metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kTimer:
      return "timer";
  }
  return "unknown";
}

// ---------------------------------------------------------------- Timer

void Timer::record_ns(std::uint64_t ns) {
  std::lock_guard lock(mutex_);
  hist_.push(ns);
}

void Timer::merge(const util::LatencyHistogram& batch) {
  std::lock_guard lock(mutex_);
  hist_.merge(batch);
}

util::LatencyHistogram::Snapshot Timer::snapshot() const {
  std::lock_guard lock(mutex_);
  return hist_.snapshot();
}

void Timer::reset() {
  std::lock_guard lock(mutex_);
  hist_.reset();
}

// ------------------------------------------------------- MetricsSnapshot

std::optional<double> MetricsSnapshot::value(std::string_view name) const {
  for (const Scalar& s : scalars) {
    if (s.name == name) return s.value;
  }
  return std::nullopt;
}

const MetricsSnapshot::Distribution* MetricsSnapshot::distribution(
    std::string_view name) const {
  for (const Distribution& d : distributions) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

void MetricsSnapshot::render_prometheus(std::ostream& os) const {
  for (const Scalar& s : scalars) {
    const char* type =
        s.kind == MetricKind::kCounter ? "counter" : "gauge";
    os << "# TYPE " << s.name << ' ' << type << '\n';
    // Counters are integral by construction; print them without the
    // scientific-notation wobble a double stream would introduce.
    const auto integral = static_cast<long long>(s.value);
    if (static_cast<double>(integral) == s.value) {
      os << s.name << ' ' << integral << '\n';
    } else {
      os << s.name << ' ' << s.value << '\n';
    }
  }
  for (const Distribution& d : distributions) {
    os << "# TYPE " << d.name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& b : d.hist.buckets) {
      cumulative += b.count;
      os << d.name << "_bucket{le=\"" << b.hi_ns << "\"} " << cumulative
         << '\n';
    }
    os << d.name << "_bucket{le=\"+Inf\"} " << d.hist.count << '\n';
    os << d.name << "_sum " << d.hist.total_ns << '\n';
    os << d.name << "_count " << d.hist.count << '\n';
  }
}

void MetricsSnapshot::render_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("scalars");
  w.begin_object();
  for (const Scalar& s : scalars) w.kv(s.name, s.value);
  w.end_object();
  w.key("timers");
  w.begin_object();
  for (const Distribution& d : distributions) {
    w.key(d.name);
    write_histogram_json(w, d.hist);
  }
  w.end_object();
  w.end_object();
}

// ------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

void MetricsRegistry::check_name_free(const std::string& name) const {
  util::check<util::ConfigError>(
      counters_.find(name) == counters_.end() &&
          gauges_.find(name) == gauges_.end() &&
          timers_.find(name) == timers_.end() &&
          callbacks_.find(name) == callbacks_.end(),
      "metric name already registered under a different kind: " + name);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  check_valid_name(name);
  std::string key(name);
  std::lock_guard lock(mutex_);
  auto it = counters_.find(key);
  if (it != counters_.end()) return *it->second;
  check_name_free(key);
  counter_slots_.emplace_back();
  Counter& slot = counter_slots_.back();
  counters_.emplace(std::move(key), &slot);
  return slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  check_valid_name(name);
  std::string key(name);
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(key);
  if (it != gauges_.end()) return *it->second;
  check_name_free(key);
  gauge_slots_.emplace_back();
  Gauge& slot = gauge_slots_.back();
  gauges_.emplace(std::move(key), &slot);
  return slot;
}

Timer& MetricsRegistry::timer(std::string_view name) {
  check_valid_name(name);
  std::string key(name);
  std::lock_guard lock(mutex_);
  auto it = timers_.find(key);
  if (it != timers_.end()) return *it->second;
  check_name_free(key);
  timer_slots_.emplace_back();
  Timer& slot = timer_slots_.back();
  timers_.emplace(std::move(key), &slot);
  return slot;
}

MetricsRegistry::Registration MetricsRegistry::register_callback(
    std::string_view name, MetricKind kind, std::function<double()> fn) {
  check_valid_name(name);
  util::check<util::ConfigError>(kind != MetricKind::kTimer,
                                 "callback metrics must be counter or gauge");
  util::check<util::ConfigError>(static_cast<bool>(fn),
                                 "callback metric needs a callable");
  std::string key(name);
  std::lock_guard lock(mutex_);
  util::check<util::ConfigError>(
      callbacks_.find(key) == callbacks_.end(),
      "callback metric name already registered: " + key);
  check_name_free(key);
  const std::uint64_t id = next_callback_id_++;
  callbacks_.emplace(std::move(key), CallbackEntry{kind, std::move(fn), id});
  return Registration(this, id);
}

void MetricsRegistry::unregister_callback(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  for (auto it = callbacks_.begin(); it != callbacks_.end(); ++it) {
    if (it->second.id == id) {
      callbacks_.erase(it);
      return;
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard lock(mutex_);
  out.scalars.reserve(counters_.size() + gauges_.size() + callbacks_.size());
  for (const auto& [name, c] : counters_) {
    out.scalars.push_back({name, MetricKind::kCounter,
                           static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.scalars.push_back(
        {name, MetricKind::kGauge, static_cast<double>(g->value())});
  }
  for (const auto& [name, cb] : callbacks_) {
    out.scalars.push_back({name, cb.kind, cb.fn()});
  }
  std::sort(out.scalars.begin(), out.scalars.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  out.distributions.reserve(timers_.size());
  for (const auto& [name, t] : timers_) {
    out.distributions.push_back({name, t->snapshot()});
  }
  return out;
}

void MetricsRegistry::render_prometheus(std::ostream& os) const {
  snapshot().render_prometheus(os);
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& c : counter_slots_) c.reset();
  for (auto& g : gauge_slots_) g.reset();
  for (auto& t : timer_slots_) t.reset();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return counters_.size() + gauges_.size() + timers_.size() +
         callbacks_.size();
}

// ----------------------------------------------------------- Registration

MetricsRegistry::Registration::Registration(Registration&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

MetricsRegistry::Registration& MetricsRegistry::Registration::operator=(
    Registration&& other) noexcept {
  if (this != &other) {
    release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

MetricsRegistry::Registration::~Registration() { release(); }

void MetricsRegistry::Registration::release() {
  if (registry_ != nullptr) {
    registry_->unregister_callback(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

// --------------------------------------------------------------- helpers

void write_histogram_json(JsonWriter& w,
                          const util::LatencyHistogram::Snapshot& s) {
  w.begin_object();
  w.kv("count", s.count);
  w.kv("total_ns", s.total_ns);
  w.kv("min_ns", s.min_ns);
  w.kv("max_ns", s.max_ns);
  w.kv("mean_ns", s.mean_ns);
  w.kv("p50_ns", s.p50_ns);
  w.kv("p90_ns", s.p90_ns);
  w.kv("p99_ns", s.p99_ns);
  w.kv("p999_ns", s.p999_ns);
  w.key("buckets");
  w.begin_array();
  for (const auto& b : s.buckets) {
    w.begin_object();
    w.kv("lo_ns", b.lo_ns);
    w.kv("hi_ns", b.hi_ns);
    w.kv("count", b.count);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace clio::obs
