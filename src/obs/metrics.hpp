#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"

namespace clio::obs {

class JsonWriter;

/// Serializes a histogram snapshot as the canonical JSON shape shared by
/// `/statz` and `BENCH_*.json`:
/// {count, total_ns, min_ns, max_ns, mean_ns, p50_ns, p90_ns, p99_ns,
///  p999_ns, buckets: [{lo_ns, hi_ns, count}, ...]}.
void write_histogram_json(JsonWriter& w,
                          const util::LatencyHistogram::Snapshot& s);

/// What a metric means to a scraper.  kCounter values only ever grow
/// (Prometheus `counter`), kGauge values move both ways (`gauge`), kTimer
/// is a latency distribution (`histogram` in the exposition).
enum class MetricKind : std::uint8_t { kCounter, kGauge, kTimer };

[[nodiscard]] std::string_view metric_kind_name(MetricKind kind);

/// Monotonic counter.  Lock-free increments; safe from any thread.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Level that moves both ways (queue depth, resident pages).  Lock-free.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Histogram-backed duration recorder.  record_ns takes a short mutex (the
/// histogram's 64 buckets are not atomic); for genuinely hot paths keep a
/// thread-local util::LatencyHistogram and merge() it in batches — that is
/// the aggregation contract the histogram documents.
class Timer {
 public:
  void record_ns(std::uint64_t ns);
  /// Merges a whole per-thread histogram in one lock acquisition.
  void merge(const util::LatencyHistogram& batch);
  [[nodiscard]] util::LatencyHistogram::Snapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  util::LatencyHistogram hist_;
};

/// Point-in-time copy of a registry: plain data, safe to serialize long
/// after the registry (or the objects behind its callbacks) changed.
struct MetricsSnapshot {
  struct Scalar {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    double value = 0.0;
  };
  struct Distribution {
    std::string name;
    util::LatencyHistogram::Snapshot hist;
  };

  std::vector<Scalar> scalars;            ///< sorted by name
  std::vector<Distribution> distributions;  ///< sorted by name

  /// Value of a scalar by exact name (nullopt when absent) — test helper.
  [[nodiscard]] std::optional<double> value(std::string_view name) const;
  [[nodiscard]] const Distribution* distribution(std::string_view name) const;

  /// Prometheus text exposition format, version 0.0.4: counters/gauges as
  /// single samples, timers as cumulative `histogram` series with
  /// `_bucket{le=...}`, `_sum` and `_count`.
  void render_prometheus(std::ostream& os) const;

  /// The same snapshot as a JSON object: {"scalars": {...}, "timers": {...}}.
  void render_json(std::ostream& os) const;
};

/// Process-wide metrics registry: named counters, gauges and timers,
/// registered once (re-requesting a name returns the same instance), plus
/// callback metrics that read a value owned elsewhere at snapshot time —
/// how the existing stats structs (ServerStats, PoolStats, IoStats,
/// breaker Stats) publish without moving their hot-path counters.
///
/// Thread-safety: registration and snapshot take the registry mutex;
/// Counter/Gauge updates are lock-free on the returned objects, whose
/// addresses are stable for the registry's lifetime.  snapshot() reads
/// every metric under one lock acquisition, so a single snapshot is
/// consistent with respect to registrations (individual atomic reads are
/// racy by nature — a snapshot is a statistical cut, not a barrier).
///
/// Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* (the Prometheus
/// grammar); anything else throws util::ConfigError, as does re-requesting
/// a name under a different kind.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide instance.
  [[nodiscard]] static MetricsRegistry& global();

  /// Find-or-create.  The returned reference is stable until the registry
  /// is destroyed.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);

  /// RAII deregistration handle for a callback metric.  The callback reads
  /// state owned by its registrant, so it MUST be dropped before that
  /// state dies; default-constructed handles are empty.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept;
    Registration& operator=(Registration&& other) noexcept;
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration();

    void release();  ///< deregister now (idempotent)

   private:
    friend class MetricsRegistry;
    Registration(MetricsRegistry* registry, std::uint64_t id)
        : registry_(registry), id_(id) {}
    MetricsRegistry* registry_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// Registers a callback evaluated at snapshot time.  Throws ConfigError
  /// if the name is taken (by any metric) — callbacks proxy one specific
  /// owner, so a collision is a bug, not sharing.
  [[nodiscard]] Registration register_callback(std::string_view name,
                                               MetricKind kind,
                                               std::function<double()> fn);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  void render_prometheus(std::ostream& os) const;

  /// Zeroes every owned counter, gauge and timer (callbacks are skipped:
  /// their state belongs to the registrant).  Test/bench helper.
  void reset();

  /// Number of registered metrics of every kind (tests).
  [[nodiscard]] std::size_t size() const;

 private:
  friend class Registration;

  struct CallbackEntry {
    MetricKind kind;
    std::function<double()> fn;
    std::uint64_t id;
  };

  void unregister_callback(std::uint64_t id);
  void check_name_free(const std::string& name) const;  ///< mutex held

  mutable std::mutex mutex_;
  // Deques: stable addresses for the references handed out.
  std::deque<Counter> counter_slots_;
  std::deque<Gauge> gauge_slots_;
  std::deque<Timer> timer_slots_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Timer*> timers_;
  std::map<std::string, CallbackEntry> callbacks_;
  std::uint64_t next_callback_id_ = 1;
};

}  // namespace clio::obs
