#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace clio::util {

/// Writes the whole buffer to `path`, truncating any existing file.
void write_file(const std::filesystem::path& path,
                std::span<const std::byte> data);

/// Convenience overload for text content.
void write_text_file(const std::filesystem::path& path,
                     const std::string& text);

/// Reads the whole file.  Throws IoError if the file does not exist.
[[nodiscard]] std::vector<std::byte> read_file(
    const std::filesystem::path& path);

[[nodiscard]] std::string read_text_file(const std::filesystem::path& path);

/// File size in bytes; throws IoError if the file does not exist.
[[nodiscard]] std::uint64_t file_size(const std::filesystem::path& path);

/// Creates a file of exactly `size` bytes filled with a deterministic
/// pseudo-random pattern derived from `seed`.  This is the "sample file" the
/// paper's trace-driven benchmark issues its 1 GB of I/O against.  Data is
/// written in 1 MiB chunks so creating a large sample stays cheap on memory.
void create_sample_file(const std::filesystem::path& path, std::uint64_t size,
                        std::uint64_t seed = 42);

/// Fills `out` with the same deterministic pattern create_sample_file would
/// place at byte offset `offset` — lets tests verify read contents without
/// keeping a golden copy.
void expected_sample_bytes(std::uint64_t offset, std::span<std::byte> out,
                           std::uint64_t seed = 42);

}  // namespace clio::util
