#include "util/temp_dir.hpp"

#include <atomic>
#include <chrono>
#include <system_error>

#include "util/error.hpp"

namespace clio::util {
namespace {

std::uint64_t unique_token() {
  static std::atomic<std::uint64_t> counter{0};
  const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  return static_cast<std::uint64_t>(now) ^
         (counter.fetch_add(1, std::memory_order_relaxed) << 48);
}

}  // namespace

TempDir::TempDir(std::string_view prefix) {
  const auto root = std::filesystem::temp_directory_path();
  for (int attempt = 0; attempt < 64; ++attempt) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "-%016llx",
                  static_cast<unsigned long long>(unique_token()));
    auto candidate = root / (std::string(prefix) + suffix);
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec) && !ec) {
      path_ = std::move(candidate);
      return;
    }
  }
  throw IoError("TempDir: failed to create a unique temporary directory");
}

TempDir::TempDir(TempDir&& other) noexcept
    : path_(std::move(other.path_)), owned_(other.owned_) {
  other.owned_ = false;
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    if (owned_) remove_all_noexcept();
    path_ = std::move(other.path_);
    owned_ = other.owned_;
    other.owned_ = false;
    other.path_.clear();
  }
  return *this;
}

TempDir::~TempDir() {
  if (owned_) remove_all_noexcept();
}

std::filesystem::path TempDir::file(std::string_view name) const {
  return path_ / name;
}

std::filesystem::path TempDir::subdir(std::string_view name) const {
  auto dir = path_ / name;
  std::filesystem::create_directories(dir);
  return dir;
}

void TempDir::release() { owned_ = false; }

void TempDir::remove_all_noexcept() noexcept {
  if (path_.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
  // Swallow errors: destructor must not throw; a leaked temp dir is benign.
}

}  // namespace clio::util
