#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace clio::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line to stderr as "[LEVEL] message".  Thread-safe (one mutex
/// around the write, so lines never interleave).
void log_message(LogLevel level, std::string_view msg);

/// Concatenates heterogeneous arguments into a string via operator<<.
template <typename... Args>
[[nodiscard]] std::string cat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug) {
    log_message(LogLevel::kDebug, cat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo) {
    log_message(LogLevel::kInfo, cat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn) {
    log_message(LogLevel::kWarn, cat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError) {
    log_message(LogLevel::kError, cat(std::forward<Args>(args)...));
  }
}

}  // namespace clio::util
