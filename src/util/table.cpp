#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace clio::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  check<ConfigError>(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  check<ConfigError>(cells.size() == headers_.size(),
                     "TextTable: row width != header width");
  rows_.push_back(std::move(cells));
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    os << '+';
    for (auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void TextTable::render_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_ms(double ms) {
  char buf[64];
  const double mag = std::fabs(ms);
  if (mag != 0.0 && mag < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2E", ms);
  } else if (mag < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.4f", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", ms);
  }
  return buf;
}

std::string format_fixed(double v, int decimals) {
  check<ConfigError>(decimals >= 0 && decimals <= 17,
                     "format_fixed: decimals out of range");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace clio::util
