#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace clio::util {

/// SplitMix64 — used to seed the main generator and for cheap hashing.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator for all
/// synthetic workloads.  Deterministic given a seed, so every benchmark run
/// is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6c696f2d636c696fULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t bound) {
    check<ConfigError>(bound > 0, "uniform_u64: bound must be > 0");
    // 128-bit multiply-high.
    while (true) {
      const std::uint64_t x = next_u64();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) {
    check<ConfigError>(lo <= hi, "uniform_i64: lo must be <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_u64(span));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform_double() < p; }

  /// Exponentially distributed value with the given mean (inverse CDF).
  double exponential(double mean) {
    check<ConfigError>(mean > 0, "exponential: mean must be > 0");
    double u = uniform_double();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller with one cached deviate.
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (has_cached_) {
      has_cached_ = false;
      return mean + stddev * cached_;
    }
    double u1 = uniform_double();
    double u2 = uniform_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return mean + stddev * r * std::cos(theta);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_u64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// Zipf-distributed integers over {0, 1, ..., n-1} with exponent s.
/// Item 0 is the most popular.  Used for web-server file popularity and
/// data-mining item skew.  CDF-table inversion: O(n) setup, O(log n) sample.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s) : cdf_(n) {
    check<ConfigError>(n > 0, "ZipfDistribution: n must be > 0");
    check<ConfigError>(s >= 0.0, "ZipfDistribution: exponent must be >= 0");
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
    cdf_.back() = 1.0;  // guard against FP round-off
  }

  std::size_t operator()(Rng& rng) const {
    const double u = rng.uniform_double();
    // Binary search for the first CDF entry >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace clio::util
