#include "util/fs.hpp"

#include <fstream>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace clio::util {
namespace {

/// Deterministic byte at absolute file offset `off`: each 8-byte lane is a
/// SplitMix64 hash of its lane index, so any (offset, length) window can be
/// recomputed independently of how the file was produced.
inline std::uint64_t lane_value(std::uint64_t lane, std::uint64_t seed) {
  SplitMix64 sm(seed ^ (lane * 0x9e3779b97f4a7c15ULL + 1));
  return sm.next();
}

}  // namespace

void write_file(const std::filesystem::path& path,
                std::span<const std::byte> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  check<IoError>(out.good(), "write_file: cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  check<IoError>(out.good(), "write_file: short write to " + path.string());
}

void write_text_file(const std::filesystem::path& path,
                     const std::string& text) {
  write_file(path, std::as_bytes(std::span<const char>(text.data(),
                                                       text.size())));
}

std::vector<std::byte> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  check<IoError>(in.good(), "read_file: cannot open " + path.string());
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::byte> data(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  check<IoError>(in.good() || size == 0,
                 "read_file: short read from " + path.string());
  return data;
}

std::string read_text_file(const std::filesystem::path& path) {
  auto bytes = read_file(path);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

std::uint64_t file_size(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  check<IoError>(!ec, "file_size: cannot stat " + path.string());
  return size;
}

void expected_sample_bytes(std::uint64_t offset, std::span<std::byte> out,
                           std::uint64_t seed) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t abs = offset + i;
    const std::uint64_t lane = abs / 8;
    const std::uint64_t word = lane_value(lane, seed);
    out[i] = static_cast<std::byte>((word >> ((abs % 8) * 8)) & 0xff);
  }
}

void create_sample_file(const std::filesystem::path& path, std::uint64_t size,
                        std::uint64_t seed) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  check<IoError>(out.good(),
                 "create_sample_file: cannot open " + path.string());
  constexpr std::uint64_t kChunk = kMiB;
  std::vector<std::byte> chunk;
  std::uint64_t written = 0;
  while (written < size) {
    const std::uint64_t n = std::min(kChunk, size - written);
    chunk.resize(static_cast<std::size_t>(n));
    expected_sample_bytes(written, chunk, seed);
    out.write(reinterpret_cast<const char*>(chunk.data()),
              static_cast<std::streamsize>(n));
    check<IoError>(out.good(), "create_sample_file: short write");
    written += n;
  }
}

}  // namespace clio::util
