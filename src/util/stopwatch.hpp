#pragma once

#include <chrono>
#include <cstdint>

namespace clio::util {

/// Monotonic high-resolution interval timer.
///
/// Plays the role of Windows' QueryPerformanceCounter in the original paper:
/// every per-operation latency reported by the benchmarks is measured with a
/// Stopwatch.  Backed by std::chrono::steady_clock, so it is immune to wall
/// clock adjustments.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts timing immediately on construction.
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/restart in nanoseconds.
  [[nodiscard]] std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in microseconds (fractional).
  [[nodiscard]] double elapsed_us() const {
    return static_cast<double>(elapsed_ns()) / 1e3;
  }

  /// Elapsed time in milliseconds (fractional) — the unit used by every
  /// table in the paper.
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

  /// Elapsed time in seconds (fractional).
  [[nodiscard]] double elapsed_sec() const {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

  /// Raw monotonic timestamp in nanoseconds, for cross-thread event stamps.
  [[nodiscard]] static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

 private:
  Clock::time_point start_;
};

/// RAII helper that writes the elapsed milliseconds of its scope into a
/// caller-provided slot on destruction.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(double& out_ms) : out_ms_(out_ms) {}
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;
  ~ScopedTimerMs() { out_ms_ = watch_.elapsed_ms(); }

 private:
  double& out_ms_;
  Stopwatch watch_;
};

/// Burns CPU for approximately the requested number of nanoseconds by
/// spinning on the steady clock.  Used by the behavioral-model driver to
/// realize a phase's computation burst as real work.
inline void spin_for_ns(std::int64_t ns) {
  if (ns <= 0) return;
  const auto deadline = Stopwatch::Clock::now() + std::chrono::nanoseconds(ns);
  while (Stopwatch::Clock::now() < deadline) {
    // busy-wait; intentional
  }
}

}  // namespace clio::util
