#include "util/resilience.hpp"

#include <algorithm>
#include <cmath>

namespace clio::util {

namespace {
/// The ambient per-thread deadline DeadlineScope maintains.
thread_local Deadline t_ambient_deadline;
}  // namespace

DeadlineScope::DeadlineScope(Deadline deadline)
    : previous_(t_ambient_deadline) {
  t_ambient_deadline = Deadline::earlier(previous_, deadline);
}

DeadlineScope::~DeadlineScope() { t_ambient_deadline = previous_; }

Deadline DeadlineScope::current() { return t_ambient_deadline; }

std::chrono::microseconds Backoff::next_delay() {
  const std::uint32_t attempt = used_++;
  double delay = static_cast<double>(policy_.base_delay_us) *
                 std::pow(policy_.multiplier, static_cast<double>(attempt));
  delay = std::min(delay, static_cast<double>(policy_.max_delay_us));
  // Equal jitter: uniform in [delay/2, delay].
  const double u = static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
  const double jittered = delay / 2.0 + (delay / 2.0) * u;
  return std::chrono::microseconds(
      static_cast<std::uint64_t>(std::llround(jittered)));
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {}

void CircuitBreaker::refresh_state_locked() const {
  if (state_ == State::kOpen &&
      Clock::now() - opened_at_ >=
          std::chrono::milliseconds(config_.open_cooldown_ms)) {
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
  }
}

bool CircuitBreaker::try_acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  refresh_state_locked();
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      stats_.fast_fails++;
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) {
        stats_.fast_fails++;
        return false;
      }
      probe_in_flight_ = true;
      stats_.probes++;
      return true;
  }
  return true;  // unreachable
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  refresh_state_locked();
  stats_.successes++;
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    if (++half_open_successes_ >= config_.half_open_successes) {
      state_ = State::kClosed;
      half_open_successes_ = 0;
    }
  }
}

bool CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  refresh_state_locked();
  stats_.failures++;
  bool tripped = false;
  if (state_ == State::kHalfOpen) {
    // A failed probe re-opens immediately: the cooldown starts over.
    probe_in_flight_ = false;
    tripped = true;
  } else if (state_ == State::kClosed) {
    if (++consecutive_failures_ >= config_.failure_threshold) {
      tripped = true;
    }
  }
  if (tripped) {
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    consecutive_failures_ = 0;
    half_open_successes_ = 0;
    stats_.trips++;
  }
  return tripped;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  refresh_state_locked();
  return state_;
}

double CircuitBreaker::retry_after_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  refresh_state_locked();
  if (state_ != State::kOpen) return 0.0;
  const auto elapsed = Clock::now() - opened_at_;
  const auto cooldown = std::chrono::milliseconds(config_.open_cooldown_ms);
  const auto left =
      std::chrono::duration_cast<std::chrono::nanoseconds>(cooldown - elapsed);
  return left.count() > 0 ? static_cast<double>(left.count()) / 1e6 : 0.0;
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void CircuitBreaker::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kClosed;
  probe_in_flight_ = false;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  stats_ = Stats{};
}

std::string_view circuit_state_name(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

}  // namespace clio::util
