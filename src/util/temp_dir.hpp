#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace clio::util {

/// RAII temporary directory.  Created unique under the system temp root on
/// construction, recursively removed on destruction.  Every test and bench
/// that touches disk scopes its files inside a TempDir so runs never leak
/// state into each other.
class TempDir {
 public:
  /// Creates `<system-temp>/<prefix>-XXXXXXXX/`.
  explicit TempDir(std::string_view prefix = "clio");

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;

  ~TempDir();

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Path of a file inside the directory (not created).
  [[nodiscard]] std::filesystem::path file(std::string_view name) const;

  /// Creates and returns a subdirectory.
  [[nodiscard]] std::filesystem::path subdir(std::string_view name) const;

  /// Detaches ownership: the directory will NOT be removed on destruction.
  void release();

 private:
  void remove_all_noexcept() noexcept;

  std::filesystem::path path_;
  bool owned_ = true;
};

}  // namespace clio::util
