#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace clio::util {

double sorted_percentile(std::span<const double> sorted, double q) {
  check<ConfigError>(q >= 0.0 && q <= 1.0, "percentile: q must be in [0,1]");
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double percentile(std::span<const double> sample, double q) {
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  return sorted_percentile(copy, q);
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  if (sample.empty()) return s;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  RunningStats rs;
  for (double x : sorted) rs.push(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.sum = rs.sum();
  s.p50 = sorted_percentile(sorted, 0.50);
  s.p90 = sorted_percentile(sorted, 0.90);
  s.p99 = sorted_percentile(sorted, 0.99);
  return s;
}

double geomean(std::span<const double> sample) {
  check<ConfigError>(!sample.empty(), "geomean: empty sample");
  double log_sum = 0.0;
  for (double x : sample) {
    check<ConfigError>(x > 0.0, "geomean: all values must be > 0");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

void RunningStats::push(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel merge.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace clio::util
