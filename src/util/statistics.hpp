#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace clio::util {

/// Descriptive statistics of a sample, as reported in benchmark tables.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes a full Summary of the sample.  Returns a zeroed Summary for an
/// empty sample.
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Linear-interpolation percentile (q in [0,1]) of an *unsorted* sample.
/// Copies and sorts internally; use sorted_percentile for hot paths.
[[nodiscard]] double percentile(std::span<const double> sample, double q);

/// Percentile of an already ascending-sorted sample (no copy).
[[nodiscard]] double sorted_percentile(std::span<const double> sorted,
                                       double q);

/// Geometric mean; all values must be > 0.  Used for speedup aggregation.
[[nodiscard]] double geomean(std::span<const double> sample);

/// Streaming mean/variance via Welford's algorithm.  Numerically stable and
/// O(1) memory, suitable for million-operation replay runs.
class RunningStats {
 public:
  void push(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return n_ > 0 ? mean_ * n_ : 0.0; }

  /// Half-width of the 95% confidence interval on the mean, using the
  /// normal approximation (adequate for the n >= 30 samples benchmarks use).
  [[nodiscard]] double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace clio::util
