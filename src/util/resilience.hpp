#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "util/rng.hpp"

namespace clio::util {

/// A wall-clock budget for an operation or a request.  Default-constructed
/// deadlines are *unset* and never expire, so call sites can thread a
/// Deadline through unconditionally and only pay attention when one was
/// armed.  steady_clock-based: immune to wall-clock adjustments.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< unset: never expires

  [[nodiscard]] static Deadline after(std::chrono::nanoseconds budget) {
    Deadline d;
    d.at_ = Clock::now() + budget;
    d.set_ = true;
    return d;
  }

  [[nodiscard]] static Deadline after_ms(std::uint64_t ms) {
    return after(std::chrono::milliseconds(ms));
  }

  [[nodiscard]] bool set() const { return set_; }

  [[nodiscard]] bool expired() const {
    return set_ && Clock::now() >= at_;
  }

  /// Time left before expiry (0 when expired).  Unset deadlines report the
  /// maximum representable duration — "effectively forever".
  [[nodiscard]] std::chrono::nanoseconds remaining() const {
    if (!set_) return std::chrono::nanoseconds::max();
    const auto left = at_ - Clock::now();
    return left.count() > 0
               ? std::chrono::duration_cast<std::chrono::nanoseconds>(left)
               : std::chrono::nanoseconds::zero();
  }

  [[nodiscard]] double remaining_ms() const {
    if (!set_) return 1e300;
    return static_cast<double>(remaining().count()) / 1e6;
  }

  /// The earlier of two deadlines; an unset deadline always loses.
  [[nodiscard]] static Deadline earlier(Deadline a, Deadline b) {
    if (!a.set_) return b;
    if (!b.set_) return a;
    return a.at_ <= b.at_ ? a : b;
  }

 private:
  Clock::time_point at_{};
  bool set_ = false;
};

/// RAII scope installing an *ambient* per-thread deadline: the serving
/// layer arms one per request, and every storage call the handler makes on
/// that thread (pool miss loads, retry loops, backoff sleeps) can consult
/// it via current() without any signature changes down the stack.  Scopes
/// nest; an inner scope never extends an outer budget (the effective
/// deadline is the earlier of the two).
class DeadlineScope {
 public:
  explicit DeadlineScope(Deadline deadline);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

  /// The calling thread's ambient deadline (unset when no scope is active).
  [[nodiscard]] static Deadline current();

 private:
  Deadline previous_;
};

/// Policy for bounded exponential backoff between retries of a transient
/// failure.  Delay before retry k (1-based) is
///   min(max_delay_us, base_delay_us * multiplier^(k-1))
/// jittered uniformly into [delay/2, delay] ("equal jitter") so concurrent
/// retriers decorrelate instead of stampeding in lockstep.
struct BackoffPolicy {
  std::uint32_t max_retries = 3;       ///< retries after the first attempt
  std::uint32_t base_delay_us = 50;    ///< first retry delay (pre-jitter)
  std::uint32_t max_delay_us = 5000;   ///< exponential growth cap
  double multiplier = 2.0;
};

/// One seeded backoff sequence for one operation: deterministic given the
/// seed, so a seeded test replays the exact same sleep schedule.
class Backoff {
 public:
  Backoff(const BackoffPolicy& policy, std::uint64_t seed)
      : policy_(policy), rng_(seed) {}

  /// True once every allowed retry has been handed out.
  [[nodiscard]] bool exhausted() const { return used_ >= policy_.max_retries; }

  [[nodiscard]] std::uint32_t retries_used() const { return used_; }

  /// The jittered delay to sleep before the next retry; advances the
  /// attempt counter.  Call only while !exhausted().
  [[nodiscard]] std::chrono::microseconds next_delay();

 private:
  BackoffPolicy policy_;
  SplitMix64 rng_;
  std::uint32_t used_ = 0;
};

/// Circuit-breaker tuning.  Defaults are sized for the test/bench storm
/// plans: a handful of consecutive failures trips it, and recovery probes
/// start after a short cooldown.
struct CircuitBreakerConfig {
  std::uint32_t failure_threshold = 8;   ///< consecutive failures to trip
  std::uint32_t open_cooldown_ms = 250;  ///< open -> half-open delay
  std::uint32_t half_open_successes = 2; ///< probe successes to close
};

/// Classic three-state circuit breaker, shared between the storage retry
/// layer (which feeds it outcomes and fast-fails when it is open) and the
/// serving layer (which reads its state for /healthz and degraded-mode
/// 503s).  Thread-safe; time is steady_clock.
///
/// State machine:
///  - kClosed: calls flow; `failure_threshold` *consecutive* failures trip
///    it open (a success resets the streak).
///  - kOpen: try_acquire() fast-fails until `open_cooldown_ms` elapses,
///    then the next try_acquire() admits a single half-open probe.
///  - kHalfOpen: one probe in flight at a time; `half_open_successes`
///    successes close the breaker, any failure re-opens it (a fresh trip).
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  struct Stats {
    std::uint64_t successes = 0;   ///< outcomes recorded as success
    std::uint64_t failures = 0;    ///< outcomes recorded as failure
    std::uint64_t trips = 0;       ///< transitions into kOpen
    std::uint64_t fast_fails = 0;  ///< try_acquire() refusals
    std::uint64_t probes = 0;      ///< half-open probes admitted
  };

  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  /// Asks permission to issue a call.  false = fast-fail (the circuit is
  /// open, or a half-open probe is already in flight).  A true return MUST
  /// be paired with exactly one record_success()/record_failure().
  [[nodiscard]] bool try_acquire();

  void record_success();

  /// Records a failed call.  Returns true if this failure tripped the
  /// breaker open (so callers can account trips without re-reading state).
  bool record_failure();

  /// Logical state right now, cooldown expiry included (an open breaker
  /// whose cooldown has elapsed reads as kHalfOpen).
  [[nodiscard]] State state() const;

  /// Remaining cooldown in ms while open, 0 otherwise — the Retry-After
  /// hint the serving layer hands to clients in degraded mode.
  [[nodiscard]] double retry_after_ms() const;

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] CircuitBreakerConfig config() const { return config_; }

  /// Back to closed with counters cleared.
  void reset();

 private:
  using Clock = std::chrono::steady_clock;

  /// Applies cooldown expiry (open -> half-open); mutex held.
  void refresh_state_locked() const;

  CircuitBreakerConfig config_;
  mutable std::mutex mutex_;
  mutable State state_ = State::kClosed;
  mutable bool probe_in_flight_ = false;
  Clock::time_point opened_at_{};
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t half_open_successes_ = 0;
  Stats stats_;
};

[[nodiscard]] std::string_view circuit_state_name(CircuitBreaker::State s);

}  // namespace clio::util
