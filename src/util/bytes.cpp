#include "util/bytes.hpp"

#include <array>
#include <cctype>
#include <cstdio>

#include "util/error.hpp"

namespace clio::util {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::uint64_t parse_bytes(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  std::uint64_t value = 0;
  bool any_digit = false;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[i] - '0');
    check<ParseError>(value <= (UINT64_MAX - digit) / 10,
                      "parse_bytes: overflow");
    value = value * 10 + digit;
    any_digit = true;
    ++i;
  }
  check<ParseError>(any_digit, "parse_bytes: no digits");
  // Optional fractional part (format_bytes emits e.g. "1.5 MiB").
  double fraction = 0.0;
  if (i < text.size() && text[i] == '.') {
    ++i;
    double scale = 0.1;
    bool any_frac = false;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      fraction += scale * (text[i] - '0');
      scale *= 0.1;
      any_frac = true;
      ++i;
    }
    check<ParseError>(any_frac, "parse_bytes: dangling decimal point");
  }
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  std::string unit;
  while (i < text.size() &&
         std::isalpha(static_cast<unsigned char>(text[i]))) {
    unit += static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[i])));
    ++i;
  }
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  check<ParseError>(i == text.size(), "parse_bytes: trailing junk");

  std::uint64_t mult = 1;
  if (unit.empty() || unit == "b") {
    mult = 1;
  } else if (unit == "kib" || unit == "k") {
    mult = kKiB;
  } else if (unit == "mib" || unit == "m") {
    mult = kMiB;
  } else if (unit == "gib" || unit == "g") {
    mult = kGiB;
  } else if (unit == "kb") {
    mult = 1000ULL;
  } else if (unit == "mb") {
    mult = 1000ULL * 1000;
  } else if (unit == "gb") {
    mult = 1000ULL * 1000 * 1000;
  } else {
    throw ParseError("parse_bytes: unknown unit '" + unit + "'");
  }
  check<ParseError>(mult == 0 || value <= UINT64_MAX / mult,
                    "parse_bytes: overflow");
  check<ParseError>(fraction == 0.0 || mult > 1,
                    "parse_bytes: fractional bytes need a unit");
  const auto frac_bytes =
      static_cast<std::uint64_t>(fraction * static_cast<double>(mult) + 0.5);
  return value * mult + frac_bytes;
}

}  // namespace clio::util
