#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "util/error.hpp"

namespace clio::util {
namespace {

std::size_t bucket_of(std::uint64_t nanos) {
  if (nanos == 0) return 0;
  return static_cast<std::size_t>(63 - std::countl_zero(nanos));
}

std::uint64_t bucket_lo(std::size_t b) { return b == 0 ? 0 : (1ULL << b); }

std::uint64_t bucket_hi(std::size_t b) {
  return b >= 63 ? UINT64_MAX : (2ULL << b);
}

}  // namespace

void LatencyHistogram::push(std::uint64_t nanos) {
  buckets_[bucket_of(nanos)]++;
  if (count_ == 0) {
    min_ns_ = nanos;
    max_ns_ = nanos;
  } else {
    min_ns_ = std::min(min_ns_, nanos);
    max_ns_ = std::max(max_ns_, nanos);
  }
  ++count_;
  total_ns_ += nanos;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_ns_ = other.min_ns_;
    max_ns_ = other.max_ns_;
  } else {
    min_ns_ = std::min(min_ns_, other.min_ns_);
    max_ns_ = std::max(max_ns_, other.max_ns_);
  }
  count_ += other.count_;
  total_ns_ += other.total_ns_;
}

void LatencyHistogram::reset() { *this = LatencyHistogram{}; }

double LatencyHistogram::mean_ns() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(total_ns_) / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::quantile_ns(double q) const {
  check<ConfigError>(q >= 0.0 && q <= 1.0, "quantile_ns: q must be in [0,1]");
  if (count_ == 0) return 0;
  // The extreme quantiles are tracked exactly; interpolation would land
  // strictly inside the crossing bucket and miss them.
  if (q == 0.0) return min_ns_;
  if (q == 1.0) return max_ns_;
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t here = buckets_[b];
    if (here == 0) continue;
    if (static_cast<double>(seen + here) > rank) {
      // The rank falls in bucket b: interpolate linearly between its
      // bounds by the rank's position among the bucket's samples, then
      // clamp to the observed range — without the clamp, a single-bucket
      // distribution mis-reports its edges (and the last bucket's upper
      // bound is UINT64_MAX, which no sample ever hit).
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(here);
      const double interpolated = lo + frac * (hi - lo);
      const auto value = static_cast<std::uint64_t>(
          std::min(interpolated, static_cast<double>(UINT64_MAX)));
      return std::clamp(value, min_ns_, max_ns_);
    }
    seen += here;
  }
  return max_ns_;
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  s.count = count_;
  s.total_ns = total_ns_;
  s.min_ns = min_ns();
  s.max_ns = max_ns();
  s.mean_ns = mean_ns();
  if (count_ > 0) {
    s.p50_ns = quantile_ns(0.50);
    s.p90_ns = quantile_ns(0.90);
    s.p99_ns = quantile_ns(0.99);
    s.p999_ns = quantile_ns(0.999);
  }
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    s.buckets.push_back(Bucket{bucket_lo(b), bucket_hi(b), buckets_[b]});
  }
  return s;
}

void LatencyHistogram::render(std::ostream& os) const {
  const std::uint64_t max_count =
      *std::max_element(buckets_.begin(), buckets_.end());
  if (max_count == 0) {
    os << "(empty histogram)\n";
    return;
  }
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    os << "[" << bucket_lo(b) << ", " << bucket_hi(b)
       << ") ns: " << buckets_[b] << "  ";
    const auto bar = static_cast<std::size_t>(
        40.0 * static_cast<double>(buckets_[b]) /
        static_cast<double>(max_count));
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << '\n';
  }
}

}  // namespace clio::util
