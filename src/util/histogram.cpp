#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "util/error.hpp"

namespace clio::util {
namespace {

std::size_t bucket_of(std::uint64_t nanos) {
  if (nanos == 0) return 0;
  return static_cast<std::size_t>(63 - std::countl_zero(nanos));
}

}  // namespace

void LatencyHistogram::push(std::uint64_t nanos) {
  buckets_[bucket_of(nanos)]++;
  ++count_;
  total_ns_ += nanos;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  total_ns_ += other.total_ns_;
}

void LatencyHistogram::reset() { *this = LatencyHistogram{}; }

double LatencyHistogram::mean_ns() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(total_ns_) / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::quantile_ns(double q) const {
  check<ConfigError>(q >= 0.0 && q <= 1.0, "quantile_ns: q must be in [0,1]");
  if (count_ == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      // Upper bound of bucket b.
      return b >= 63 ? UINT64_MAX : (2ULL << b);
    }
  }
  return UINT64_MAX;
}

void LatencyHistogram::render(std::ostream& os) const {
  const std::uint64_t max_count =
      *std::max_element(buckets_.begin(), buckets_.end());
  if (max_count == 0) {
    os << "(empty histogram)\n";
    return;
  }
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t lo = (b == 0) ? 0 : (1ULL << b);
    const std::uint64_t hi = 2ULL << b;
    os << "[" << lo << ", " << hi << ") ns: " << buckets_[b] << "  ";
    const auto bar = static_cast<std::size_t>(
        40.0 * static_cast<double>(buckets_[b]) /
        static_cast<double>(max_count));
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << '\n';
  }
}

}  // namespace clio::util
