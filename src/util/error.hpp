#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace clio::util {

/// Root of the clio exception hierarchy.
class ClioError : public std::runtime_error {
 public:
  explicit ClioError(const std::string& what) : std::runtime_error(what) {}
};

/// Failures in the I/O subsystem (open/read/write/seek/close, buffer pool).
class IoError : public ClioError {
 public:
  explicit IoError(const std::string& what) : ClioError(what) {}
};

/// Failures while parsing textual inputs (IL assembly, trace dumps, configs).
class ParseError : public ClioError {
 public:
  explicit ParseError(const std::string& what) : ClioError(what) {}
};

/// Bytecode verification failures (bad stack depth, wild branch, etc.).
class VerifyError : public ClioError {
 public:
  explicit VerifyError(const std::string& what) : ClioError(what) {}
};

/// Managed-execution faults raised while running IL (division by zero,
/// out-of-range array access, stack overflow...).
class ExecutionError : public ClioError {
 public:
  explicit ExecutionError(const std::string& what) : ClioError(what) {}
};

/// Invalid benchmark/model configuration supplied by the caller.
class ConfigError : public ClioError {
 public:
  explicit ConfigError(const std::string& what) : ClioError(what) {}
};

/// Throws E{msg} when `ok` is false.  Used for precondition checks on public
/// API boundaries where a failed check is a caller bug, not a programming
/// error inside clio.
template <typename E = ClioError>
inline void check(bool ok, std::string_view msg) {
  if (!ok) throw E(std::string(msg));
}

}  // namespace clio::util
