#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace clio::util {

/// Root of the clio exception hierarchy.
class ClioError : public std::runtime_error {
 public:
  explicit ClioError(const std::string& what) : std::runtime_error(what) {}
};

/// Failures in the I/O subsystem (open/read/write/seek/close, buffer pool).
class IoError : public ClioError {
 public:
  explicit IoError(const std::string& what) : ClioError(what) {}
};

/// Transient I/O failures: the operation had no lasting side effect and a
/// retry may succeed (a clean EIO, an injected short read, a flaky medium).
/// The resilience layer (io::RetryingStore) retries exactly this class;
/// plain IoError means the store answered definitively (torn write, disk
/// full, bad handle) and MUST NOT be retried blindly.
class TransientIoError : public IoError {
 public:
  explicit TransientIoError(const std::string& what) : IoError(what) {}
};

/// An operation ran out of its deadline budget (a socket recv timeout, a
/// retry loop whose remaining budget cannot cover the next backoff).
/// Transient by nature: the same call with a fresh budget may succeed.
class TimeoutError : public TransientIoError {
 public:
  explicit TimeoutError(const std::string& what) : TransientIoError(what) {}
};

/// Could not reach the peer at all (connection refused / reset during
/// setup) — load generators count these separately from mid-exchange
/// failures because they indicate an unreachable server, not a flaky one.
class ConnectError : public IoError {
 public:
  explicit ConnectError(const std::string& what) : IoError(what) {}
};

/// Failures while parsing textual inputs (IL assembly, trace dumps, configs).
class ParseError : public ClioError {
 public:
  explicit ParseError(const std::string& what) : ClioError(what) {}
};

/// The peer vanished mid-message: bytes of a request/response arrived and
/// the connection closed before the message completed.  A ParseError (the
/// message is unparseable), but distinguishable so clients can report
/// "server disconnected" apart from "server sent garbage".
class PeerClosedError : public ParseError {
 public:
  explicit PeerClosedError(const std::string& what) : ParseError(what) {}
};

/// Bytecode verification failures (bad stack depth, wild branch, etc.).
class VerifyError : public ClioError {
 public:
  explicit VerifyError(const std::string& what) : ClioError(what) {}
};

/// Managed-execution faults raised while running IL (division by zero,
/// out-of-range array access, stack overflow...).
class ExecutionError : public ClioError {
 public:
  explicit ExecutionError(const std::string& what) : ClioError(what) {}
};

/// Invalid benchmark/model configuration supplied by the caller.
class ConfigError : public ClioError {
 public:
  explicit ConfigError(const std::string& what) : ClioError(what) {}
};

/// Throws E{msg} when `ok` is false.  Used for precondition checks on public
/// API boundaries where a failed check is a caller bug, not a programming
/// error inside clio.
template <typename E = ClioError>
inline void check(bool ok, std::string_view msg) {
  if (!ok) throw E(std::string(msg));
}

}  // namespace clio::util
