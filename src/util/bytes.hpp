#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace clio::util {

/// Formats a byte count with binary units, e.g. 131072 -> "128.0 KiB".
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Parses sizes like "64", "4KiB", "16 MB", "1GiB" (case-insensitive;
/// decimal units are powers of 1000, binary units powers of 1024).
/// Throws ParseError on malformed input or overflow.
[[nodiscard]] std::uint64_t parse_bytes(std::string_view text);

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * 1024;
inline constexpr std::uint64_t kGiB = 1024ULL * 1024 * 1024;

}  // namespace clio::util
