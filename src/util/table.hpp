#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace clio::util {

/// Fixed-width ASCII table renderer.  Every bench binary prints its paper
/// table/figure through this so the output format is uniform and diffable.
///
///   TextTable t({"Request", "Data size (Bytes)", "Seek Time (ms)"});
///   t.add_row({"1", "66617088", "9.43e-05"});
///   t.render(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with a box-drawing border, columns right-padded.
  void render(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing comma/quote/\n).
  void render_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double the way the paper's tables do: scientific for tiny
/// magnitudes (e.g. 7.33E-05), fixed otherwise, trimming trailing zeros.
[[nodiscard]] std::string format_ms(double ms);

/// Fixed-point with the given number of decimals.
[[nodiscard]] std::string format_fixed(double v, int decimals);

/// CSV-escapes a single cell.
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace clio::util
