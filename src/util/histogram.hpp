#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace clio::util {

/// Log2-bucketed latency histogram for nanosecond samples.
///
/// Bucket b holds samples in [2^b, 2^(b+1)) ns; bucket 0 also holds 0-ns
/// samples.  64 buckets cover the full uint64 range, so push never drops.
/// Cheap enough to keep on every I/O operation class during replay.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void push(std::uint64_t nanos);
  void merge(const LatencyHistogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t total_ns() const { return total_ns_; }
  [[nodiscard]] double mean_ns() const;

  /// Approximate quantile from bucket boundaries (upper bound of the bucket
  /// that crosses the rank).  q in [0, 1].
  [[nodiscard]] std::uint64_t quantile_ns(double q) const;

  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const {
    return buckets_.at(b);
  }

  /// Renders non-empty buckets as "[lo_ns, hi_ns): count" lines with a bar.
  void render(std::ostream& os) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t total_ns_ = 0;
};

}  // namespace clio::util
