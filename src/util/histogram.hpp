#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace clio::util {

/// Log2-bucketed latency histogram for nanosecond samples.
///
/// Bucket b holds samples in [2^b, 2^(b+1)) ns; bucket 0 also holds 0-ns
/// samples.  64 buckets cover the full uint64 range, so push never drops.
/// Cheap enough to keep on every I/O operation class during replay.
///
/// Not internally synchronized: the aggregation idiom is one histogram per
/// worker thread, lock-free push on the hot path, then merge() into a
/// shared instance (or a Snapshot) after the workers quiesce — exactly what
/// the load generator and the metrics timers do.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// One non-empty bucket of a Snapshot: samples in [lo_ns, hi_ns).
  struct Bucket {
    std::uint64_t lo_ns = 0;
    std::uint64_t hi_ns = 0;
    std::uint64_t count = 0;
  };

  /// Immutable copy of the distribution, cheap to pass across threads and
  /// the unit every machine-readable emitter (BENCH_*.json, /statz,
  /// /metrics) serializes.  Quantiles are precomputed at capture time so
  /// consumers need no histogram arithmetic.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    double mean_ns = 0.0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p90_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;
    std::vector<Bucket> buckets;  ///< non-empty buckets, ascending
  };

  void push(std::uint64_t nanos);

  /// Adds another histogram's buckets, counts and min/max into this one.
  /// This is the lock-free aggregation path: per-thread histograms merge
  /// after their threads quiesce, so the hot path never takes a lock.
  void merge(const LatencyHistogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t total_ns() const { return total_ns_; }
  [[nodiscard]] double mean_ns() const;
  /// Smallest / largest sample seen (0 when empty).  Tracked exactly, so
  /// quantiles can clamp to the observed range instead of reporting bucket
  /// edges that no sample ever reached.
  [[nodiscard]] std::uint64_t min_ns() const { return count_ ? min_ns_ : 0; }
  [[nodiscard]] std::uint64_t max_ns() const { return count_ ? max_ns_ : 0; }

  /// Approximate quantile, linearly interpolated inside the bucket that
  /// crosses the rank and clamped to [min_ns, max_ns].  The clamp fixes
  /// the former first/last-bucket edge error: a distribution living
  /// entirely in one bucket used to report that bucket's upper bound
  /// (and the last bucket reported UINT64_MAX); now q=0 reports min and
  /// q=1 reports max exactly.  q in [0, 1].
  [[nodiscard]] std::uint64_t quantile_ns(double q) const;

  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const {
    return buckets_.at(b);
  }

  [[nodiscard]] Snapshot snapshot() const;

  /// Renders non-empty buckets as "[lo_ns, hi_ns): count" lines with a bar.
  void render(std::ostream& os) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t total_ns_ = 0;
  std::uint64_t min_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace clio::util
