#include "trace/reader.hpp"

#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace clio::trace {
namespace {

constexpr char kMagic[8] = {'C', 'L', 'I', 'O', 'T', 'R', 'C', '1'};

template <typename T>
T get(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  util::check<util::ParseError>(in.good(), "read_trace: truncated trace");
  return value;
}

}  // namespace

TraceFile read_trace(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  util::check<util::ParseError>(in.good(),
                                "read_trace: cannot open " + path.string());
  char magic[8];
  in.read(magic, sizeof(magic));
  util::check<util::ParseError>(
      in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
      "read_trace: bad magic (not a clio trace)");

  TraceFile trace;
  trace.header.num_processes = get<std::uint32_t>(in);
  trace.header.num_files = get<std::uint32_t>(in);
  trace.header.num_records = get<std::uint64_t>(in);
  trace.header.record_offset = get<std::uint64_t>(in);
  const auto name_len = get<std::uint32_t>(in);
  util::check<util::ParseError>(name_len < (1u << 20),
                                "read_trace: implausible name length");
  trace.header.sample_file.resize(name_len);
  in.read(trace.header.sample_file.data(), name_len);
  util::check<util::ParseError>(in.good(), "read_trace: truncated name");

  // Honour record_offset as the authoritative position of the record array,
  // exactly like a UMD reader would.
  in.seekg(static_cast<std::streamoff>(trace.header.record_offset));
  util::check<util::ParseError>(in.good(), "read_trace: bad record offset");

  trace.records.reserve(trace.header.num_records);
  for (std::uint64_t i = 0; i < trace.header.num_records; ++i) {
    TraceRecord r;
    r.op = static_cast<TraceOp>(get<std::uint8_t>(in));
    r.count = get<std::uint32_t>(in);
    r.pid = get<std::uint32_t>(in);
    r.fid = get<std::uint32_t>(in);
    r.wall_clock = get<double>(in);
    r.proc_clock = get<double>(in);
    r.offset = get<std::uint64_t>(in);
    r.length = get<std::uint64_t>(in);
    trace.records.push_back(r);
  }
  validate(trace);
  return trace;
}

}  // namespace clio::trace
