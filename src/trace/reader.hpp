#pragma once

#include <filesystem>

#include "trace/format.hpp"

namespace clio::trace {

/// Parses a trace written by write_trace.  Throws ParseError on a bad magic,
/// truncated stream, or failed structural validation.
[[nodiscard]] TraceFile read_trace(const std::filesystem::path& path);

}  // namespace clio::trace
