#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>

#include "trace/format.hpp"

namespace clio::trace {

/// Workload-shape metrics of a trace, used to sanity-check that the
/// generated traces have the access-pattern character of the applications
/// they stand in for (sequential scans vs. strided panels vs. irregular).
struct TraceStats {
  std::array<std::uint64_t, io::kIoOpCount> op_counts{};
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t max_offset = 0;     ///< highest byte touched
  double duration_sec = 0.0;        ///< last wall clock stamp
  /// Fraction of read/write records whose offset equals the previous
  /// read/write's offset+length (1.0 = perfectly sequential stream).
  double sequentiality = 0.0;
  /// Mean request length over read/write records.
  double mean_request_bytes = 0.0;

  [[nodiscard]] std::uint64_t count(TraceOp op) const {
    return op_counts[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] std::uint64_t total_records() const;
};

[[nodiscard]] TraceStats compute_stats(const TraceFile& trace);

/// One-line-per-op summary plus shape metrics.
void render_stats(std::ostream& os, const TraceStats& stats);

}  // namespace clio::trace
