#include "trace/format.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace clio::trace {

void validate(const TraceFile& trace) {
  using util::ParseError;
  util::check<ParseError>(trace.header.num_records == trace.records.size(),
                          "trace: header record count mismatch");
  util::check<ParseError>(!trace.header.sample_file.empty(),
                          "trace: empty sample file name");
  util::check<ParseError>(trace.header.num_processes > 0,
                          "trace: num_processes must be > 0");
  util::check<ParseError>(trace.header.num_files > 0,
                          "trace: num_files must be > 0");

  double last_wall = 0.0;
  // Open/close balance per (pid, fid) can legitimately interleave across
  // processes; track the aggregate depth per fid which must never go
  // negative.
  std::vector<std::int64_t> open_depth(trace.header.num_files, 0);
  std::size_t index = 0;
  for (const auto& r : trace.records) {
    util::check<ParseError>(
        static_cast<std::uint8_t>(r.op) < io::kIoTraceOpCount,
        util::cat("trace: bad op code at record ", index));
    util::check<ParseError>(r.count >= 1,
                            util::cat("trace: zero count at record ", index));
    util::check<ParseError>(
        r.pid < trace.header.num_processes,
        util::cat("trace: pid out of range at record ", index));
    util::check<ParseError>(
        r.fid < trace.header.num_files,
        util::cat("trace: fid out of range at record ", index));
    util::check<ParseError>(
        r.wall_clock + 1e-12 >= last_wall,
        util::cat("trace: wall clock goes backwards at record ", index));
    last_wall = r.wall_clock;
    if (r.op == TraceOp::kOpen) {
      open_depth[r.fid] += r.count;
    } else if (r.op == TraceOp::kClose) {
      open_depth[r.fid] -= r.count;
      util::check<ParseError>(
          open_depth[r.fid] >= 0,
          util::cat("trace: close without open at record ", index));
    }
    ++index;
  }
}

}  // namespace clio::trace
