#pragma once

#include <cstdint>
#include <vector>

#include "io/managed_file.hpp"
#include "trace/format.hpp"

namespace clio::trace {

/// Replay policy.
struct ReplayOptions {
  bool keep_rows = true;        ///< retain one timed row per trace record
  bool verify_content = false;  ///< check read bytes against the sample
                                ///< pattern (slows replay; tests only)
  std::uint64_t sample_seed = 42;  ///< seed used to create the sample file
};

/// One replayed record with its measured latency — the unit the paper's
/// Tables 3 and 4 print ("Request number / Data size / Seek time / Read
/// time").
struct ReplayRow {
  std::size_t index = 0;
  TraceOp op = TraceOp::kRead;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  double ms = 0.0;
};

/// Aggregate of one replay run.
struct ReplayResult {
  std::vector<ReplayRow> rows;          ///< per-record timings (if kept)
  std::array<util::RunningStats, io::kIoOpCount> per_op;  ///< ms per class
  double wall_ms = 0.0;                 ///< end-to-end replay time
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  [[nodiscard]] const util::RunningStats& op(TraceOp o) const {
    return per_op[static_cast<std::size_t>(o)];
  }
};

/// Replays a trace against a ManagedFileSystem, timing every operation.
///
/// Semantics follow the paper (§3.3): read and write are issued at the
/// record's offset; "seek operations are performed from the beginning of
/// the file to the offset as mentioned in the trace files"; open/close act
/// on the sample file.  Records with count > 1 are issued `count` times
/// back-to-back, each timed individually.
class TraceReplayer {
 public:
  explicit TraceReplayer(io::ManagedFileSystem& fs, ReplayOptions options = {});

  /// Replays the whole trace.  The sample file named in the header must
  /// already exist in the file system (see util::create_sample_file).
  ReplayResult replay(const TraceFile& trace);

 private:
  io::ManagedFileSystem& fs_;
  ReplayOptions options_;
};

}  // namespace clio::trace
