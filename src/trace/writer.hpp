#pragma once

#include <filesystem>

#include "trace/format.hpp"
#include "util/stopwatch.hpp"

namespace clio::trace {

/// Serializes a trace to the clio binary container:
///
///   magic "CLIOTRC1" (8 bytes)
///   u32 num_processes, u32 num_files, u64 num_records
///   u64 record_offset   (filled in by the writer)
///   u32 sample_file length, bytes of the name
///   records, each packed little-endian:
///     u8 op, u32 count, u32 pid, u32 fid,
///     f64 wall_clock, f64 proc_clock, u64 offset, u64 length
///
/// The on-disk layout intentionally mirrors the UMD structure the paper
/// describes: a self-describing header followed by a flat record array at
/// `record_offset`.
void write_trace(const std::filesystem::path& path, const TraceFile& trace);

/// Incrementally builds a trace while a workload runs.  Wall-clock stamps
/// are taken from a monotonic stopwatch started at construction; process
/// clock is approximated by accumulated wall time (single-process capture).
class TraceRecorder {
 public:
  explicit TraceRecorder(std::string sample_file, std::uint32_t num_processes = 1,
                         std::uint32_t num_files = 1);

  /// Appends one record stamped `now`.
  void record(TraceOp op, std::uint64_t offset, std::uint64_t length,
              std::uint32_t pid = 0, std::uint32_t fid = 0,
              std::uint32_t count = 1);

  /// Overrides the header's process/file counts (e.g. after the capture
  /// layer has discovered how many workers/files participated).
  void set_counts(std::uint32_t num_processes, std::uint32_t num_files);

  /// Finalizes and returns the trace (header counts filled in).
  [[nodiscard]] TraceFile finish();

  [[nodiscard]] std::size_t records_so_far() const {
    return trace_.records.size();
  }

 private:
  TraceFile trace_;
  util::Stopwatch watch_;
};

}  // namespace clio::trace
