#include "trace/writer.hpp"

#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace clio::trace {
namespace {

constexpr char kMagic[8] = {'C', 'L', 'I', 'O', 'T', 'R', 'C', '1'};

template <typename T>
void put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

}  // namespace

void write_trace(const std::filesystem::path& path, const TraceFile& trace) {
  validate(trace);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  util::check<util::IoError>(out.good(),
                             "write_trace: cannot open " + path.string());
  out.write(kMagic, sizeof(kMagic));
  put(out, trace.header.num_processes);
  put(out, trace.header.num_files);
  put(out, static_cast<std::uint64_t>(trace.records.size()));
  // Header size is fixed given the name length, so record_offset is known.
  const std::uint64_t record_offset =
      sizeof(kMagic) + 4 + 4 + 8 + 8 + 4 + trace.header.sample_file.size();
  put(out, record_offset);
  put(out, static_cast<std::uint32_t>(trace.header.sample_file.size()));
  out.write(trace.header.sample_file.data(),
            static_cast<std::streamsize>(trace.header.sample_file.size()));
  for (const auto& r : trace.records) {
    put(out, static_cast<std::uint8_t>(r.op));
    put(out, r.count);
    put(out, r.pid);
    put(out, r.fid);
    put(out, r.wall_clock);
    put(out, r.proc_clock);
    put(out, r.offset);
    put(out, r.length);
  }
  util::check<util::IoError>(out.good(),
                             "write_trace: short write to " + path.string());
}

TraceRecorder::TraceRecorder(std::string sample_file,
                             std::uint32_t num_processes,
                             std::uint32_t num_files) {
  trace_.header.sample_file = std::move(sample_file);
  trace_.header.num_processes = num_processes;
  trace_.header.num_files = num_files;
}

void TraceRecorder::record(TraceOp op, std::uint64_t offset,
                           std::uint64_t length, std::uint32_t pid,
                           std::uint32_t fid, std::uint32_t count) {
  TraceRecord r;
  r.op = op;
  r.count = count;
  r.pid = pid;
  r.fid = fid;
  r.wall_clock = watch_.elapsed_sec();
  r.proc_clock = r.wall_clock;  // single-process capture approximation
  r.offset = offset;
  r.length = length;
  trace_.records.push_back(r);
}

void TraceRecorder::set_counts(std::uint32_t num_processes,
                               std::uint32_t num_files) {
  trace_.header.num_processes = num_processes;
  trace_.header.num_files = num_files;
}

TraceFile TraceRecorder::finish() {
  trace_.header.num_records = trace_.records.size();
  validate(trace_);
  return std::move(trace_);
}

}  // namespace clio::trace
