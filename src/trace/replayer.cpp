#include "trace/replayer.hpp"

#include <cstring>

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/stopwatch.hpp"

namespace clio::trace {

using util::Stopwatch;

TraceReplayer::TraceReplayer(io::ManagedFileSystem& fs, ReplayOptions options)
    : fs_(fs), options_(options) {}

ReplayResult TraceReplayer::replay(const TraceFile& trace) {
  validate(trace);
  ReplayResult result;
  Stopwatch total;

  // The paper replays all per-process streams against one sample file.
  // Each (pid, fid) pair owns a handle slot: multi-process traces (e.g.
  // Pgrep's workers) interleave opens and closes of the same fid, and the
  // streams must not steal each other's file positions.
  const std::size_t slots = static_cast<std::size_t>(
      trace.header.num_processes) * trace.header.num_files;
  std::vector<io::ManagedFile> handles(slots);
  std::vector<std::byte> buffer;
  buffer.reserve(1 << 20);

  auto slot_of = [&](const TraceRecord& r) -> io::ManagedFile& {
    return handles[static_cast<std::size_t>(r.pid) * trace.header.num_files +
                   r.fid];
  };
  auto ensure_open = [&](const TraceRecord& r) -> io::ManagedFile& {
    io::ManagedFile& h = slot_of(r);
    util::check<util::ParseError>(
        h.is_open(), "replay: read/write/seek before open in trace");
    return h;
  };

  std::size_t index = 0;
  for (const auto& r : trace.records) {
    for (std::uint32_t rep = 0; rep < r.count; ++rep) {
      double ms = 0.0;
      switch (r.op) {
        case TraceOp::kOpen: {
          Stopwatch w;
          slot_of(r) =
              fs_.open(trace.header.sample_file, io::OpenMode::kCreate);
          ms = w.elapsed_ms();
          break;
        }
        case TraceOp::kClose: {
          Stopwatch w;
          ensure_open(r).close();
          ms = w.elapsed_ms();
          break;
        }
        case TraceOp::kRead: {
          auto& h = ensure_open(r);
          buffer.resize(static_cast<std::size_t>(r.length));
          Stopwatch w;
          h.seek(r.offset);  // position; untimed side of the read
          const std::size_t got = h.read(buffer);
          ms = w.elapsed_ms();
          result.bytes_read += got;
          if (options_.verify_content && got > 0) {
            std::vector<std::byte> expected(got);
            util::expected_sample_bytes(r.offset, expected,
                                        options_.sample_seed);
            util::check<util::IoError>(
                std::memcmp(buffer.data(), expected.data(), got) == 0,
                "replay: read content mismatch");
          }
          break;
        }
        case TraceOp::kWrite: {
          auto& h = ensure_open(r);
          buffer.resize(static_cast<std::size_t>(r.length));
          util::expected_sample_bytes(r.offset, buffer, options_.sample_seed);
          Stopwatch w;
          h.seek(r.offset);
          h.write(buffer);
          ms = w.elapsed_ms();
          result.bytes_written += r.length;
          break;
        }
        case TraceOp::kSeek: {
          auto& h = ensure_open(r);
          Stopwatch w;
          // Paper semantics: seek from the beginning of the file to the
          // offset given in the trace.
          h.seek(0);
          h.seek(r.offset);
          ms = w.elapsed_ms();
          break;
        }
        case TraceOp::kReadv:
        case TraceOp::kWritev:
          // Vectored classes are pool-internal accounting, never trace
          // records; validate() rejects them (kIoTraceOpCount).
          break;
      }
      result.per_op[static_cast<std::size_t>(r.op)].push(ms);
      if (options_.keep_rows) {
        result.rows.push_back(ReplayRow{index, r.op, r.offset, r.length, ms});
      }
    }
    ++index;
  }
  // Close any handle the trace left open so dirty pages are persisted.
  for (auto& h : handles) {
    if (h.is_open()) h.close();
  }
  result.wall_ms = total.elapsed_ms();
  return result;
}

}  // namespace clio::trace
