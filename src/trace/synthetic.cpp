#include "trace/synthetic.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clio::trace {
namespace {

/// Shared scaffolding: stamps clocks, wraps ops in open/close.
class Builder {
 public:
  explicit Builder(const SyntheticOptions& options) : options_(options) {
    trace_.header.sample_file = options.sample_file;
    trace_.header.num_processes = options.pid + 1;
    trace_.header.num_files = options.fid + 1;
    push(TraceOp::kOpen, 0, 0);
  }

  void push(TraceOp op, std::uint64_t offset, std::uint64_t length) {
    TraceRecord r;
    r.op = op;
    r.pid = options_.pid;
    r.fid = options_.fid;
    r.offset = offset;
    r.length = length;
    r.wall_clock = clock_;
    r.proc_clock = clock_;
    clock_ += options_.inter_arrival_sec;
    trace_.records.push_back(r);
  }

  TraceFile finish() {
    push(TraceOp::kClose, 0, 0);
    trace_.header.num_records = trace_.records.size();
    validate(trace_);
    return std::move(trace_);
  }

 private:
  SyntheticOptions options_;
  TraceFile trace_;
  double clock_ = 0.0;
};

TraceFile linear(std::uint64_t total_bytes, std::uint64_t block, TraceOp op,
                 const SyntheticOptions& options) {
  util::check<util::ConfigError>(block > 0, "synthetic: block must be > 0");
  Builder b(options);
  std::uint64_t offset = 0;
  while (offset < total_bytes) {
    const std::uint64_t len = std::min(block, total_bytes - offset);
    b.push(op, offset, len);
    offset += len;
  }
  return b.finish();
}

}  // namespace

TraceFile sequential_read(std::uint64_t total_bytes, std::uint64_t block,
                          const SyntheticOptions& options) {
  return linear(total_bytes, block, TraceOp::kRead, options);
}

TraceFile sequential_write(std::uint64_t total_bytes, std::uint64_t block,
                           const SyntheticOptions& options) {
  return linear(total_bytes, block, TraceOp::kWrite, options);
}

TraceFile strided_read(std::uint64_t start, std::uint64_t block,
                       std::uint64_t stride, std::size_t count,
                       const SyntheticOptions& options) {
  util::check<util::ConfigError>(block > 0, "synthetic: block must be > 0");
  util::check<util::ConfigError>(stride > 0, "synthetic: stride must be > 0");
  Builder b(options);
  std::uint64_t offset = start;
  for (std::size_t i = 0; i < count; ++i) {
    b.push(TraceOp::kRead, offset, block);
    offset += stride;
  }
  return b.finish();
}

TraceFile random_read(std::uint64_t file_size, std::uint64_t block,
                      std::size_t count, std::uint64_t seed,
                      const SyntheticOptions& options) {
  util::check<util::ConfigError>(block > 0 && block <= file_size,
                                 "synthetic: block must be in (0, file_size]");
  Builder b(options);
  util::Rng rng(seed);
  const std::uint64_t blocks = file_size / block;
  for (std::size_t i = 0; i < count; ++i) {
    b.push(TraceOp::kRead, rng.uniform_u64(blocks) * block, block);
  }
  return b.finish();
}

TraceFile seek_sequence(const std::vector<std::uint64_t>& offsets,
                        const SyntheticOptions& options) {
  Builder b(options);
  for (auto off : offsets) b.push(TraceOp::kSeek, off, 0);
  return b.finish();
}

TraceFile seek_read_sequence(const std::vector<Request>& requests,
                             const SyntheticOptions& options) {
  Builder b(options);
  for (const auto& req : requests) {
    b.push(TraceOp::kSeek, req.offset, 0);
    b.push(TraceOp::kRead, req.offset, req.length);
  }
  return b.finish();
}

}  // namespace clio::trace
