#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/format.hpp"

namespace clio::trace {

/// Parametric trace generators.
///
/// The UMD trace files the paper replays are not publicly archived, so the
/// suite substitutes (a) traces captured from real reimplementations of the
/// five applications (src/apps) and (b) these parametric generators, which
/// produce the canonical access-pattern families the UMD study documented:
/// whole-file sequential scans, fixed-stride panel walks, and irregular
/// offset lists.  All generators emit open ... ops ... close and stamp
/// synthetic wall-clock times at the given inter-arrival gap.

struct SyntheticOptions {
  std::string sample_file = "sample.bin";
  double inter_arrival_sec = 1e-4;  ///< wall-clock gap between records
  std::uint32_t pid = 0;
  std::uint32_t fid = 0;
};

/// open, then ceil(total_bytes / block) sequential reads, then close.
[[nodiscard]] TraceFile sequential_read(std::uint64_t total_bytes,
                                        std::uint64_t block,
                                        const SyntheticOptions& options = {});

/// Like sequential_read but writing.
[[nodiscard]] TraceFile sequential_write(std::uint64_t total_bytes,
                                         std::uint64_t block,
                                         const SyntheticOptions& options = {});

/// Reads `count` blocks of `block` bytes, advancing the offset by `stride`
/// between them (stride >= block gives the out-of-core panel pattern).
[[nodiscard]] TraceFile strided_read(std::uint64_t start, std::uint64_t block,
                                     std::uint64_t stride, std::size_t count,
                                     const SyntheticOptions& options = {});

/// `count` reads at uniformly random block-aligned offsets within
/// [0, file_size).
[[nodiscard]] TraceFile random_read(std::uint64_t file_size,
                                    std::uint64_t block, std::size_t count,
                                    std::uint64_t seed,
                                    const SyntheticOptions& options = {});

/// Pure seek workload: one seek record per entry of `offsets`
/// (the LU Table-3 shape).
[[nodiscard]] TraceFile seek_sequence(const std::vector<std::uint64_t>& offsets,
                                      const SyntheticOptions& options = {});

/// Interleaved seek+read pairs at the given (offset, length) requests
/// (the Cholesky Table-4 shape).
struct Request {
  std::uint64_t offset;
  std::uint64_t length;
};
[[nodiscard]] TraceFile seek_read_sequence(const std::vector<Request>& requests,
                                           const SyntheticOptions& options = {});

}  // namespace clio::trace
