#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/io_stats.hpp"

namespace clio::trace {

/// Operation codes exactly as the paper specifies for the UMD trace format:
/// "Open=0, Close=1, Read=2, Write=3, Seek=4".
using TraceOp = io::IoOp;

/// Trace file header.  The paper (§3.2): "The trace file header contains
/// parameters for number of processes, number of files, number of records,
/// offset to the trace records and the sample file on which the I/O
/// operations will be issued."
struct TraceHeader {
  std::uint32_t num_processes = 1;
  std::uint32_t num_files = 1;
  std::uint64_t num_records = 0;
  std::uint64_t record_offset = 0;  ///< byte offset of record array on disk
  std::string sample_file;          ///< target file for replayed I/O
};

/// One trace record.  The paper (§3.2): "Each trace record contains
/// parameters corresponding to the I/O operation to be performed, number of
/// records for which the I/O operation need to be performed, process id,
/// field, wall clock time, process clock time, offset, length."
struct TraceRecord {
  TraceOp op = TraceOp::kRead;
  std::uint32_t count = 1;     ///< repetitions of the operation
  std::uint32_t pid = 0;       ///< issuing process
  std::uint32_t fid = 0;       ///< file ("field") index within the trace
  double wall_clock = 0.0;     ///< seconds since trace start
  double proc_clock = 0.0;     ///< CPU seconds consumed by the process
  std::uint64_t offset = 0;    ///< byte offset of the operation
  std::uint64_t length = 0;    ///< byte length (0 for open/close)

  bool operator==(const TraceRecord&) const = default;
};

/// A complete in-memory trace.
struct TraceFile {
  TraceHeader header;
  std::vector<TraceRecord> records;
};

/// Structural validation: op codes in range, record count consistent with
/// the header, wall clock non-decreasing, open/close balance never negative.
/// Throws ParseError describing the first violation.
void validate(const TraceFile& trace);

/// Human-readable op mnemonic (reuses the I/O subsystem's naming).
[[nodiscard]] inline std::string_view op_name(TraceOp op) {
  return io::io_op_name(op);
}

}  // namespace clio::trace
