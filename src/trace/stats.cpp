#include "trace/stats.hpp"

#include <ostream>

#include "util/table.hpp"

namespace clio::trace {

std::uint64_t TraceStats::total_records() const {
  std::uint64_t total = 0;
  for (auto c : op_counts) total += c;
  return total;
}

TraceStats compute_stats(const TraceFile& trace) {
  TraceStats stats;
  std::uint64_t sequential = 0;
  std::uint64_t transfers = 0;
  std::uint64_t transfer_bytes = 0;
  std::uint64_t next_sequential = UINT64_MAX;
  for (const auto& r : trace.records) {
    stats.op_counts[static_cast<std::size_t>(r.op)] += r.count;
    stats.duration_sec = r.wall_clock;
    const std::uint64_t span = r.length * r.count;
    switch (r.op) {
      case TraceOp::kRead:
        stats.bytes_read += span;
        break;
      case TraceOp::kWrite:
        stats.bytes_written += span;
        break;
      default:
        break;
    }
    if (r.op == TraceOp::kRead || r.op == TraceOp::kWrite) {
      stats.max_offset = std::max(stats.max_offset, r.offset + span);
      transfers += 1;
      transfer_bytes += span;
      if (r.offset == next_sequential) ++sequential;
      next_sequential = r.offset + span;
    } else if (r.op == TraceOp::kSeek) {
      stats.max_offset = std::max(stats.max_offset, r.offset);
    }
  }
  if (transfers > 1) {
    stats.sequentiality =
        static_cast<double>(sequential) / static_cast<double>(transfers - 1);
  }
  if (transfers > 0) {
    stats.mean_request_bytes =
        static_cast<double>(transfer_bytes) / static_cast<double>(transfers);
  }
  return stats;
}

void render_stats(std::ostream& os, const TraceStats& stats) {
  util::TextTable table({"metric", "value"});
  for (std::size_t i = 0; i < io::kIoOpCount; ++i) {
    table.add_row({std::string(io::io_op_name(static_cast<io::IoOp>(i))) +
                       " ops",
                   std::to_string(stats.op_counts[i])});
  }
  table.add_row({"bytes read", std::to_string(stats.bytes_read)});
  table.add_row({"bytes written", std::to_string(stats.bytes_written)});
  table.add_row({"max offset", std::to_string(stats.max_offset)});
  table.add_row({"duration (s)", util::format_fixed(stats.duration_sec, 3)});
  table.add_row({"sequentiality", util::format_fixed(stats.sequentiality, 3)});
  table.add_row(
      {"mean request (B)", util::format_fixed(stats.mean_request_bytes, 1)});
  table.render(os);
}

}  // namespace clio::trace
