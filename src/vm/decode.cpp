#include "vm/decode.hpp"

#include <cstring>

#include "util/error.hpp"
#include "util/log.hpp"

namespace clio::vm {

using util::cat;
using util::check;
using util::VerifyError;

DecodedStream decode_stream(const MethodDef& method) {
  const auto& code = method.code;
  DecodedStream stream;
  std::size_t at = 0;
  while (at < code.size()) {
    check<VerifyError>(code[at] < static_cast<std::uint8_t>(Op::kOpCount_),
                       cat("verify: bad opcode at offset ", at, " in '",
                           method.name, "'"));
    const auto op = static_cast<Op>(code[at]);
    const std::size_t size = encoded_size(op);
    check<VerifyError>(at + size <= code.size(),
                       cat("verify: truncated operand at offset ", at, " in '",
                           method.name, "'"));
    std::uint64_t operand = 0;
    switch (op_info(op).operand) {
      case OperandKind::kNone:
        break;
      case OperandKind::kImm64:
        std::memcpy(&operand, code.data() + at + 1, 8);
        break;
      case OperandKind::kU16:
        operand = static_cast<std::uint64_t>(code[at + 1]) |
                  (static_cast<std::uint64_t>(code[at + 2]) << 8);
        break;
      case OperandKind::kU32: {
        std::uint32_t v = 0;
        std::memcpy(&v, code.data() + at + 1, 4);
        operand = v;
        break;
      }
    }
    stream.boundary_to_index.emplace(static_cast<std::uint32_t>(at),
                                     stream.insns.size());
    stream.insns.push_back(
        RawInsn{op, static_cast<std::uint32_t>(at), operand});
    at += size;
  }
  return stream;
}

std::size_t branch_target(const DecodedStream& stream, std::uint64_t offset,
                          const MethodDef& method) {
  const auto it =
      stream.boundary_to_index.find(static_cast<std::uint32_t>(offset));
  check<VerifyError>(offset <= UINT32_MAX &&
                         it != stream.boundary_to_index.end(),
                     cat("verify: branch to non-boundary offset ", offset,
                         " in '", method.name, "'"));
  return it->second;
}

}  // namespace clio::vm
