#include "vm/kernels.hpp"

#include <vector>

#include "util/error.hpp"

namespace clio::vm::kernels {

// args: 0 name, 1 masks (i64 array[256]), 2 accept, 3 chunk_bytes
// locals: 0 handle, 1 buf, 2 r, 3 count, 4 got, 5 i
const char* const kBitapSource = R"(
.method bitap_file 4 6
  ldarg 0
  ldc 0
  syscall file_open
  stloc 0
  ldarg 3
  syscall buf_new
  stloc 1
  ldc 0
  stloc 2
  ldc 0
  stloc 3
read_loop:
  ldloc 0
  ldloc 1
  ldarg 3
  syscall file_read
  stloc 4
  ldloc 4
  brfalse done
  ldc 0
  stloc 5
scan:
  ldloc 5
  ldloc 4
  cmpge
  brtrue read_loop
  ; r = ((r << 1) | 1) & masks[buf[i]]
  ldloc 2
  ldc 1
  shl
  ldc 1
  or
  ldarg 1
  ldloc 1
  ldloc 5
  ldelem
  ldelem
  and
  stloc 2
  ; count += (r & accept) != 0
  ldloc 2
  ldarg 2
  and
  brfalse next
  ldloc 3
  ldc 1
  add
  stloc 3
next:
  ldloc 5
  ldc 1
  add
  stloc 5
  br scan
done:
  ldloc 0
  syscall file_close
  pop
  ldloc 3
  ret
.end
)";

// args: 0 name, 1 candidates buffer, 2 k, 3 chunk_bytes
// locals: 0 handle, 1 buf, 2 got, 3 total, 4 rec, 5 numc,
//         6 n, 7 c, 8 i, 9 j, 10 item, 11 found
const char* const kDmineSource = R"(
.method dmine_count 4 12
  ldarg 1
  syscall buf_len
  ldarg 2
  div
  stloc 5
  ldarg 0
  ldc 0
  syscall file_open
  stloc 0
  ldarg 3
  syscall buf_new
  stloc 1
  ldc 0
  stloc 3
read_loop:
  ldloc 0
  ldloc 1
  ldarg 3
  syscall file_read
  stloc 2
  ldloc 2
  brfalse done
  ldc 0
  stloc 4
rec_loop:
  ldloc 4
  ldloc 2
  cmpge
  brtrue read_loop
  ; n = buf[rec] (item count of this basket)
  ldloc 1
  ldloc 4
  ldelem
  stloc 6
  ldc 0
  stloc 7
cand_loop:
  ldloc 7
  ldloc 5
  cmpge
  brtrue rec_next
  ldc 0
  stloc 8
item_loop:
  ldloc 8
  ldarg 2
  cmpge
  brtrue cand_hit
  ; item = candidates[c * k + i]
  ldarg 1
  ldloc 7
  ldarg 2
  mul
  ldloc 8
  add
  ldelem
  stloc 10
  ; linear-scan the basket's n item bytes for it
  ldc 0
  stloc 11
  ldc 0
  stloc 9
scan_loop:
  ldloc 9
  ldloc 6
  cmpge
  brtrue scan_done
  ldloc 1
  ldloc 4
  ldc 1
  add
  ldloc 9
  add
  ldelem
  ldloc 10
  cmpeq
  brfalse scan_next
  ldc 1
  stloc 11
  br scan_done
scan_next:
  ldloc 9
  ldc 1
  add
  stloc 9
  br scan_loop
scan_done:
  ldloc 11
  brfalse cand_next
  ldloc 8
  ldc 1
  add
  stloc 8
  br item_loop
cand_hit:
  ldloc 3
  ldc 1
  add
  stloc 3
cand_next:
  ldloc 7
  ldc 1
  add
  stloc 7
  br cand_loop
rec_next:
  ldloc 4
  ldc 16
  add
  stloc 4
  br rec_loop
done:
  ldloc 0
  syscall file_close
  pop
  ldloc 3
  ret
.end
)";

// args: 0 n; locals: 0 i, 1 acc
const char* const kSpinSource = R"(
.method spin_sum 1 2
  ldc 0
  stloc 0
  ldc 0
  stloc 1
loop:
  ldloc 0
  ldarg 0
  cmpge
  brtrue done
  ldloc 1
  ldloc 0
  add
  stloc 1
  ldloc 0
  ldc 1
  add
  stloc 0
  br loop
done:
  ldloc 1
  ret
.end
)";

Value bitap_masks(std::string_view pattern) {
  util::check<util::ConfigError>(!pattern.empty() && pattern.size() <= 63,
                                 "bitap_masks: pattern must be 1..63 bytes");
  std::vector<Value> masks(256, Value::from_int(0));
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const auto c = static_cast<unsigned char>(pattern[i]);
    masks[c] = Value::from_int(masks[c].as_int() |
                               static_cast<std::int64_t>(1ULL << i));
  }
  return Value::from_obj(std::make_shared<Obj>(std::move(masks)));
}

Value bitap_accept(std::string_view pattern) {
  util::check<util::ConfigError>(!pattern.empty() && pattern.size() <= 63,
                                 "bitap_accept: pattern must be 1..63 bytes");
  return Value::from_int(
      static_cast<std::int64_t>(1ULL << (pattern.size() - 1)));
}

Value make_buffer(std::span<const std::byte> bytes) {
  return Value::from_obj(std::make_shared<Obj>(
      std::vector<std::byte>(bytes.begin(), bytes.end())));
}

Value make_string(std::string s) {
  return Value::from_obj(std::make_shared<Obj>(std::move(s)));
}

}  // namespace clio::vm::kernels
