#pragma once

#include <cstdint>
#include <string_view>

namespace clio::vm {

/// Instruction set of the mini-CLI: a stack-based intermediate language in
/// the spirit of ECMA-335 CIL, reduced to what I/O-intensive benchmark
/// kernels need (integer/float arithmetic, locals, arrays, branches, calls
/// and syscalls into the managed I/O subsystem).
enum class Op : std::uint8_t {
  kNop = 0,
  // Constants & data movement.
  kLdcI8,   ///< push i64 immediate (8-byte operand)
  kLdcF64,  ///< push f64 immediate (8-byte operand)
  kLdStr,   ///< push string object (u16 string-pool index)
  kLdLoc,   ///< push local (u16 index)
  kStLoc,   ///< pop into local (u16 index)
  kLdArg,   ///< push argument (u16 index)
  kStArg,   ///< pop into argument (u16 index)
  kDup,     ///< duplicate top of stack
  kPop,     ///< discard top of stack
  // Integer arithmetic (i64).
  kAdd,
  kSub,
  kMul,
  kDiv,  ///< traps on divide by zero
  kRem,
  kNeg,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  // Float arithmetic (f64).
  kAddF,
  kSubF,
  kMulF,
  kDivF,
  kNegF,
  kConvI2F,
  kConvF2I,
  // Comparisons (pop 2 ints, push 0/1).
  kCmpEq,
  kCmpNe,
  kCmpLt,
  kCmpLe,
  kCmpGt,
  kCmpGe,
  // Control flow (u32 absolute byte offset operand).
  kBr,
  kBrTrue,   ///< pop; branch if != 0
  kBrFalse,  ///< pop; branch if == 0
  kCall,     ///< u16 method index; pops callee's args, pushes 1 result
  kRet,      ///< pop 1, return it
  // Arrays (reference objects).
  kNewArr,  ///< pop length, push new zeroed array
  kLdElem,  ///< pop index, pop array, push element
  kStElem,  ///< pop value, pop index, pop array
  kArrLen,  ///< pop array, push length
  // Runtime services (u16 syscall id) — see corelib.hpp.
  kSysCall,

  kOpCount_,
};

/// How an opcode's inline operand is encoded in the bytecode stream.
enum class OperandKind : std::uint8_t {
  kNone,   ///< no operand
  kImm64,  ///< 8 bytes (i64 or f64 bit pattern)
  kU16,    ///< 2 bytes (index)
  kU32,    ///< 4 bytes (branch target: absolute byte offset)
};

struct OpInfo {
  std::string_view name;
  OperandKind operand;
  /// Values popped from the evaluation stack.  -1 = variable (kCall).
  int pops;
  /// Values pushed.  Always >= 0.
  int pushes;
};

/// Metadata for every opcode; index with static_cast<size_t>(op).
[[nodiscard]] const OpInfo& op_info(Op op);

/// Looks up an opcode by mnemonic; returns kOpCount_ when unknown.
[[nodiscard]] Op op_by_name(std::string_view name);

/// Size in bytes of one encoded instruction (1 + operand size).
[[nodiscard]] std::size_t encoded_size(Op op);

}  // namespace clio::vm
