#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vm/module.hpp"
#include "vm/opcodes.hpp"

namespace clio::vm {

/// One linearly-decoded instruction before branch resolution: the opcode,
/// the byte offset it was decoded at, and its raw operand bits (for
/// kLdcF64 the operand holds the f64 bit pattern).
struct RawInsn {
  Op op = Op::kNop;
  std::uint32_t offset = 0;
  std::uint64_t operand = 0;
};

/// The single boundary contract shared by the verifier and the JIT: one
/// decode pass over a method body, producing the instruction list and the
/// byte-offset -> instruction-index map.  Both consumers resolve branch
/// targets through branch_target() below, so an offset the decode pass did
/// not mark as a boundary (mid-instruction, or one past the end of the
/// code) fails the same typed way everywhere — it can never escape one
/// layer as a raw std::out_of_range while passing the other.
struct DecodedStream {
  std::vector<RawInsn> insns;
  std::unordered_map<std::uint32_t, std::size_t> boundary_to_index;
};

/// Decodes `method` linearly.  Throws util::VerifyError on an unknown
/// opcode or a truncated operand.
[[nodiscard]] DecodedStream decode_stream(const MethodDef& method);

/// Resolves a branch byte offset to an instruction index; throws
/// util::VerifyError naming the method when the offset is not an
/// instruction boundary.
[[nodiscard]] std::size_t branch_target(const DecodedStream& stream,
                                        std::uint64_t offset,
                                        const MethodDef& method);

}  // namespace clio::vm
