#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "vm/opcodes.hpp"

namespace clio::vm {

class Obj;
using ObjPtr = std::shared_ptr<Obj>;

/// A managed value: 64-bit integer, double, or object reference.  Types are
/// checked dynamically by the interpreter (the verifier guarantees stack
/// *depth* safety; operand types trap at execution time, like an
/// unverifiable-but-memory-safe CLI).
class Value {
 public:
  enum class Kind : std::uint8_t { kInt, kFloat, kObj };

  Value() : kind_(Kind::kInt), i_(0) {}
  static Value from_int(std::int64_t v) {
    Value x;
    x.kind_ = Kind::kInt;
    x.i_ = v;
    return x;
  }
  static Value from_float(double v) {
    Value x;
    x.kind_ = Kind::kFloat;
    x.f_ = v;
    return x;
  }
  static Value from_obj(ObjPtr obj) {
    Value x;
    x.kind_ = Kind::kObj;
    x.obj_ = std::move(obj);
    return x;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  /// Accessors trap (ExecutionError) on kind mismatch.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_float() const;
  [[nodiscard]] const ObjPtr& as_obj() const;

 private:
  Kind kind_;
  std::int64_t i_ = 0;
  double f_ = 0.0;
  ObjPtr obj_;
};

/// Heap object: a managed string, a managed array of values, or a managed
/// byte buffer.  The buffer kind is the I/O workhorse: file syscalls move
/// bytes between a ManagedFile and the buffer's contiguous storage
/// directly, with no per-byte Value boxing (the array path exists for
/// generality and the managed-overhead ablation, not the hot path).
class Obj {
 public:
  explicit Obj(std::string s) : data_(std::move(s)) {}
  explicit Obj(std::vector<Value> a) : data_(std::move(a)) {}
  explicit Obj(std::vector<std::byte> b) : data_(std::move(b)) {}

  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(data_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::vector<Value>>(data_);
  }
  [[nodiscard]] bool is_buffer() const {
    return std::holds_alternative<std::vector<std::byte>>(data_);
  }
  [[nodiscard]] std::string& str() { return std::get<std::string>(data_); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(data_);
  }
  [[nodiscard]] std::vector<Value>& arr() {
    return std::get<std::vector<Value>>(data_);
  }
  [[nodiscard]] const std::vector<Value>& arr() const {
    return std::get<std::vector<Value>>(data_);
  }
  [[nodiscard]] std::vector<std::byte>& bytes() {
    return std::get<std::vector<std::byte>>(data_);
  }
  [[nodiscard]] const std::vector<std::byte>& bytes() const {
    return std::get<std::vector<std::byte>>(data_);
  }

 private:
  std::variant<std::string, std::vector<Value>, std::vector<std::byte>> data_;
};

/// Method metadata + raw bytecode, ECMA-335 MethodDef in miniature.
struct MethodDef {
  std::string name;
  std::uint16_t num_args = 0;
  std::uint16_t num_locals = 0;
  std::vector<std::uint8_t> code;
  /// Filled in by the verifier: deepest evaluation stack this method needs.
  std::uint32_t max_stack = 0;
};

/// A loaded assembly: methods plus a string pool (the metadata tables).
class Module {
 public:
  /// Adds a method; returns its index.  Names must be unique.
  std::uint16_t add_method(MethodDef method);

  /// Interns a string; returns its pool index.
  std::uint16_t add_string(std::string s);

  [[nodiscard]] const MethodDef& method(std::size_t idx) const;
  [[nodiscard]] MethodDef& method_mutable(std::size_t idx);
  [[nodiscard]] std::size_t num_methods() const { return methods_.size(); }
  /// Index by name; throws ConfigError when absent.
  [[nodiscard]] std::uint16_t find_method(std::string_view name) const;
  [[nodiscard]] bool has_method(std::string_view name) const;

  [[nodiscard]] const std::string& string_at(std::size_t idx) const;
  [[nodiscard]] std::size_t num_strings() const { return strings_.size(); }

 private:
  std::vector<MethodDef> methods_;
  std::vector<std::string> strings_;
};

}  // namespace clio::vm
