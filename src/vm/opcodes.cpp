#include "vm/opcodes.hpp"

#include <array>

#include "util/error.hpp"

namespace clio::vm {
namespace {

constexpr std::size_t kCount = static_cast<std::size_t>(Op::kOpCount_);

constexpr std::array<OpInfo, kCount> kOpTable = {{
    {"nop", OperandKind::kNone, 0, 0},
    {"ldc", OperandKind::kImm64, 0, 1},
    {"ldcf", OperandKind::kImm64, 0, 1},
    {"ldstr", OperandKind::kU16, 0, 1},
    {"ldloc", OperandKind::kU16, 0, 1},
    {"stloc", OperandKind::kU16, 1, 0},
    {"ldarg", OperandKind::kU16, 0, 1},
    {"starg", OperandKind::kU16, 1, 0},
    {"dup", OperandKind::kNone, 1, 2},
    {"pop", OperandKind::kNone, 1, 0},
    {"add", OperandKind::kNone, 2, 1},
    {"sub", OperandKind::kNone, 2, 1},
    {"mul", OperandKind::kNone, 2, 1},
    {"div", OperandKind::kNone, 2, 1},
    {"rem", OperandKind::kNone, 2, 1},
    {"neg", OperandKind::kNone, 1, 1},
    {"and", OperandKind::kNone, 2, 1},
    {"or", OperandKind::kNone, 2, 1},
    {"xor", OperandKind::kNone, 2, 1},
    {"shl", OperandKind::kNone, 2, 1},
    {"shr", OperandKind::kNone, 2, 1},
    {"addf", OperandKind::kNone, 2, 1},
    {"subf", OperandKind::kNone, 2, 1},
    {"mulf", OperandKind::kNone, 2, 1},
    {"divf", OperandKind::kNone, 2, 1},
    {"negf", OperandKind::kNone, 1, 1},
    {"convi2f", OperandKind::kNone, 1, 1},
    {"convf2i", OperandKind::kNone, 1, 1},
    {"cmpeq", OperandKind::kNone, 2, 1},
    {"cmpne", OperandKind::kNone, 2, 1},
    {"cmplt", OperandKind::kNone, 2, 1},
    {"cmple", OperandKind::kNone, 2, 1},
    {"cmpgt", OperandKind::kNone, 2, 1},
    {"cmpge", OperandKind::kNone, 2, 1},
    {"br", OperandKind::kU32, 0, 0},
    {"brtrue", OperandKind::kU32, 1, 0},
    {"brfalse", OperandKind::kU32, 1, 0},
    {"call", OperandKind::kU16, -1, 1},
    {"ret", OperandKind::kNone, 1, 0},
    {"newarr", OperandKind::kNone, 1, 1},
    {"ldelem", OperandKind::kNone, 2, 1},
    {"stelem", OperandKind::kNone, 3, 0},
    {"arrlen", OperandKind::kNone, 1, 1},
    {"syscall", OperandKind::kU16, -1, 1},
}};

}  // namespace

const OpInfo& op_info(Op op) {
  const auto idx = static_cast<std::size_t>(op);
  util::check<util::ConfigError>(idx < kCount, "op_info: invalid opcode");
  return kOpTable[idx];
}

Op op_by_name(std::string_view name) {
  for (std::size_t i = 0; i < kCount; ++i) {
    if (kOpTable[i].name == name) return static_cast<Op>(i);
  }
  return Op::kOpCount_;
}

std::size_t encoded_size(Op op) {
  switch (op_info(op).operand) {
    case OperandKind::kNone:
      return 1;
    case OperandKind::kImm64:
      return 9;
    case OperandKind::kU16:
      return 3;
    case OperandKind::kU32:
      return 5;
  }
  return 1;
}

}  // namespace clio::vm
