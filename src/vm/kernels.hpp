#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "vm/module.hpp"

namespace clio::vm::kernels {

/// VM assembly ports of the two paper workloads' inner loops, so the
/// benchmark can time the SAME kernel twice — once as managed bytecode on
/// the ExecutionEngine, once as native C++ — over the SAME
/// ManagedFileSystem.  That difference is the paper's headline axis:
/// managed-runtime overhead on I/O-intensive computing.
///
/// `kBitapSource` defines method `bitap_file(name, masks, accept, chunk)`:
/// exact (k = 0) shift-and matching à la Pgrep.  `name` is the file to scan,
/// `masks` a 256-entry i64 array (see bitap_masks), `accept` the accept bit
/// (1 << (pattern_len - 1)), `chunk` the read-buffer size.  Returns the
/// number of match end positions.  The automaton register survives across
/// chunk reads, so matches straddling chunk boundaries count.
extern const char* const kBitapSource;

/// `kDmineSource` defines method `dmine_count(name, candidates, k, chunk)`:
/// Apriori candidate counting à la Dmine over the fixed 16-byte basket
/// records of apps/dmine/candidate_count.hpp.  `candidates` is a byte
/// buffer of num_candidates * k item ids, `chunk` must be a multiple of 16.
/// Returns total support summed over all candidates.
extern const char* const kDmineSource;

/// `kSpinSource` defines method `spin_sum(n)`: a tight arithmetic loop
/// (about six instructions per iteration) returning sum(0..n-1), used to
/// measure raw interpreter dispatch throughput.
extern const char* const kSpinSource;

/// Builds the `masks` argument for bitap_file: a 256-entry i64 array where
/// masks[c] has bit i set iff pattern[i] == c (the exact shift-and table).
[[nodiscard]] Value bitap_masks(std::string_view pattern);

/// The matching accept bit: 1 << (pattern.size() - 1).
[[nodiscard]] Value bitap_accept(std::string_view pattern);

/// Wraps bytes / a string into VM object Values for passing as arguments.
[[nodiscard]] Value make_buffer(std::span<const std::byte> bytes);
[[nodiscard]] Value make_string(std::string s);

}  // namespace clio::vm::kernels
