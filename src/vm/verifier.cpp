#include "vm/verifier.hpp"

#include <deque>

#include "util/error.hpp"
#include "util/log.hpp"
#include "vm/corelib.hpp"
#include "vm/decode.hpp"

namespace clio::vm {

using util::cat;
using util::check;
using util::VerifyError;

std::uint32_t verify_method(const Module& module, const MethodDef& method) {
  const auto& code = method.code;
  check<VerifyError>(!code.empty(),
                     "verify: empty body in '" + method.name + "'");

  // Pass 1: linear decode — instruction boundaries and operands come from
  // the same decode_stream() the JIT compiles from, so the two layers can
  // never disagree on what counts as a branch target.
  const DecodedStream stream = decode_stream(method);
  const auto& insns = stream.insns;

  // Pass 2: operand validity.
  for (const auto& insn : insns) {
    switch (insn.op) {
      case Op::kLdLoc:
      case Op::kStLoc:
        check<VerifyError>(insn.operand < method.num_locals,
                           cat("verify: local index out of range in '",
                               method.name, "'"));
        break;
      case Op::kLdArg:
      case Op::kStArg:
        check<VerifyError>(insn.operand < method.num_args,
                           cat("verify: arg index out of range in '",
                               method.name, "'"));
        break;
      case Op::kLdStr:
        check<VerifyError>(insn.operand < module.num_strings(),
                           cat("verify: string index out of range in '",
                               method.name, "'"));
        break;
      case Op::kCall:
        check<VerifyError>(insn.operand < module.num_methods(),
                           cat("verify: call target out of range in '",
                               method.name, "'"));
        break;
      case Op::kSysCall:
        check<VerifyError>(
            insn.operand <
                static_cast<std::uint64_t>(SysCall::kSysCallCount_),
            cat("verify: unknown syscall in '", method.name, "'"));
        break;
      case Op::kBr:
      case Op::kBrTrue:
      case Op::kBrFalse:
        // Throws the typed boundary error when the target is wild.
        (void)branch_target(stream, insn.operand, method);
        break;
      default:
        break;
    }
  }

  // Pass 3: abstract stack-depth interpretation over all paths.
  std::vector<int> depth_at(insns.size(), -1);
  std::deque<std::size_t> worklist;
  depth_at[0] = 0;
  worklist.push_back(0);
  std::uint32_t max_depth = 0;
  bool saw_ret = false;

  auto flow_to = [&](std::size_t target, int depth) {
    if (depth_at[target] == -1) {
      depth_at[target] = depth;
      worklist.push_back(target);
    } else {
      check<VerifyError>(depth_at[target] == depth,
                         cat("verify: inconsistent stack depth at offset ",
                             insns[target].offset, " in '", method.name,
                             "' (", depth_at[target], " vs ", depth, ")"));
    }
  };

  while (!worklist.empty()) {
    const std::size_t idx = worklist.front();
    worklist.pop_front();
    const RawInsn& insn = insns[idx];
    int depth = depth_at[idx];

    int pops = op_info(insn.op).pops;
    if (insn.op == Op::kCall) {
      pops = module.method(insn.operand).num_args;
    } else if (insn.op == Op::kSysCall) {
      pops = syscall_arity(static_cast<SysCall>(insn.operand));
    }
    check<VerifyError>(depth >= pops,
                       cat("verify: stack underflow at offset ", insn.offset,
                           " in '", method.name, "'"));
    depth = depth - pops + op_info(insn.op).pushes;
    max_depth = std::max(max_depth, static_cast<std::uint32_t>(depth));

    switch (insn.op) {
      case Op::kRet:
        check<VerifyError>(depth == 0,
                           cat("verify: ret with residual stack in '",
                               method.name, "'"));
        saw_ret = true;
        continue;  // no fallthrough
      case Op::kBr:
        flow_to(branch_target(stream, insn.operand, method), depth);
        continue;
      case Op::kBrTrue:
      case Op::kBrFalse:
        flow_to(branch_target(stream, insn.operand, method), depth);
        break;
      default:
        break;
    }
    // Fallthrough successor.
    check<VerifyError>(idx + 1 < insns.size(),
                       cat("verify: execution falls off the end of '",
                           method.name, "'"));
    flow_to(idx + 1, depth);
  }
  check<VerifyError>(saw_ret, "verify: no reachable ret in '" + method.name +
                                  "'");
  return max_depth;
}

void verify_module(Module& module) {
  for (std::size_t m = 0; m < module.num_methods(); ++m) {
    module.method_mutable(m).max_stack =
        verify_method(module, module.method(m));
  }
}

}  // namespace clio::vm
