#pragma once

#include "vm/module.hpp"

namespace clio::vm {

/// Bytecode verification, the mini-CLI's analogue of the CLI's mandatory
/// IL verification pass.  Guarantees, for every path through a method:
///   - instructions decode cleanly (no truncated operands),
///   - branch targets land on instruction boundaries,
///   - the evaluation stack never underflows,
///   - stack depth is consistent at every join point,
///   - `ret` executes with exactly one value on the stack,
///   - execution cannot fall off the end of the method,
///   - local/arg/string/method/syscall indices are in range.
///
/// Returns the maximum stack depth (stored into MethodDef::max_stack by
/// verify_module).  Type correctness is enforced dynamically by the
/// interpreter.
///
/// Throws VerifyError on the first violation.
[[nodiscard]] std::uint32_t verify_method(const Module& module,
                                          const MethodDef& method);

/// Verifies every method and stamps max_stack.
void verify_module(Module& module);

}  // namespace clio::vm
