#pragma once

#include <span>
#include <vector>

#include "vm/jit.hpp"
#include "vm/module.hpp"

namespace clio::vm {

class ExecutionEngine;

/// Executes compiled methods.  The interpreter walks the DecodedInsn array
/// with an explicit Value stack per frame; `call` recurses (bounded by
/// max_call_depth).  Syscalls are delegated to the owning ExecutionEngine.
class Interpreter {
 public:
  Interpreter(ExecutionEngine& engine, Jit& jit,
              std::size_t max_call_depth = 256);

  /// Runs method `index` with `args`; returns its result.
  Value invoke(std::uint16_t index, std::span<const Value> args);

  [[nodiscard]] std::uint64_t instructions_executed() const {
    return instructions_;
  }

 private:
  Value run_frame(std::uint16_t index, std::span<const Value> args,
                  std::size_t depth);

  ExecutionEngine& engine_;
  Jit& jit_;
  std::size_t max_call_depth_;
  std::uint64_t instructions_ = 0;
};

}  // namespace clio::vm
