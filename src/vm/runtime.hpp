#pragma once

#include <memory>
#include <mutex>
#include <string_view>

#include "io/managed_file.hpp"
#include "util/rng.hpp"
#include "vm/corelib.hpp"
#include "vm/interpreter.hpp"
#include "vm/jit.hpp"
#include "vm/module.hpp"

namespace clio::vm {

/// Engine configuration.
struct EngineOptions {
  JitOptions jit{};
  std::size_t max_call_depth = 256;
};

/// The mini-CLI execution engine: owns a verified module, the baseline JIT
/// with its method cache, the interpreter, and the bridge between managed
/// syscalls and the managed I/O subsystem (clio::io).  This is the
/// substitute for SSCLI's virtual execution system: managed code pays
/// interpretation overhead, first calls pay JIT compilation, and all file
/// I/O flows through the buffer-pool stack.
///
/// Thread-safety: call() may be invoked from multiple threads (the web
/// server does); a mutex serializes execution, matching the single-threaded
/// engine granularity of early SSCLI workers.
class ExecutionEngine {
 public:
  /// `fs` may be null for pure-compute modules (file syscalls then trap).
  ExecutionEngine(Module module, EngineOptions options = {},
                  io::ManagedFileSystem* fs = nullptr);

  /// Invokes a method by name.
  Value call(std::string_view method, std::vector<Value> args = {});

  /// Invokes by index (avoids the name lookup in hot loops).
  Value call_index(std::uint16_t method, std::span<const Value> args);

  [[nodiscard]] std::uint16_t method_index(std::string_view name) const {
    return module_.find_method(name);
  }

  [[nodiscard]] const Module& module() const { return module_; }
  [[nodiscard]] const JitStats& jit_stats() const { return jit_->stats(); }
  [[nodiscard]] std::uint64_t instructions_executed() const {
    return interpreter_->instructions_executed();
  }

  /// Drops compiled code, so the next call of each method pays JIT cost
  /// again (cold-start simulation between benchmark trials).
  void flush_jit_cache();

  /// Syscall dispatch — invoked by the interpreter.
  Value dispatch_syscall(SysCall id, std::span<const Value> args);

 private:
  /// Validates a handle value and returns the open stream behind it.
  io::ManagedFile& checked_handle(std::int64_t h, const char* op);

  /// The file-syscall bodies, separated so dispatch_syscall can wrap the
  /// whole family in one IoError -> ExecutionError boundary.
  Value file_syscall(SysCall id, std::span<const Value> args);

  Module module_;
  io::ManagedFileSystem* fs_;
  std::unique_ptr<Jit> jit_;
  std::unique_ptr<Interpreter> interpreter_;
  std::vector<io::ManagedFile> handles_;
  util::Rng rng_;
  std::mutex mutex_;
};

}  // namespace clio::vm
