#include "vm/corelib.hpp"

#include <array>

#include "util/error.hpp"

namespace clio::vm {
namespace {

struct SysInfo {
  std::string_view name;
  int arity;
};

constexpr std::array<SysInfo, static_cast<std::size_t>(
                                  SysCall::kSysCallCount_)>
    kTable = {{
        {"print_i64", 1},
        {"clock_ns", 0},
        {"file_open", 2},
        {"file_close", 1},
        {"file_read", 3},
        {"file_write", 3},
        {"file_seek", 2},
        {"file_size", 1},
        {"str_len", 1},
        {"rand_seed", 1},
        {"rand_next", 1},
        {"buf_new", 1},
        {"buf_len", 1},
    }};

}  // namespace

int syscall_arity(SysCall id) {
  const auto idx = static_cast<std::size_t>(id);
  util::check<util::ConfigError>(idx < kTable.size(),
                                 "syscall_arity: bad id");
  return kTable[idx].arity;
}

std::string_view syscall_name(SysCall id) {
  const auto idx = static_cast<std::size_t>(id);
  util::check<util::ConfigError>(idx < kTable.size(),
                                 "syscall_name: bad id");
  return kTable[idx].name;
}

int syscall_by_name(std::string_view name) {
  for (std::size_t i = 0; i < kTable.size(); ++i) {
    if (kTable[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace clio::vm
