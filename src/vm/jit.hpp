#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "vm/module.hpp"

namespace clio::vm {

/// One decoded (and branch-resolved) instruction, the "native" form the
/// baseline JIT produces: operands are materialized and branch targets are
/// instruction indices instead of byte offsets, so the interpreter runs a
/// flat array without re-decoding.
struct DecodedInsn {
  Op op = Op::kNop;
  std::int64_t imm = 0;  ///< immediate / index / target insn index
  double fimm = 0.0;     ///< float immediate (kLdcF64)
};

/// Compiled form of one method.
struct CompiledMethod {
  std::vector<DecodedInsn> code;
  std::uint32_t max_stack = 0;
};

/// Knobs of the compile-cost model.
struct JitOptions {
  /// Modeled per-byte compile cost, realized as real CPU work.  SSCLI's JIT
  /// costs milliseconds per method; the default makes first-call latency
  /// visible at benchmark timescales (Table 6's "delay caused by the JIT
  /// compiler when the web server is handling the first request").
  std::int64_t compile_ns_per_byte = 1500;
  /// When false every invocation recompiles — the "no code cache" ablation.
  bool cache_enabled = true;
};

/// Statistics exposed for Table 6 analysis and the micro_vm bench.
struct JitStats {
  std::uint64_t compilations = 0;
  std::uint64_t cache_hits = 0;
  double total_compile_ms = 0.0;
};

/// Baseline just-in-time compiler: verification + decode + branch
/// resolution on first invocation, cached thereafter.  This reproduces the
/// CLI execution-engine behaviour the paper observes: "functions are
/// compiled only when they are required", so the first request through any
/// code path is slower.
class Jit {
 public:
  explicit Jit(const Module& module, JitOptions options = {});

  /// Returns the compiled body, compiling on first use.
  const CompiledMethod& get(std::uint16_t method_index);

  [[nodiscard]] const JitStats& stats() const { return stats_; }
  [[nodiscard]] const Module& module() const { return module_; }
  [[nodiscard]] const JitOptions& options() const { return options_; }

  /// Drops all compiled code (simulates an engine restart).
  void flush_cache();

 private:
  CompiledMethod compile(std::uint16_t method_index);

  const Module& module_;
  JitOptions options_;
  std::vector<std::optional<CompiledMethod>> cache_;
  JitStats stats_;
};

}  // namespace clio::vm
