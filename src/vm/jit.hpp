#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "vm/module.hpp"

namespace clio::vm {

/// One decoded (and branch-resolved) instruction, the "native" form the
/// baseline JIT produces: operands are materialized and branch targets are
/// instruction indices instead of byte offsets, so the interpreter runs a
/// flat array without re-decoding.
struct DecodedInsn {
  Op op = Op::kNop;
  std::int64_t imm = 0;  ///< immediate / index / target insn index
  double fimm = 0.0;     ///< float immediate (kLdcF64)
};

/// Compiled form of one method.
struct CompiledMethod {
  std::vector<DecodedInsn> code;
  std::uint32_t max_stack = 0;
};

/// Knobs of the compile-cost model.
struct JitOptions {
  /// Modeled per-byte compile cost, realized as real CPU work.  SSCLI's JIT
  /// costs milliseconds per method; the default makes first-call latency
  /// visible at benchmark timescales (Table 6's "delay caused by the JIT
  /// compiler when the web server is handling the first request").
  std::int64_t compile_ns_per_byte = 1500;
  /// When false every invocation recompiles — the "no code cache" ablation.
  bool cache_enabled = true;
  /// Warm-up tier: the first (threshold - 1) invocations of a method run
  /// from the cheap baseline decode only; crossing the threshold pays the
  /// modeled code-generation cost once.  1 (the default, and the SSCLI
  /// behaviour the paper measures) compiles eagerly on the first call, so
  /// the first request through any code path is the slow one; larger
  /// values amortize that stall the way tiered engines do.  0 is treated
  /// as 1.
  std::uint64_t compile_threshold = 1;
};

/// Statistics exposed for Table 6 analysis and the micro_vm bench.
struct JitStats {
  std::uint64_t compilations = 0;
  std::uint64_t cache_hits = 0;
  /// Invocations served below the compile threshold (tier-0, decode only).
  std::uint64_t interpreted_calls = 0;
  double total_compile_ms = 0.0;
};

/// Baseline just-in-time compiler: verification + decode + branch
/// resolution on first invocation; the modeled code-generation cost is
/// paid when a method's invocation count crosses compile_threshold, and
/// the result is cached thereafter.  With the default threshold of 1 this
/// reproduces the CLI execution-engine behaviour the paper observes:
/// "functions are compiled only when they are required", so the first
/// request through any code path is slower.
class Jit {
 public:
  explicit Jit(const Module& module, JitOptions options = {});

  /// Returns the runnable body for one invocation: decodes on first use,
  /// tiering up (paying the modeled codegen cost) when the method's
  /// invocation count crosses options().compile_threshold.
  const CompiledMethod& get(std::uint16_t method_index);

  /// The per-module interned object for string-pool entry `index`: kLdStr
  /// pushes a reference to this shared immutable object instead of
  /// allocating a fresh Obj per execution.
  const ObjPtr& interned_string(std::size_t index);

  [[nodiscard]] const JitStats& stats() const { return stats_; }
  [[nodiscard]] const Module& module() const { return module_; }
  [[nodiscard]] const JitOptions& options() const { return options_; }

  /// Drops all compiled code and invocation counts (simulates an engine
  /// restart).
  void flush_cache();

 private:
  /// Per-method tier state: the baseline decode plus how far along the
  /// warm-up this method is.
  struct Slot {
    std::optional<CompiledMethod> code;
    std::uint64_t calls = 0;
    bool tiered_up = false;
  };

  CompiledMethod decode_method(std::uint16_t method_index);
  void run_codegen(std::uint16_t method_index);

  const Module& module_;
  JitOptions options_;
  std::vector<Slot> cache_;
  std::vector<ObjPtr> interned_;
  JitStats stats_;
};

}  // namespace clio::vm
