#include "vm/jit.hpp"

#include <cstring>

#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "vm/decode.hpp"
#include "vm/verifier.hpp"

namespace clio::vm {

Jit::Jit(const Module& module, JitOptions options)
    : module_(module), options_(options), cache_(module.num_methods()) {}

const CompiledMethod& Jit::get(std::uint16_t method_index) {
  util::check<util::ConfigError>(method_index < cache_.size(),
                                 "Jit: method index out of range");
  Slot& slot = cache_[method_index];
  if (!options_.cache_enabled && slot.code.has_value()) {
    // The no-code-cache ablation: every invocation redoes the whole
    // verify + decode + codegen pipeline.
    slot = Slot{};
  }
  if (!slot.code.has_value()) {
    slot.code = decode_method(method_index);
  }
  ++slot.calls;
  const std::uint64_t threshold = std::max<std::uint64_t>(
      options_.compile_threshold, 1);
  if (slot.tiered_up) {
    stats_.cache_hits++;
  } else if (slot.calls >= threshold || !options_.cache_enabled) {
    run_codegen(method_index);
    slot.tiered_up = true;
  } else {
    stats_.interpreted_calls++;
  }
  return *slot.code;
}

const ObjPtr& Jit::interned_string(std::size_t index) {
  // Lazy: the module may intern strings after this Jit was built.  Only
  // ever called under the engine's execution lock.
  if (index >= interned_.size()) {
    util::check<util::ConfigError>(index < module_.num_strings(),
                                   "Jit: string index out of range");
    interned_.resize(module_.num_strings());
  }
  ObjPtr& slot = interned_[index];
  if (slot == nullptr) {
    slot = std::make_shared<Obj>(module_.string_at(index));
  }
  return slot;
}

CompiledMethod Jit::decode_method(std::uint16_t method_index) {
  const MethodDef& method = module_.method(method_index);

  // Verification is part of the load/compile pipeline, as in the CLI.
  CompiledMethod compiled;
  compiled.max_stack = verify_method(module_, method);

  // Decode pass over the same stream the verifier saw: byte offsets ->
  // instruction indices.
  const DecodedStream stream = decode_stream(method);
  compiled.code.reserve(stream.insns.size());
  for (const RawInsn& raw : stream.insns) {
    DecodedInsn insn;
    insn.op = raw.op;
    if (raw.op == Op::kLdcF64) {
      std::memcpy(&insn.fimm, &raw.operand, 8);
    } else if (raw.op == Op::kBr || raw.op == Op::kBrTrue ||
               raw.op == Op::kBrFalse) {
      // Branch resolution through the shared boundary contract: a target
      // the verifier would reject surfaces as the same typed VerifyError
      // here, never as a raw std::out_of_range.
      insn.imm = static_cast<std::int64_t>(
          branch_target(stream, raw.operand, method));
    } else {
      insn.imm = static_cast<std::int64_t>(raw.operand);
    }
    compiled.code.push_back(insn);
  }
  return compiled;
}

void Jit::run_codegen(std::uint16_t method_index) {
  util::Stopwatch watch;
  // Modeled code-generation cost, realized as real CPU time so first-call
  // (or, with a warm-up tier, threshold-crossing) latency shows up in
  // wall-clock measurements exactly like SSCLI's JIT.
  if (options_.compile_ns_per_byte > 0) {
    util::spin_for_ns(options_.compile_ns_per_byte *
                      static_cast<std::int64_t>(
                          module_.method(method_index).code.size()));
  }
  stats_.compilations++;
  stats_.total_compile_ms += watch.elapsed_ms();
}

void Jit::flush_cache() {
  for (auto& slot : cache_) slot = Slot{};
}

}  // namespace clio::vm
