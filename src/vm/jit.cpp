#include "vm/jit.hpp"

#include <cstring>
#include <unordered_map>

#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "vm/verifier.hpp"

namespace clio::vm {

Jit::Jit(const Module& module, JitOptions options)
    : module_(module), options_(options), cache_(module.num_methods()) {}

const CompiledMethod& Jit::get(std::uint16_t method_index) {
  util::check<util::ConfigError>(method_index < cache_.size(),
                                 "Jit: method index out of range");
  if (cache_[method_index].has_value()) {
    if (options_.cache_enabled) {
      stats_.cache_hits++;
      return *cache_[method_index];
    }
    cache_[method_index].reset();
  }
  cache_[method_index] = compile(method_index);
  return *cache_[method_index];
}

CompiledMethod Jit::compile(std::uint16_t method_index) {
  util::Stopwatch watch;
  const MethodDef& method = module_.method(method_index);

  // Verification is part of the load/compile pipeline, as in the CLI.
  CompiledMethod compiled;
  compiled.max_stack = verify_method(module_, method);

  // Decode pass: byte offsets -> instruction indices.
  const auto& code = method.code;
  std::unordered_map<std::uint32_t, std::int64_t> boundary_to_index;
  std::size_t at = 0;
  while (at < code.size()) {
    const auto op = static_cast<Op>(code[at]);
    boundary_to_index.emplace(static_cast<std::uint32_t>(at),
                              static_cast<std::int64_t>(
                                  compiled.code.size()));
    DecodedInsn insn;
    insn.op = op;
    switch (op_info(op).operand) {
      case OperandKind::kNone:
        break;
      case OperandKind::kImm64: {
        std::uint64_t bits;
        std::memcpy(&bits, code.data() + at + 1, 8);
        if (op == Op::kLdcF64) {
          std::memcpy(&insn.fimm, &bits, 8);
        } else {
          insn.imm = static_cast<std::int64_t>(bits);
        }
        break;
      }
      case OperandKind::kU16:
        insn.imm = code[at + 1] | (static_cast<std::int64_t>(code[at + 2])
                                   << 8);
        break;
      case OperandKind::kU32: {
        std::uint32_t v = 0;
        std::memcpy(&v, code.data() + at + 1, 4);
        insn.imm = v;  // still a byte offset; resolved below
        break;
      }
    }
    compiled.code.push_back(insn);
    at += encoded_size(op);
  }
  // Branch resolution.
  for (auto& insn : compiled.code) {
    if (insn.op == Op::kBr || insn.op == Op::kBrTrue ||
        insn.op == Op::kBrFalse) {
      insn.imm = boundary_to_index.at(static_cast<std::uint32_t>(insn.imm));
    }
  }

  // Modeled code-generation cost, realized as real CPU time so first-call
  // latency shows up in wall-clock measurements exactly like SSCLI's JIT.
  if (options_.compile_ns_per_byte > 0) {
    util::spin_for_ns(options_.compile_ns_per_byte *
                      static_cast<std::int64_t>(code.size()));
  }

  stats_.compilations++;
  stats_.total_compile_ms += watch.elapsed_ms();
  return compiled;
}

void Jit::flush_cache() {
  for (auto& slot : cache_) slot.reset();
}

}  // namespace clio::vm
