#include "vm/assembler.hpp"

#include <charconv>
#include <cstring>
#include <unordered_map>

#include "util/error.hpp"
#include "util/log.hpp"
#include "vm/corelib.hpp"

namespace clio::vm {
namespace {

using util::cat;
using util::ParseError;

struct PendingFixup {
  std::size_t code_offset;   ///< where the u32/u16 operand lives
  std::string symbol;        ///< label or method name
  std::size_t line;
  std::size_t method_ordinal;  ///< index the owning method will get
};

void put_u16(std::vector<std::uint8_t>& code, std::uint16_t v) {
  code.push_back(static_cast<std::uint8_t>(v & 0xff));
  code.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& code, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    code.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& code, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    code.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void patch_u32(std::vector<std::uint8_t>& code, std::size_t at,
               std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    code[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  }
}

void patch_u16(std::vector<std::uint8_t>& code, std::size_t at,
               std::uint16_t v) {
  code[at] = static_cast<std::uint8_t>(v & 0xff);
  code[at + 1] = static_cast<std::uint8_t>(v >> 8);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits "mnemonic rest" on first whitespace.
std::pair<std::string_view, std::string_view> split_word(std::string_view s) {
  const auto pos = s.find_first_of(" \t");
  if (pos == std::string_view::npos) return {s, {}};
  return {s.substr(0, pos), trim(s.substr(pos + 1))};
}

std::int64_t parse_int(std::string_view text, std::size_t line) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  util::check<ParseError>(ec == std::errc{} && ptr == text.data() + text.size(),
                          cat("asm line ", line, ": bad integer '", text, "'"));
  return value;
}

double parse_float(std::string_view text, std::size_t line) {
  // std::from_chars for double is available in GCC 11+.
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  util::check<ParseError>(ec == std::errc{} && ptr == text.data() + text.size(),
                          cat("asm line ", line, ": bad float '", text, "'"));
  return value;
}

}  // namespace

Module assemble(std::string_view source) {
  Module module;
  bool in_method = false;
  MethodDef current;
  std::unordered_map<std::string, std::uint32_t> labels;
  std::vector<PendingFixup> fixups;         // label fixups (per method)
  std::vector<PendingFixup> method_fixups;  // call fixups (module-wide)

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const auto eol = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, eol == std::string_view::npos ? source.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++line_no;
    if (const auto comment = line.find(';'); comment != std::string_view::npos) {
      line = line.substr(0, comment);
    }
    line = trim(line);
    if (line.empty()) continue;

    if (line.starts_with(".method")) {
      util::check<ParseError>(!in_method,
                              cat("asm line ", line_no, ": nested .method"));
      auto [_, rest] = split_word(line);
      auto [name, rest2] = split_word(rest);
      auto [args_text, locals_text] = split_word(rest2);
      util::check<ParseError>(!name.empty() && !args_text.empty() &&
                                  !locals_text.empty(),
                              cat("asm line ", line_no,
                                  ": .method needs <name> <args> <locals>"));
      current = MethodDef{};
      current.name = std::string(name);
      current.num_args =
          static_cast<std::uint16_t>(parse_int(args_text, line_no));
      current.num_locals =
          static_cast<std::uint16_t>(parse_int(locals_text, line_no));
      labels.clear();
      fixups.clear();
      in_method = true;
      continue;
    }
    if (line == ".end") {
      util::check<ParseError>(in_method,
                              cat("asm line ", line_no, ": stray .end"));
      // Resolve label fixups.
      for (const auto& fix : fixups) {
        const auto it = labels.find(fix.symbol);
        util::check<ParseError>(it != labels.end(),
                                cat("asm line ", fix.line,
                                    ": undefined label '", fix.symbol, "'"));
        patch_u32(current.code, fix.code_offset, it->second);
      }
      module.add_method(std::move(current));
      in_method = false;
      continue;
    }

    util::check<ParseError>(in_method, cat("asm line ", line_no,
                                           ": instruction outside .method"));
    // Label?
    if (line.back() == ':') {
      const auto label = std::string(trim(line.substr(0, line.size() - 1)));
      util::check<ParseError>(!label.empty() && !labels.contains(label),
                              cat("asm line ", line_no,
                                  ": bad or duplicate label"));
      labels.emplace(label,
                     static_cast<std::uint32_t>(current.code.size()));
      continue;
    }

    auto [mnemonic, operand] = split_word(line);
    const Op op = op_by_name(mnemonic);
    util::check<ParseError>(op != Op::kOpCount_,
                            cat("asm line ", line_no, ": unknown mnemonic '",
                                mnemonic, "'"));
    current.code.push_back(static_cast<std::uint8_t>(op));
    const OpInfo& info = op_info(op);
    switch (info.operand) {
      case OperandKind::kNone:
        util::check<ParseError>(operand.empty(),
                                cat("asm line ", line_no,
                                    ": unexpected operand"));
        break;
      case OperandKind::kImm64: {
        util::check<ParseError>(!operand.empty(),
                                cat("asm line ", line_no,
                                    ": missing immediate"));
        if (op == Op::kLdcF64) {
          const double d = parse_float(operand, line_no);
          std::uint64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          put_u64(current.code, bits);
        } else {
          put_u64(current.code,
                  static_cast<std::uint64_t>(parse_int(operand, line_no)));
        }
        break;
      }
      case OperandKind::kU16: {
        util::check<ParseError>(!operand.empty(),
                                cat("asm line ", line_no, ": missing operand"));
        if (op == Op::kLdStr) {
          util::check<ParseError>(operand.size() >= 2 &&
                                      operand.front() == '"' &&
                                      operand.back() == '"',
                                  cat("asm line ", line_no,
                                      ": ldstr needs a quoted string"));
          put_u16(current.code, module.add_string(std::string(
                                    operand.substr(1, operand.size() - 2))));
        } else if (op == Op::kCall) {
          // The callee may be defined later: record a fixup against the
          // index this method will get (methods are added in order).
          method_fixups.push_back(PendingFixup{current.code.size(),
                                               std::string(operand), line_no,
                                               module.num_methods()});
          put_u16(current.code, 0xffff);
        } else if (op == Op::kSysCall) {
          const int id = syscall_by_name(operand);
          if (id >= 0) {
            put_u16(current.code, static_cast<std::uint16_t>(id));
          } else {
            put_u16(current.code, static_cast<std::uint16_t>(
                                      parse_int(operand, line_no)));
          }
        } else {
          put_u16(current.code,
                  static_cast<std::uint16_t>(parse_int(operand, line_no)));
        }
        break;
      }
      case OperandKind::kU32: {
        util::check<ParseError>(!operand.empty(),
                                cat("asm line ", line_no, ": missing label"));
        fixups.push_back(PendingFixup{current.code.size(),
                                      std::string(operand), line_no,
                                      module.num_methods()});
        put_u32(current.code, 0xffffffff);
        break;
      }
    }
  }
  util::check<ParseError>(!in_method, "asm: missing .end at end of input");

  // Resolve call fixups now that every method has its final index.
  for (const auto& fix : method_fixups) {
    const std::uint16_t target = module.find_method(fix.symbol);
    auto& code = module.method_mutable(fix.method_ordinal).code;
    patch_u16(code, fix.code_offset, target);
  }
  return module;
}

}  // namespace clio::vm
