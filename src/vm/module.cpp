#include "vm/module.hpp"

#include "util/error.hpp"

namespace clio::vm {

using util::check;
using util::ConfigError;
using util::ExecutionError;

std::int64_t Value::as_int() const {
  check<ExecutionError>(kind_ == Kind::kInt, "Value: expected int");
  return i_;
}

double Value::as_float() const {
  check<ExecutionError>(kind_ == Kind::kFloat, "Value: expected float");
  return f_;
}

const ObjPtr& Value::as_obj() const {
  check<ExecutionError>(kind_ == Kind::kObj && obj_ != nullptr,
                        "Value: expected object reference");
  return obj_;
}

std::uint16_t Module::add_method(MethodDef method) {
  check<ConfigError>(!method.name.empty(), "Module: empty method name");
  check<ConfigError>(!has_method(method.name),
                     "Module: duplicate method '" + method.name + "'");
  check<ConfigError>(methods_.size() < UINT16_MAX, "Module: too many methods");
  methods_.push_back(std::move(method));
  return static_cast<std::uint16_t>(methods_.size() - 1);
}

std::uint16_t Module::add_string(std::string s) {
  for (std::size_t i = 0; i < strings_.size(); ++i) {
    if (strings_[i] == s) return static_cast<std::uint16_t>(i);
  }
  check<ConfigError>(strings_.size() < UINT16_MAX, "Module: too many strings");
  strings_.push_back(std::move(s));
  return static_cast<std::uint16_t>(strings_.size() - 1);
}

const MethodDef& Module::method(std::size_t idx) const {
  check<ConfigError>(idx < methods_.size(), "Module: method index range");
  return methods_[idx];
}

MethodDef& Module::method_mutable(std::size_t idx) {
  check<ConfigError>(idx < methods_.size(), "Module: method index range");
  return methods_[idx];
}

std::uint16_t Module::find_method(std::string_view name) const {
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    if (methods_[i].name == name) return static_cast<std::uint16_t>(i);
  }
  throw ConfigError("Module: no method named '" + std::string(name) + "'");
}

bool Module::has_method(std::string_view name) const {
  for (const auto& m : methods_) {
    if (m.name == name) return true;
  }
  return false;
}

const std::string& Module::string_at(std::size_t idx) const {
  check<ConfigError>(idx < strings_.size(), "Module: string index range");
  return strings_[idx];
}

}  // namespace clio::vm
