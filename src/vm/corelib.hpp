#pragma once

#include <cstdint>
#include <string_view>

namespace clio::vm {

/// Runtime-service (syscall) identifiers — the mini-CLI's "mscorlib".
/// Each syscall pops its arguments (last argument on top of the stack) and
/// pushes exactly one result.
///
/// File handles are small integers owned by the ExecutionEngine; modes are
/// 0 = read, 1 = create, 2 = truncate (mirroring io::OpenMode).
enum class SysCall : std::uint16_t {
  kPrintI64 = 0,   ///< (v) -> v           : log the value (debug aid)
  kClockNs = 1,    ///< () -> i64          : monotonic nanoseconds
  kFileOpen = 2,   ///< (name str, mode) -> handle
  kFileClose = 3,  ///< (handle) -> 0
  kFileRead = 4,   ///< (handle, array|buffer, count) -> bytes read.  With a
                   ///< byte buffer, bytes land in the buffer's contiguous
                   ///< storage directly (the managed I/O fast path); with a
                   ///< Value array each byte is boxed as an i64 element.
  kFileWrite = 5,  ///< (handle, array|buffer, count) -> bytes written (the
                   ///< count the stream actually accepted, not the request)
  kFileSeek = 6,   ///< (handle, pos) -> 0
  kFileSize = 7,   ///< (handle) -> i64
  kStrLen = 8,     ///< (str) -> i64
  kRandSeed = 9,   ///< (seed) -> 0        : reseed the engine RNG
  kRandNext = 10,  ///< (bound) -> u64 in [0, bound)
  kBufNew = 11,    ///< (len) -> new zero-filled byte buffer object
  kBufLen = 12,    ///< (buffer) -> i64
  kSysCallCount_,
};

/// Number of stack arguments each syscall pops.
[[nodiscard]] int syscall_arity(SysCall id);

/// Mnemonic used by the assembler (e.g. "file_open").
[[nodiscard]] std::string_view syscall_name(SysCall id);

/// Reverse lookup; -1 when unknown.
[[nodiscard]] int syscall_by_name(std::string_view name);

}  // namespace clio::vm
