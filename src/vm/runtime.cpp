#include "vm/runtime.hpp"

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace clio::vm {

using util::check;
using util::ExecutionError;

ExecutionEngine::ExecutionEngine(Module module, EngineOptions options,
                                 io::ManagedFileSystem* fs)
    : module_(std::move(module)), fs_(fs) {
  jit_ = std::make_unique<Jit>(module_, options.jit);
  interpreter_ =
      std::make_unique<Interpreter>(*this, *jit_, options.max_call_depth);
}

Value ExecutionEngine::call(std::string_view method, std::vector<Value> args) {
  return call_index(module_.find_method(method), args);
}

Value ExecutionEngine::call_index(std::uint16_t method,
                                  std::span<const Value> args) {
  std::lock_guard<std::mutex> lock(mutex_);
  return interpreter_->invoke(method, args);
}

void ExecutionEngine::flush_jit_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  jit_->flush_cache();
}

Value ExecutionEngine::dispatch_syscall(SysCall id,
                                        std::span<const Value> args) {
  switch (id) {
    case SysCall::kPrintI64: {
      const auto v = args[0].as_int();
      util::log_debug("vm print: ", v);
      return Value::from_int(v);
    }
    case SysCall::kClockNs:
      return Value::from_int(util::Stopwatch::now_ns());
    case SysCall::kFileOpen: {
      check<ExecutionError>(fs_ != nullptr,
                            "vm: file syscalls need a managed fs");
      const auto& name_obj = args[0].as_obj();
      check<ExecutionError>(name_obj->is_string(),
                            "vm: file_open needs a string name");
      const auto mode = args[1].as_int();
      io::OpenMode open_mode;
      switch (mode) {
        case 0:
          open_mode = io::OpenMode::kRead;
          break;
        case 1:
          open_mode = io::OpenMode::kCreate;
          break;
        case 2:
          open_mode = io::OpenMode::kTruncate;
          break;
        default:
          throw ExecutionError("vm: bad open mode");
      }
      // Reuse a free slot if any handle was closed.
      for (std::size_t i = 0; i < handles_.size(); ++i) {
        if (!handles_[i].is_open()) {
          handles_[i] = fs_->open(name_obj->str(), open_mode);
          return Value::from_int(static_cast<std::int64_t>(i));
        }
      }
      handles_.push_back(fs_->open(name_obj->str(), open_mode));
      return Value::from_int(static_cast<std::int64_t>(handles_.size() - 1));
    }
    case SysCall::kFileClose: {
      const auto h = args[0].as_int();
      check<ExecutionError>(
          h >= 0 && static_cast<std::size_t>(h) < handles_.size() &&
              handles_[static_cast<std::size_t>(h)].is_open(),
          "vm: file_close on bad handle");
      handles_[static_cast<std::size_t>(h)].close();
      return Value::from_int(0);
    }
    case SysCall::kFileRead: {
      const auto h = args[0].as_int();
      check<ExecutionError>(
          h >= 0 && static_cast<std::size_t>(h) < handles_.size() &&
              handles_[static_cast<std::size_t>(h)].is_open(),
          "vm: file_read on bad handle");
      const auto& arr_obj = args[1].as_obj();
      check<ExecutionError>(!arr_obj->is_string(),
                            "vm: file_read needs an array");
      auto& arr = arr_obj->arr();
      const auto count = args[2].as_int();
      check<ExecutionError>(count >= 0 &&
                                static_cast<std::size_t>(count) <= arr.size(),
                            "vm: file_read count out of range");
      std::vector<std::byte> buffer(static_cast<std::size_t>(count));
      const std::size_t got =
          handles_[static_cast<std::size_t>(h)].read(buffer);
      for (std::size_t i = 0; i < got; ++i) {
        arr[i] = Value::from_int(static_cast<std::int64_t>(
            std::to_integer<std::uint8_t>(buffer[i])));
      }
      return Value::from_int(static_cast<std::int64_t>(got));
    }
    case SysCall::kFileWrite: {
      const auto h = args[0].as_int();
      check<ExecutionError>(
          h >= 0 && static_cast<std::size_t>(h) < handles_.size() &&
              handles_[static_cast<std::size_t>(h)].is_open(),
          "vm: file_write on bad handle");
      const auto& arr_obj = args[1].as_obj();
      check<ExecutionError>(!arr_obj->is_string(),
                            "vm: file_write needs an array");
      const auto& arr = arr_obj->arr();
      const auto count = args[2].as_int();
      check<ExecutionError>(count >= 0 &&
                                static_cast<std::size_t>(count) <= arr.size(),
                            "vm: file_write count out of range");
      std::vector<std::byte> buffer(static_cast<std::size_t>(count));
      for (std::size_t i = 0; i < buffer.size(); ++i) {
        buffer[i] = static_cast<std::byte>(arr[i].as_int() & 0xff);
      }
      handles_[static_cast<std::size_t>(h)].write(buffer);
      return Value::from_int(count);
    }
    case SysCall::kFileSeek: {
      const auto h = args[0].as_int();
      check<ExecutionError>(
          h >= 0 && static_cast<std::size_t>(h) < handles_.size() &&
              handles_[static_cast<std::size_t>(h)].is_open(),
          "vm: file_seek on bad handle");
      const auto pos = args[1].as_int();
      check<ExecutionError>(pos >= 0, "vm: negative seek");
      handles_[static_cast<std::size_t>(h)].seek(
          static_cast<std::uint64_t>(pos));
      return Value::from_int(0);
    }
    case SysCall::kFileSize: {
      const auto h = args[0].as_int();
      check<ExecutionError>(
          h >= 0 && static_cast<std::size_t>(h) < handles_.size() &&
              handles_[static_cast<std::size_t>(h)].is_open(),
          "vm: file_size on bad handle");
      return Value::from_int(static_cast<std::int64_t>(
          handles_[static_cast<std::size_t>(h)].size()));
    }
    case SysCall::kStrLen: {
      const auto& obj = args[0].as_obj();
      check<ExecutionError>(obj->is_string(), "vm: str_len needs a string");
      return Value::from_int(static_cast<std::int64_t>(obj->str().size()));
    }
    case SysCall::kRandSeed:
      rng_ = util::Rng(static_cast<std::uint64_t>(args[0].as_int()));
      return Value::from_int(0);
    case SysCall::kRandNext: {
      const auto bound = args[0].as_int();
      check<ExecutionError>(bound > 0, "vm: rand_next bound must be > 0");
      return Value::from_int(static_cast<std::int64_t>(
          rng_.uniform_u64(static_cast<std::uint64_t>(bound))));
    }
    case SysCall::kSysCallCount_:
      break;
  }
  throw ExecutionError("vm: unknown syscall");
}

}  // namespace clio::vm
