#include "vm/runtime.hpp"

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace clio::vm {

using util::cat;
using util::check;
using util::ExecutionError;

ExecutionEngine::ExecutionEngine(Module module, EngineOptions options,
                                 io::ManagedFileSystem* fs)
    : module_(std::move(module)), fs_(fs) {
  jit_ = std::make_unique<Jit>(module_, options.jit);
  interpreter_ =
      std::make_unique<Interpreter>(*this, *jit_, options.max_call_depth);
}

Value ExecutionEngine::call(std::string_view method, std::vector<Value> args) {
  return call_index(module_.find_method(method), args);
}

Value ExecutionEngine::call_index(std::uint16_t method,
                                  std::span<const Value> args) {
  std::lock_guard<std::mutex> lock(mutex_);
  return interpreter_->invoke(method, args);
}

void ExecutionEngine::flush_jit_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  jit_->flush_cache();
}

io::ManagedFile& ExecutionEngine::checked_handle(std::int64_t h,
                                                 const char* op) {
  check<ExecutionError>(
      h >= 0 && static_cast<std::size_t>(h) < handles_.size() &&
          handles_[static_cast<std::size_t>(h)].is_open(),
      cat("vm: ", op, " on bad handle"));
  return handles_[static_cast<std::size_t>(h)];
}

Value ExecutionEngine::dispatch_syscall(SysCall id,
                                        std::span<const Value> args) {
  switch (id) {
    case SysCall::kPrintI64: {
      const auto v = args[0].as_int();
      util::log_debug("vm print: ", v);
      return Value::from_int(v);
    }
    case SysCall::kClockNs:
      return Value::from_int(util::Stopwatch::now_ns());
    case SysCall::kFileOpen:
    case SysCall::kFileClose:
    case SysCall::kFileRead:
    case SysCall::kFileWrite:
    case SysCall::kFileSeek:
    case SysCall::kFileSize:
      // Storage faults (EIO, short reads, torn writes surfacing from the
      // pool, disk full...) cross into managed semantics as typed
      // ExecutionErrors: the VM raises a managed fault, never a bare
      // storage exception — and never a crash.
      try {
        return file_syscall(id, args);
      } catch (const util::IoError& e) {
        throw ExecutionError(
            cat("vm: ", syscall_name(id), " failed: ", e.what()));
      }
    case SysCall::kStrLen: {
      const auto& obj = args[0].as_obj();
      check<ExecutionError>(obj->is_string(), "vm: str_len needs a string");
      return Value::from_int(static_cast<std::int64_t>(obj->str().size()));
    }
    case SysCall::kRandSeed:
      rng_ = util::Rng(static_cast<std::uint64_t>(args[0].as_int()));
      return Value::from_int(0);
    case SysCall::kRandNext: {
      const auto bound = args[0].as_int();
      check<ExecutionError>(bound > 0, "vm: rand_next bound must be > 0");
      return Value::from_int(static_cast<std::int64_t>(
          rng_.uniform_u64(static_cast<std::uint64_t>(bound))));
    }
    case SysCall::kBufNew: {
      const auto len = args[0].as_int();
      check<ExecutionError>(len >= 0 && len <= (1 << 28),
                            "vm: bad buffer length");
      return Value::from_obj(std::make_shared<Obj>(
          std::vector<std::byte>(static_cast<std::size_t>(len))));
    }
    case SysCall::kBufLen: {
      const auto& obj = args[0].as_obj();
      check<ExecutionError>(obj->is_buffer(), "vm: buf_len needs a buffer");
      return Value::from_int(
          static_cast<std::int64_t>(obj->bytes().size()));
    }
    case SysCall::kSysCallCount_:
      break;
  }
  throw ExecutionError("vm: unknown syscall");
}

Value ExecutionEngine::file_syscall(SysCall id, std::span<const Value> args) {
  switch (id) {
    case SysCall::kFileOpen: {
      check<ExecutionError>(fs_ != nullptr,
                            "vm: file syscalls need a managed fs");
      const auto& name_obj = args[0].as_obj();
      check<ExecutionError>(name_obj->is_string(),
                            "vm: file_open needs a string name");
      const auto mode = args[1].as_int();
      io::OpenMode open_mode;
      switch (mode) {
        case 0:
          open_mode = io::OpenMode::kRead;
          break;
        case 1:
          open_mode = io::OpenMode::kCreate;
          break;
        case 2:
          open_mode = io::OpenMode::kTruncate;
          break;
        default:
          throw ExecutionError("vm: bad open mode");
      }
      // Reuse a free slot if any handle was closed.
      for (std::size_t i = 0; i < handles_.size(); ++i) {
        if (!handles_[i].is_open()) {
          handles_[i] = fs_->open(name_obj->str(), open_mode);
          return Value::from_int(static_cast<std::int64_t>(i));
        }
      }
      handles_.push_back(fs_->open(name_obj->str(), open_mode));
      return Value::from_int(static_cast<std::int64_t>(handles_.size() - 1));
    }
    case SysCall::kFileClose: {
      checked_handle(args[0].as_int(), "file_close").close();
      return Value::from_int(0);
    }
    case SysCall::kFileRead: {
      io::ManagedFile& file = checked_handle(args[0].as_int(), "file_read");
      const auto& obj = args[1].as_obj();
      const auto count = args[2].as_int();
      if (obj->is_buffer()) {
        // The managed I/O fast path: bytes move from the pool pages into
        // the buffer's storage in one span copy — zero per-byte boxing,
        // zero transient allocations.
        auto& bytes = obj->bytes();
        check<ExecutionError>(
            count >= 0 && static_cast<std::size_t>(count) <= bytes.size(),
            "vm: file_read count out of range");
        const std::size_t got = file.read(
            std::span<std::byte>(bytes.data(),
                                 static_cast<std::size_t>(count)));
        return Value::from_int(static_cast<std::int64_t>(got));
      }
      check<ExecutionError>(obj->is_array(),
                            "vm: file_read needs an array or buffer");
      auto& arr = obj->arr();
      check<ExecutionError>(count >= 0 &&
                                static_cast<std::size_t>(count) <= arr.size(),
                            "vm: file_read count out of range");
      std::vector<std::byte> staging(static_cast<std::size_t>(count));
      const std::size_t got = file.read(staging);
      for (std::size_t i = 0; i < got; ++i) {
        arr[i] = Value::from_int(static_cast<std::int64_t>(
            std::to_integer<std::uint8_t>(staging[i])));
      }
      return Value::from_int(static_cast<std::int64_t>(got));
    }
    case SysCall::kFileWrite: {
      io::ManagedFile& file = checked_handle(args[0].as_int(), "file_write");
      const auto& obj = args[1].as_obj();
      const auto count = args[2].as_int();
      if (obj->is_buffer()) {
        const auto& bytes = obj->bytes();
        check<ExecutionError>(
            count >= 0 && static_cast<std::size_t>(count) <= bytes.size(),
            "vm: file_write count out of range");
        const std::size_t wrote = file.write(std::span<const std::byte>(
            bytes.data(), static_cast<std::size_t>(count)));
        return Value::from_int(static_cast<std::int64_t>(wrote));
      }
      check<ExecutionError>(obj->is_array(),
                            "vm: file_write needs an array or buffer");
      const auto& arr = obj->arr();
      check<ExecutionError>(count >= 0 &&
                                static_cast<std::size_t>(count) <= arr.size(),
                            "vm: file_write count out of range");
      std::vector<std::byte> staging(static_cast<std::size_t>(count));
      for (std::size_t i = 0; i < staging.size(); ++i) {
        staging[i] = static_cast<std::byte>(arr[i].as_int() & 0xff);
      }
      // Report what the stream accepted, not what was requested.
      const std::size_t wrote = file.write(staging);
      return Value::from_int(static_cast<std::int64_t>(wrote));
    }
    case SysCall::kFileSeek: {
      io::ManagedFile& file = checked_handle(args[0].as_int(), "file_seek");
      const auto pos = args[1].as_int();
      check<ExecutionError>(pos >= 0, "vm: negative seek");
      file.seek(static_cast<std::uint64_t>(pos));
      return Value::from_int(0);
    }
    case SysCall::kFileSize: {
      io::ManagedFile& file = checked_handle(args[0].as_int(), "file_size");
      return Value::from_int(static_cast<std::int64_t>(file.size()));
    }
    default:
      throw ExecutionError("vm: not a file syscall");
  }
}

}  // namespace clio::vm
