#pragma once

#include <string_view>

#include "vm/module.hpp"

namespace clio::vm {

/// Assembles the textual IL into a Module.
///
/// Grammar (line oriented; ';' starts a comment):
///
///   .method <name> <num_args> <num_locals>
///     [label:]
///     <mnemonic> [operand]
///     ...
///   .end
///
/// Operands: integers for `ldc`, decimals for `ldcf`, double-quoted strings
/// for `ldstr` (interned into the pool), label names for branches, method
/// names for `call` (forward references allowed), syscall names or ids for
/// `syscall` (see corelib.hpp).
///
/// Throws ParseError with a line number on malformed input.  The result is
/// NOT yet verified — run verify_module() before executing.
[[nodiscard]] Module assemble(std::string_view source);

}  // namespace clio::vm
