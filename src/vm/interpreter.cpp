#include "vm/interpreter.hpp"

#include <cmath>

#include "util/error.hpp"
#include "vm/runtime.hpp"

// Threaded (computed-goto) dispatch on GCC/Clang: each handler jumps
// straight to the next instruction's handler through a label table, so the
// branch predictor sees one indirect branch per *opcode* instead of the
// single shared switch branch.  Elsewhere the same handler bodies compile
// into a plain dispatch-loop switch; the two modes share one source of
// truth via the VM_CASE / VM_NEXT / VM_JUMP macros below.
#if defined(__GNUC__) || defined(__clang__)
#define CLIO_VM_THREADED_DISPATCH 1
#else
#define CLIO_VM_THREADED_DISPATCH 0
#endif

namespace clio::vm {

using util::check;
using util::ExecutionError;

Interpreter::Interpreter(ExecutionEngine& engine, Jit& jit,
                         std::size_t max_call_depth)
    : engine_(engine), jit_(jit), max_call_depth_(max_call_depth) {}

Value Interpreter::invoke(std::uint16_t index, std::span<const Value> args) {
  return run_frame(index, args, 0);
}

Value Interpreter::run_frame(std::uint16_t index, std::span<const Value> args,
                             std::size_t depth) {
  check<ExecutionError>(depth < max_call_depth_,
                        "interpreter: call stack overflow");
  const MethodDef& def = jit_.module().method(index);
  check<ExecutionError>(args.size() == def.num_args,
                        "interpreter: argument count mismatch calling '" +
                            def.name + "'");
  const CompiledMethod& compiled = jit_.get(index);

  std::vector<Value> locals(def.num_locals);
  std::vector<Value> arg_slots(args.begin(), args.end());
  std::vector<Value> stack;
  stack.reserve(compiled.max_stack);

  auto pop = [&]() -> Value {
    Value v = std::move(stack.back());
    stack.pop_back();
    return v;
  };
  auto pop_int = [&]() -> std::int64_t { return pop().as_int(); };
  auto pop_float = [&]() -> double { return pop().as_float(); };

  // The verifier guarantees every reachable path ends in kRet and every
  // branch target is a decoded-instruction index, so dispatch needs no
  // per-instruction bounds check.  Executed-instruction accounting is kept
  // in a local and folded into the member on every exit path (including
  // ExecutionError unwinds) by the guard.
  const DecodedInsn* const code = compiled.code.data();
  std::size_t pc = 0;
  std::uint64_t executed = 0;
  struct CountGuard {
    std::uint64_t& total;
    const std::uint64_t& local;
    ~CountGuard() { total += local; }
  } count_guard{instructions_, executed};

#if CLIO_VM_THREADED_DISPATCH
  static_assert(static_cast<std::size_t>(Op::kOpCount_) == 44,
                "opcode added: update the threaded-dispatch label table");
  static const void* const kLabels[] = {
      &&lbl_kNop,    &&lbl_kLdcI8,   &&lbl_kLdcF64,  &&lbl_kLdStr,
      &&lbl_kLdLoc,  &&lbl_kStLoc,   &&lbl_kLdArg,   &&lbl_kStArg,
      &&lbl_kDup,    &&lbl_kPop,     &&lbl_kAdd,     &&lbl_kSub,
      &&lbl_kMul,    &&lbl_kDiv,     &&lbl_kRem,     &&lbl_kNeg,
      &&lbl_kAnd,    &&lbl_kOr,      &&lbl_kXor,     &&lbl_kShl,
      &&lbl_kShr,    &&lbl_kAddF,    &&lbl_kSubF,    &&lbl_kMulF,
      &&lbl_kDivF,   &&lbl_kNegF,    &&lbl_kConvI2F, &&lbl_kConvF2I,
      &&lbl_kCmpEq,  &&lbl_kCmpNe,   &&lbl_kCmpLt,   &&lbl_kCmpLe,
      &&lbl_kCmpGt,  &&lbl_kCmpGe,   &&lbl_kBr,      &&lbl_kBrTrue,
      &&lbl_kBrFalse, &&lbl_kCall,   &&lbl_kRet,     &&lbl_kNewArr,
      &&lbl_kLdElem, &&lbl_kStElem,  &&lbl_kArrLen,  &&lbl_kSysCall,
  };
#define VM_DISPATCH()                                                   \
  do {                                                                  \
    ++executed;                                                         \
    goto* kLabels[static_cast<std::size_t>(code[pc].op)];               \
  } while (0)
#define VM_CASE(name) lbl_##name:
#else
#define VM_DISPATCH() goto dispatch_loop
#define VM_CASE(name) case Op::name:
#endif
#define VM_NEXT() \
  do {            \
    ++pc;         \
    VM_DISPATCH(); \
  } while (0)
#define VM_JUMP(target)                        \
  do {                                         \
    pc = static_cast<std::size_t>(target);     \
    VM_DISPATCH();                             \
  } while (0)

#if CLIO_VM_THREADED_DISPATCH
  VM_DISPATCH();
#else
dispatch_loop:
  ++executed;
  switch (code[pc].op) {
#endif

  VM_CASE(kNop) { VM_NEXT(); }
  VM_CASE(kLdcI8) {
    stack.push_back(Value::from_int(code[pc].imm));
    VM_NEXT();
  }
  VM_CASE(kLdcF64) {
    stack.push_back(Value::from_float(code[pc].fimm));
    VM_NEXT();
  }
  VM_CASE(kLdStr) {
    // Per-module interning: pushes a shared reference; no allocation here.
    stack.push_back(Value::from_obj(
        jit_.interned_string(static_cast<std::size_t>(code[pc].imm))));
    VM_NEXT();
  }
  VM_CASE(kLdLoc) {
    stack.push_back(locals[static_cast<std::size_t>(code[pc].imm)]);
    VM_NEXT();
  }
  VM_CASE(kStLoc) {
    locals[static_cast<std::size_t>(code[pc].imm)] = pop();
    VM_NEXT();
  }
  VM_CASE(kLdArg) {
    stack.push_back(arg_slots[static_cast<std::size_t>(code[pc].imm)]);
    VM_NEXT();
  }
  VM_CASE(kStArg) {
    arg_slots[static_cast<std::size_t>(code[pc].imm)] = pop();
    VM_NEXT();
  }
  VM_CASE(kDup) {
    stack.push_back(stack.back());
    VM_NEXT();
  }
  VM_CASE(kPop) {
    stack.pop_back();
    VM_NEXT();
  }
  // ---- integer ----
  VM_CASE(kAdd) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a + b));
    VM_NEXT();
  }
  VM_CASE(kSub) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a - b));
    VM_NEXT();
  }
  VM_CASE(kMul) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a * b));
    VM_NEXT();
  }
  VM_CASE(kDiv) {
    const auto b = pop_int();
    const auto a = pop_int();
    check<ExecutionError>(b != 0, "interpreter: division by zero");
    check<ExecutionError>(!(a == INT64_MIN && b == -1),
                          "interpreter: division overflow");
    stack.push_back(Value::from_int(a / b));
    VM_NEXT();
  }
  VM_CASE(kRem) {
    const auto b = pop_int();
    const auto a = pop_int();
    check<ExecutionError>(b != 0, "interpreter: remainder by zero");
    check<ExecutionError>(!(a == INT64_MIN && b == -1),
                          "interpreter: remainder overflow");
    stack.push_back(Value::from_int(a % b));
    VM_NEXT();
  }
  VM_CASE(kNeg) {
    stack.push_back(Value::from_int(-pop_int()));
    VM_NEXT();
  }
  VM_CASE(kAnd) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a & b));
    VM_NEXT();
  }
  VM_CASE(kOr) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a | b));
    VM_NEXT();
  }
  VM_CASE(kXor) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a ^ b));
    VM_NEXT();
  }
  VM_CASE(kShl) {
    const auto b = pop_int();
    const auto a = pop_int();
    check<ExecutionError>(b >= 0 && b < 64, "interpreter: bad shift");
    stack.push_back(Value::from_int(
        static_cast<std::int64_t>(static_cast<std::uint64_t>(a) << b)));
    VM_NEXT();
  }
  VM_CASE(kShr) {
    const auto b = pop_int();
    const auto a = pop_int();
    check<ExecutionError>(b >= 0 && b < 64, "interpreter: bad shift");
    stack.push_back(Value::from_int(
        static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >> b)));
    VM_NEXT();
  }
  // ---- float ----
  VM_CASE(kAddF) {
    const auto b = pop_float();
    const auto a = pop_float();
    stack.push_back(Value::from_float(a + b));
    VM_NEXT();
  }
  VM_CASE(kSubF) {
    const auto b = pop_float();
    const auto a = pop_float();
    stack.push_back(Value::from_float(a - b));
    VM_NEXT();
  }
  VM_CASE(kMulF) {
    const auto b = pop_float();
    const auto a = pop_float();
    stack.push_back(Value::from_float(a * b));
    VM_NEXT();
  }
  VM_CASE(kDivF) {
    const auto b = pop_float();
    const auto a = pop_float();
    stack.push_back(Value::from_float(a / b));
    VM_NEXT();
  }
  VM_CASE(kNegF) {
    stack.push_back(Value::from_float(-pop_float()));
    VM_NEXT();
  }
  VM_CASE(kConvI2F) {
    stack.push_back(Value::from_float(static_cast<double>(pop_int())));
    VM_NEXT();
  }
  VM_CASE(kConvF2I) {
    const double f = pop_float();
    // llround of NaN or anything outside i64 range is undefined behaviour
    // in C++; managed semantics trap instead (ECMA-335 conv.ovf).  The
    // upper bound is exclusive: 2^63 is exactly representable, INT64_MAX
    // is not.
    check<ExecutionError>(std::isfinite(f) && f >= -9223372036854775808.0 &&
                              f < 9223372036854775808.0,
                          "interpreter: float to int conversion overflow");
    stack.push_back(
        Value::from_int(static_cast<std::int64_t>(std::llround(f))));
    VM_NEXT();
  }
  // ---- comparisons ----
  VM_CASE(kCmpEq) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a == b ? 1 : 0));
    VM_NEXT();
  }
  VM_CASE(kCmpNe) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a != b ? 1 : 0));
    VM_NEXT();
  }
  VM_CASE(kCmpLt) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a < b ? 1 : 0));
    VM_NEXT();
  }
  VM_CASE(kCmpLe) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a <= b ? 1 : 0));
    VM_NEXT();
  }
  VM_CASE(kCmpGt) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a > b ? 1 : 0));
    VM_NEXT();
  }
  VM_CASE(kCmpGe) {
    const auto b = pop_int();
    const auto a = pop_int();
    stack.push_back(Value::from_int(a >= b ? 1 : 0));
    VM_NEXT();
  }
  // ---- control ----
  VM_CASE(kBr) { VM_JUMP(code[pc].imm); }
  VM_CASE(kBrTrue) {
    if (pop_int() != 0) VM_JUMP(code[pc].imm);
    VM_NEXT();
  }
  VM_CASE(kBrFalse) {
    if (pop_int() == 0) VM_JUMP(code[pc].imm);
    VM_NEXT();
  }
  VM_CASE(kCall) {
    const auto callee = static_cast<std::uint16_t>(code[pc].imm);
    const auto nargs = jit_.module().method(callee).num_args;
    std::vector<Value> callee_args(nargs);
    for (std::size_t i = nargs; i-- > 0;) callee_args[i] = pop();
    stack.push_back(run_frame(callee, callee_args, depth + 1));
    VM_NEXT();
  }
  VM_CASE(kRet) { return pop(); }
  // ---- arrays & buffers ----
  VM_CASE(kNewArr) {
    const auto len = pop_int();
    check<ExecutionError>(len >= 0 && len <= (1 << 28),
                          "interpreter: bad array length");
    stack.push_back(Value::from_obj(std::make_shared<Obj>(
        std::vector<Value>(static_cast<std::size_t>(len)))));
    VM_NEXT();
  }
  VM_CASE(kLdElem) {
    const auto idx = pop_int();
    const auto obj = pop().as_obj();
    if (obj->is_buffer()) {
      const auto& bytes = obj->bytes();
      check<ExecutionError>(
          idx >= 0 && static_cast<std::size_t>(idx) < bytes.size(),
          "interpreter: buffer index out of range");
      stack.push_back(Value::from_int(std::to_integer<std::uint8_t>(
          bytes[static_cast<std::size_t>(idx)])));
    } else {
      check<ExecutionError>(obj->is_array(),
                            "interpreter: ldelem needs an array or buffer");
      check<ExecutionError>(
          idx >= 0 && static_cast<std::size_t>(idx) < obj->arr().size(),
          "interpreter: array index out of range");
      stack.push_back(obj->arr()[static_cast<std::size_t>(idx)]);
    }
    VM_NEXT();
  }
  VM_CASE(kStElem) {
    Value v = pop();
    const auto idx = pop_int();
    const auto obj = pop().as_obj();
    if (obj->is_buffer()) {
      auto& bytes = obj->bytes();
      check<ExecutionError>(
          idx >= 0 && static_cast<std::size_t>(idx) < bytes.size(),
          "interpreter: buffer index out of range");
      bytes[static_cast<std::size_t>(idx)] =
          static_cast<std::byte>(v.as_int() & 0xff);
    } else {
      check<ExecutionError>(obj->is_array(),
                            "interpreter: stelem needs an array or buffer");
      check<ExecutionError>(
          idx >= 0 && static_cast<std::size_t>(idx) < obj->arr().size(),
          "interpreter: array index out of range");
      obj->arr()[static_cast<std::size_t>(idx)] = std::move(v);
    }
    VM_NEXT();
  }
  VM_CASE(kArrLen) {
    const auto obj = pop().as_obj();
    const std::size_t len = obj->is_string()   ? obj->str().size()
                            : obj->is_buffer() ? obj->bytes().size()
                                               : obj->arr().size();
    stack.push_back(Value::from_int(static_cast<std::int64_t>(len)));
    VM_NEXT();
  }
  // ---- services ----
  VM_CASE(kSysCall) {
    const auto id = static_cast<SysCall>(code[pc].imm);
    const int arity = syscall_arity(id);
    std::vector<Value> sys_args(static_cast<std::size_t>(arity));
    for (std::size_t i = sys_args.size(); i-- > 0;) sys_args[i] = pop();
    stack.push_back(engine_.dispatch_syscall(id, sys_args));
    VM_NEXT();
  }

#if !CLIO_VM_THREADED_DISPATCH
    case Op::kOpCount_:
      break;
  }
  throw ExecutionError("interpreter: invalid opcode");
#endif

#undef VM_JUMP
#undef VM_NEXT
#undef VM_CASE
#undef VM_DISPATCH
}

}  // namespace clio::vm
