#include "vm/interpreter.hpp"

#include <cmath>

#include "util/error.hpp"
#include "vm/runtime.hpp"

namespace clio::vm {

using util::check;
using util::ExecutionError;

Interpreter::Interpreter(ExecutionEngine& engine, Jit& jit,
                         std::size_t max_call_depth)
    : engine_(engine), jit_(jit), max_call_depth_(max_call_depth) {}

Value Interpreter::invoke(std::uint16_t index, std::span<const Value> args) {
  return run_frame(index, args, 0);
}

Value Interpreter::run_frame(std::uint16_t index, std::span<const Value> args,
                             std::size_t depth) {
  check<ExecutionError>(depth < max_call_depth_,
                        "interpreter: call stack overflow");
  const MethodDef& def = jit_.module().method(index);
  check<ExecutionError>(args.size() == def.num_args,
                        "interpreter: argument count mismatch calling '" +
                            def.name + "'");
  const CompiledMethod& compiled = jit_.get(index);

  std::vector<Value> locals(def.num_locals);
  std::vector<Value> arg_slots(args.begin(), args.end());
  std::vector<Value> stack;
  stack.reserve(compiled.max_stack);

  auto pop = [&]() -> Value {
    Value v = std::move(stack.back());
    stack.pop_back();
    return v;
  };
  auto pop_int = [&]() -> std::int64_t { return pop().as_int(); };
  auto pop_float = [&]() -> double { return pop().as_float(); };

  std::size_t pc = 0;
  while (true) {
    check<ExecutionError>(pc < compiled.code.size(),
                          "interpreter: pc out of range");
    const DecodedInsn& insn = compiled.code[pc];
    ++instructions_;
    switch (insn.op) {
      case Op::kNop:
        break;
      case Op::kLdcI8:
        stack.push_back(Value::from_int(insn.imm));
        break;
      case Op::kLdcF64:
        stack.push_back(Value::from_float(insn.fimm));
        break;
      case Op::kLdStr:
        stack.push_back(Value::from_obj(std::make_shared<Obj>(
            jit_.module().string_at(static_cast<std::size_t>(insn.imm)))));
        break;
      case Op::kLdLoc:
        stack.push_back(locals[static_cast<std::size_t>(insn.imm)]);
        break;
      case Op::kStLoc:
        locals[static_cast<std::size_t>(insn.imm)] = pop();
        break;
      case Op::kLdArg:
        stack.push_back(arg_slots[static_cast<std::size_t>(insn.imm)]);
        break;
      case Op::kStArg:
        arg_slots[static_cast<std::size_t>(insn.imm)] = pop();
        break;
      case Op::kDup:
        stack.push_back(stack.back());
        break;
      case Op::kPop:
        stack.pop_back();
        break;
      // ---- integer ----
      case Op::kAdd: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a + b));
        break;
      }
      case Op::kSub: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a - b));
        break;
      }
      case Op::kMul: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a * b));
        break;
      }
      case Op::kDiv: {
        const auto b = pop_int();
        const auto a = pop_int();
        check<ExecutionError>(b != 0, "interpreter: division by zero");
        stack.push_back(Value::from_int(a / b));
        break;
      }
      case Op::kRem: {
        const auto b = pop_int();
        const auto a = pop_int();
        check<ExecutionError>(b != 0, "interpreter: remainder by zero");
        stack.push_back(Value::from_int(a % b));
        break;
      }
      case Op::kNeg:
        stack.push_back(Value::from_int(-pop_int()));
        break;
      case Op::kAnd: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a & b));
        break;
      }
      case Op::kOr: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a | b));
        break;
      }
      case Op::kXor: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a ^ b));
        break;
      }
      case Op::kShl: {
        const auto b = pop_int();
        const auto a = pop_int();
        check<ExecutionError>(b >= 0 && b < 64, "interpreter: bad shift");
        stack.push_back(Value::from_int(
            static_cast<std::int64_t>(static_cast<std::uint64_t>(a) << b)));
        break;
      }
      case Op::kShr: {
        const auto b = pop_int();
        const auto a = pop_int();
        check<ExecutionError>(b >= 0 && b < 64, "interpreter: bad shift");
        stack.push_back(Value::from_int(
            static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >> b)));
        break;
      }
      // ---- float ----
      case Op::kAddF: {
        const auto b = pop_float();
        const auto a = pop_float();
        stack.push_back(Value::from_float(a + b));
        break;
      }
      case Op::kSubF: {
        const auto b = pop_float();
        const auto a = pop_float();
        stack.push_back(Value::from_float(a - b));
        break;
      }
      case Op::kMulF: {
        const auto b = pop_float();
        const auto a = pop_float();
        stack.push_back(Value::from_float(a * b));
        break;
      }
      case Op::kDivF: {
        const auto b = pop_float();
        const auto a = pop_float();
        stack.push_back(Value::from_float(a / b));
        break;
      }
      case Op::kNegF:
        stack.push_back(Value::from_float(-pop_float()));
        break;
      case Op::kConvI2F:
        stack.push_back(
            Value::from_float(static_cast<double>(pop_int())));
        break;
      case Op::kConvF2I:
        stack.push_back(Value::from_int(
            static_cast<std::int64_t>(std::llround(pop_float()))));
        break;
      // ---- comparisons ----
      case Op::kCmpEq: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a == b ? 1 : 0));
        break;
      }
      case Op::kCmpNe: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a != b ? 1 : 0));
        break;
      }
      case Op::kCmpLt: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a < b ? 1 : 0));
        break;
      }
      case Op::kCmpLe: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a <= b ? 1 : 0));
        break;
      }
      case Op::kCmpGt: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a > b ? 1 : 0));
        break;
      }
      case Op::kCmpGe: {
        const auto b = pop_int();
        const auto a = pop_int();
        stack.push_back(Value::from_int(a >= b ? 1 : 0));
        break;
      }
      // ---- control ----
      case Op::kBr:
        pc = static_cast<std::size_t>(insn.imm);
        continue;
      case Op::kBrTrue:
        if (pop_int() != 0) {
          pc = static_cast<std::size_t>(insn.imm);
          continue;
        }
        break;
      case Op::kBrFalse:
        if (pop_int() == 0) {
          pc = static_cast<std::size_t>(insn.imm);
          continue;
        }
        break;
      case Op::kCall: {
        const auto callee = static_cast<std::uint16_t>(insn.imm);
        const auto nargs = jit_.module().method(callee).num_args;
        std::vector<Value> callee_args(nargs);
        for (std::size_t i = nargs; i-- > 0;) callee_args[i] = pop();
        stack.push_back(run_frame(callee, callee_args, depth + 1));
        break;
      }
      case Op::kRet:
        return pop();
      // ---- arrays ----
      case Op::kNewArr: {
        const auto len = pop_int();
        check<ExecutionError>(len >= 0 && len <= (1 << 28),
                              "interpreter: bad array length");
        stack.push_back(Value::from_obj(std::make_shared<Obj>(
            std::vector<Value>(static_cast<std::size_t>(len)))));
        break;
      }
      case Op::kLdElem: {
        const auto idx = pop_int();
        const auto arr = pop().as_obj();
        check<ExecutionError>(!arr->is_string(),
                              "interpreter: ldelem on string");
        check<ExecutionError>(
            idx >= 0 && static_cast<std::size_t>(idx) < arr->arr().size(),
            "interpreter: array index out of range");
        stack.push_back(arr->arr()[static_cast<std::size_t>(idx)]);
        break;
      }
      case Op::kStElem: {
        Value v = pop();
        const auto idx = pop_int();
        const auto arr = pop().as_obj();
        check<ExecutionError>(!arr->is_string(),
                              "interpreter: stelem on string");
        check<ExecutionError>(
            idx >= 0 && static_cast<std::size_t>(idx) < arr->arr().size(),
            "interpreter: array index out of range");
        arr->arr()[static_cast<std::size_t>(idx)] = std::move(v);
        break;
      }
      case Op::kArrLen: {
        const auto arr = pop().as_obj();
        const auto len = arr->is_string() ? arr->str().size()
                                          : arr->arr().size();
        stack.push_back(
            Value::from_int(static_cast<std::int64_t>(len)));
        break;
      }
      // ---- services ----
      case Op::kSysCall: {
        const auto id = static_cast<SysCall>(insn.imm);
        const int arity = syscall_arity(id);
        std::vector<Value> sys_args(static_cast<std::size_t>(arity));
        for (std::size_t i = sys_args.size(); i-- > 0;) sys_args[i] = pop();
        stack.push_back(engine_.dispatch_syscall(id, sys_args));
        break;
      }
      case Op::kOpCount_:
        throw ExecutionError("interpreter: invalid opcode");
    }
    ++pc;
  }
}

}  // namespace clio::vm
