// Trace pipeline demo: run a real application (Apriori association-rule
// mining) under trace capture, persist the UMD-style trace to disk, read it
// back, print its workload statistics, and replay it against the sample
// file with per-op-class timing — the full §3 pipeline of the paper.
//
// Build & run:  ./build/examples/trace_pipeline
#include <iostream>

#include "apps/dmine/apriori.hpp"
#include "io/file_store.hpp"
#include "trace/reader.hpp"
#include "trace/replayer.hpp"
#include "trace/stats.hpp"
#include "trace/writer.hpp"
#include "util/fs.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"

int main() {
  using namespace clio;
  util::TempDir dir("clio-tracedemo");

  io::ManagedFileSystem fs(
      std::make_unique<io::RealFileStore>(dir.path() / "work"),
      io::ManagedFsOptions{});
  util::create_sample_file(dir.path() / "work" / "sample.bin", 32ULL << 20);

  // 1. Run the miner under capture.
  apps::TraceCapturingFs capture(fs, "sample.bin");
  apps::dmine::StoreConfig store_config;
  store_config.num_transactions = 5000;
  store_config.num_items = 120;
  store_config.planted = {{7, 11, 13}};
  apps::dmine::TransactionStore::generate(capture, "retail.db", store_config);
  apps::dmine::TransactionStore store(capture, "retail.db");
  apps::dmine::Apriori miner(apps::dmine::MiningConfig{
      .min_support = 0.06, .min_confidence = 0.6, .max_itemset_size = 3});
  const auto mining = miner.run(store);
  std::cout << "mined " << mining.rules.size() << " rules in "
            << mining.passes << " database passes; e.g. ";
  if (!mining.rules.empty()) {
    const auto& rule = mining.rules.front();
    std::cout << "{";
    for (auto item : rule.lhs) std::cout << item << " ";
    std::cout << "} -> " << rule.rhs << " (confidence "
              << util::format_fixed(rule.confidence, 2) << ")";
  }
  std::cout << "\n";

  // 2. Persist and reload the captured trace.
  const auto trace = capture.finish();
  trace::write_trace(dir.file("dmine.trc"), trace);
  const auto loaded = trace::read_trace(dir.file("dmine.trc"));
  std::cout << "trace round-tripped: " << loaded.records.size()
            << " records, sample file '" << loaded.header.sample_file
            << "'\n";
  trace::render_stats(std::cout, trace::compute_stats(loaded));

  // 3. Replay it cold against the sample file.
  fs.drop_caches();
  trace::TraceReplayer replayer(fs);
  const auto result = replayer.replay(loaded);
  std::cout << "replayed in " << util::format_fixed(result.wall_ms, 1)
            << " ms: mean read "
            << util::format_ms(result.op(trace::TraceOp::kRead).mean())
            << " ms, mean open "
            << util::format_ms(result.op(trace::TraceOp::kOpen).mean())
            << " ms, mean close "
            << util::format_ms(result.op(trace::TraceOp::kClose).mean())
            << " ms\n";
  return 0;
}
