// Quickstart: describe a parallel application with the behavioral model
// (working sets Γ = (φ, γ, ρ, τ)), ask the closed-form equations for its
// resource requirements, then run it through the discrete-event simulator
// and for real through the managed I/O stack.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "model/qcrd.hpp"
#include "sim/des.hpp"
#include "sim/real_driver.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"

int main() {
  using namespace clio;

  // 1. An application = programs = working sets.  Here: one program that
  //    reads a lot up front, computes, then writes results — plus the
  //    paper's QCRD application built from eqs. 9-10.
  model::ProgramBehavior pipeline(
      "Pipeline", {
                      model::WorkingSet{.io_fraction = 0.70,
                                        .comm_fraction = 0.0,
                                        .rel_time = 0.2,
                                        .phases = 1},  // ingest
                      model::WorkingSet{.io_fraction = 0.05,
                                        .comm_fraction = 0.10,
                                        .rel_time = 0.15,
                                        .phases = 4},  // iterate
                      model::WorkingSet{.io_fraction = 0.85,
                                        .comm_fraction = 0.0,
                                        .rel_time = 0.2,
                                        .phases = 1},  // write out
                  });
  model::ApplicationBehavior app("Demo", {pipeline});

  // 2. Closed-form requirements (eqs. 3-5) for a 60-second run.
  const auto reqs = app.requirements(60.0);
  std::cout << "Model requirements over 60 s: CPU " << reqs.cpu << " s, disk "
            << reqs.disk << " s, comm " << reqs.comm << " s\n";

  // 3. Simulate on machines with 1 vs 4 disks.
  sim::MachineConfig machine;
  machine.cpus = 1;
  machine.disks = 1;
  const auto one_disk = sim::simulate(app, machine, 1.0);
  machine.disks = 4;
  const auto four_disks = sim::simulate(app, machine, 1.0);
  std::cout << "DES makespan: 1 disk " << one_disk.makespan_ms
            << " ms, 4 disks " << four_disks.makespan_ms << " ms\n";

  // 4. Execute the QCRD application for real (scaled to 0.5 s).
  util::TempDir dir("clio-quickstart");
  sim::RealDriverOptions options;
  options.workdir = dir.path() / "run";
  sim::RealExecutionDriver driver(options);
  const auto run = driver.run(model::make_qcrd(), 0.5);
  util::TextTable table({"program", "CPU (ms)", "IO (ms)", "IO bytes"});
  for (const auto& p : run.programs) {
    table.add_row({p.name, util::format_fixed(p.cpu_ms, 1),
                   util::format_fixed(p.io_ms, 1),
                   std::to_string(p.io_bytes)});
  }
  std::cout << "Real execution of QCRD (calibrated at "
            << util::format_fixed(run.disk_mb_s, 0) << " MB/s):\n";
  table.render(std::cout);
  return 0;
}
