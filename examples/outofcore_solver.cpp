// Out-of-core linear algebra demo: factor a dense matrix with the blocked
// out-of-core LU (panels on disk) and a sparse SPD matrix with the
// out-of-core Cholesky (columns on disk), then solve systems with both and
// report the I/O each factorization performed.
//
// Build & run:  ./build/examples/outofcore_solver
#include <cmath>
#include <iostream>

#include "apps/cholesky/numeric.hpp"
#include "apps/lu/ooc_lu.hpp"
#include "io/file_store.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"

int main() {
  using namespace clio;
  util::TempDir dir("clio-ooc");
  io::ManagedFileSystem fs(
      std::make_unique<io::RealFileStore>(dir.path() / "work"),
      io::ManagedFsOptions{});
  apps::TraceCapturingFs capture(fs, "sample.bin");

  // --- dense LU, panels on disk ---
  const std::size_t n = 96;
  util::Rng rng(42);
  std::vector<double> a(n * n);
  for (auto& v : a) v = rng.normal(0.0, 1.0);
  apps::lu::PanelStore panels(capture, "matrix.bin", n, 16, /*create=*/true);
  panels.store_matrix(a);
  apps::lu::OutOfCoreLu lu;
  apps::lu::LuStats lu_stats;
  const auto ipiv = lu.factor(panels, &lu_stats);
  const auto factors =
      apps::lu::OutOfCoreLu::load_factors_final_order(panels, ipiv);
  std::cout << "LU: " << n << "x" << n << " in 16-column panels -> "
            << lu_stats.panel_reads << " panel reads, "
            << lu_stats.panel_writes << " panel writes, residual "
            << apps::lu::lu_residual(a, factors, ipiv, n) << "\n";
  std::vector<double> b(n, 1.0);
  const auto x = apps::lu::lu_solve(factors, ipiv, b, n);
  double check = 0.0;
  for (std::size_t j = 0; j < n; ++j) check += a[j * n] * x[j];  // row 0
  std::cout << "LU solve check (A x)[0] = " << check << " (expect 1)\n";

  // --- sparse Cholesky, columns on disk ---
  const auto spd = apps::cholesky::make_spd(300, 3, 7);
  const auto symbolic = apps::cholesky::symbolic_factor(spd);
  apps::cholesky::OocCholesky chol(spd, symbolic);
  const auto chol_stats = chol.factor(capture, "factor.bin");
  const auto l = chol.load_factor(capture, "factor.bin");
  std::cout << "Cholesky: n = " << spd.n << ", nnz(A) = " << spd.nnz()
            << ", nnz(L) = " << symbolic.nnz << ", "
            << chol_stats.column_reads << " column fetches ("
            << chol_stats.bytes_read << " B read), residual "
            << apps::cholesky::cholesky_residual(spd, l) << "\n";
  std::vector<double> ones(spd.n, 1.0);
  const auto rhs = apps::cholesky::symmetric_matvec(spd, ones);
  const auto solution = apps::cholesky::cholesky_solve(l, rhs);
  double worst = 0.0;
  for (double v : solution) worst = std::max(worst, std::fabs(v - 1.0));
  std::cout << "Cholesky solve max |x - 1| = " << worst << "\n";

  // The I/O both kernels performed, as captured in the trace.
  const auto trace = capture.finish();
  std::cout << "captured " << trace.records.size()
            << " trace records from the two factorizations\n";
  return 0;
}
