// Web-server demo: start the multi-threaded mini web server over a managed
// docroot, issue GETs and POSTs from a multi-threaded load generator, and
// print the latency distribution plus the server's own request samples.
//
// Build & run:  ./build/examples/webserver_demo
#include <iostream>

#include "io/file_store.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/fs.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"

int main() {
  using namespace clio;
  util::TempDir dir("clio-webdemo");

  io::ManagedFileSystem fs(
      std::make_unique<io::RealFileStore>(dir.path() / "docroot"),
      io::ManagedFsOptions{});
  // Publish a few image-sized files.
  const std::vector<std::pair<std::string, std::size_t>> docs = {
      {"logo.png", 7501}, {"photo.jpg", 50607}, {"chart.gif", 14063}};
  for (const auto& [name, size] : docs) {
    auto file = fs.open(name, io::OpenMode::kTruncate);
    std::vector<std::byte> bytes(size);
    util::expected_sample_bytes(0, bytes);
    file.write(bytes);
    file.close();
  }

  net::ServerOptions options;
  options.vm_dispatch = true;  // managed handlers: first request pays JIT
  net::MiniWebServer server(fs, options);
  server.start();
  std::cout << "server listening on 127.0.0.1:" << server.port() << "\n";

  // One interactive round trip.
  net::HttpClient client(server.port());
  const auto get = client.get("/photo.jpg");
  std::cout << "GET /photo.jpg -> " << get.status << ", " << get.body.size()
            << " bytes in " << util::format_ms(get.latency_ms) << " ms\n";
  const auto post = client.post("/upload", std::string(2048, 'u'));
  std::cout << "POST 2048 bytes -> " << post.status << ", stored as "
            << post.body << "\n";

  // A burst of concurrent load.
  const auto load = net::run_get_load(
      server.port(), {"logo.png", "photo.jpg", "chart.gif"},
      /*clients=*/4, /*requests_per_client=*/25);
  const auto summary = util::summarize(load.latencies_ms);
  util::TextTable table({"metric", "value"});
  table.add_row({"requests", std::to_string(summary.count)});
  table.add_row({"errors", std::to_string(load.errors)});
  table.add_row({"mean (ms)", util::format_ms(summary.mean)});
  table.add_row({"p90 (ms)", util::format_ms(summary.p90)});
  table.add_row({"max (ms)", util::format_ms(summary.max)});
  table.add_row({"bytes", std::to_string(load.bytes_received)});
  table.render(std::cout);

  server.stop();
  std::cout << "server-side samples: " << server.samples().size()
            << " (first request file op "
            << util::format_ms(server.samples().front().file_ms) << " ms)\n";
  return 0;
}
