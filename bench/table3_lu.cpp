// Table 3: results for the LU application (paper §3.4) — seek times to
// large panel offsets during out-of-core factorization.  The I/O schedule
// of the blocked left-looking algorithm (verified against the real kernel
// in tests) is generated at paper scale and replayed cold.  Expected shape:
// most seeks are tiny (target page already buffered by the preceding
// sequential reads), with occasional slower cold seeks — the paper's
// "prefetching" spikes.
#include <iostream>

#include "apps/lu/ooc_lu.hpp"
#include "core/report.hpp"
#include "core/trace_benchmark.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"

int main() {
  using namespace clio;
  util::TempDir dir("clio-table3");
  auto config = core::default_trace_config(dir.path() / "work");
  core::TraceBenchEnv env(config);

  // n = 2048 doubles, 32-column panels: 512 KiB panels, offsets up to
  // 32 MiB, ~2k panel reads — the paper's 60-66 MB offsets at half scale.
  const std::size_t n = 2048;
  const std::size_t panel = 32;
  const auto trace = apps::lu::lu_trace_schedule(
      n, panel, core::TraceBenchEnv::kSampleName);
  std::cout << "LU schedule: n = " << n << ", panel width = " << panel
            << ", " << trace.records.size() << " trace records\n";
  const auto result = env.replay(trace);

  std::cout << "Table 3 — results for the LU application (last 6 seeks of "
               "the factorization)\n";
  // Print the tail window, where offsets are largest (paper shows 6
  // requests at 60-66 MB).
  trace::ReplayResult tail;
  std::size_t seeks_total = 0;
  for (const auto& row : result.replay.rows) {
    if (row.op == trace::TraceOp::kSeek) ++seeks_total;
  }
  std::size_t seen = 0;
  for (const auto& row : result.replay.rows) {
    if (row.op != trace::TraceOp::kSeek) continue;
    ++seen;
    if (seen + 6 > seeks_total) tail.rows.push_back(row);
  }
  core::render_seek_rows(std::cout, tail, 6);
  std::cout << "open " << util::format_ms(result.open_ms) << " ms, close "
            << util::format_ms(result.close_ms)
            << " ms (paper: open 0.0006, close 0.4566 ms)\n";
  std::cout << "mean seek " << util::format_ms(result.seek_ms)
            << " ms over " << seeks_total
            << " seeks (paper: 7.27E-05..2E-04 ms with one cold spike)\n";
  return 0;
}
