// Figure 5: speedup of the QCRD application as a function of the number of
// CPUs {2, 4, 8, 16, 32} (paper §2.3).  Computation bursts are
// data-parallel across the pool; I/O stays serial per program, so the curve
// rises and saturates at the Amdahl ceiling set by program 2's I/O.
#include <iostream>

#include "core/behavioral_benchmark.hpp"
#include "core/report.hpp"

int main() {
  std::cout << "Figure 5 — speedup vs number of CPUs (DES, baseline = 1 "
               "CPU)\n";
  const auto points = clio::core::run_qcrd_cpu_sweep();
  clio::core::render_speedup_series(std::cout, "Number of Processors",
                                    points);
  return 0;
}
