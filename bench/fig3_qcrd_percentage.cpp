// Figure 3: percentage of execution time for computation and disk I/O of
// QCRD (paper §2.3).  Percentages are scale-invariant, so the scaled
// measured run is directly comparable with the paper's bars.
#include <iostream>

#include "core/behavioral_benchmark.hpp"
#include "core/report.hpp"
#include "util/temp_dir.hpp"

int main() {
  clio::util::TempDir dir("clio-fig3");
  clio::core::QcrdRunConfig config;
  config.workdir = dir.path() / "qcrd";
  config.timebase_sec = 2.0;
  const auto figures = clio::core::run_qcrd_figures(config);
  clio::core::render_figure3(std::cout, figures);
  return 0;
}
