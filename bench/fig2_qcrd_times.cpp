// Figure 2: execution time of computation and disk I/O for the QCRD
// application and its two programs (paper §2.3).  The model is executed for
// real through the managed I/O stack at a scaled timebase; the closed-form
// prediction at the paper's scale is printed alongside.
#include <iostream>

#include "core/behavioral_benchmark.hpp"
#include "core/report.hpp"
#include "util/temp_dir.hpp"

int main() {
  clio::util::TempDir dir("clio-fig2");
  clio::core::QcrdRunConfig config;
  config.workdir = dir.path() / "qcrd";
  config.timebase_sec = 2.0;
  const auto figures = clio::core::run_qcrd_figures(config);
  clio::core::render_figure2(std::cout, figures);
  std::cout << "(measured run scaled to T = " << config.timebase_sec
            << " s; shapes, not absolute seconds, are the comparison "
               "target)\n";
  return 0;
}
