// Multithreaded buffer-pool microbenchmark: measures the de-serialization
// work in the I/O hot path (sharded lock striping, I/O outside the shard
// lock, coalesced write-back).
//
// Scenarios:
//   warm-hit   — every pin is a cache hit on the thread's own page range;
//                under the old single pool mutex this was ~flat with thread
//                count, with shards it should scale on multi-core hosts.
//   miss-churn — pool much smaller than the file, every access evicts and
//                loads; measures how much the loads serialize.
//   flush      — dirties a sequentially-written file and flushes, reporting
//                backing-store write calls vs dirty pages (coalescing win).
//   prefetch   — sequential scans through a pool much smaller than the file,
//                driven by prefetch_range windows: measures the coalesced
//                readv gather path (and, in async mode, the background
//                prefetch workers), reporting pages/s plus the backing
//                read-batching ratio.
//   faults     — the miss/evict churn mix run against a FaultStore that
//                injects EIOs, short reads, torn writes and latency spikes:
//                the degraded mode.  Reports clean vs degraded throughput,
//                injected-fault and surfaced-error counts, and checks pool
//                invariants (debug_validate) after the storm.
//   async      — queue-depth sweep (1/4/16/64 in-flight single-page reads)
//                over the AsyncBackingStore submission/completion API, on
//                the thread-pool backend and — when the kernel allows — on
//                io_uring.  Reports pages/s and the submit-syscalls-per-
//                page ratio from the async counters: uring pays one
//                io_uring_enter per batch, the fallback one round-trip per
//                op, so the ratio is where the batching win shows up.
//
// Each scenario runs at 1/2/4/8 threads and reports aggregate ops/sec plus
// speedup vs 1 thread, for shards=1 (the pre-sharding structure) and the
// default 16-way sharding.
//
// Usage: micro_bufferpool [all|warm|miss|flush|prefetch|faults|async]
// (default: all)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "io/async_store.hpp"
#include "io/buffer_pool.hpp"
#include "io/fault_store.hpp"
#include "io/file_store.hpp"
#include "io/io_stats.hpp"
#include "io/uring_store.hpp"
#include "obs/bench_report.hpp"
#include "util/error.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/temp_dir.hpp"

namespace {

using namespace clio;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kPageSize = 4096;
constexpr std::uint64_t kFilePages = 2048;  // 8 MiB working file

volatile unsigned long long benchmark_sink = 0;

/// Counts backing-store write calls; forwards everything to a RealFileStore.
class CountingStore final : public io::BackingStore {
 public:
  explicit CountingStore(io::BackingStore& inner) : inner_(inner) {}

  io::FileId open(const std::string& name, bool create) override {
    return inner_.open(name, create);
  }
  void close(io::FileId id) override { inner_.close(id); }
  [[nodiscard]] std::uint64_t size(io::FileId id) const override {
    return inner_.size(id);
  }
  void truncate(io::FileId id, std::uint64_t n) override {
    inner_.truncate(id, n);
  }
  std::size_t read(io::FileId id, std::uint64_t offset,
                   std::span<std::byte> out) override {
    read_calls++;
    return inner_.read(id, offset, out);
  }
  std::size_t readv(io::FileId id, std::uint64_t offset,
                    std::span<const std::span<std::byte>> parts) override {
    readv_calls++;
    return inner_.readv(id, offset, parts);
  }
  void write(io::FileId id, std::uint64_t offset,
             std::span<const std::byte> data) override {
    write_calls++;
    inner_.write(id, offset, data);
  }
  void writev(io::FileId id, std::uint64_t offset,
              std::span<const std::span<const std::byte>> parts) override {
    writev_calls++;
    inner_.writev(id, offset, parts);
  }
  [[nodiscard]] bool exists(const std::string& name) const override {
    return inner_.exists(name);
  }
  [[nodiscard]] io::FileId lookup(const std::string& name) const override {
    return inner_.lookup(name);
  }
  void remove(const std::string& name) override { inner_.remove(name); }

  std::atomic<std::uint64_t> write_calls{0};
  std::atomic<std::uint64_t> writev_calls{0};
  std::atomic<std::uint64_t> read_calls{0};
  std::atomic<std::uint64_t> readv_calls{0};

 private:
  io::BackingStore& inner_;
};

struct RunResult {
  double ops_per_sec = 0.0;
};

/// Runs `body(thread_id)` on `threads` threads, returns aggregate ops/sec
/// given that each thread performs `ops_per_thread` operations.
template <typename Body>
RunResult run_threads(int threads, std::uint64_t ops_per_thread, Body body) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready++;
      while (!go.load(std::memory_order_acquire)) {
      }
      body(t);
    });
  }
  while (ready.load() < threads) {
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const double sec = std::chrono::duration<double>(Clock::now() - start).count();
  return RunResult{static_cast<double>(threads) * ops_per_thread / sec};
}

void print_row(const char* scenario, std::size_t shards, int threads,
               const RunResult& r, double base_ops) {
  std::printf("%-10s  shards=%-2zu  threads=%d  %12.0f ops/s  speedup %.2fx\n",
              scenario, shards, threads, r.ops_per_sec,
              r.ops_per_sec / base_ops);
}

std::string bp_scenario(const char* base, std::size_t shards, int threads) {
  return std::string(base) + "_shards" + std::to_string(shards) + "_t" +
         std::to_string(threads);
}

void bench_warm_hits(obs::BenchReport& report, std::size_t shards) {
  util::TempDir dir("clio-microbp");
  io::RealFileStore store(dir.path());
  const io::FileId file = store.open("data.bin", true);
  std::vector<std::byte> chunk(kPageSize, std::byte{0x5a});
  for (std::uint64_t p = 0; p < kFilePages; ++p) {
    store.write(file, p * kPageSize, chunk);
  }
  io::BufferPool pool(store,
                      io::BufferPoolConfig{.page_size = kPageSize,
                                           .capacity_pages = kFilePages,
                                           .shards = shards});
  // Warm the whole file so every benched pin is a hit.
  for (std::uint64_t p = 0; p < kFilePages; ++p) pool.prefetch(file, p);

  constexpr std::uint64_t kOps = 400000;
  double base = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    const std::uint64_t span = kFilePages / threads;
    const RunResult r = run_threads(threads, kOps, [&](int t) {
      util::Rng rng(1000 + t);
      const std::uint64_t lo = t * span;
      unsigned long long local = 0;
      for (std::uint64_t i = 0; i < kOps; ++i) {
        auto g = pool.pin(file, lo + rng.uniform_u64(span));
        local += static_cast<unsigned char>(g.data()[0]);
      }
      benchmark_sink = local;
    });
    if (threads == 1) base = r.ops_per_sec;
    print_row("warm-hit", pool.shard_count(), threads, r, base);
    report.scenario(bp_scenario("warm", pool.shard_count(), threads));
    report.metric("ops_per_sec", r.ops_per_sec);
    report.metric("speedup", r.ops_per_sec / base);
  }
}

void bench_miss_churn(obs::BenchReport& report, std::size_t shards) {
  util::TempDir dir("clio-microbp");
  io::RealFileStore store(dir.path());
  const io::FileId file = store.open("data.bin", true);
  std::vector<std::byte> chunk(kPageSize, std::byte{0x5a});
  for (std::uint64_t p = 0; p < kFilePages; ++p) {
    store.write(file, p * kPageSize, chunk);
  }
  io::BufferPool pool(store,
                      io::BufferPoolConfig{.page_size = kPageSize,
                                           .capacity_pages = 128,
                                           .shards = shards});
  constexpr std::uint64_t kOps = 20000;
  double base = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    const std::uint64_t span = kFilePages / threads;
    // Per-thread pin-latency histograms: lock-free push on the hot path,
    // merged after the workers quiesce — the LatencyHistogram aggregation
    // contract.  Cheap enough here because every op reaches the store.
    std::vector<util::LatencyHistogram> pin_latency(
        static_cast<std::size_t>(threads));
    const RunResult r = run_threads(threads, kOps, [&](int t) {
      util::Rng rng(2000 + t);
      const std::uint64_t lo = t * span;
      unsigned long long local = 0;
      util::LatencyHistogram& hist =
          pin_latency[static_cast<std::size_t>(t)];
      for (std::uint64_t i = 0; i < kOps; ++i) {
        util::Stopwatch pin_watch;
        auto g = pool.pin(file, lo + rng.uniform_u64(span));
        hist.push(static_cast<std::uint64_t>(pin_watch.elapsed_ns()));
        local += static_cast<unsigned char>(g.data()[0]);
      }
      benchmark_sink = local;
    });
    util::LatencyHistogram merged;
    for (const auto& h : pin_latency) merged.merge(h);
    if (threads == 1) base = r.ops_per_sec;
    print_row("miss-churn", pool.shard_count(), threads, r, base);
    report.scenario(bp_scenario("miss", pool.shard_count(), threads));
    report.metric("ops_per_sec", r.ops_per_sec);
    report.metric("speedup", r.ops_per_sec / base);
    report.distribution("pin_latency_ns", merged);
  }
}

void bench_flush_coalescing(obs::BenchReport& report) {
  util::TempDir dir("clio-microbp");
  io::RealFileStore real(dir.path());
  CountingStore store(real);
  const io::FileId file = store.open("out.bin", true);
  io::BufferPool pool(store,
                      io::BufferPoolConfig{.page_size = kPageSize,
                                           .capacity_pages = 1024,
                                           .shards = 16});
  constexpr std::uint64_t kDirty = 1024;
  for (std::uint64_t p = 0; p < kDirty; ++p) {
    auto g = pool.pin(file, p);
    std::memset(g.data().data(), static_cast<int>(p & 0xff), kPageSize);
    g.mark_dirty(kPageSize);
  }
  store.write_calls = 0;
  store.writev_calls = 0;
  const auto start = Clock::now();
  pool.flush_all();
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  const std::uint64_t calls = store.write_calls + store.writev_calls;
  std::printf(
      "flush       dirty pages=%llu  backing write calls=%llu  "
      "(%.1f pages/call)  %.2f ms\n",
      static_cast<unsigned long long>(kDirty),
      static_cast<unsigned long long>(calls),
      static_cast<double>(kDirty) / static_cast<double>(calls), ms);
  report.scenario("flush_coalescing");
  report.metric("dirty_pages", static_cast<double>(kDirty));
  report.metric("backing_write_calls", static_cast<double>(calls));
  report.metric("pages_per_call",
                static_cast<double>(kDirty) / static_cast<double>(calls));
  report.metric("flush_ms", ms);
}

/// Sequential scans driven by readahead windows, through a pool much
/// smaller than the file so every pass is cold: this is the prefetch-churn
/// path the coalesced readv gather (and the async workers) accelerate.
void bench_prefetch_churn(obs::BenchReport& report, bool async) {
  util::TempDir dir("clio-microbp");
  io::RealFileStore real(dir.path());
  CountingStore store(real);
  const io::FileId file = store.open("data.bin", true);
  std::vector<std::byte> chunk(kPageSize, std::byte{0x5a});
  for (std::uint64_t p = 0; p < kFilePages; ++p) {
    store.write(file, p * kPageSize, chunk);
  }
  constexpr std::size_t kWindow = 16;
  constexpr int kPasses = 4;
  double base = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    io::BufferPool pool(
        store, io::BufferPoolConfig{.page_size = kPageSize,
                                    .capacity_pages = 256,
                                    .shards = 16,
                                    .async_prefetch = async,
                                    .prefetch_threads = 2});
    const std::uint64_t span = kFilePages / threads;
    const std::uint64_t pages_per_thread = span * kPasses;
    store.read_calls = 0;
    store.readv_calls = 0;
    const RunResult r = run_threads(threads, pages_per_thread, [&](int t) {
      const std::uint64_t lo = t * span;
      unsigned long long local = 0;
      for (int pass = 0; pass < kPasses; ++pass) {
        for (std::uint64_t p = 0; p < span; p += kWindow) {
          const std::size_t n =
              static_cast<std::size_t>(std::min<std::uint64_t>(kWindow,
                                                               span - p));
          if (async) {
            pool.prefetch_range_async(file, lo + p, n);
          } else {
            pool.prefetch_range(file, lo + p, n);
          }
          // Consume the window like a sequential reader: pins wait for the
          // in-flight gather instead of re-issuing per-page loads.
          for (std::size_t i = 0; i < n; ++i) {
            auto g = pool.pin(file, lo + p + i);
            local += static_cast<unsigned char>(g.data()[0]);
          }
        }
      }
      benchmark_sink = local;
    });
    pool.drain_prefetches();
    if (threads == 1) base = r.ops_per_sec;
    report.scenario(std::string("prefetch_") + (async ? "async" : "sync") +
                    "_t" + std::to_string(threads));
    report.metric("pages_per_sec", r.ops_per_sec);
    report.metric("speedup", r.ops_per_sec / base);
    report.metric("readv_calls", static_cast<double>(store.readv_calls));
    report.metric("read_calls", static_cast<double>(store.read_calls));
    std::printf(
        "%-10s  %-5s      threads=%d  %12.0f pages/s  speedup %.2fx  "
        "(%llu readv + %llu read calls)\n",
        "prefetch", async ? "async" : "sync", threads, r.ops_per_sec,
        r.ops_per_sec / base,
        static_cast<unsigned long long>(store.readv_calls),
        static_cast<unsigned long long>(store.read_calls));
  }
  const std::uint64_t total_pages = kFilePages * kPasses;
  const std::uint64_t calls = store.read_calls + store.readv_calls;
  if (calls > 0) {
    std::printf("prefetch    %-5s      batching: %.1f pages/backing call "
                "(8-thread run)\n",
                async ? "async" : "sync",
                static_cast<double>(total_pages) /
                    static_cast<double>(calls));
  }
}

/// Degraded-mode churn: the miss/evict mix with dirty pages and periodic
/// flushes, against a fault-injecting store.  The interesting numbers are
/// how much throughput the error paths cost (unwinds, retries, kept-dirty
/// pages) and that the pool survives the storm with its invariants intact.
void bench_fault_churn(obs::BenchReport& report) {
  constexpr std::uint64_t kOps = 20000;
  for (const bool degraded : {false, true}) {
    util::TempDir dir("clio-microbp");
    io::RealFileStore real(dir.path());
    io::FaultPlan plan;
    plan.seed = 0xbadd15c;
    if (degraded) {
      plan.fail_prob = {0.01, 0.01, 0.01, 0.01};
      plan.short_read_prob = 0.01;
      plan.torn_write_prob = 0.01;
      plan.torn_granularity = kPageSize;
      plan.latency_prob = 0.005;
      plan.latency_us = 30;
    }
    io::FaultStore store(real, plan);
    store.arm(false);
    const io::FileId file = store.open("data.bin", true);
    std::vector<std::byte> chunk(kPageSize, std::byte{0x5a});
    for (std::uint64_t p = 0; p < kFilePages; ++p) {
      store.write(file, p * kPageSize, chunk);
    }
    io::BufferPool pool(store,
                        io::BufferPoolConfig{.page_size = kPageSize,
                                             .capacity_pages = 128,
                                             .shards = 16});
    store.arm(true);
    for (int threads : {1, 8}) {
      store.reset();  // per-iteration fault counters (keeps the same seed)
      const std::uint64_t span = kFilePages / threads;
      std::atomic<std::uint64_t> errors{0};
      std::vector<util::LatencyHistogram> op_latency(
          static_cast<std::size_t>(threads));
      const RunResult r = run_threads(threads, kOps, [&](int t) {
        util::Rng rng(4000 + t);
        const std::uint64_t lo = t * span;
        unsigned long long local = 0;
        util::LatencyHistogram& hist =
            op_latency[static_cast<std::size_t>(t)];
        for (std::uint64_t i = 0; i < kOps; ++i) {
          const std::uint64_t page = lo + rng.uniform_u64(span);
          util::Stopwatch op_watch;
          try {
            if (i % 4 == 0) {
              auto g = pool.pin(file, page);
              g.data()[0] = static_cast<std::byte>(i);
              g.mark_dirty(kPageSize);
            } else if (i % 512 == 511) {
              pool.flush_file(file);
            } else {
              auto g = pool.pin(file, page);
              local += static_cast<unsigned char>(g.data()[0]);
            }
          } catch (const util::IoError&) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
          hist.push(static_cast<std::uint64_t>(op_watch.elapsed_ns()));
        }
        benchmark_sink = local;
      });
      util::LatencyHistogram merged;
      for (const auto& h : op_latency) merged.merge(h);
      const io::FaultStats fstats = store.stats();
      report.scenario(std::string("faults_") +
                      (degraded ? "degraded" : "clean") + "_t" +
                      std::to_string(threads));
      report.metric("ops_per_sec", r.ops_per_sec);
      report.metric("injected_faults",
                    static_cast<double>(fstats.total_faults()));
      report.metric("surfaced_errors", static_cast<double>(errors.load()));
      report.distribution("op_latency_ns", merged);
      std::printf(
          "faults      %-8s   threads=%d  %12.0f ops/s  "
          "(%llu injected, %llu surfaced)\n",
          degraded ? "degraded" : "clean", threads, r.ops_per_sec,
          static_cast<unsigned long long>(fstats.total_faults()),
          static_cast<unsigned long long>(errors.load()));
    }
    store.arm(false);
    pool.flush_all();
    try {
      pool.debug_validate();
    } catch (const util::IoError& e) {
      std::printf("faults      INVARIANT VIOLATION: %s\n", e.what());
    }
  }
}

/// Queue-depth sweep over the submission/completion API: keeps `depth`
/// single-page reads in flight (submit a batch of `depth`, wait, repeat
/// across the file), per backend.  pages/s shows how much concurrency the
/// backend extracts; syscalls-per-page shows what each page costs in
/// kernel round-trips — the uring batching win versus the one-syscall-
/// per-op fallback.
void bench_async_depth(obs::BenchReport& report) {
  struct Backend {
    const char* name;
    bool available;
  };
  const Backend backends[] = {
      {"threadpool", true},
      {"uring", io::UringStore::supported()},
  };
  constexpr int kPasses = 2;
  for (const Backend& backend : backends) {
    if (!backend.available) {
      std::printf("async       %-10s skipped (io_uring unavailable)\n",
                  backend.name);
      continue;
    }
    util::TempDir dir("clio-microbp");
    io::RealFileStore store(dir.path());
    const io::FileId file = store.open("data.bin", true);
    std::vector<std::byte> chunk(kPageSize, std::byte{0x5a});
    for (std::uint64_t p = 0; p < kFilePages; ++p) {
      store.write(file, p * kPageSize, chunk);
    }
    std::unique_ptr<io::AsyncBackingStore> async;
    if (std::string(backend.name) == "uring") {
      async = std::make_unique<io::UringStore>(store);
    } else {
      async = std::make_unique<io::ThreadPoolAsyncStore>(store, 4);
    }
    for (const std::size_t depth : {1u, 4u, 16u, 64u}) {
      io::IoStats stats;
      async->bind_stats(&stats);
      std::vector<std::vector<std::byte>> bufs(
          depth, std::vector<std::byte>(kPageSize));
      unsigned long long local = 0;
      const auto start = Clock::now();
      std::uint64_t pages_done = 0;
      for (int pass = 0; pass < kPasses; ++pass) {
        for (std::uint64_t p = 0; p < kFilePages; p += depth) {
          const std::size_t n = static_cast<std::size_t>(
              std::min<std::uint64_t>(depth, kFilePages - p));
          std::vector<io::AsyncOp> batch;
          batch.reserve(n);
          for (std::size_t i = 0; i < n; ++i) {
            batch.push_back(
                io::AsyncOp::make_read(file, (p + i) * kPageSize, bufs[i], i));
          }
          for (const io::AsyncCompletion& c :
               async->submit_and_wait(std::move(batch))) {
            c.rethrow();
            local += static_cast<unsigned char>(bufs[c.user_data][0]);
          }
          pages_done += n;
        }
      }
      benchmark_sink = local;
      const double sec =
          std::chrono::duration<double>(Clock::now() - start).count();
      const io::AsyncCounters ac = stats.async_counters();
      async->bind_stats(nullptr);
      const double pages_per_sec = static_cast<double>(pages_done) / sec;
      report.scenario(std::string("async_depth_") + backend.name + "_d" +
                      std::to_string(depth));
      report.metric("pages_per_sec", pages_per_sec);
      report.metric("submit_syscalls", static_cast<double>(ac.submit_syscalls));
      report.metric("syscalls_per_page", ac.syscalls_per_page(kPageSize));
      std::printf(
          "async       %-10s depth=%-3zu %12.0f pages/s  "
          "%.3f submit syscalls/page\n",
          backend.name, depth, pages_per_sec, ac.syscalls_per_page(kPageSize));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "all";
  const auto enabled = [&](const char* name) {
    return mode == "all" || mode == name;
  };
  std::printf("micro_bufferpool — hot-path concurrency microbenchmark\n");
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  obs::BenchReport report("micro_bufferpool");
  if (enabled("warm")) {
    std::printf("-- warm hits, single global stripe (pre-sharding layout) --\n");
    bench_warm_hits(report, 1);
    std::printf("\n-- warm hits, 16-way sharding --\n");
    bench_warm_hits(report, 16);
    std::printf("\n");
  }
  if (enabled("miss")) {
    std::printf("-- miss/evict churn, single stripe --\n");
    bench_miss_churn(report, 1);
    std::printf("\n-- miss/evict churn, 16-way sharding --\n");
    bench_miss_churn(report, 16);
    std::printf("\n");
  }
  if (enabled("flush")) {
    std::printf("-- coalesced write-back --\n");
    bench_flush_coalescing(report);
    std::printf("\n");
  }
  if (enabled("prefetch")) {
    std::printf("-- prefetch churn, coalesced readv (inline) --\n");
    bench_prefetch_churn(report, /*async=*/false);
    std::printf("\n-- prefetch churn, async background workers --\n");
    bench_prefetch_churn(report, /*async=*/true);
    std::printf("\n");
  }
  if (enabled("faults")) {
    std::printf("-- degraded mode: seeded fault injection --\n");
    bench_fault_churn(report);
    std::printf("\n");
  }
  if (enabled("async")) {
    std::printf("-- async submission/completion queue-depth sweep --\n");
    bench_async_depth(report);
  }
  const std::string json_path = report.write_default();
  if (!json_path.empty()) {
    std::printf("\nmachine-readable report: %s\n", json_path.c_str());
  }
  return 0;
}
