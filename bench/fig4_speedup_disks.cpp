// Figure 4: speedup of the QCRD application as a function of the number of
// disks {2, 4, 8, 16, 32} (paper §2.3).  Discrete-event simulation; the
// baseline is the same machine with one disk.  Expected shape: nearly flat
// ("increasing the number of disks does not necessarily improve the
// performance"), because QCRD's synchronous requests fit in one stripe and
// program 1 is CPU-bound.
#include <iostream>

#include "core/behavioral_benchmark.hpp"
#include "core/report.hpp"

int main() {
  std::cout << "Figure 4 — speedup vs number of disks (DES, baseline = 1 "
               "disk)\n";
  const auto points = clio::core::run_qcrd_disk_sweep();
  clio::core::render_speedup_series(std::cout, "Number of Disks", points);
  return 0;
}
