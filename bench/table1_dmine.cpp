// Table 1: results for the data mining application (paper §3.4).  The
// Apriori miner runs for real over a synthetic retail database; its I/O is
// captured as a UMD-style trace and replayed cold against the sample file,
// reporting mean read/open/close/seek times.  Expected shape: close time >
// open time; sub-millisecond cached reads.
#include <iostream>

#include "apps/dmine/apriori.hpp"
#include "core/report.hpp"
#include "core/trace_benchmark.hpp"
#include "trace/stats.hpp"
#include "util/temp_dir.hpp"

int main() {
  using namespace clio;
  util::TempDir dir("clio-table1");
  core::TraceBenchEnv env(core::default_trace_config(dir.path() / "work"));

  const auto result = env.capture_and_replay([&](apps::TraceCapturingFs&
                                                     capture) {
    // Database generation is staged outside the capture of interest.
    apps::TraceCapturingFs setup(env.fs(), core::TraceBenchEnv::kSampleName);
    apps::dmine::StoreConfig store_config;
    store_config.num_transactions = 30000;
    store_config.num_items = 300;
    store_config.planted = {{3, 5, 9}, {40, 41}};
    apps::dmine::TransactionStore::generate(setup, "retail.db", store_config);

    apps::dmine::TransactionStore store(capture, "retail.db");
    apps::dmine::Apriori miner(apps::dmine::MiningConfig{
        .min_support = 0.05, .min_confidence = 0.6, .max_itemset_size = 3});
    const auto mining = miner.run(store);
    std::cout << "Apriori: " << mining.passes << " passes, "
              << mining.rules.size() << " rules\n";
    return capture.finish();
  });

  std::cout << "Table 1 — results for the data mining application\n";
  const auto mean_request = static_cast<std::uint64_t>(
      result.replay.bytes_read /
      std::max<std::uint64_t>(1, result.replay.op(trace::TraceOp::kRead)
                                     .count()));
  core::render_app_summary(std::cout, "Data Mining", mean_request, result,
                           /*include_seek=*/true, /*include_write=*/false);
  std::cout << "(paper: read 0.0025, open 0.0006, close 0.0072, seek "
               "7.88E-05 ms; shape target: close > open, tiny warm seeks)\n";
  return 0;
}
