// Serving-layer microbenchmark: measures the worker-pool web server under
// concurrent load — what the paper's single-request Tables 5-6 cannot show
// and what the IO500 analysis (PAPERS.md) argues actually separates
// deployments: aggregate throughput and tail latency under concurrency.
//
// Scenarios:
//   throughput — seeded GET/POST mix at 1/2/4/8 concurrent connections,
//                keep-alive off (the paper's connection-per-request model)
//                and on (HTTP/1.1: one connection, many requests).  The
//                acceptance line compares 8-connection keep-alive against
//                1-connection no-keep-alive.
//   faults     — the same mix against a server whose every connection runs
//                through a seeded FaultChannel (accept drops, recv/send
//                EIO, short sends = mid-response disconnects, slow-client
//                latency): degraded-mode serving.  After the storm the
//                injector is disarmed and one clean request plus a pool
//                invariant check prove the server survived intact.
//   resilience — the storage-side resilience chain (RealFileStore <-
//                FaultStore <- RetryingStore + circuit breaker) under the
//                server: clean throughput through the retry wrapper (its
//                overhead), throughput during a transient-EIO burst
//                (degraded mode: absorbed retries, breaker trips, 503s),
//                and the recovery timeline once the faults stop.
//   openloop   — an offered-load sweep: the LoadGenerator's open-loop mode
//                sends on a fixed absolute schedule at several rates and
//                measures latency from the *scheduled* send instant, with
//                timed-out requests kept as censored samples — so the p99
//                curve over offered load is honest past saturation (no
//                coordinated omission, no survivorship bias).
//
// Usage: micro_webserver [all|throughput|faults|resilience|openloop]
//        (default: all)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "core/webserver_benchmark.hpp"
#include "io/fault_store.hpp"
#include "io/file_store.hpp"
#include "io/retrying_store.hpp"
#include "net/client.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"
#include "obs/bench_report.hpp"
#include "util/resilience.hpp"
#include "util/temp_dir.hpp"

namespace {

using namespace clio;

std::string scenario_name(const core::ThroughputRow& row) {
  return "throughput_c" + std::to_string(row.connections) +
         (row.keep_alive ? "_ka" : "_noka");
}

void report_rows(obs::BenchReport& report,
                 const std::vector<core::ThroughputRow>& rows,
                 const std::string& prefix) {
  for (const auto& row : rows) {
    report.scenario(prefix + scenario_name(row));
    report.metric("requests_per_sec", row.requests_per_sec);
    report.metric("requests_ok", static_cast<double>(row.requests_ok));
    report.metric("errors", static_cast<double>(row.errors));
    report.metric("rejected_503", static_cast<double>(row.rejected_503));
    report.distribution("latency_ns", row.latency);
  }
}

void print_rows(const std::vector<core::ThroughputRow>& rows,
                double base_rps) {
  for (const auto& row : rows) {
    std::printf(
        "throughput  conns=%zu  keep-alive=%-3s  %9.0f req/s  "
        "speedup %5.2fx  mean %7.3f ms  p99 %7.3f ms  (%llu ok, %llu err, "
        "%llu 503)\n",
        row.connections, row.keep_alive ? "on" : "off", row.requests_per_sec,
        row.requests_per_sec / base_rps, row.mean_ms, row.p99_ms,
        static_cast<unsigned long long>(row.requests_ok),
        static_cast<unsigned long long>(row.errors),
        static_cast<unsigned long long>(row.rejected_503));
  }
}

void bench_throughput(obs::BenchReport& report) {
  util::TempDir dir("clio-microweb");
  core::WebBenchConfig config;
  config.workdir = dir.path() / "docroot";
  config.vm_dispatch = false;  // raw serving path; JIT is Table 6's story
  config.worker_threads = 8;
  core::WebServerBench bench(config);

  const std::vector<core::ThroughputScenario> scenarios = {
      {1, false}, {1, true}, {2, true}, {4, true}, {8, false}, {8, true}};
  const auto rows =
      bench.run_throughput(scenarios, /*requests_per_connection=*/400,
                           /*post_fraction=*/0.1);
  print_rows(rows, rows.front().requests_per_sec);
  report_rows(report, rows, "");

  // The acceptance comparison the ROADMAP records: 8 keep-alive
  // connections vs the paper's 1-connection connect-per-request model, on
  // the workload keep-alive exists for — a tiny object, where per-request
  // connection setup/teardown dominates the serving cost.  The shared CI
  // container's CPU budget swings by 2x on a seconds timescale, so the
  // two sides are measured back-to-back in paired rounds (both legs of a
  // pair see the same throttling window) and the best pair is reported.
  bench.add_file("tiny.bin", 512);
  bench.server().set_record_samples(false);
  const auto accept_run = [&](std::size_t connections, bool keep_alive,
                              int round) {
    net::LoadGenOptions load;
    load.connections = connections;
    load.requests_per_connection = 2500;
    load.keep_alive = keep_alive;
    load.seed = 7 + round;
    load.files = {"tiny.bin"};
    return net::LoadGenerator(load).run(bench.server().port())
        .requests_per_sec();
  };
  double best_ratio = 0.0;
  double best_base = 0.0;
  double best_ka = 0.0;
  for (int round = 0; round < 5; ++round) {
    const double base_rps = accept_run(1, false, round);
    const double ka_rps = accept_run(8, true, round);
    if (ka_rps / base_rps > best_ratio) {
      best_ratio = ka_rps / base_rps;
      best_base = base_rps;
      best_ka = ka_rps;
    }
  }
  std::printf(
      "throughput  acceptance (GET /tiny.bin, 512 B, best of 5 paired "
      "rounds): 1xno-KA %.0f req/s, 8xKA %.0f req/s -> %.2fx (bar: >= 2x)\n",
      best_base, best_ka, best_ratio);
  report.scenario("acceptance_keepalive");
  report.metric("base_rps", best_base);
  report.metric("keepalive_rps", best_ka);
  report.metric("speedup", best_ratio);
}

void bench_openloop(obs::BenchReport& report) {
  util::TempDir dir("clio-microweb");
  core::WebBenchConfig config;
  config.workdir = dir.path() / "docroot";
  config.vm_dispatch = false;
  config.worker_threads = 8;
  core::WebServerBench bench(config);
  bench.server().set_record_samples(false);

  // The sweep holds the run duration roughly constant (~1.5 s per point)
  // so every rate sees the same CI-container weather, and arms a receive
  // timeout so an overloaded point reports censored tail samples instead
  // of a stall.
  const double kDurationS = 1.5;
  const std::size_t kConnections = 8;
  for (const double rps : {1000.0, 4000.0, 16000.0}) {
    net::LoadGenOptions load;
    load.connections = kConnections;
    load.requests_per_connection = static_cast<std::size_t>(
        rps * kDurationS / static_cast<double>(kConnections));
    load.keep_alive = true;
    load.seed = 29;
    load.files = {"small.jpg", "mid.jpg", "large.jpg"};
    load.offered_rps = rps;
    load.recv_timeout_ms = 1000;
    const net::LoadReport run =
        net::LoadGenerator(load).run(bench.server().port());
    report.scenario("openloop_rps" + std::to_string(static_cast<int>(rps)));
    report.metric("offered_rps", rps);
    report.metric("requests_per_sec", run.requests_per_sec());
    report.metric("requests_ok", static_cast<double>(run.ok));
    report.metric("errors", static_cast<double>(run.errors));
    report.metric("censored", static_cast<double>(run.censored));
    report.metric("timeouts", static_cast<double>(run.failures.timeouts));
    report.metric("p99_ms", run.quantile_ms(0.99));
    report.distribution("latency_ns", run.latency.snapshot());
    std::printf(
        "openloop    offered %7.0f req/s  achieved %9.0f req/s  "
        "(%llu ok, %llu err, %llu censored)  p50 %7.3f ms  p99 %7.3f ms\n",
        rps, run.requests_per_sec(), static_cast<unsigned long long>(run.ok),
        static_cast<unsigned long long>(run.errors),
        static_cast<unsigned long long>(run.censored), run.quantile_ms(0.5),
        run.quantile_ms(0.99));
  }
}

void bench_faults(obs::BenchReport& report) {
  util::TempDir dir("clio-microweb");
  net::NetFaultPlan plan;
  plan.seed = 0xbadd15c;
  plan.accept_drop_prob = 0.01;
  plan.recv_fail_prob = 0.01;
  plan.recv_disconnect_prob = 0.01;
  plan.send_fail_prob = 0.01;
  plan.short_send_prob = 0.01;
  plan.latency_prob = 0.005;
  plan.latency_us = 200;
  net::NetFaultInjector injector(plan);

  core::WebBenchConfig config;
  config.workdir = dir.path() / "docroot";
  config.vm_dispatch = false;
  config.worker_threads = 4;
  config.fault_injector = &injector;
  core::WebServerBench bench(config);

  for (const bool degraded : {false, true}) {
    injector.arm(degraded);
    injector.reset();
    const auto rows = bench.run_throughput(
        {{4, true}}, /*requests_per_connection=*/400, /*post_fraction=*/0.1);
    const auto stats = injector.stats();
    report.scenario(degraded ? "faults_degraded" : "faults_clean");
    report.metric("requests_per_sec", rows.front().requests_per_sec);
    report.metric("requests_ok",
                  static_cast<double>(rows.front().requests_ok));
    report.metric("errors", static_cast<double>(rows.front().errors));
    report.metric("injected_accept_drops",
                  static_cast<double>(stats.accept_drops));
    report.metric("injected_recv_failures",
                  static_cast<double>(stats.recv_failures));
    report.metric("injected_send_failures",
                  static_cast<double>(stats.send_failures));
    report.distribution("latency_ns", rows.front().latency);
    std::printf(
        "faults      %-8s  conns=4  %9.0f req/s  (%llu ok, %llu err)  "
        "injected: %llu drops, %llu recv, %llu disc, %llu send, %llu short\n",
        degraded ? "degraded" : "clean", rows.front().requests_per_sec,
        static_cast<unsigned long long>(rows.front().requests_ok),
        static_cast<unsigned long long>(rows.front().errors),
        static_cast<unsigned long long>(stats.accept_drops),
        static_cast<unsigned long long>(stats.recv_failures),
        static_cast<unsigned long long>(stats.recv_disconnects),
        static_cast<unsigned long long>(stats.send_failures),
        static_cast<unsigned long long>(stats.short_sends));
  }

  // Post-storm proof of life: faults off, one clean exchange, pool sane.
  injector.arm(false);
  net::HttpClient client(bench.server().port());
  const auto response = client.get("/mid.jpg");
  bench.fs().pool().drain_prefetches();
  try {
    bench.fs().pool().debug_validate();
    std::printf("faults      post-storm: clean GET -> %d (%zu bytes), pool "
                "invariants OK\n",
                response.status, response.body.size());
  } catch (const std::exception& e) {
    std::printf("faults      INVARIANT VIOLATION: %s\n", e.what());
  }
}

void bench_resilience(obs::BenchReport& report) {
  util::TempDir dir("clio-microweb");

  auto real = std::make_unique<io::RealFileStore>(dir.path());
  auto faulty = std::make_unique<io::FaultStore>(std::move(real));
  io::FaultStore* fault = faulty.get();
  fault->arm(false);

  util::CircuitBreakerConfig breaker_cfg;
  breaker_cfg.failure_threshold = 8;
  breaker_cfg.open_cooldown_ms = 100;
  util::CircuitBreaker breaker(breaker_cfg);

  io::RetryPolicy policy;
  policy.backoff.max_retries = 3;
  policy.backoff.base_delay_us = 50;
  policy.backoff.max_delay_us = 2000;
  auto retrying = std::make_unique<io::RetryingStore>(std::move(faulty),
                                                      policy, &breaker);
  io::RetryingStore* retry = retrying.get();

  // A pool smaller than the working set so the load keeps reaching the
  // (faulty, retried) store instead of soaking in cache.
  io::ManagedFsOptions fs_options;
  fs_options.pool_pages = 64;
  io::ManagedFileSystem fs(std::move(retrying), fs_options);
  retry->bind_stats(&fs.stats());

  std::vector<std::string> files;
  for (std::size_t i = 0; i < 6; ++i) {
    const std::string name = "doc" + std::to_string(i) + ".bin";
    std::vector<std::byte> content(30000 + i * 25000, std::byte{0x42});
    auto file = fs.open(name, io::OpenMode::kTruncate);
    file.write(content);
    file.close();
    files.push_back(name);
  }

  net::ServerOptions options;
  options.worker_threads = 4;
  options.breaker = &breaker;
  options.request_deadline_ms = 2000;
  net::MiniWebServer server(fs, options);
  server.start();

  net::LoadGenOptions load;
  load.connections = 4;
  load.requests_per_connection = 400;
  load.keep_alive = true;
  load.seed = 17;
  load.files = files;
  load.recv_timeout_ms = 30'000;

  io::FaultPlan burst;
  burst.seed = 0xbadd15c;
  for (auto& p : burst.fail_prob) p = 0.25;
  burst.short_read_prob = 0.05;

  for (const bool degraded : {false, true}) {
    fault->set_plan(degraded ? burst : io::FaultPlan{});
    fault->arm(degraded);
    retry->reset_stats();
    breaker.reset();
    fs.drop_caches();
    const net::LoadReport run = net::LoadGenerator(load).run(server.port());
    const io::RetryStats rstats = retry->stats();
    const util::CircuitBreaker::Stats bstats = breaker.stats();
    report.scenario(degraded ? "resilience_degraded" : "resilience_clean");
    report.metric("requests_per_sec", run.requests_per_sec());
    report.metric("requests_ok", static_cast<double>(run.ok));
    report.metric("rejected_503", static_cast<double>(run.rejected_503));
    report.metric("errors", static_cast<double>(run.errors));
    report.metric("retries_absorbed", static_cast<double>(rstats.absorbed));
    report.metric("retries_exhausted",
                  static_cast<double>(rstats.exhausted));
    report.metric("breaker_trips", static_cast<double>(bstats.trips));
    report.metric("breaker_fast_fails",
                  static_cast<double>(bstats.fast_fails));
    report.distribution("latency_ns", run.latency);
    std::printf(
        "resilience  %-8s  conns=4  %9.0f req/s  (%llu ok, %llu 503, "
        "%llu err)  retries: %llu absorbed %llu exhausted  breaker: "
        "%llu trips %llu fast-fails\n",
        degraded ? "degraded" : "clean", run.requests_per_sec(),
        static_cast<unsigned long long>(run.ok),
        static_cast<unsigned long long>(run.rejected_503),
        static_cast<unsigned long long>(run.errors),
        static_cast<unsigned long long>(rstats.absorbed),
        static_cast<unsigned long long>(rstats.exhausted),
        static_cast<unsigned long long>(bstats.trips),
        static_cast<unsigned long long>(bstats.fast_fails));
  }

  // Recovery timeline: faults off, measure how long until the breaker is
  // closed again and a clean GET round-trips.
  fault->arm(false);
  const auto start = std::chrono::steady_clock::now();
  bool recovered = false;
  net::HttpClient probe(server.port(), /*keep_alive=*/true);
  for (int i = 0; i < 500 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    try {
      // Inside the try: flushing pages left dirty during the burst
      // fast-fails while the breaker is still open.
      fs.drop_caches();
      recovered = probe.get("/" + files[0]).status == 200 &&
                  breaker.state() == util::CircuitBreaker::State::kClosed;
    } catch (const std::exception&) {
    }
  }
  const auto recovery_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  report.scenario("resilience_recovery");
  report.metric("recovered", recovered ? 1.0 : 0.0);
  report.metric("recovery_ms", static_cast<double>(recovery_ms));
  server.stop();
  fs.pool().drain_prefetches();
  try {
    fs.pool().debug_validate();
    std::printf(
        "resilience  recovery: %s in %lld ms (breaker %s), pool invariants "
        "OK\n",
        recovered ? "recovered" : "NOT RECOVERED",
        static_cast<long long>(recovery_ms),
        util::circuit_state_name(breaker.state()).data());
  } catch (const std::exception& e) {
    std::printf("resilience  INVARIANT VIOLATION: %s\n", e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "all";
  const auto enabled = [&](const char* name) {
    return mode == "all" || mode == name;
  };
  std::printf("micro_webserver — worker-pool serving microbenchmark\n");
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  obs::BenchReport report("micro_webserver");
  if (enabled("throughput")) {
    std::printf("-- throughput: connections x keep-alive --\n");
    bench_throughput(report);
    std::printf("\n");
  }
  if (enabled("openloop")) {
    std::printf("-- open loop: offered-load sweep (censored tail) --\n");
    bench_openloop(report);
    std::printf("\n");
  }
  if (enabled("faults")) {
    std::printf("-- degraded mode: seeded net-layer fault injection --\n");
    bench_faults(report);
    std::printf("\n");
  }
  if (enabled("resilience")) {
    std::printf(
        "-- resilience: retry + circuit breaker over storage faults --\n");
    bench_resilience(report);
  }
  const std::string json_path = report.write_default();
  if (!json_path.empty()) {
    std::printf("\nmachine-readable report: %s\n", json_path.c_str());
  }
  return 0;
}
