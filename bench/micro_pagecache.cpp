// Microbenchmarks / ablations of the managed I/O stack (DESIGN.md §5,
// decisions 2-3): buffer-pool hit vs miss cost, the readahead-window sweep
// behind the Tables 1-4 cold-spike behaviour, and write-back-on-close.
#include <benchmark/benchmark.h>

#include "io/managed_file.hpp"
#include "util/fs.hpp"
#include "util/temp_dir.hpp"

namespace {

using namespace clio;

constexpr std::uint64_t kFileBytes = 8ULL << 20;

struct Env {
  explicit Env(io::ManagedFsOptions options)
      : dir("clio-microio"),
        fs(std::make_unique<io::RealFileStore>(dir.path()), options) {
    util::create_sample_file(dir.path() / "data.bin", kFileBytes);
  }
  util::TempDir dir;
  io::ManagedFileSystem fs;
};

void BM_PoolHit(benchmark::State& state) {
  Env env{io::ManagedFsOptions{}};
  auto file = env.fs.open("data.bin", io::OpenMode::kRead);
  std::vector<std::byte> buf(4096);
  file.seek(0);
  file.read(buf);  // warm the page
  for (auto _ : state) {
    file.seek(0);
    benchmark::DoNotOptimize(file.read(buf));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PoolHit);

void BM_PoolMissSequential(benchmark::State& state) {
  // Each iteration streams 1 MiB through a pool far smaller than the file,
  // so pages keep missing; readahead window is the sweep parameter.
  io::ManagedFsOptions options;
  options.pool_pages = 64;  // 256 KiB pool
  options.prefetch.window = static_cast<std::size_t>(state.range(0));
  Env env{options};
  auto file = env.fs.open("data.bin", io::OpenMode::kRead);
  std::vector<std::byte> buf(64 * 1024);
  std::uint64_t pos = 0;
  for (auto _ : state) {
    if (pos + (1 << 20) > kFileBytes) pos = 0;
    file.seek(pos);
    for (int i = 0; i < 16; ++i) {
      benchmark::DoNotOptimize(file.read(buf));
    }
    pos += 1 << 20;
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
  state.counters["prefetches"] = static_cast<double>(
      env.fs.pool().stats().prefetches);
}
BENCHMARK(BM_PoolMissSequential)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_WritebackOnClose(benchmark::State& state) {
  // Decision 3: close flushes dirty pages, which is why the paper sees
  // close > open.  Measures a write-then-close cycle.
  Env env{io::ManagedFsOptions{}};
  std::vector<std::byte> payload(64 * 1024, std::byte{0x5a});
  int i = 0;
  for (auto _ : state) {
    auto file = env.fs.open("out" + std::to_string(i++ % 8) + ".bin",
                            io::OpenMode::kTruncate);
    file.write(payload);
    file.close();
  }
  state.SetBytesProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_WritebackOnClose);

void BM_ColdSeekVsWarmSeek(benchmark::State& state) {
  // The Table 3/4 contrast in isolation: seek to a cold page (fetch) vs a
  // warm one (no-op).  range(0)==1 selects the warm case.
  io::ManagedFsOptions options;
  options.pool_pages = 32;
  Env env{options};
  auto file = env.fs.open("data.bin", io::OpenMode::kRead);
  const bool warm = state.range(0) == 1;
  std::uint64_t offset = 0;
  for (auto _ : state) {
    if (warm) {
      file.seek(0);
    } else {
      offset = (offset + (1 << 20)) % kFileBytes;  // beyond the tiny pool
      file.seek(offset);
    }
  }
}
BENCHMARK(BM_ColdSeekVsWarmSeek)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
