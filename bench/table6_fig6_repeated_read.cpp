// Table 6 / Figure 6: response time of repeated reads of the same ~14 KB
// file from a fully cold server (paper §4.2).  The first read pays JIT
// compilation of the managed handler plus cold buffer-pool pages; later
// reads are served warm.  Expected shape: trial 1 clearly slower, then a
// downward-trending plateau — the paper's 9.0 ms -> 3.2 ms series.
#include <iostream>

#include "core/report.hpp"
#include "core/webserver_benchmark.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"

int main() {
  clio::util::TempDir dir("clio-table6");
  clio::core::WebBenchConfig config;
  config.workdir = dir.path() / "docroot";
  clio::core::WebServerBench bench(config);
  const auto rows = bench.run_table6(6);
  std::cout << "Table 6 / Figure 6 — repeated reads of the same file (cold "
               "start)\n";
  clio::core::render_table6(std::cout, rows);
  // Figure 6 is the same data as a series.
  std::cout << "Figure 6 series (trial -> ms): ";
  for (const auto& row : rows) {
    std::cout << row.trial << ":" << clio::util::format_ms(row.read_ms)
              << " ";
  }
  std::cout << "\n(paper: 9.0181, 6.7331, 6.5070, 7.4598, 5.9489, 3.2441 "
               "ms)\n";
  return 0;
}
