// Table 5: response time of read and write operations in the multi-
// threaded web server (paper §4.2) for the three image files (7501, 50607,
// 14063 bytes).  GET = read through the managed handler, POST = write to a
// fresh random-named file.  Expected shape: a few ms per operation with the
// first file's operations slowest (cold JIT + cold buffers).
#include <iostream>

#include "core/report.hpp"
#include "core/webserver_benchmark.hpp"
#include "util/temp_dir.hpp"

int main() {
  clio::util::TempDir dir("clio-table5");
  clio::core::WebBenchConfig config;
  config.workdir = dir.path() / "docroot";
  clio::core::WebServerBench bench(config);
  const auto rows = bench.run_table5();
  std::cout << "Table 5 — response time of read and write operations\n";
  clio::core::render_table5(std::cout, rows);
  std::cout << "(paper: reads 1.68-2.23 ms, writes 2.40-2.85 ms; shape "
               "target: first request slowest, all in the same few-ms "
               "band)\n";
  return 0;
}
