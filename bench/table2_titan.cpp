// Table 2: results for the Titan application (paper §3.4).  The mini
// remote-sensing database answers spatial range queries; tile fetches are
// captured and replayed cold, reporting mean read/open/close times.
#include <iostream>

#include "apps/titan/titan_db.hpp"
#include "core/report.hpp"
#include "core/trace_benchmark.hpp"
#include "util/temp_dir.hpp"

int main() {
  using namespace clio;
  util::TempDir dir("clio-table2");
  core::TraceBenchEnv env(core::default_trace_config(dir.path() / "work"));

  std::uint64_t query_bytes = 0;
  const auto result =
      env.capture_and_replay([&](apps::TraceCapturingFs& capture) {
        apps::TraceCapturingFs setup(env.fs(),
                                     core::TraceBenchEnv::kSampleName);
        apps::titan::RasterConfig raster;
        raster.width_tiles = 24;
        raster.height_tiles = 24;
        raster.tile_size = 96;  // 18 KiB tiles, AVHRR-block-sized
        apps::titan::RasterStore::generate(setup, "world.rst", raster);

        apps::titan::RasterStore store(capture, "world.rst");
        apps::titan::TitanDb db(store);
        const auto workload = db.make_workload(40, /*seed=*/11);
        std::uint64_t pixels = 0;
        for (const auto& query : workload) {
          const auto answer = db.range_query(query);
          pixels += answer.pixels;
        }
        query_bytes = store.tiles_read() * store.tile_bytes();
        store.close();
        std::cout << "Titan: " << workload.size() << " queries, " << pixels
                  << " pixels aggregated, " << store.tiles_read()
                  << " tile fetches\n";
        return capture.finish();
      });

  std::cout << "Table 2 — results for the titan application\n";
  core::render_app_summary(std::cout, "Titan",
                           query_bytes / 40,  // bytes fetched per query
                           result, /*include_seek=*/false,
                           /*include_write=*/false);
  std::cout << "(paper: read 0.002, open 0.0005, close 0.005 ms; shape "
               "target: close > open)\n";
  return 0;
}
