// Extension (no table in the paper): the parallel text search (Pgrep)
// workload, the fifth traced application of §3.1.  Reported in the same
// per-op-class format as Tables 1-2.
#include <iostream>

#include "apps/pgrep/pgrep.hpp"
#include "core/report.hpp"
#include "core/trace_benchmark.hpp"
#include "util/temp_dir.hpp"

int main() {
  using namespace clio;
  util::TempDir dir("clio-pgrep");
  core::TraceBenchEnv env(core::default_trace_config(dir.path() / "work"));

  const auto result =
      env.capture_and_replay([&](apps::TraceCapturingFs& capture) {
        apps::TraceCapturingFs setup(env.fs(),
                                     core::TraceBenchEnv::kSampleName);
        apps::pgrep::CorpusConfig corpus;
        corpus.size_bytes = 8ULL << 20;
        corpus.pattern = "schroedinger";
        corpus.exact_occurrences = 40;
        corpus.fuzzy_occurrences = 20;
        apps::pgrep::generate_corpus(setup, "corpus.txt", corpus);

        apps::pgrep::ParallelGrep grep(
            "schroedinger",
            apps::pgrep::PgrepConfig{.max_errors = 1, .num_workers = 4});
        const auto matches = grep.search(capture, "corpus.txt");
        std::cout << "Pgrep: " << matches.match_ends.size() << " matches, "
                  << matches.bytes_scanned << " bytes scanned by 4 workers\n";
        return capture.finish();
      });

  std::cout << "Pgrep replay — per-op-class times (Tables 1-2 format)\n";
  core::render_app_summary(std::cout, "Pgrep", 65536, result,
                           /*include_seek=*/true, /*include_write=*/false);
  return 0;
}
