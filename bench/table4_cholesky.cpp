// Table 4: results for the sparse Cholesky application (paper §3.4) —
// seek + read pairs of irregular sizes as the left-looking numeric
// factorization fetches dependency columns.  The real kernel runs under
// capture; its trace replays cold.  Expected shape: request sizes vary by
// orders of magnitude, and some small reads cost more than larger ones
// (cold page vs buffered page — the paper's 28048-byte anomaly).
#include <iostream>

#include "apps/cholesky/numeric.hpp"
#include "core/report.hpp"
#include "core/trace_benchmark.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"

int main() {
  using namespace clio;
  util::TempDir dir("clio-table4");
  core::TraceBenchEnv env(core::default_trace_config(dir.path() / "work"));

  const auto result =
      env.capture_and_replay([&](apps::TraceCapturingFs& capture) {
        const auto a = apps::cholesky::make_spd(/*n=*/1500,
                                                /*extra_per_col=*/4,
                                                /*seed=*/2005);
        const auto symbolic = apps::cholesky::symbolic_factor(a);
        apps::cholesky::OocCholesky chol(a, symbolic);
        const auto stats = chol.factor(capture, "factor.bin");
        std::cout << "Cholesky: n = " << a.n << ", nnz(A) = " << a.nnz()
                  << ", nnz(L) = " << symbolic.nnz << ", "
                  << stats.column_reads << " column fetches\n";
        return capture.finish();
      });

  std::cout << "Table 4 — results for the Cholesky application (first 16 "
               "seek+read pairs at spread offsets)\n";
  // Sample 16 pairs spread through the run so sizes vary as in the paper.
  trace::ReplayResult sampled;
  std::vector<std::pair<trace::ReplayRow, trace::ReplayRow>> pairs;
  for (std::size_t i = 0; i + 1 < result.replay.rows.size(); ++i) {
    if (result.replay.rows[i].op == trace::TraceOp::kSeek &&
        result.replay.rows[i + 1].op == trace::TraceOp::kRead) {
      pairs.emplace_back(result.replay.rows[i], result.replay.rows[i + 1]);
    }
  }
  const std::size_t stride = std::max<std::size_t>(1, pairs.size() / 16);
  for (std::size_t i = 0; i < pairs.size() && sampled.rows.size() < 32;
       i += stride) {
    sampled.rows.push_back(pairs[i].first);
    sampled.rows.push_back(pairs[i].second);
  }
  core::render_seek_read_rows(std::cout, sampled, 16);
  std::cout << "open " << util::format_ms(result.open_ms) << " ms, close "
            << util::format_ms(result.close_ms)
            << " ms (paper: open 0.00067, close 0.0071 ms)\n";
  return 0;
}
