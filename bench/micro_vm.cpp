// Microbenchmarks / ablations of the mini-CLI execution engine
// (DESIGN.md §5, decision 1): interpreter throughput, JIT compile cost,
// and the code cache on/off ablation behind Table 6's first-request delay.
#include <benchmark/benchmark.h>

#include "vm/assembler.hpp"
#include "vm/runtime.hpp"

namespace {

using namespace clio;

const char* kLoopSource = R"(
.method spin 1 2
  ldc 0
  stloc 0
  ldc 0
  stloc 1
top:
  ldloc 1
  ldarg 0
  cmpge
  brtrue done
  ldloc 0
  ldloc 1
  add
  stloc 0
  ldloc 1
  ldc 1
  add
  stloc 1
  br top
done:
  ldloc 0
  ret
.end
)";

void BM_InterpreterLoop(benchmark::State& state) {
  vm::EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  vm::ExecutionEngine engine(vm::assemble(kLoopSource), options);
  const auto idx = engine.method_index("spin");
  const std::vector<vm::Value> args{vm::Value::from_int(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.call_index(idx, args));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InterpreterLoop)->Arg(100)->Arg(1000)->Arg(10000);

void BM_JitCompile(benchmark::State& state) {
  // Cache disabled: every call measures a full verify+decode+codegen pass.
  vm::Module module = vm::assemble(kLoopSource);
  vm::JitOptions options;
  options.cache_enabled = false;
  options.compile_ns_per_byte = state.range(0);
  vm::Jit jit(module, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jit.get(0));
  }
}
BENCHMARK(BM_JitCompile)->Arg(0)->Arg(1500)->Arg(25000);

void BM_WarmCallWithCache(benchmark::State& state) {
  vm::EngineOptions options;
  options.jit.compile_ns_per_byte = 25000;
  options.jit.cache_enabled = true;
  vm::ExecutionEngine engine(vm::assemble(kLoopSource), options);
  const auto idx = engine.method_index("spin");
  const std::vector<vm::Value> args{vm::Value::from_int(10)};
  engine.call_index(idx, args);  // pay the compile once
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.call_index(idx, args));
  }
}
BENCHMARK(BM_WarmCallWithCache);

void BM_ColdCallNoCache(benchmark::State& state) {
  // The ablation: without a code cache every request looks like a first
  // request.
  vm::EngineOptions options;
  options.jit.compile_ns_per_byte = 25000;
  options.jit.cache_enabled = false;
  vm::ExecutionEngine engine(vm::assemble(kLoopSource), options);
  const auto idx = engine.method_index("spin");
  const std::vector<vm::Value> args{vm::Value::from_int(10)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.call_index(idx, args));
  }
}
BENCHMARK(BM_ColdCallNoCache);

}  // namespace

BENCHMARK_MAIN();
