// Microbenchmarks of the mini-CLI execution engine — the managed-runtime
// axis of the paper ("Benchmarking the CLI for I/O-Intensive Computing"):
// what does running the SAME kernel as managed bytecode cost, relative to
// native C++, when both sides do their I/O through the SAME managed
// filesystem?
//
// Scenarios:
//   interp   — raw interpreter dispatch throughput (threaded computed-goto
//              vs switch fallback is a compile-time property; the metric is
//              interpreted Minstructions/s on a tight arithmetic loop).
//   jit      — first-request delay: eager compile (threshold 1, the Table 6
//              cold-start) vs the warm-up tier (threshold 16: early calls
//              interpret, the hot method compiles later).
//   fileio   — the managed read path: file_read into a Value array (one
//              boxed i64 per byte, the old path) vs into a byte buffer
//              (one span copy, the fast path), MB/s over a 4 MiB file.
//   bitap    — the Pgrep kernel (exact shift-and matching): VM bytecode vs
//              native BitapStreamScanner over the same corpus file, same
//              chunking, same buffer pool.  Reports both MB/s and the
//              managed-over-native slowdown; aborts if match counts differ.
//   dmine    — the Dmine kernel (Apriori candidate counting) likewise, over
//              fixed 16-byte basket records.
//
// Usage: micro_vm [all|interp|jit|fileio|bitap|dmine] (default: all)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/dmine/candidate_count.hpp"
#include "apps/pgrep/bitap.hpp"
#include "io/file_store.hpp"
#include "obs/bench_report.hpp"
#include "util/error.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/temp_dir.hpp"
#include "vm/assembler.hpp"
#include "vm/kernels.hpp"
#include "vm/runtime.hpp"

namespace {

using namespace clio;

volatile long long benchmark_sink = 0;

io::ManagedFileSystem make_fs(const util::TempDir& dir) {
  return io::ManagedFileSystem(
      std::make_unique<io::RealFileStore>(dir.path()),
      io::ManagedFsOptions{});
}

void write_file(io::ManagedFileSystem& fs, const std::string& name,
                std::span<const std::byte> data) {
  auto file = fs.open(name, io::OpenMode::kTruncate);
  file.write(data);
  file.close();
}

// ------------------------------------------------------------- interp ----

void bench_interp(obs::BenchReport& report) {
  vm::EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  vm::ExecutionEngine engine(vm::assemble(vm::kernels::kSpinSource), options);
  const auto idx = engine.method_index("spin_sum");
  const std::vector<vm::Value> args{vm::Value::from_int(20000)};
  // Warm up (forces the compile), then measure.
  benchmark_sink = engine.call_index(idx, args).as_int();
  const auto insns_before = engine.instructions_executed();
  util::Stopwatch watch;
  constexpr int kReps = 150;
  for (int i = 0; i < kReps; ++i) {
    benchmark_sink = engine.call_index(idx, args).as_int();
  }
  const double sec = watch.elapsed_ms() / 1e3;
  const double insns =
      static_cast<double>(engine.instructions_executed() - insns_before);
#if defined(__GNUC__) || defined(__clang__)
  const bool threaded = true;
#else
  const bool threaded = false;
#endif
  std::printf("dispatch: %s   %.1f M insns/s\n",
              threaded ? "threaded (computed goto)" : "switch fallback",
              insns / sec / 1e6);
  report.scenario("interp_loop");
  report.metric("minsns_per_sec", insns / sec / 1e6);
  report.metric("threaded_dispatch", threaded ? 1.0 : 0.0);
}

// ---------------------------------------------------------------- jit ----

void bench_jit(obs::BenchReport& report) {
  const std::vector<vm::Value> args{vm::Value::from_int(64)};

  // Eager tier (compile_threshold = 1): the first call pays the full
  // verify+decode+codegen cost — the paper's first-request delay.
  util::LatencyHistogram eager_first;
  util::LatencyHistogram warm;
  vm::EngineOptions eager;
  eager.jit.compile_threshold = 1;
  vm::ExecutionEngine engine(vm::assemble(vm::kernels::kSpinSource), eager);
  const auto idx = engine.method_index("spin_sum");
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    engine.flush_jit_cache();
    util::Stopwatch first_watch;
    benchmark_sink = engine.call_index(idx, args).as_int();
    eager_first.push(static_cast<std::uint64_t>(
        first_watch.elapsed_ms() * 1e6));
    for (int i = 0; i < 20; ++i) {
      util::Stopwatch warm_watch;
      benchmark_sink = engine.call_index(idx, args).as_int();
      warm.push(static_cast<std::uint64_t>(warm_watch.elapsed_ms() * 1e6));
    }
  }

  // Warm-up tier (threshold 16): early calls interpret — the cold call is
  // cheap — and the compile lands on the 16th invocation.
  util::LatencyHistogram tiered_first;
  vm::EngineOptions tiered;
  tiered.jit.compile_threshold = 16;
  vm::ExecutionEngine tiered_engine(vm::assemble(vm::kernels::kSpinSource),
                                    tiered);
  const auto tidx = tiered_engine.method_index("spin_sum");
  for (int t = 0; t < kTrials; ++t) {
    tiered_engine.flush_jit_cache();
    util::Stopwatch first_watch;
    benchmark_sink = tiered_engine.call_index(tidx, args).as_int();
    tiered_first.push(static_cast<std::uint64_t>(
        first_watch.elapsed_ms() * 1e6));
    for (int i = 0; i < 20; ++i) {
      benchmark_sink = tiered_engine.call_index(tidx, args).as_int();
    }
  }
  const auto& stats = tiered_engine.jit_stats();

  std::printf(
      "first call:  eager p50 %8llu ns   tiered p50 %8llu ns\n"
      "warm call:         p50 %8llu ns\n"
      "tiered engine: %llu compilations, %llu interpreted calls\n",
      static_cast<unsigned long long>(eager_first.quantile_ns(0.5)),
      static_cast<unsigned long long>(tiered_first.quantile_ns(0.5)),
      static_cast<unsigned long long>(warm.quantile_ns(0.5)),
      static_cast<unsigned long long>(stats.compilations),
      static_cast<unsigned long long>(stats.interpreted_calls));

  report.scenario("jit_first_request");
  report.metric("eager_first_call_p50_ns",
                static_cast<double>(eager_first.quantile_ns(0.5)));
  report.metric("tiered_first_call_p50_ns",
                static_cast<double>(tiered_first.quantile_ns(0.5)));
  report.metric("warm_call_p50_ns",
                static_cast<double>(warm.quantile_ns(0.5)));
  report.metric("tiered_interpreted_calls",
                static_cast<double>(stats.interpreted_calls));
  report.distribution("eager_first_call_ns", eager_first);
  report.distribution("tiered_first_call_ns", tiered_first);
  report.distribution("warm_call_ns", warm);
}

// ------------------------------------------------------------- fileio ----

const char* const kReadLoopSource = R"(
.method read_all_buf 2 3
  ldarg 0
  ldc 0
  syscall file_open
  stloc 0
  ldarg 1
  syscall buf_new
  stloc 1
loop:
  ldloc 0
  ldloc 1
  ldarg 1
  syscall file_read
  stloc 2
  ldloc 2
  brtrue loop
  ldloc 0
  syscall file_close
  ret
.end

.method read_all_arr 2 3
  ldarg 0
  ldc 0
  syscall file_open
  stloc 0
  ldarg 1
  newarr
  stloc 1
loop:
  ldloc 0
  ldloc 1
  ldarg 1
  syscall file_read
  stloc 2
  ldloc 2
  brtrue loop
  ldloc 0
  syscall file_close
  ret
.end
)";

void bench_fileio(obs::BenchReport& report) {
  util::TempDir dir;
  auto fs = make_fs(dir);
  constexpr std::size_t kFileBytes = 4 << 20;
  constexpr std::int64_t kChunk = 64 * 1024;
  {
    util::Rng rng(99);
    std::vector<std::byte> data(kFileBytes);
    for (auto& b : data) {
      b = static_cast<std::byte>(rng.uniform_u64(256));
    }
    write_file(fs, "payload.bin", data);
  }
  vm::EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  vm::ExecutionEngine engine(vm::assemble(kReadLoopSource), options, &fs);

  const auto run = [&](const char* method) {
    // One warm-up pass loads the pool, then three timed passes.
    engine.call(method, {vm::kernels::make_string("payload.bin"),
                         vm::Value::from_int(kChunk)});
    util::Stopwatch watch;
    constexpr int kReps = 3;
    for (int i = 0; i < kReps; ++i) {
      engine.call(method, {vm::kernels::make_string("payload.bin"),
                           vm::Value::from_int(kChunk)});
    }
    const double sec = watch.elapsed_ms() / 1e3;
    return kReps * (kFileBytes / 1e6) / sec;
  };

  const double boxed = run("read_all_arr");
  const double buffer = run("read_all_buf");
  std::printf(
      "file_read 4 MiB, 64 KiB chunks:  boxed array %8.1f MB/s   "
      "byte buffer %8.1f MB/s   (x%.1f)\n",
      boxed, buffer, buffer / boxed);
  report.scenario("file_read_boxed");
  report.metric("mb_per_sec", boxed);
  report.scenario("file_read_buffer");
  report.metric("mb_per_sec", buffer);
  report.metric("speedup_vs_boxed", buffer / boxed);
}

// ----------------------------------------------------- managed vs native ----

/// Shared shape of the two kernel scenarios: run the managed (VM) and the
/// native implementation over the same file through the same fs, check the
/// results agree, and report throughput for both plus the slowdown factor.
void report_pair(obs::BenchReport& report, const char* name,
                 double bytes_processed, double managed_ms, double native_ms,
                 long long managed_result, long long native_result) {
  util::check<util::ConfigError>(
      managed_result == native_result,
      std::string(name) + ": managed and native kernels disagree");
  const double managed_mbs = bytes_processed / 1e6 / (managed_ms / 1e3);
  const double native_mbs = bytes_processed / 1e6 / (native_ms / 1e3);
  std::printf(
      "%-6s  managed %8.1f MB/s   native %8.1f MB/s   slowdown x%.1f   "
      "(result %lld)\n",
      name, managed_mbs, native_mbs, native_mbs / managed_mbs,
      managed_result);
  report.scenario(std::string(name) + "_managed");
  report.metric("mb_per_sec", managed_mbs);
  report.metric("result", static_cast<double>(managed_result));
  report.scenario(std::string(name) + "_native");
  report.metric("mb_per_sec", native_mbs);
  report.metric("managed_over_native", native_mbs / managed_mbs);
}

void bench_bitap(obs::BenchReport& report) {
  util::TempDir dir;
  auto fs = make_fs(dir);
  const std::string pattern = "wickedly";
  constexpr std::size_t kCorpusBytes = 4 << 20;
  constexpr std::int64_t kChunk = 64 * 1024;
  {
    util::Rng rng(11);
    std::string text(kCorpusBytes, ' ');
    for (auto& ch : text) {
      ch = static_cast<char>('a' + rng.uniform_u64(26));
    }
    for (std::size_t at = 4000; at + pattern.size() < text.size();
         at += 65521) {  // prime stride: some plants straddle chunks
      text.replace(at, pattern.size(), pattern);
    }
    write_file(fs, "corpus.txt",
               std::span(reinterpret_cast<const std::byte*>(text.data()),
                         text.size()));
  }

  vm::EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  vm::ExecutionEngine engine(vm::assemble(vm::kernels::kBitapSource), options,
                             &fs);
  const std::vector<vm::Value> args{
      vm::kernels::make_string("corpus.txt"),
      vm::kernels::bitap_masks(pattern), vm::kernels::bitap_accept(pattern),
      vm::Value::from_int(kChunk)};
  engine.call("bitap_file", args);  // warm the pool + the jit
  util::Stopwatch managed_watch;
  const long long managed_result = engine.call("bitap_file", args).as_int();
  const double managed_ms = managed_watch.elapsed_ms();

  apps::pgrep::Bitap matcher(pattern, 0);
  apps::pgrep::BitapStreamScanner scanner(matcher);
  std::vector<std::byte> chunk(static_cast<std::size_t>(kChunk));
  util::Stopwatch native_watch;
  auto file = fs.open("corpus.txt", io::OpenMode::kRead);
  while (true) {
    const std::size_t got = file.read(chunk);
    if (got == 0) break;
    scanner.feed(std::string_view(
        reinterpret_cast<const char*>(chunk.data()), got));
  }
  file.close();
  const double native_ms = native_watch.elapsed_ms();

  report_pair(report, "bitap", kCorpusBytes, managed_ms, native_ms,
              managed_result,
              static_cast<long long>(scanner.matches()));
}

void bench_dmine(obs::BenchReport& report) {
  using apps::dmine::kFixedRecordBytes;
  util::TempDir dir;
  auto fs = make_fs(dir);
  constexpr std::size_t kBaskets = 60000;
  constexpr std::int64_t kChunk = 64 * 1024;  // multiple of 16
  constexpr std::size_t kK = 2;
  std::vector<std::vector<std::uint8_t>> candidates;
  for (std::uint8_t c = 0; c < 12; ++c) {
    candidates.push_back({c, static_cast<std::uint8_t>(c + 5)});
  }
  const auto packed = apps::dmine::pack_candidates(candidates, kK);
  {
    util::Rng rng(23);
    std::vector<std::vector<std::uint8_t>> baskets;
    baskets.reserve(kBaskets);
    for (std::size_t b = 0; b < kBaskets; ++b) {
      std::vector<std::uint8_t> basket;
      const auto n = 3 + rng.uniform_u64(8);
      for (std::uint64_t i = 0; i < n; ++i) {
        const auto item = static_cast<std::uint8_t>(rng.uniform_u64(48));
        bool dup = false;
        for (const auto existing : basket) dup = dup || existing == item;
        if (!dup) basket.push_back(item);
      }
      baskets.push_back(std::move(basket));
    }
    write_file(fs, "baskets.dat", apps::dmine::encode_fixed_records(baskets));
  }
  const double file_bytes = kBaskets * kFixedRecordBytes;

  vm::EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  vm::ExecutionEngine engine(vm::assemble(vm::kernels::kDmineSource), options,
                             &fs);
  const std::vector<vm::Value> args{
      vm::kernels::make_string("baskets.dat"), vm::kernels::make_buffer(packed),
      vm::Value::from_int(static_cast<std::int64_t>(kK)),
      vm::Value::from_int(kChunk)};
  engine.call("dmine_count", args);  // warm
  util::Stopwatch managed_watch;
  const long long managed_result = engine.call("dmine_count", args).as_int();
  const double managed_ms = managed_watch.elapsed_ms();

  long long native_result = 0;
  std::vector<std::byte> chunk(static_cast<std::size_t>(kChunk));
  util::Stopwatch native_watch;
  auto file = fs.open("baskets.dat", io::OpenMode::kRead);
  while (true) {
    const std::size_t got = file.read(chunk);
    if (got == 0) break;
    native_result += static_cast<long long>(apps::dmine::count_support(
        std::span(chunk.data(), got), packed, kK));
  }
  file.close();
  const double native_ms = native_watch.elapsed_ms();

  report_pair(report, "dmine", file_bytes, managed_ms, native_ms,
              managed_result, native_result);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string filter = argc > 1 ? argv[1] : "all";
  const auto enabled = [&](const char* name) {
    return filter == "all" || filter == name;
  };
  obs::BenchReport report("micro_vm");
  if (enabled("interp")) {
    std::printf("-- interpreter dispatch throughput --\n");
    bench_interp(report);
    std::printf("\n");
  }
  if (enabled("jit")) {
    std::printf("-- jit first-request delay: eager vs warm-up tier --\n");
    bench_jit(report);
    std::printf("\n");
  }
  if (enabled("fileio")) {
    std::printf("-- managed file_read: boxed array vs byte buffer --\n");
    bench_fileio(report);
    std::printf("\n");
  }
  if (enabled("bitap")) {
    std::printf("-- pgrep bitap kernel: managed vs native --\n");
    bench_bitap(report);
    std::printf("\n");
  }
  if (enabled("dmine")) {
    std::printf("-- dmine candidate counting: managed vs native --\n");
    bench_dmine(report);
  }
  const std::string json_path = report.write_default();
  if (!json_path.empty()) {
    std::printf("\nmachine-readable report: %s\n", json_path.c_str());
  }
  return 0;
}
