#!/usr/bin/env python3
"""Compare BENCH_*.json files against a committed baseline trajectory.

The CI regression gate: every (bench, scenario, distribution) present in
BOTH the baseline and the current run is compared on p99 latency; any
current p99 more than --p99-tolerance above its baseline fails the job
(exit 1).  Scenarios present on only one side are reported but never fail
the gate — benches grow scenarios over time and the trajectory catches up
on the next baseline refresh.

Single-run p99s are noisy (on a contended 1-CPU box, scenarios swing
2-4x run-to-run with no code change), so BOTH sides may hold several
runs per bench — e.g. BENCH_micro_webserver.json plus
BENCH_micro_webserver.run2.json / .run3.json — and the gate compares
the BEST (min) current p99 against the WORST (max) baseline p99 plus
the tolerance.  A one-sided scheduler spike on either side cannot trip
the gate; a real regression, which shifts every run, still does.

Relative tolerance alone misgates microsecond-scale distributions (a
2 us wobble on a 3 us pin-latency p99 reads as +60%), so a regression
must also exceed --p99-slack-ns in absolute terms (default 50 us).  At
millisecond scales the slack is negligible and the relative gate
governs; at microsecond scales only shifts big enough to matter can
fail the job.

Usage:
  bench_compare.py --baseline bench/trajectory --current build-bench
  bench_compare.py --baseline BENCH_micro_webserver.json \
                   --current new/BENCH_micro_webserver.json
  bench_compare.py --self-test

Inputs may be directories (every BENCH_*.json inside is loaded) or single
files.  Schema: {"bench": name, "schema": 1, "scenarios": [{"name",
"metrics": {...}, "distributions": {name: {..., "p99_ns": int}}}]}.

Stdlib only — no third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_reports(path: Path) -> dict[str, list[dict]]:
    """Returns {bench_name: [report, ...]} for a file or a directory.

    Several files may report the same bench (repeat baseline runs named
    e.g. BENCH_foo.json, BENCH_foo.run2.json); all are kept.
    """
    files: list[Path]
    if path.is_dir():
        files = sorted(path.glob("BENCH_*.json"))
    elif path.is_file():
        files = [path]
    else:
        raise FileNotFoundError(f"no such file or directory: {path}")
    reports: dict[str, list[dict]] = {}
    for f in files:
        with open(f, encoding="utf-8") as fh:
            report = json.load(fh)
        for key in ("bench", "schema", "scenarios"):
            if key not in report:
                raise ValueError(f"{f}: missing required key '{key}'")
        if report["schema"] != 1:
            raise ValueError(f"{f}: unsupported schema {report['schema']}")
        reports.setdefault(report["bench"], []).append(report)
    return reports


def envelope_index(
    reports: list[dict], side: str
) -> dict[tuple[str, str], dict]:
    """Returns {(scenario, distribution): envelope} across repeat runs.

    side="worst" keeps the max p99 any run observed (for the baseline:
    the top of the recorded noise band); side="best" keeps the min (for
    the current push: its least-contended run).  The gate then fails only
    when even the best current run exceeds the worst baseline run plus
    the tolerance — one-sided scheduler spikes on either side cannot trip
    it, while a real regression (which shifts every run) still does.  One
    run degenerates to that run's values either way.
    """
    pick = max if side == "worst" else min
    out: dict[tuple[str, str], dict] = {}
    for report in reports:
        for scenario in report["scenarios"]:
            for name, hist in scenario.get("distributions", {}).items():
                key = (scenario["name"], name)
                entry = out.get(key)
                if entry is None:
                    out[key] = {
                        "p99_ns": hist.get("p99_ns", 0),
                        "count": hist.get("count", 0),
                        "runs": 1,
                    }
                    continue
                entry["p99_ns"] = pick(
                    entry["p99_ns"], hist.get("p99_ns", 0)
                )
                entry["count"] = max(entry["count"], hist.get("count", 0))
                entry["runs"] += 1
    return out


def compare(
    baseline: dict[str, list[dict]],
    current: dict[str, list[dict]],
    tolerance: float,
    min_count: int,
    slack_ns: int = 50_000,
    out=sys.stdout,
) -> int:
    """Prints a comparison table; returns the number of regressions."""
    regressions = 0
    compared = 0
    for bench, base_reports in sorted(baseline.items()):
        cur_reports = current.get(bench)
        if cur_reports is None:
            print(f"[skip] {bench}: not present in current run", file=out)
            continue
        base_dists = envelope_index(base_reports, side="worst")
        cur_dists = envelope_index(cur_reports, side="best")
        for (scenario, dist), base_env in sorted(base_dists.items()):
            cur_env = cur_dists.get((scenario, dist))
            label = f"{bench}/{scenario}/{dist}"
            if cur_env is None:
                print(f"[skip] {label}: not present in current run", file=out)
                continue
            base_p99 = base_env["p99_ns"]
            cur_p99 = cur_env["p99_ns"]
            if base_env["count"] < min_count or base_p99 <= 0:
                print(f"[skip] {label}: baseline too small to gate", file=out)
                continue
            ratio = cur_p99 / base_p99
            verdict = "ok"
            if ratio > 1.0 + tolerance and cur_p99 > base_p99 + slack_ns:
                verdict = "REGRESSION"
                regressions += 1
            compared += 1
            notes = []
            if base_env["runs"] > 1:
                notes.append(f"worst of {base_env['runs']} baseline runs")
            if cur_env["runs"] > 1:
                notes.append(f"best of {cur_env['runs']} current runs")
            runs_note = (", " + ", ".join(notes)) if notes else ""
            print(
                f"[{verdict:>10}] {label}: p99 {base_p99} -> {cur_p99} ns "
                f"({ratio - 1.0:+.1%} vs baseline{runs_note}, "
                f"tolerance +{tolerance:.0%})",
                file=out,
            )
        for key in sorted(set(cur_dists) - set(base_dists)):
            print(
                f"[new ] {bench}/{key[0]}/{key[1]}: no baseline yet",
                file=out,
            )
    print(
        f"compared {compared} distributions: "
        f"{regressions} regression(s) beyond +{tolerance:.0%} p99",
        file=out,
    )
    return regressions


def synthetic_report(p99_scale: float = 1.0) -> dict:
    """A small fixed report for --self-test (no bench run needed)."""
    p99 = int(400_000 * p99_scale)
    return {
        "bench": "selftest",
        "schema": 1,
        "scenarios": [
            {
                "name": "steady",
                "metrics": {"requests_per_sec": 1000.0},
                "distributions": {
                    "latency_ns": {
                        "count": 10_000,
                        "min_ns": 10_000,
                        "max_ns": int(600_000 * p99_scale),
                        "mean_ns": 120_000.0,
                        "p50_ns": 100_000,
                        "p90_ns": 250_000,
                        "p99_ns": p99,
                        "p999_ns": int(550_000 * p99_scale),
                        "buckets": [],
                    }
                },
            }
        ],
    }


def self_test(tolerance: float) -> int:
    """Verifies the gate passes on identical data and fails on an injected
    regression.  Returns 0 on success."""
    base = {"selftest": [synthetic_report()]}

    same = compare(base, {"selftest": [synthetic_report()]}, tolerance, 100)
    if same != 0:
        print("self-test FAILED: identical reports flagged as regression")
        return 1

    # 30% worse p99 must trip a 15% gate.
    worse = compare(
        base, {"selftest": [synthetic_report(p99_scale=1.30)]}, tolerance, 100
    )
    if worse != 1:
        print("self-test FAILED: injected +30% p99 regression not caught")
        return 1

    # 10% worse p99 must stay under a 15% gate.
    mild = compare(
        base, {"selftest": [synthetic_report(p99_scale=1.10)]}, tolerance, 100
    )
    if mild != 0:
        print("self-test FAILED: +10% drift flagged under a 15% tolerance")
        return 1

    # A multi-run baseline gates against its envelope: with runs at 1.0x
    # and 1.3x recorded, a 1.4x current sits inside envelope + tolerance
    # (1.3 * 1.15 ≈ 1.5) and must pass, while 1.6x must still trip.
    noisy = {
        "selftest": [synthetic_report(), synthetic_report(p99_scale=1.30)]
    }
    inside = compare(
        noisy, {"selftest": [synthetic_report(p99_scale=1.40)]},
        tolerance, 100,
    )
    if inside != 0:
        print("self-test FAILED: drift inside the multi-run envelope "
              "flagged as regression")
        return 1
    beyond = compare(
        noisy, {"selftest": [synthetic_report(p99_scale=1.60)]},
        tolerance, 100,
    )
    if beyond != 1:
        print("self-test FAILED: regression beyond the multi-run envelope "
              "not caught")
        return 1

    # The current side gates on its BEST run: one contended 1.6x run next
    # to a clean 1.0x run must pass, but 1.6x in every run must fail.
    spiky = [synthetic_report(p99_scale=1.60), synthetic_report()]
    if compare(base, {"selftest": spiky}, tolerance, 100) != 0:
        print("self-test FAILED: one-sided current-run spike flagged "
              "despite a clean repeat run")
        return 1
    steady_worse = [
        synthetic_report(p99_scale=1.60),
        synthetic_report(p99_scale=1.60),
    ]
    if compare(base, {"selftest": steady_worse}, tolerance, 100) != 1:
        print("self-test FAILED: regression present in every current run "
              "not caught")
        return 1

    # Microsecond-scale distributions: +100% relative growth that is only
    # a 4 us absolute shift stays under the 50 us slack and must pass.
    tiny_base = {"selftest": [synthetic_report(p99_scale=0.01)]}
    tiny_cur = {"selftest": [synthetic_report(p99_scale=0.02)]}
    if compare(tiny_base, tiny_cur, tolerance, 100) != 0:
        print("self-test FAILED: microsecond-scale wobble under the "
              "absolute slack flagged as regression")
        return 1

    print("self-test OK: gate passes unchanged data, catches +30% p99, "
          "envelopes absorb one-sided noise, absolute slack shields "
          "microsecond scales")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path,
                        help="baseline file or directory of BENCH_*.json")
    parser.add_argument("--current", type=Path,
                        help="current file or directory of BENCH_*.json")
    parser.add_argument("--p99-tolerance", type=float, default=0.15,
                        help="allowed fractional p99 growth (default 0.15)")
    parser.add_argument("--min-count", type=int, default=100,
                        help="skip distributions with fewer baseline samples")
    parser.add_argument("--p99-slack-ns", type=int, default=50_000,
                        help="absolute p99 growth a regression must also "
                             "exceed (default 50000 ns)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate on synthetic data and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.p99_tolerance)

    if args.baseline is None or args.current is None:
        parser.error("--baseline and --current are required "
                     "(or use --self-test)")
    baseline = load_reports(args.baseline)
    current = load_reports(args.current)
    if not baseline:
        print("no baseline reports found: nothing to gate", file=sys.stderr)
        return 0
    regressions = compare(
        baseline, current, args.p99_tolerance, args.min_count,
        slack_ns=args.p99_slack_ns,
    )
    return 1 if regressions > 0 else 0


if __name__ == "__main__":
    sys.exit(main())
