#include <gtest/gtest.h>

#include <sstream>

#include "core/behavioral_benchmark.hpp"
#include "core/benchmark.hpp"
#include "core/report.hpp"
#include "core/trace_benchmark.hpp"
#include "core/webserver_benchmark.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::core {
namespace {

TEST(Registry, AddCreateAndListIds) {
  class Dummy : public Benchmark {
   public:
    [[nodiscard]] std::string name() const override { return "dummy"; }
    void run(std::ostream& os) override { os << "ran\n"; }
  };
  BenchmarkRegistry registry;
  registry.add("dummy", [] { return std::make_unique<Dummy>(); });
  EXPECT_EQ(registry.ids(), std::vector<std::string>{"dummy"});
  auto bench = registry.create("dummy");
  std::ostringstream oss;
  bench->run(oss);
  EXPECT_EQ(oss.str(), "ran\n");
  EXPECT_THROW(registry.create("nope"), util::ConfigError);
  EXPECT_THROW(registry.add("dummy", nullptr), util::ConfigError);
}

TEST(QcrdFigures, ShapesMatchPaperClaims) {
  util::TempDir dir;
  QcrdRunConfig config;
  config.workdir = dir.path() / "qcrd";
  config.timebase_sec = 0.1;  // fast test run
  const auto figures = run_qcrd_figures(config);
  ASSERT_EQ(figures.measured.size(), 3u);   // Application, P1, P2
  ASSERT_EQ(figures.model_predicted.size(), 3u);
  // Model at paper scale: program 1 CPU-heavy, program 2 I/O-heavy,
  // application I/O share noticeably large.
  const auto& model_p1 = figures.model_predicted[1];
  const auto& model_p2 = figures.model_predicted[2];
  EXPECT_GT(model_p1.cpu_sec, model_p1.io_sec);
  EXPECT_GT(model_p2.io_sec, model_p2.cpu_sec);
  EXPECT_GT(figures.model_predicted[0].io_pct(), 30.0);
  // Measured run reproduces the program-level contrast.
  EXPECT_GT(figures.measured[2].io_pct(), figures.measured[1].io_pct());
  // Rendering works.
  std::ostringstream oss;
  render_figure2(oss, figures);
  render_figure3(oss, figures);
  EXPECT_NE(oss.str().find("Program1"), std::string::npos);
}

TEST(QcrdSweeps, SeriesHaveFivePoints) {
  const auto disks = run_qcrd_disk_sweep({2, 4, 8, 16, 32}, 0.5);
  const auto cpus = run_qcrd_cpu_sweep({2, 4, 8, 16, 32}, 0.5);
  ASSERT_EQ(disks.size(), 5u);
  ASSERT_EQ(cpus.size(), 5u);
  EXPECT_LT(disks.back().speedup, 2.0);   // Figure 4 flat
  EXPECT_GT(cpus.back().speedup, 1.5);    // Figure 5 rises
  std::ostringstream oss;
  render_speedup_series(oss, "Number of Disks", disks);
  EXPECT_NE(oss.str().find("Speedup"), std::string::npos);
}

TEST(TraceBench, ReplaySyntheticTraceAgainstSample) {
  util::TempDir dir;
  TraceBenchConfig config;
  config.workdir = dir.path() / "work";
  config.sample_bytes = 4ULL << 20;
  TraceBenchEnv env(config);
  const auto trace = trace::sequential_read(1 << 20, 64 * 1024);
  const auto result = env.replay(trace);
  EXPECT_EQ(result.replay.bytes_read, 1u << 20);
  EXPECT_GE(result.read_ms, 0.0);
  EXPECT_GE(result.close_ms, 0.0);
  std::ostringstream oss;
  render_app_summary(oss, "Synthetic", 65536, result, true, false);
  EXPECT_NE(oss.str().find("Synthetic"), std::string::npos);
}

TEST(TraceBench, CaptureAndReplayRoundTrip) {
  util::TempDir dir;
  TraceBenchConfig config;
  config.workdir = dir.path() / "work";
  config.sample_bytes = 4ULL << 20;
  TraceBenchEnv env(config);
  const auto result =
      env.capture_and_replay([](apps::TraceCapturingFs& capture) {
        auto file = capture.open("x.bin", io::OpenMode::kCreate);
        const std::string payload(128 * 1024, 'z');
        file.write(std::as_bytes(
            std::span<const char>(payload.data(), payload.size())));
        file.close();
        return capture.finish();
      });
  EXPECT_EQ(result.replay.bytes_written, 128u * 1024);
}

TEST(TraceBench, EnvOverridesSampleSize) {
  util::TempDir dir;
  ::setenv("CLIO_SAMPLE_BYTES", "8MiB", 1);
  const auto config = default_trace_config(dir.path());
  ::unsetenv("CLIO_SAMPLE_BYTES");
  EXPECT_EQ(config.sample_bytes, 8ULL << 20);
}

TEST(WebBench, Table5And6Protocols) {
  util::TempDir dir;
  WebBenchConfig config;
  config.workdir = dir.path() / "docroot";
  config.jit_ns_per_byte = 20000;
  WebServerBench bench(config);

  const auto table5 = bench.run_table5();
  ASSERT_EQ(table5.size(), 3u);
  EXPECT_EQ(table5[0].bytes, WebServerBench::kSmall);
  EXPECT_EQ(table5[1].bytes, WebServerBench::kLarge);
  EXPECT_EQ(table5[2].bytes, WebServerBench::kMid);
  for (const auto& row : table5) {
    EXPECT_GT(row.read_ms, 0.0);
    EXPECT_GT(row.write_ms, 0.0);
  }

  const auto table6 = bench.run_table6(6);
  ASSERT_EQ(table6.size(), 6u);
  for (const auto& row : table6) EXPECT_EQ(row.bytes, WebServerBench::kMid);
  // First trial pays the cold path; compare with the warm median.
  std::vector<double> warm;
  for (std::size_t i = 1; i < table6.size(); ++i) {
    warm.push_back(table6[i].read_ms);
  }
  std::sort(warm.begin(), warm.end());
  EXPECT_GT(table6[0].read_ms, warm[warm.size() / 2]);

  std::ostringstream oss;
  render_table5(oss, table5);
  render_table6(oss, table6);
  EXPECT_NE(oss.str().find("Read Time (ms)"), std::string::npos);
}

}  // namespace
}  // namespace clio::core
