#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace clio::obs {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& fill) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  fill(w);
  EXPECT_TRUE(w.complete());
  return os.str();
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(compact([](JsonWriter& w) {
              w.begin_object();
              w.end_object();
            }),
            "{}");
  EXPECT_EQ(compact([](JsonWriter& w) {
              w.begin_array();
              w.end_array();
            }),
            "[]");
}

TEST(JsonWriter, ObjectWithMixedValues) {
  const std::string doc = compact([](JsonWriter& w) {
    w.begin_object();
    w.kv("name", "clio");
    w.kv("port", std::uint64_t{8080});
    w.kv("ratio", 0.5);
    w.kv("running", true);
    w.key("extra");
    w.null();
    w.end_object();
  });
  EXPECT_EQ(doc,
            "{\"name\":\"clio\",\"port\":8080,\"ratio\":0.5,"
            "\"running\":true,\"extra\":null}");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  const std::string doc = compact([](JsonWriter& w) {
    w.begin_object();
    w.key("rows");
    w.begin_array();
    w.begin_object();
    w.kv("n", 1);
    w.end_object();
    w.begin_object();
    w.kv("n", 2);
    w.end_object();
    w.end_array();
    w.end_object();
  });
  EXPECT_EQ(doc, "{\"rows\":[{\"n\":1},{\"n\":2}]}");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  const std::string doc = compact([](JsonWriter& w) {
    w.begin_array();
    w.value("a\"b\\c\n\t\x01");
    w.end_array();
  });
  EXPECT_EQ(doc, "[\"a\\\"b\\\\c\\n\\t\\u0001\"]");
}

TEST(JsonWriter, NonFiniteDoublesDegradeToNull) {
  const std::string doc = compact([](JsonWriter& w) {
    w.begin_array();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.value(1.5);
    w.end_array();
  });
  EXPECT_EQ(doc, "[null,null,1.5]");
}

TEST(JsonWriter, NegativeIntegers) {
  const std::string doc = compact([](JsonWriter& w) {
    w.begin_array();
    w.value(std::int64_t{-42});
    w.end_array();
  });
  EXPECT_EQ(doc, "[-42]");
}

TEST(JsonWriter, PrettyModeIndentsAndStaysParseable) {
  std::ostringstream os;
  JsonWriter w(os);  // pretty by default
  w.begin_object();
  w.kv("a", 1);
  w.key("b");
  w.begin_array();
  w.value(2);
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
  const std::string doc = os.str();
  EXPECT_NE(doc.find('\n'), std::string::npos);
  EXPECT_NE(doc.find("\"a\": 1"), std::string::npos);
}

TEST(JsonWriter, RejectsValueWithoutKeyInObject) {
  std::ostringstream os;
  JsonWriter w(os, false);
  w.begin_object();
  EXPECT_THROW(w.value(1), util::ConfigError);
}

TEST(JsonWriter, RejectsKeyInsideArray) {
  std::ostringstream os;
  JsonWriter w(os, false);
  w.begin_array();
  EXPECT_THROW(w.key("nope"), util::ConfigError);
}

TEST(JsonWriter, RejectsMismatchedScopeClose) {
  std::ostringstream os;
  JsonWriter w(os, false);
  w.begin_object();
  EXPECT_THROW(w.end_array(), util::ConfigError);
}

TEST(JsonWriter, RejectsSecondTopLevelValue) {
  std::ostringstream os;
  JsonWriter w(os, false);
  w.begin_object();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_THROW(w.begin_object(), util::ConfigError);
}

TEST(JsonWriter, CompleteIsFalseWhileScopesOpen) {
  std::ostringstream os;
  JsonWriter w(os, false);
  EXPECT_FALSE(w.complete());
  w.begin_object();
  w.key("inner");
  w.begin_array();
  EXPECT_FALSE(w.complete());
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
}

}  // namespace
}  // namespace clio::obs
