#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace clio::obs {
namespace {

TEST(StageName, CoversPipelineOrder) {
  EXPECT_EQ(stage_name(Stage::kAccept), "accept");
  EXPECT_EQ(stage_name(Stage::kQueueWait), "queue_wait");
  EXPECT_EQ(stage_name(Stage::kParse), "parse");
  EXPECT_EQ(stage_name(Stage::kHandler), "handler");
  EXPECT_EQ(stage_name(Stage::kStorageOp), "storage_op");
  EXPECT_EQ(stage_name(Stage::kSend), "send");
}

TEST(RequestTracer, TraceIdsAreDeterministicPerSeed) {
  MetricsRegistry reg_a;
  MetricsRegistry reg_b;
  RequestTracer a(reg_a, 42);
  RequestTracer b(reg_b, 42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next_trace_id(), b.next_trace_id()) << "diverged at id " << i;
  }
  MetricsRegistry reg_c;
  RequestTracer c(reg_c, 43);  // different seed → different sequence
  RequestTracer fresh_a(reg_b, 42);
  EXPECT_NE(fresh_a.next_trace_id(), c.next_trace_id());
}

TEST(RequestTracer, TraceIdsAreUniqueWithinASequence) {
  MetricsRegistry reg;
  RequestTracer tracer(reg, 7);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(tracer.next_trace_id());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  EXPECT_NE(ids.front(), 0u);  // IDs are mixed, never the raw counter
}

TEST(RequestTracer, RecordStageFeedsTheStageTimer) {
  MetricsRegistry reg;
  RequestTracer tracer(reg, 1);
  tracer.record_stage(Stage::kAccept, 500);
  tracer.record_stage(Stage::kAccept, 700);
  const MetricsSnapshot snap = reg.snapshot();
  const auto* dist = snap.distribution("clio_request_stage_accept_ns");
  ASSERT_NE(dist, nullptr);
  EXPECT_EQ(dist->hist.count, 2u);
  EXPECT_EQ(dist->hist.total_ns, 1200u);
}

TEST(SpanScope, NoOpWithoutAmbientTrace) {
  MetricsRegistry reg;
  RequestTracer tracer(reg, 1);  // registers the timers, but stays inactive
  {
    SpanScope span(Stage::kHandler);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(SpanScope::depth(), 0u);
  }
  EXPECT_EQ(tracer.spans_opened(), 0u);
  EXPECT_EQ(tracer.spans_closed(), 0u);
  const MetricsSnapshot snap = reg.snapshot();
  const auto* dist = snap.distribution("clio_request_stage_handler_ns");
  ASSERT_NE(dist, nullptr);
  EXPECT_EQ(dist->hist.count, 0u);
}

TEST(SpanScope, RecordsIntoAmbientTracerAndBalances) {
  MetricsRegistry reg;
  RequestTracer tracer(reg, 9);
  EXPECT_EQ(TraceScope::ambient_tracer(), nullptr);
  {
    TraceScope trace(tracer);
    EXPECT_EQ(TraceScope::ambient_tracer(), &tracer);
    EXPECT_EQ(TraceScope::ambient_trace_id(), trace.trace_id());
    {
      SpanScope handler(Stage::kHandler);
      EXPECT_TRUE(handler.active());
      EXPECT_EQ(SpanScope::depth(), 1u);
      {
        SpanScope storage(Stage::kStorageOp);
        EXPECT_EQ(SpanScope::depth(), 2u);
      }
      SpanScope send(Stage::kSend);
      EXPECT_EQ(SpanScope::depth(), 2u);
    }
    EXPECT_EQ(SpanScope::depth(), 0u);
  }
  EXPECT_EQ(TraceScope::ambient_tracer(), nullptr);
  EXPECT_EQ(TraceScope::ambient_trace_id(), 0u);
  EXPECT_EQ(tracer.traces_started(), 1u);
  EXPECT_EQ(tracer.spans_opened(), 3u);
  EXPECT_EQ(tracer.spans_closed(), 3u);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.distribution("clio_request_stage_handler_ns")->hist.count,
            1u);
  EXPECT_EQ(snap.distribution("clio_request_stage_storage_op_ns")->hist.count,
            1u);
  EXPECT_EQ(snap.distribution("clio_request_stage_send_ns")->hist.count, 1u);
}

TEST(TraceScope, NestedTracesSaveAndRestore) {
  MetricsRegistry reg_outer;
  MetricsRegistry reg_inner;
  RequestTracer outer(reg_outer, 1);
  RequestTracer inner(reg_inner, 2);
  TraceScope outer_trace(outer);
  const std::uint64_t outer_id = TraceScope::ambient_trace_id();
  SpanScope outer_span(Stage::kHandler);
  EXPECT_EQ(SpanScope::depth(), 1u);
  {
    // An inner trace hides the outer one completely: its spans must not
    // parent onto the outer trace's open span.
    TraceScope inner_trace(inner);
    EXPECT_EQ(TraceScope::ambient_tracer(), &inner);
    EXPECT_NE(TraceScope::ambient_trace_id(), outer_id);
    EXPECT_EQ(SpanScope::depth(), 0u);
    SpanScope inner_span(Stage::kStorageOp);
    EXPECT_EQ(SpanScope::depth(), 1u);
  }
  // Outer ambient state restored, including the still-open span.
  EXPECT_EQ(TraceScope::ambient_tracer(), &outer);
  EXPECT_EQ(TraceScope::ambient_trace_id(), outer_id);
  EXPECT_EQ(SpanScope::depth(), 1u);
  EXPECT_EQ(inner.spans_opened(), 1u);
  EXPECT_EQ(inner.spans_closed(), 1u);
  EXPECT_EQ(outer.spans_opened(), 1u);
  EXPECT_EQ(outer.spans_closed(), 0u);  // outer_span still open here
}

TEST(TraceScope, AmbientStateIsPerThread) {
  MetricsRegistry reg;
  RequestTracer tracer(reg, 5);
  TraceScope trace(tracer);
  EXPECT_EQ(TraceScope::ambient_tracer(), &tracer);
  std::thread other([] {
    // A sibling thread sees no ambient trace; its spans are no-ops.
    EXPECT_EQ(TraceScope::ambient_tracer(), nullptr);
    SpanScope span(Stage::kParse);
    EXPECT_FALSE(span.active());
  });
  other.join();
}

// Span accounting balances under concurrent traced work (TSan target).
TEST(RequestTracer, ConcurrentSpansBalance) {
  MetricsRegistry reg;
  RequestTracer tracer(reg, 11);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kIters; ++i) {
        TraceScope trace(tracer);
        SpanScope handler(Stage::kHandler);
        SpanScope storage(Stage::kStorageOp);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.traces_started(),
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(tracer.spans_opened(),
            static_cast<std::uint64_t>(2 * kThreads * kIters));
  EXPECT_EQ(tracer.spans_opened(), tracer.spans_closed());
}

}  // namespace
}  // namespace clio::obs
