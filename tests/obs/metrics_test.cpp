#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/histogram.hpp"

namespace clio::obs {
namespace {

TEST(MetricKindName, CoversAllKinds) {
  EXPECT_EQ(metric_kind_name(MetricKind::kCounter), "counter");
  EXPECT_EQ(metric_kind_name(MetricKind::kGauge), "gauge");
  EXPECT_EQ(metric_kind_name(MetricKind::kTimer), "timer");
}

TEST(MetricsRegistry, FindOrCreateReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("clio_test_total");
  Counter& b = reg.counter("clio_test_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  Gauge& g1 = reg.gauge("clio_test_gauge");
  Gauge& g2 = reg.gauge("clio_test_gauge");
  EXPECT_EQ(&g1, &g2);
  Timer& t1 = reg.timer("clio_test_ns");
  Timer& t2 = reg.timer("clio_test_ns");
  EXPECT_EQ(&t1, &t2);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, ReferencesSurviveManyRegistrations) {
  MetricsRegistry reg;
  Counter& first = reg.counter("clio_first_total");
  first.inc();
  // Force plenty of slot growth; the deque must not move `first`.
  for (int i = 0; i < 200; ++i) {
    reg.counter("clio_growth_" + std::to_string(i) + "_total").inc();
  }
  EXPECT_EQ(&first, &reg.counter("clio_first_total"));
  EXPECT_EQ(first.value(), 1u);
}

TEST(MetricsRegistry, RejectsKindMismatch) {
  MetricsRegistry reg;
  reg.counter("clio_mismatch");
  EXPECT_THROW(reg.gauge("clio_mismatch"), util::ConfigError);
  EXPECT_THROW(reg.timer("clio_mismatch"), util::ConfigError);
}

TEST(MetricsRegistry, RejectsInvalidPrometheusNames) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), util::ConfigError);
  EXPECT_THROW(reg.counter("9starts_with_digit"), util::ConfigError);
  EXPECT_THROW(reg.counter("has-dash"), util::ConfigError);
  EXPECT_THROW(reg.counter("has space"), util::ConfigError);
  // Colons and underscores are legal per the Prometheus grammar.
  EXPECT_NO_THROW(reg.counter("clio:colon_name_total"));
  EXPECT_NO_THROW(reg.counter("_leading_underscore"));
}

TEST(MetricsRegistry, CallbackReportsLiveValue) {
  MetricsRegistry reg;
  double level = 1.0;
  auto handle = reg.register_callback("clio_cb_gauge", MetricKind::kGauge,
                                      [&level] { return level; });
  EXPECT_EQ(reg.snapshot().value("clio_cb_gauge"), 1.0);
  level = 7.5;
  EXPECT_EQ(reg.snapshot().value("clio_cb_gauge"), 7.5);
}

TEST(MetricsRegistry, CallbackUnregistersViaRaii) {
  MetricsRegistry reg;
  {
    auto handle = reg.register_callback("clio_cb_total", MetricKind::kCounter,
                                        [] { return 1.0; });
    EXPECT_TRUE(reg.snapshot().value("clio_cb_total").has_value());
  }
  EXPECT_FALSE(reg.snapshot().value("clio_cb_total").has_value());
  // The name is free again after deregistration.
  auto again = reg.register_callback("clio_cb_total", MetricKind::kCounter,
                                     [] { return 2.0; });
  EXPECT_EQ(reg.snapshot().value("clio_cb_total"), 2.0);
  again.release();
  again.release();  // idempotent
  EXPECT_FALSE(reg.snapshot().value("clio_cb_total").has_value());
}

TEST(MetricsRegistry, CallbackMoveTransfersOwnership) {
  MetricsRegistry reg;
  auto a = reg.register_callback("clio_cb_moved", MetricKind::kGauge,
                                 [] { return 3.0; });
  MetricsRegistry::Registration b = std::move(a);
  a.release();  // moved-from handle is empty; must be a no-op
  EXPECT_TRUE(reg.snapshot().value("clio_cb_moved").has_value());
  b.release();
  EXPECT_FALSE(reg.snapshot().value("clio_cb_moved").has_value());
}

TEST(MetricsRegistry, CallbackNameCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("clio_taken");
  EXPECT_THROW(static_cast<void>(reg.register_callback(
                   "clio_taken", MetricKind::kCounter, [] { return 0.0; })),
               util::ConfigError);
  auto cb = reg.register_callback("clio_cb_dup", MetricKind::kGauge,
                                  [] { return 0.0; });
  EXPECT_THROW(static_cast<void>(reg.register_callback(
                   "clio_cb_dup", MetricKind::kGauge, [] { return 0.0; })),
               util::ConfigError);
  // Owned metrics also may not shadow a callback name.
  EXPECT_THROW(reg.counter("clio_cb_dup"), util::ConfigError);
}

TEST(MetricsRegistry, CallbacksMayNotBeTimers) {
  MetricsRegistry reg;
  EXPECT_THROW(static_cast<void>(reg.register_callback(
                   "clio_cb_timer", MetricKind::kTimer, [] { return 0.0; })),
               util::ConfigError);
}

TEST(MetricsRegistry, SnapshotSortedAndLooksUp) {
  MetricsRegistry reg;
  reg.counter("clio_zzz_total").inc(5);
  reg.gauge("clio_aaa_gauge").set(-2);
  reg.timer("clio_mid_ns").record_ns(1000);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.scalars.size(), 2u);
  EXPECT_EQ(snap.scalars[0].name, "clio_aaa_gauge");
  EXPECT_EQ(snap.scalars[1].name, "clio_zzz_total");
  EXPECT_EQ(snap.value("clio_zzz_total"), 5.0);
  EXPECT_EQ(snap.value("clio_aaa_gauge"), -2.0);
  EXPECT_FALSE(snap.value("clio_absent").has_value());
  ASSERT_NE(snap.distribution("clio_mid_ns"), nullptr);
  EXPECT_EQ(snap.distribution("clio_mid_ns")->hist.count, 1u);
  EXPECT_EQ(snap.distribution("clio_absent"), nullptr);
}

TEST(MetricsRegistry, PrometheusRenderShape) {
  MetricsRegistry reg;
  reg.counter("clio_reqs_total").inc(7);
  reg.gauge("clio_depth").set(3);
  Timer& t = reg.timer("clio_lat_ns");
  t.record_ns(100);   // bucket [64, 128)
  t.record_ns(100);
  t.record_ns(5000);  // bucket [4096, 8192)
  std::ostringstream os;
  reg.render_prometheus(os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# TYPE clio_reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("clio_reqs_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE clio_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("clio_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE clio_lat_ns histogram"), std::string::npos);
  // Buckets are CUMULATIVE: the second bucket already contains the first
  // two samples, and +Inf carries the total count.
  EXPECT_NE(text.find("clio_lat_ns_bucket{le=\"128\"} 2"), std::string::npos);
  EXPECT_NE(text.find("clio_lat_ns_bucket{le=\"8192\"} 3"), std::string::npos);
  EXPECT_NE(text.find("clio_lat_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("clio_lat_ns_sum 5200"), std::string::npos);
  EXPECT_NE(text.find("clio_lat_ns_count 3"), std::string::npos);
}

TEST(MetricsRegistry, TimerMergeBatches) {
  MetricsRegistry reg;
  Timer& t = reg.timer("clio_batch_ns");
  util::LatencyHistogram local;
  local.push(10);
  local.push(20);
  t.merge(local);
  t.record_ns(30);
  EXPECT_EQ(t.snapshot().count, 3u);
  EXPECT_EQ(t.snapshot().total_ns, 60u);
}

TEST(MetricsRegistry, ResetZeroesOwnedButSkipsCallbacks) {
  MetricsRegistry reg;
  reg.counter("clio_r_total").inc(9);
  reg.gauge("clio_r_gauge").set(4);
  reg.timer("clio_r_ns").record_ns(100);
  auto cb = reg.register_callback("clio_r_cb", MetricKind::kGauge,
                                  [] { return 42.0; });
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("clio_r_total"), 0.0);
  EXPECT_EQ(snap.value("clio_r_gauge"), 0.0);
  EXPECT_EQ(snap.distribution("clio_r_ns")->hist.count, 0u);
  EXPECT_EQ(snap.value("clio_r_cb"), 42.0);  // callback state untouched
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  MetricsRegistry& a = MetricsRegistry::global();
  MetricsRegistry& b = MetricsRegistry::global();
  EXPECT_EQ(&a, &b);
}

// TSan target: concurrent find-or-create, increments, timer records and
// snapshots across threads must be race-free.
TEST(MetricsRegistry, ConcurrentMutationIsRaceFree) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&reg, tid] {
      // Everyone races on the shared name; each thread also owns one.
      Counter& shared = reg.counter("clio_conc_shared_total");
      Counter& mine =
          reg.counter("clio_conc_t" + std::to_string(tid) + "_total");
      Timer& timer = reg.timer("clio_conc_ns");
      Gauge& depth = reg.gauge("clio_conc_depth");
      for (int i = 0; i < kIters; ++i) {
        shared.inc();
        mine.inc();
        depth.add(1);
        timer.record_ns(static_cast<std::uint64_t>(i % 1000) + 1);
        depth.sub(1);
        if (i % 500 == 0) {
          const MetricsSnapshot snap = reg.snapshot();
          EXPECT_TRUE(snap.value("clio_conc_shared_total").has_value());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("clio_conc_shared_total"),
            static_cast<double>(kThreads * kIters));
  EXPECT_EQ(snap.distribution("clio_conc_ns")->hist.count,
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(snap.value("clio_conc_depth"), 0.0);
}

}  // namespace
}  // namespace clio::obs
